GO ?= go

.PHONY: check vet lint lintshort build test race bench benchsmoke fmt fmtcheck crashmatrix crashshort failovershort fuzzshort

# NPROC bounds go vet's package-level parallelism for the lint targets;
# override on boxes where the cgroup CPU limit is below nproc.
NPROC ?= $(shell nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

# check is the full verification gate: formatting, vet, the seclint
# static-analysis suite (guardedby/verdictcheck/ctxio/gatecheck plus the
# taintflow/leakcheck dataflow analyzers — the security and durability
# invariants machine-checked), build, the test
# suite under the race detector (the resilience and caching layers are
# concurrent by design — a run without -race proves little), a
# one-iteration bench smoke so a broken benchmark cannot sit unnoticed
# until measurement time, and the bounded crash matrix (crashshort) so a
# durability regression cannot land between full crashmatrix runs.
check: fmtcheck vet lint build race bench crashshort failovershort fuzzshort

vet:
	$(GO) vet ./...

# lint builds the seclint vettool (cmd/seclint) and runs its analyzer
# suite over the whole tree via go vet's -vettool protocol, fanning
# package units out over NPROC workers. The tree must stay finding-free;
# see internal/analysis/README.md for the annotation grammar when a
# finding is a false positive.
lint:
	$(GO) build -o bin/seclint ./cmd/seclint
	$(GO) vet -vettool=$(CURDIR)/bin/seclint -p $(NPROC) ./...

# lintshort is the edit-compile loop variant: the same analyzer suite
# over internal/... only, skipping the cmd and examples binaries (their
# findings are caught by the full lint inside make check).
lintshort:
	$(GO) build -o bin/seclint ./cmd/seclint
	$(GO) vet -vettool=$(CURDIR)/bin/seclint -p $(NPROC) ./internal/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench compiles and runs every benchmark exactly once (-run '^$$' skips
# the unit tests, which race/test already cover). For real numbers, use
# cmd/benchgen or raise -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .

# fmtcheck fails when any file is unformatted (the listing is the error
# message); fmt fixes what it reports.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

# benchsmoke runs the WAL group-commit benchmarks a few iterations on a
# real filesystem — enough to catch a wedged pipeline or a benchmark that
# no longer compiles, without waiting for measurement-grade numbers.
benchsmoke:
	$(GO) test -run '^$$' -bench 'GroupCommit|AppendSyncPolicy' -benchmem \
		-benchtime 10x ./internal/wal/

# crashmatrix runs the fault-injection recovery suite: every test that
# drives a store to a crash point (write-torn, mid-fsync, mid-batch,
# mid-shared-fsync) and asserts the recovery invariants, under the race
# detector.
crashmatrix:
	$(GO) test -race -run 'Crash|KillLeader' -v ./internal/wal/ ./internal/reldb/ \
		./internal/audit/ ./internal/policy/ ./internal/resilience/... \
		./internal/replication/

# crashshort is the bounded crash matrix wired into check: the same tests
# with -short, which widens the byte strides so tier-1 stays fast.
crashshort:
	$(GO) test -race -short -run 'Crash' ./internal/wal/ ./internal/reldb/ \
		./internal/audit/ ./internal/policy/ ./internal/resilience/...

# fuzzshort gives every fuzz target a short budget on each check run: the
# decoders that parse attacker-controlled bytes (WAL records, auth
# tokens) must never panic, whatever the input. The corpus accumulated
# under testdata/ replays first, so past crashers stay fixed.
fuzzshort:
	$(GO) test -run '^$$' -fuzz FuzzTokenDecode -fuzztime 5s ./internal/authtoken/
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 5s ./internal/wal/

# failovershort is the replication gate wired into check: a 3-node
# cluster elects, replicates, survives kill-the-leader at sampled byte
# offsets (shortened matrix) and keeps every acknowledged commit, under
# the race detector.
failovershort:
	$(GO) test -race -short -run 'TestThreeNodeReplication|TestKillLeaderMatrix|TestFailoverOnLeaderStop' \
		./internal/replication/
