GO ?= go

.PHONY: check vet build test race bench benchsmoke fmt fmtcheck crashmatrix crashshort

# check is the full verification gate: formatting, vet, build, the test
# suite under the race detector (the resilience and caching layers are
# concurrent by design — a run without -race proves little), a
# one-iteration bench smoke so a broken benchmark cannot sit unnoticed
# until measurement time, and the bounded crash matrix so a durability
# regression cannot land between full crashmatrix runs.
check: fmtcheck vet build race bench crashshort

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench compiles and runs every benchmark exactly once (-run '^$$' skips
# the unit tests, which race/test already cover). For real numbers, use
# cmd/benchgen or raise -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .

# fmtcheck fails when any file is unformatted (the listing is the error
# message); fmt fixes what it reports.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

# benchsmoke runs the WAL group-commit benchmarks a few iterations on a
# real filesystem — enough to catch a wedged pipeline or a benchmark that
# no longer compiles, without waiting for measurement-grade numbers.
benchsmoke:
	$(GO) test -run '^$$' -bench 'GroupCommit|AppendSyncPolicy' -benchmem \
		-benchtime 10x ./internal/wal/

# crashmatrix runs the fault-injection recovery suite: every test that
# drives a store to a crash point (write-torn, mid-fsync, mid-batch,
# mid-shared-fsync) and asserts the recovery invariants, under the race
# detector.
crashmatrix:
	$(GO) test -race -run 'Crash' -v ./internal/wal/ ./internal/reldb/ \
		./internal/audit/ ./internal/policy/ ./internal/resilience/...

# crashshort is the bounded crash matrix wired into check: the same tests
# with -short, which widens the byte strides so tier-1 stays fast.
crashshort:
	$(GO) test -race -short -run 'Crash' ./internal/wal/ ./internal/reldb/ \
		./internal/audit/ ./internal/policy/ ./internal/resilience/...
