GO ?= go

.PHONY: check vet build test race bench fmt

# check is the full verification gate: vet, build, and the test suite
# under the race detector (the resilience layers are concurrent by
# design — a run without -race proves little).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .
