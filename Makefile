GO ?= go

.PHONY: check vet build test race bench fmt fmtcheck crashmatrix

# check is the full verification gate: formatting, vet, build, the test
# suite under the race detector (the resilience and caching layers are
# concurrent by design — a run without -race proves little), and a
# one-iteration bench smoke so a broken benchmark cannot sit unnoticed
# until measurement time.
check: fmtcheck vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench compiles and runs every benchmark exactly once (-run '^$$' skips
# the unit tests, which race/test already cover). For real numbers, use
# cmd/benchgen or raise -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .

# fmtcheck fails when any file is unformatted (the listing is the error
# message); fmt fixes what it reports.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:"; echo "$$out"; exit 1; fi

# crashmatrix runs the fault-injection recovery suite: every test that
# drives a store to a crash point (write-torn, mid-fsync) and asserts the
# recovery invariants, under the race detector.
crashmatrix:
	$(GO) test -race -run 'Crash' -v ./internal/wal/ ./internal/reldb/ \
		./internal/audit/ ./internal/policy/ ./internal/resilience/...
