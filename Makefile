GO ?= go

.PHONY: check vet build test race bench fmt

# check is the full verification gate: vet, build, the test suite under
# the race detector (the resilience and caching layers are concurrent by
# design — a run without -race proves little), and a one-iteration bench
# smoke so a broken benchmark cannot sit unnoticed until measurement time.
check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench compiles and runs every benchmark exactly once (-run '^$$' skips
# the unit tests, which race/test already cover). For real numbers, use
# cmd/benchgen or raise -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .
