// Benchmarks E1–E16: the synthetic experiment suite defined in DESIGN.md.
// Each benchmark regenerates one row family of EXPERIMENTS.md; the
// human-readable tables come from cmd/benchgen, which wraps the same
// workloads.
package webdbsec

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/authorx"
	"webdbsec/internal/core"
	"webdbsec/internal/credential"
	"webdbsec/internal/decisioncache"
	"webdbsec/internal/federation"
	"webdbsec/internal/inference"
	"webdbsec/internal/merkle"
	"webdbsec/internal/mining"
	"webdbsec/internal/ontology"
	"webdbsec/internal/p3p"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/secchan"
	"webdbsec/internal/synth"
	"webdbsec/internal/sysr"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// --- E1: access decision throughput by subject qualification kind ---

func e1Engine(nPolicies int, kind string) (*accessctl.Engine, *policy.Subject) {
	store := xmldoc.NewStore()
	doc := synth.Hospital(1, 50)
	store.Put(doc)
	base := policy.NewBase(nil)
	for i := 0; i < nPolicies; i++ {
		p := &policy.Policy{
			Name:   fmt.Sprintf("p%d", i),
			Object: policy.ObjectSpec{Doc: doc.Name, Path: fmt.Sprintf("/hospital/patient[@ward='%d']", i%8)},
			Priv:   policy.Read,
			Sign:   policy.Permit,
			Prop:   policy.Cascade,
		}
		switch kind {
		case "identity":
			p.Subject = policy.SubjectSpec{IDs: []string{fmt.Sprintf("user%d", i%100)}}
		case "role":
			p.Subject = policy.SubjectSpec{Roles: []string{fmt.Sprintf("role%d", i%10)}}
		case "credential":
			p.Subject = policy.SubjectSpec{CredExpr: credential.MustCompile(
				fmt.Sprintf("staff.ward = '%d'", i%8))}
		}
		base.MustAdd(p)
	}
	w := credential.NewWallet("user7")
	w.Add(&credential.Credential{Type: "staff", Subject: "user7", Attrs: map[string]string{"ward": "3"}})
	s := &policy.Subject{ID: "user7", Roles: []string{"role3"}, Wallet: w}
	return accessctl.NewEngine(store, base), s
}

func BenchmarkE1AccessDecision(b *testing.B) {
	for _, kind := range []string{"identity", "role", "credential"} {
		for _, n := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/policies=%d", kind, n), func(b *testing.B) {
				eng, s := e1Engine(n, kind)
				doc, _ := eng.Store().Get("hospital-50.xml")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Labels(doc, s, policy.Read)
				}
			})
		}
	}
}

// --- E2: Author-X view computation vs document size and granularity ---

func BenchmarkE2ViewComputation(b *testing.B) {
	for _, patients := range []int{10, 100, 1000} {
		for _, gran := range []string{"doc", "subtree", "node"} {
			b.Run(fmt.Sprintf("patients=%d/%s", patients, gran), func(b *testing.B) {
				store := xmldoc.NewStore()
				doc := synth.Hospital(2, patients)
				store.Put(doc)
				base := policy.NewBase(nil)
				var path string
				switch gran {
				case "doc":
					path = ""
				case "subtree":
					path = "//patient"
				case "node":
					path = "//ssn"
				}
				base.MustAdd(&policy.Policy{
					Name:    "p",
					Subject: policy.SubjectSpec{IDs: []string{"*"}},
					Object:  policy.ObjectSpec{Doc: doc.Name, Path: path},
					Priv:    policy.Read,
					Sign:    policy.Permit,
					Prop:    policy.Cascade,
				})
				eng := accessctl.NewEngine(store, base)
				s := &policy.Subject{ID: "u"}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if v := eng.View(doc.Name, s, policy.Read); v == nil {
						b.Fatal("nil view")
					}
				}
			})
		}
	}
}

// --- E3: secure dissemination: encryption and key cost vs policy configs ---

func BenchmarkE3Dissemination(b *testing.B) {
	for _, configs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("configs=%d", configs), func(b *testing.B) {
			store := xmldoc.NewStore()
			doc := synth.Hospital(3, 200)
			store.Put(doc)
			base := policy.NewBase(nil)
			for i := 0; i < configs; i++ {
				// One policy per patient slice: each matched subtree gets a
				// distinct policy configuration, so the number of keys
				// tracks `configs`.
				base.MustAdd(&policy.Policy{
					Name:    fmt.Sprintf("p%d", i),
					Subject: policy.SubjectSpec{Roles: []string{fmt.Sprintf("r%d", i)}},
					Object:  policy.ObjectSpec{Doc: doc.Name, Path: fmt.Sprintf("/hospital/patient[@id='p%d']", i)},
					Priv:    policy.Read,
					Sign:    policy.Permit,
					Prop:    policy.Cascade,
				})
			}
			eng := accessctl.NewEngine(store, base)
			pub := authorx.NewPublisher(eng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.Encrypt(doc.Name); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pub.NumKeys(doc.Name)), "keys")
		})
	}
	// Trusted-server baseline: view computation instead of encryption.
	b.Run("baseline-trusted-view", func(b *testing.B) {
		store := xmldoc.NewStore()
		doc := synth.Hospital(3, 200)
		store.Put(doc)
		base := policy.NewBase(nil)
		base.MustAdd(&policy.Policy{
			Name:    "all",
			Subject: policy.SubjectSpec{IDs: []string{"*"}},
			Object:  policy.ObjectSpec{Doc: doc.Name},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		})
		eng := accessctl.NewEngine(store, base)
		s := &policy.Subject{ID: "u"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.View(doc.Name, s, policy.Read)
		}
	})
}

// --- E4: Merkle verification vs full-document signature; pruning sweep ---

func BenchmarkE4MerkleVerify(b *testing.B) {
	signer, _ := wsig.NewSigner("prov")
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	for _, patients := range []int{16, 256, 1024} {
		doc := synth.Hospital(4, patients)
		ss := merkle.Sign(doc, signer)
		b.Run(fmt.Sprintf("full-sig/elems=%d", patients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !merkle.VerifyFull(doc, ss, dir) {
					b.Fatal("verify failed")
				}
			}
		})
		for _, prunePct := range []int{0, 50, 90} {
			keepEvery := 100 - prunePct
			view, proof := merkle.PruneWithProof(doc, func(n *xmldoc.Node) bool {
				return int(n.ID()*7%100) < keepEvery
			})
			if view == nil {
				continue
			}
			b.Run(fmt.Sprintf("pruned/elems=%d/prune=%d%%", patients, prunePct), func(b *testing.B) {
				b.ReportMetric(float64(proof.NumAuxHashes()), "aux-hashes")
				for i := 0; i < b.N; i++ {
					if err := merkle.VerifyView(view, proof, ss, dir); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E5: UDDI inquiry across deployment models ---

func BenchmarkE5UDDIInquiry(b *testing.B) {
	const entries = 500
	reg := uddi.NewRegistry(nil)
	keys := synth.Registry(5, reg, entries)
	req := &policy.Subject{ID: "requestor"}

	b.Run("two-party/get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reg.GetBusinessDetail(req, keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-party/find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg.FindBusiness(req, "logistics", nil)
		}
	})

	// Third-party untrusted with proofs.
	prov, _ := uddi.NewProvider("prov")
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: "*"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	trusted := uddi.NewTrustedAgency(base)
	for i := 0; i < entries; i++ {
		e := synth.Entity(fmt.Sprintf("be-%05d", i), "logistics", 2)
		entry, err := prov.Sign(e)
		if err != nil {
			b.Fatal(err)
		}
		agency.Publish(entry)
		trusted.Publish(e)
	}
	b.Run("third-party-trusted/get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trusted.Query(req, keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("third-party-untrusted/get+verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := agency.Query(req, keys[i%len(keys)])
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Verify(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: privacy-preserving mining cost vs randomization level ---

func BenchmarkE6PrivateMining(b *testing.B) {
	const items = 40
	baskets := synth.NewBaskets(6, 5000, items, 5)
	b.Run("baseline-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mining.Apriori(baskets.Data, 0.15, 2)
		}
	})
	for _, p := range []float64{0.6, 0.8, 0.95} {
		rdz := mining.Randomize(baskets.Data, items, p, 6)
		b.Run(fmt.Sprintf("private/p=%.2f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mining.PrivateApriori(rdz, items, p, 0.15, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: multiparty secure-sum mining vs centralized ---

func BenchmarkE7Multiparty(b *testing.B) {
	baskets := synth.NewBaskets(7, 8000, 30, 5)
	b.Run("centralized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mining.Apriori(baskets.Data, 0.2, 2)
		}
	})
	for _, parties := range []int{2, 4, 8} {
		chunk := len(baskets.Data) / parties
		ps := make([]*mining.Party, parties)
		for i := 0; i < parties; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if i == parties-1 {
				hi = len(baskets.Data)
			}
			ps[i] = mining.NewParty(fmt.Sprintf("p%d", i), baskets.Data[lo:hi])
		}
		b.Run(fmt.Sprintf("parties=%d", parties), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mining.MultipartyApriori(ps, 0.2, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: inference controller overhead per query vs rule count ---

func BenchmarkE8Inference(b *testing.B) {
	for _, rules := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			pc := privacy.NewController()
			pc.Add(&privacy.Constraint{Name: "c", Attrs: []string{"attr0", "derived0"}, Class: privacy.Private})
			ic := inference.NewController(pc)
			for i := 0; i < rules; i++ {
				ic.AddRule(&inference.Rule{
					Name: fmt.Sprintf("r%d", i),
					Body: []string{fmt.Sprintf("attr%d", i), fmt.Sprintf("attr%d", i+1)},
					Head: fmt.Sprintf("derived%d", i),
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := &policy.Subject{ID: fmt.Sprintf("u%d", i)}
				ic.Check(s, []string{"attr5", "attr9"})
			}
		})
	}
}

// --- E9: semantic RDF filtering throughput ---

func BenchmarkE9RDFFilter(b *testing.B) {
	for _, triples := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("triples=%d", triples), func(b *testing.B) {
			store := rdf.NewStore()
			for i := 0; i < triples; i++ {
				store.Add(rdf.Triple{
					S: rdf.NewIRI(fmt.Sprintf("res%d", i%1000)),
					P: rdf.NewIRI(fmt.Sprintf("p%d", i%20)),
					O: rdf.NewLiteral(fmt.Sprintf("v%d", i)),
				})
			}
			g := rdf.NewGuard(store)
			g.AddClassRule(&rdf.ClassRule{
				Pattern: rdf.Pattern{P: rdf.T(rdf.NewIRI("p1"))}, Level: rdf.Secret,
			})
			c := rdf.NewClearance(&policy.Subject{ID: "u"}, rdf.Unclassified)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Query(c, rdf.Pattern{S: rdf.T(rdf.NewIRI(fmt.Sprintf("res%d", i%1000)))})
			}
		})
	}
}

// --- E10: security-aware query processing overhead ---

func BenchmarkE10QueryRewrite(b *testing.B) {
	mk := func(withPolicies bool) (*reldb.SecureDB, *policy.Subject) {
		sdb := reldb.NewSecureDB(reldb.NewDatabase(), nil)
		dba := &policy.Subject{ID: "dba"}
		sdb.CreateTable(dba, "CREATE TABLE emp (id INT, dept TEXT, salary INT)")
		sdb.DB().Exec("CREATE HASH INDEX ON emp (dept)")
		for i := 0; i < 5000; i++ {
			sdb.DB().Exec(fmt.Sprintf("INSERT INTO emp VALUES (%d, 'd%d', %d)", i, i%20, i%200*1000))
		}
		sdb.Grants().Grant("dba", "u", sysr.Select, "emp", false)
		if withPolicies {
			// The policy predicate matches every row, so both variants
			// return identical results and the delta is pure rewrite +
			// evaluation overhead.
			pred := reldb.MustParse("SELECT * FROM emp WHERE salary >= 0").(*reldb.SelectStmt).Where
			sdb.AddRowPolicy(&reldb.RowPolicy{
				Name: "own-dept", Table: "emp",
				Subject: policy.SubjectSpec{IDs: []string{"u"}}, Pred: pred,
			})
		}
		return sdb, &policy.Subject{ID: "u"}
	}
	plain, u1 := mk(false)
	secured, u2 := mk(true)
	b.Run("no-row-policy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plain.Exec(u1, "SELECT id FROM emp WHERE salary > 100000"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("with-row-policy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := secured.Exec(u2, "SELECT id FROM emp WHERE salary > 100000"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: secure channel throughput vs plaintext ---

func benchChannel(b *testing.B, secure bool, size int) {
	payload := make([]byte, size)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	if secure {
		pub, priv, _ := ed25519.GenerateKey(nil)
		done := make(chan *secchan.Channel, 1)
		go func() {
			ch, err := secchan.Server(sConn, priv)
			if err == nil {
				done <- ch
			}
		}()
		client, err := secchan.Client(cConn, pub)
		if err != nil {
			b.Fatal(err)
		}
		server := <-done
		go func() {
			for {
				if _, err := server.Receive(); err != nil {
					return
				}
			}
		}()
		b.SetBytes(int64(size))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	pc, ps := secchan.NewPlainChannel(cConn), secchan.NewPlainChannel(sConn)
	go func() {
		for {
			if _, err := ps.Receive(); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pc.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11SecureChannel(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("plain/%dB", size), func(b *testing.B) { benchChannel(b, false, size) })
		b.Run(fmt.Sprintf("secure/%dB", size), func(b *testing.B) { benchChannel(b, true, size) })
	}
}

// --- E12: P3P preference matching and delegation chains ---

func BenchmarkE12P3PMatch(b *testing.B) {
	mkPolicy := func(i int) *p3p.Policy {
		return &p3p.Policy{
			Entity: fmt.Sprintf("svc%d", i),
			Statements: []p3p.Statement{{
				Purposes:   []p3p.Purpose{p3p.PurposeCurrent, p3p.PurposeMarketing},
				Recipients: []p3p.Recipient{p3p.RecipientOurs},
				Categories: []p3p.Category{p3p.CategoryOnline, p3p.CategoryClickstream},
				Retention:  30 + i%60,
			}},
		}
	}
	pref := &p3p.Preference{Rules: []p3p.PreferenceRule{
		{Name: "no-health", Categories: []p3p.Category{p3p.CategoryHealth}, Purposes: []p3p.Purpose{p3p.PurposeMarketing}},
		{Name: "short-retention", Categories: []p3p.Category{p3p.CategoryClickstream}, MaxRetention: 45},
	}}
	for _, n := range []int{100, 1000} {
		policies := make([]*p3p.Policy, n)
		for i := range policies {
			policies[i] = mkPolicy(i)
		}
		b.Run(fmt.Sprintf("match/policies=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pref.Evaluate(policies[i%n])
			}
		})
	}
	for _, depth := range []int{2, 8} {
		d := p3p.NewDirectory()
		for i := 0; i <= depth; i++ {
			d.Advertise(fmt.Sprintf("s%d", i), &p3p.Policy{
				Entity: fmt.Sprintf("s%d", i),
				Statements: []p3p.Statement{{
					Purposes:   []p3p.Purpose{p3p.PurposeCurrent},
					Recipients: []p3p.Recipient{p3p.RecipientOurs},
					Categories: []p3p.Category{p3p.CategoryOnline},
					Retention:  100 - i,
				}},
			})
		}
		for i := 0; i < depth; i++ {
			if err := d.Delegate(fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i+1)); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("chain/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.DelegationChain("s0")
			}
		})
	}
}

// --- E13: flexible security policy — cost at different strengths ---

func BenchmarkE13FlexibleSecurity(b *testing.B) {
	store := xmldoc.NewStore()
	doc := synth.Hospital(13, 300)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "names-only",
		Subject: policy.SubjectSpec{IDs: []string{"u"}},
		Object:  policy.ObjectSpec{Doc: doc.Name, Path: "//name"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	xml := accessctl.NewEngine(store, base)
	guard := rdf.NewGuard(rdf.NewStore())
	med := ontology.NewMediator(ontology.New("o"), rdf.NewStore())
	stack := core.NewSemanticStack(xml, guard, med)
	u := &policy.Subject{ID: "u"}
	for _, s := range []core.Strength{0, 30, 70, 100} {
		b.Run(fmt.Sprintf("strength=%d", s), func(b *testing.B) {
			stack.SetStrength(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stack.XMLView(doc.Name, u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E15: federated query scaling with sources and clearance filtering ---

func BenchmarkE15FederatedQuery(b *testing.B) {
	for _, nSources := range []int{2, 8, 32} {
		fed := federation.New()
		for i := 0; i < nSources; i++ {
			db := reldb.NewDatabase()
			db.Exec("CREATE TABLE local_cases (patient TEXT, disease TEXT)")
			for j := 0; j < 200; j++ {
				db.Exec(fmt.Sprintf("INSERT INTO local_cases VALUES ('p%d-%d', 'd%d')", i, j, j%5))
			}
			level := rdf.Unclassified
			if i%2 == 1 {
				level = rdf.Secret
			}
			src := federation.NewSource(fmt.Sprintf("s%02d", i), db, level)
			if err := src.ExportTable(&federation.Export{
				Virtual: "cases", Local: "local_cases", Columns: []string{"patient", "disease"},
			}); err != nil {
				b.Fatal(err)
			}
			if err := fed.AddSource(src); err != nil {
				b.Fatal(err)
			}
		}
		high := &federation.Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
		low := &federation.Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Unclassified}
		b.Run(fmt.Sprintf("sources=%d/full-clearance", nSources), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query(context.Background(), high, "SELECT patient FROM cases WHERE disease = 'd1'"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sources=%d/low-clearance", nSources), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query(context.Background(), low, "SELECT patient FROM cases WHERE disease = 'd1'"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E16: provenance-aware (guarded) RDFS inference vs plain inference ---

func BenchmarkE16GuardedInference(b *testing.B) {
	build := func(classes, instances int) *rdf.Store {
		s := rdf.NewStore()
		for c := 1; c < classes; c++ {
			s.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("C%d", c)),
				P: rdf.NewIRI(rdf.RDFSSubClassOf),
				O: rdf.NewIRI(fmt.Sprintf("C%d", c/2)),
			})
		}
		for i := 0; i < instances; i++ {
			s.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("x%d", i)),
				P: rdf.NewIRI(rdf.RDFType),
				O: rdf.NewIRI(fmt.Sprintf("C%d", 1+i%(classes-1))),
			})
		}
		return s
	}
	for _, size := range []int{16, 64} {
		b.Run(fmt.Sprintf("plain/classes=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := build(size, size*4)
				b.StartTimer()
				s.InferRDFS()
			}
		})
		b.Run(fmt.Sprintf("guarded/classes=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := build(size, size*4)
				g := rdf.NewGuard(s)
				g.AddClassRule(&rdf.ClassRule{
					Pattern: rdf.Pattern{S: rdf.T(rdf.NewIRI("C1"))},
					Level:   rdf.Secret,
				})
				b.StartTimer()
				g.InferRDFS()
			}
		})
	}
}

// --- E14: open-bid auction model vs conventional locking ---

func BenchmarkE14AuctionTxn(b *testing.B) {
	b.Run("open-bid", func(b *testing.B) {
		db := reldb.NewDatabase()
		a, err := reldb.NewAuctionHouse(db)
		if err != nil {
			b.Fatal(err)
		}
		a.Open("item", "seller")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.PlaceBid("item", "bidder", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("locking-thinktime", func(b *testing.B) {
		db := reldb.NewDatabase()
		a, err := reldb.NewAuctionHouse(db)
		if err != nil {
			b.Fatal(err)
		}
		a.Open("item", "seller")
		locking := reldb.NewLockingAuctionHouse(a, time.Millisecond)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := locking.PlaceBid("item", "bidder", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E17: the decision cache — cold vs warm vs uncached, and hit rate
// under a Zipf-distributed subject population ---

func BenchmarkE17DecisionCache(b *testing.B) {
	const nPolicies = 1000

	b.Run("uncached/policies=1000", func(b *testing.B) {
		eng, s := e1Engine(nPolicies, "role")
		doc, _ := eng.Store().Get("hospital-50.xml")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Labels(doc, s, policy.Read)
		}
	})

	// Cold: every request is a never-seen subject, so each pays the full
	// computation plus fingerprinting and insertion — the cache's overhead
	// ceiling.
	b.Run("cold/policies=1000", func(b *testing.B) {
		eng, _ := e1Engine(nPolicies, "role")
		cached := decisioncache.NewEngine(eng, 1<<17)
		doc, _ := eng.Store().Get("hospital-50.xml")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &policy.Subject{ID: fmt.Sprintf("user%d", i), Roles: []string{"role3"}}
			cached.Labels(doc, s, policy.Read)
		}
	})

	// Warm: the same subject repeats, so after the first miss every
	// request is a fingerprint hash plus one sharded map hit. The PR's
	// acceptance bar is >= 5x over uncached at 1000 policies.
	b.Run("warm/policies=1000", func(b *testing.B) {
		eng, s := e1Engine(nPolicies, "role")
		cached := decisioncache.NewEngine(eng, 1<<16)
		doc, _ := eng.Store().Get("hospital-50.xml")
		cached.Labels(doc, s, policy.Read) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cached.Labels(doc, s, policy.Read)
		}
	})

	// Zipf: 10k distinct subjects with Zipf-distributed request frequency
	// against a cache an order of magnitude smaller, the realistic regime:
	// hot subjects stay resident, the long tail misses and evicts.
	b.Run("zipf/policies=1000/subjects=10000/cap=1024", func(b *testing.B) {
		eng, _ := e1Engine(nPolicies, "role")
		cached := decisioncache.NewEngine(eng, 1024)
		doc, _ := eng.Store().Get("hospital-50.xml")
		const nSubjects = 10000
		subjects := make([]*policy.Subject, nSubjects)
		for i := range subjects {
			subjects[i] = &policy.Subject{ID: fmt.Sprintf("user%d", i), Roles: []string{fmt.Sprintf("role%d", i%10)}}
		}
		zipf := rand.NewZipf(rand.New(rand.NewSource(17)), 1.3, 1, nSubjects-1)
		picks := make([]int, 1<<16)
		for i := range picks {
			picks[i] = int(zipf.Uint64())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cached.Labels(doc, subjects[picks[i%len(picks)]], policy.Read)
		}
		st := cached.Stats().Labels
		b.ReportMetric(st.HitRate(), "hit-rate")
	})
}
