// Secure third-party publishing (§3.2 [3], §4.1 [4]): the owner signs a
// Merkle summary of a document and hands it to an UNTRUSTED publisher.
// Subjects receive pruned views with proofs and verify authenticity and
// completeness locally — then the demo shows a tampering and an omitting
// publisher being caught.
package main

import (
	"fmt"
	"log"

	"webdbsec/internal/merkle"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

const catalog = `
<catalog vendor="Acme">
  <product sku="A1">
    <name>widget</name>
    <price>10</price>
    <cost confidential="true">4</cost>
  </product>
  <product sku="A2">
    <name>gadget</name>
    <price>25</price>
    <cost confidential="true">11</cost>
  </product>
</catalog>`

func main() {
	doc, err := xmldoc.ParseString("catalog.xml", catalog)
	if err != nil {
		log.Fatal(err)
	}

	// The OWNER signs once, out of band.
	owner, err := wsig.NewSigner("acme-owner")
	if err != nil {
		log.Fatal(err)
	}
	summary := merkle.Sign(doc, owner)
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(owner)
	fmt.Println("owner signed the Merkle summary; publisher receives doc + signature")

	// The PUBLISHER (untrusted) serves a customer view without internal
	// costs, attaching the proof for the pruned portions.
	view, proof := merkle.PruneWithProof(doc, func(n *xmldoc.Node) bool {
		for p := n; p != nil; p = p.Parent {
			if p.Kind == xmldoc.KindElement && p.Name == "cost" {
				return false
			}
		}
		return true
	})
	fmt.Printf("\npublisher serves customer view (%d auxiliary hashes for pruned costs):\n%s\n",
		proof.NumAuxHashes(), view.Canonical())

	// The CUSTOMER verifies against the owner's key only.
	if err := merkle.VerifyView(view, proof, summary, dir); err != nil {
		log.Fatalf("honest view rejected: %v", err)
	}
	fmt.Println("\ncustomer verification: OK — authentic and complete, publisher not trusted")

	// Attack 1: the publisher inflates a price.
	evil := view.Clone()
	xmldoc.MustCompilePath("//price").Select(evil)[0].Children[0].Value = "99"
	if err := merkle.VerifyView(evil, proof, summary, dir); err != nil {
		fmt.Printf("\nattack 1 (price tampering) detected: %v\n", err)
	} else {
		log.Fatal("tampering NOT detected")
	}

	// Attack 2: the publisher silently drops a competitor-relevant product
	// (same proof, fewer elements).
	omitted := view.Clone()
	root := omitted.Root
	for i, c := range root.Children {
		if c.Kind == xmldoc.KindElement && c.Name == "product" {
			root.Children = append(root.Children[:i], root.Children[i+1:]...)
			break
		}
	}
	if err := merkle.VerifyView(omitted, proof, summary, dir); err != nil {
		fmt.Printf("attack 2 (silent omission) detected: %v\n", err)
	} else {
		log.Fatal("omission NOT detected")
	}

	// Honest pruning of the same product, with a fresh proof, verifies:
	// omissions are fine exactly when they are disclosed.
	view2, proof2 := merkle.PruneWithProof(doc, func(n *xmldoc.Node) bool {
		for p := n; p != nil; p = p.Parent {
			if p.Kind == xmldoc.KindElement && p.Name == "product" {
				if sku, _ := p.Attr("sku"); sku == "A2" {
					return false
				}
			}
			if p.Kind == xmldoc.KindElement && p.Name == "cost" {
				return false
			}
		}
		return true
	})
	if err := merkle.VerifyView(view2, proof2, summary, dir); err != nil {
		log.Fatalf("disclosed pruning rejected: %v", err)
	}
	fmt.Println("\ndisclosed pruning of product A2 verifies: completeness means no SILENT omission")
}
