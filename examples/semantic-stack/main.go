// The §5 layered secure semantic web, end to end: a secure channel at the
// bottom, XML views above it, semantic RDF protection with
// context-dependent declassification ("once the war is over"), ontology
// alignment checked for secure interoperation, and the flexible security
// policy dialing the whole stack between 30% and 100%.
package main

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"net"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/core"
	"webdbsec/internal/ontology"
	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/secchan"
	"webdbsec/internal/xmldoc"
)

func main() {
	// --- Layer 1: secure transport ---
	pub, priv, _ := ed25519.GenerateKey(nil)
	cConn, sConn := net.Pipe()
	go func() {
		ch, err := secchan.Server(sConn, priv)
		if err != nil {
			return
		}
		msg, _ := ch.Receive()
		ch.Send(append([]byte("ack: "), msg...))
	}()
	ch, err := secchan.Client(cConn, pub)
	if err != nil {
		log.Fatal(err)
	}
	ch.Send([]byte("hello over authenticated encrypted channel"))
	reply, _ := ch.Receive()
	fmt.Printf("layer 1 (secure transport): %s\n", reply)
	ch.Close()

	// --- Layer 2: secure XML ---
	store := xmldoc.NewStore()
	doc := xmldoc.MustParseString("ops.xml",
		`<ops><brief>daily brief</brief><plan codename="neptune">landing at dawn</plan></ops>`)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "brief-public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: "ops.xml", Path: "/ops/brief"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	xmlEngine := accessctl.NewEngine(store, base)

	// --- Layer 3: secure RDF with contexts ---
	triples := rdf.NewStore()
	plan := rdf.Triple{S: rdf.NewIRI("op-neptune"), P: rdf.NewIRI("targets"), O: rdf.NewIRI("objective-x")}
	triples.Add(plan)
	guard := rdf.NewGuard(triples)
	guard.AddClassRule(&rdf.ClassRule{
		Name:    "wartime-secrecy",
		Pattern: rdf.Pattern{S: rdf.T(rdf.NewIRI("op-neptune"))},
		Level:   rdf.Secret,
		Context: "wartime",
	})

	// --- Layer 4: ontologies and secure interoperation ---
	mil := ontology.New("military")
	mil.AddClass("Asset")
	mil.AddClass("OperationPlan", "Asset")
	mil.SetLevel("OperationPlan", rdf.Secret)
	civ := ontology.New("civilian")
	civ.AddClass("Document")
	med := ontology.NewMediator(mil, triples)

	stack := core.NewSemanticStack(xmlEngine, guard, med)
	analyst := rdf.NewClearance(&policy.Subject{ID: "analyst"}, rdf.Unclassified)

	// Full strength, wartime: the plan is invisible at low clearance.
	stack.SetStrength(100)
	guard.SetContext("wartime")
	fmt.Printf("\nlayer 3 (wartime, strength 100): analyst sees %d triple(s)\n",
		len(stack.RDFQuery(analyst, rdf.Pattern{})))

	// The war ends: context-dependent declassification (§5's example).
	guard.SetContext("peacetime")
	fmt.Printf("layer 3 (peacetime, declassified):  analyst sees %d triple(s)\n",
		len(stack.RDFQuery(analyst, rdf.Pattern{})))

	// Secure interoperation: mapping OperationPlan onto a civilian
	// "Document" concept would declassify — always rejected.
	align := ontology.NewAlignment(mil, civ)
	align.Map("OperationPlan", "Document")
	if err := stack.CheckInteroperation(align); err != nil {
		fmt.Printf("layer 4 (interoperation check): %v\n", err)
	}
	civ.AddClass("ClassifiedDocument", "Document")
	civ.SetLevel("ClassifiedDocument", rdf.Secret)
	align2 := ontology.NewAlignment(mil, civ)
	align2.Map("OperationPlan", "ClassifiedDocument")
	if err := stack.CheckInteroperation(align2); err == nil {
		fmt.Println("layer 4: level-preserving alignment accepted")
	}

	// --- The flexible security policy (§5) ---
	fmt.Println("\nflexible security policy sweep:")
	user := &policy.Subject{ID: "user"}
	_ = user
	for _, s := range []core.Strength{30, 70, 100} {
		stack.SetStrength(s)
		cfg := stack.Config()
		fmt.Printf("  strength %3d%%: transport=%v xml-views=%v credentials=%v rdf=%v inference=%v\n",
			s, cfg.EncryptTransport, cfg.EnforceXMLViews, cfg.VerifyCredentials,
			cfg.EnforceRDFLevels, cfg.InferenceControl)
	}

	// At 100%, an anonymous subject sees only the public brief.
	stack.SetStrength(100)
	v, err := stack.XMLView("ops.xml", &policy.Subject{ID: "anyone"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayer 2 (strength 100, anonymous subject): %s\n", v.Canonical())
}
