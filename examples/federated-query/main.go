// Secure database interoperation (§5): two autonomous hospitals — one
// civilian, one military (Secret) — federate their case tables under
// per-source export policies. Requestors at different clearances see
// different unions; unexported columns never cross the federation
// boundary, and the privacy controller gates what leaves toward the
// public.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"webdbsec/internal/federation"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/synth"
)

func main() {
	// Source 1: the civilian hospital exports patient+disease.
	cityDB := reldb.NewDatabase()
	if _, err := cityDB.Exec("CREATE TABLE cases (patient TEXT, zip TEXT, disease TEXT)"); err != nil {
		log.Fatal(err)
	}
	for _, p := range synth.People(1, 8) {
		cityDB.Exec(fmt.Sprintf("INSERT INTO cases VALUES ('%s', '%s', '%s')", p.Name, p.Zip, p.Disease))
	}
	city := federation.NewSource("city-hospital", cityDB, rdf.Unclassified)
	if err := city.ExportTable(&federation.Export{
		Virtual: "cases", Local: "cases", Columns: []string{"patient", "disease"},
	}); err != nil {
		log.Fatal(err)
	}

	// Source 2: the military hospital (Secret) uses a different local
	// schema name and exports only enlisted personnel.
	milDB := reldb.NewDatabase()
	milDB.Exec("CREATE TABLE mil_cases (patient TEXT, rank TEXT, disease TEXT)")
	milDB.Exec("INSERT INTO mil_cases VALUES ('sgt-harris', 'enlisted', 'flu')")
	milDB.Exec("INSERT INTO mil_cases VALUES ('gen-okafor', 'officer', 'asthma')")
	mil := federation.NewSource("military-hospital", milDB, rdf.Secret)
	pred := reldb.MustParse("SELECT * FROM mil_cases WHERE rank = 'enlisted'").(*reldb.SelectStmt).Where
	if err := mil.ExportTable(&federation.Export{
		Virtual: "cases", Local: "mil_cases", Columns: []string{"patient", "disease"}, Pred: pred,
	}); err != nil {
		log.Fatal(err)
	}

	fed := federation.New()
	if err := fed.AddSource(city); err != nil {
		log.Fatal(err)
	}
	if err := fed.AddSource(mil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation virtual tables: %v\n\n", fed.VirtualTables())

	// Autonomous sources can be slow or down: bound each source's share
	// of a query so one stalled member cannot sink the federation.
	fed.SetPerSourceTimeout(250 * time.Millisecond)

	show := func(label string, req *federation.Requestor, q string) *federation.Result {
		res, err := fed.Query(context.Background(), req, q)
		if err != nil {
			fmt.Printf("%s: REFUSED: %v\n\n", label, err)
			return nil
		}
		fmt.Printf("%s (%d rows):\n", label, len(res.Rows))
		for _, r := range res.Rows {
			fmt.Printf("  %-18s %-14s %s\n", r[0].S, r[1].S, r[2].S)
		}
		for _, fe := range res.Failed {
			fmt.Printf("  [degraded] %s: %v\n", fe.Source, fe.Err)
		}
		fmt.Println()
		return res
	}

	lowReq := &federation.Requestor{Subject: &policy.Subject{ID: "journalist"}, Clearance: rdf.Unclassified}
	highReq := &federation.Requestor{Subject: &policy.Subject{ID: "army-doc"}, Clearance: rdf.Secret}

	show("journalist (unclassified clearance)", lowReq, "SELECT patient, disease FROM cases")
	res := show("army doctor (secret clearance)", highReq, "SELECT patient, disease FROM cases")

	// The officer's row never left the military source — its export
	// predicate ran inside the source.
	for _, r := range res.Rows {
		if r[1].S == "gen-okafor" {
			log.Fatal("export policy violated")
		}
	}
	fmt.Println("officer row never crossed the federation boundary (export predicate)")

	// Unexported columns are refused outright.
	if _, err := fed.Query(context.Background(), highReq, "SELECT rank FROM cases"); err != nil {
		fmt.Printf("unexported column refused: %v\n\n", err)
	}

	// Degradation: take the military source down and query again — the
	// federation answers from the healthy member, with the failure
	// recorded in the provenance instead of sinking the query.
	dead := faultinject.New(faultinject.Always(faultinject.Error))
	mil.SetExec(func(ctx context.Context, sel *reldb.SelectStmt) (*reldb.Result, error) {
		if err := dead.Gate(ctx); err != nil {
			return nil, err
		}
		return nil, nil
	})
	show("army doctor, military source down (partial result)", highReq, "SELECT patient, disease FROM cases")
	mil.SetExec(nil)

	// Privacy constraints still apply before anything goes public: the
	// {patient, disease} combination is private.
	pc := privacy.NewController()
	pc.Add(&privacy.Constraint{Name: "pd", Attrs: []string{"patient", "disease"}, Class: privacy.Private})
	masked := pc.FilterResult(lowReq.Subject, res.Result)
	fmt.Printf("privacy controller masked %v before public release; first row now: %v\n",
		masked, res.Rows[0])
}
