// Quickstart: protect an XML document with Author-X style policies,
// qualify subjects by identity, role and signed credential, and compute
// each subject's authorized view — the core §3.1/§3.2 workflow.
package main

import (
	"fmt"
	"log"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
	"webdbsec/internal/xquery"
)

const records = `
<hospital>
  <patient id="p1" ward="3">
    <name>Alice</name>
    <ssn>111-22-3333</ssn>
    <diagnosis severity="high">flu</diagnosis>
  </patient>
  <patient id="p2" ward="5">
    <name>Bob</name>
    <ssn>444-55-6666</ssn>
    <diagnosis severity="low">cold</diagnosis>
  </patient>
  <stats>2 admissions this week</stats>
</hospital>`

func main() {
	// 1. A document store with one document.
	store := xmldoc.NewStore()
	doc, err := xmldoc.ParseString("records.xml", records)
	if err != nil {
		log.Fatal(err)
	}
	store.Put(doc)

	// 2. A credential authority issues ward-scoped physician credentials;
	// the policy base trusts it.
	ca, err := credential.NewAuthority("hospital-ca")
	if err != nil {
		log.Fatal(err)
	}
	verifier := credential.NewVerifier()
	verifier.TrustAuthority(ca)

	// 3. Policies: stats are public; staff read everything except SSNs;
	// ward-3 physicians (by credential) also read ward-3 SSNs.
	base := policy.NewBase(verifier)
	base.MustAdd(&policy.Policy{
		Name:    "stats-public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/stats"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "staff-read",
		Subject: policy.SubjectSpec{Roles: []string{"staff"}},
		Object:  policy.ObjectSpec{Doc: "records.xml"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "ssn-hidden",
		Subject: policy.SubjectSpec{Roles: []string{"staff"}},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "//ssn"},
		Priv:    policy.Read, Sign: policy.Deny, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "ward3-physician-ssn",
		Subject: policy.SubjectSpec{CredExpr: credential.MustCompile("physician.ward = '3'")},
		Object:  policy.ObjectSpec{Doc: "records.xml", Path: "/hospital/patient[@ward='3']/ssn"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})

	engine := accessctl.NewEngine(store, base)

	// 4. Three subjects.
	visitor := &policy.Subject{ID: "visitor"}
	nurse := &policy.Subject{ID: "nina", Roles: []string{"staff"}}
	wallet := credential.NewWallet("drho")
	if err := wallet.Add(ca.Issue("physician", "drho", map[string]string{"ward": "3"})); err != nil {
		log.Fatal(err)
	}
	physician := &policy.Subject{ID: "drho", Roles: []string{"staff"}, Wallet: wallet}

	for _, s := range []*policy.Subject{visitor, nurse, physician} {
		fmt.Printf("--- view for %s ---\n", s.ID)
		v := engine.View("records.xml", s, policy.Read)
		if v == nil {
			fmt.Println("(no access)")
			continue
		}
		fmt.Println(v.Canonical())
	}

	// 5. Queries run against the subject's VIEW, never the raw document:
	// the nurse's query cannot touch SSNs however it is phrased.
	q := xquery.MustCompile(
		`FOR $p IN //patient WHERE $p/@ward = '3' RETURN $p/name, $p/ssn, $p/diagnosis`)
	fmt.Println("--- FLWOR query as nurse (ssn column stays empty) ---")
	for _, row := range q.SecureEval(engine, "records.xml", nurse) {
		fmt.Printf("name=%q ssn=%q diagnosis=%q\n", row[0], row[1], row[2])
	}
	fmt.Println("--- same query as ward-3 physician ---")
	for _, row := range q.SecureEval(engine, "records.xml", physician) {
		fmt.Printf("name=%q ssn=%q diagnosis=%q\n", row[0], row[1], row[2])
	}

	// 6. Point decisions.
	fmt.Println("--- point checks ---")
	for _, check := range []struct {
		who  *policy.Subject
		path string
	}{
		{visitor, "/hospital/stats"},
		{visitor, "/hospital/patient"},
		{nurse, "/hospital/patient/name"},
		{nurse, "/hospital/patient/ssn"},
		{physician, "/hospital/patient[@ward='3']/ssn"},
		{physician, "/hospital/patient[@ward='5']/ssn"},
	} {
		ok := engine.Check("records.xml", check.path, check.who, policy.Read)
		fmt.Printf("%-8s read %-40s -> %v\n", check.who.ID, check.path, ok)
	}
}
