// Third-party UDDI over the wire (§2.2, §4.1): a provider signs its
// registry entry, an untrusted discovery agency serves it over HTTP with
// policy-based pruning and Merkle proofs, and two requestors — a visitor
// and a partner — fetch and verify different views through the WSA
// envelope protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"webdbsec/internal/policy"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsa"
	"webdbsec/internal/wsig"
)

func main() {
	// The provider and its signed entry.
	prov, err := uddi.NewProvider("acme-provider")
	if err != nil {
		log.Fatal(err)
	}
	entity := &uddi.BusinessEntity{
		BusinessKey: "be-acme",
		Name:        "Acme Logistics",
		Description: "Shipping services",
		Services: []uddi.BusinessService{{
			ServiceKey: "svc-ship",
			Name:       "shipping",
			Bindings: []uddi.BindingTemplate{{
				BindingKey:  "bind-1",
				AccessPoint: "https://acme.example/ship",
				TModelKeys:  []string{"tm-soap"},
			}},
		}},
	}
	entry, err := prov.Sign(entity)
	if err != nil {
		log.Fatal(err)
	}

	// The discovery agency: untrusted, enforcing the provider's policies —
	// binding templates only for partners.
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "entry-public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: uddi.DocName("be-acme")},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "bindings-partners-only",
		Subject: policy.SubjectSpec{NotRoles: []string{"partner"}},
		Object:  policy.ObjectSpec{Doc: uddi.DocName("be-acme"), Path: "//bindingTemplate"},
		Priv:    policy.Read, Sign: policy.Deny, Prop: policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	if err := agency.Publish(entry); err != nil {
		log.Fatal(err)
	}

	// Serve the agency over HTTP (httptest keeps the example
	// self-contained; cmd/uddiserver is the standalone binary).
	server := httptest.NewServer(&wsa.RegistryServer{Registry: uddi.NewRegistry(nil), Agency: agency})
	defer server.Close()
	fmt.Printf("untrusted discovery agency serving at %s\n\n", server.URL)

	// Requestors trust only the provider's key, never the agency.
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, who := range []struct {
		name  string
		roles []string
	}{
		{"visitor", nil},
		{"partner-corp", []string{"partner"}},
	} {
		client := &wsa.Client{Endpoint: server.URL, Sender: who.name, Roles: who.roles}
		res, err := client.QueryAuthenticated(ctx, "be-acme", dir)
		if err != nil {
			log.Fatalf("%s: %v", who.name, err)
		}
		fmt.Printf("--- %s fetched and VERIFIED (aux hashes: %d) ---\n%s\n\n",
			who.name, res.Proof.NumAuxHashes(), res.View.Canonical())
	}

	// A requestor that trusts nobody rejects the answer outright.
	skeptic := &wsa.Client{Endpoint: server.URL, Sender: "skeptic"}
	if _, err := skeptic.QueryAuthenticated(ctx, "be-acme", wsig.NewKeyDirectory()); err != nil {
		fmt.Printf("requestor with empty key directory correctly rejects: %v\n", err)
	} else {
		log.Fatal("unverifiable answer accepted")
	}
}
