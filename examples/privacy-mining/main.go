// Privacy-preserving data mining (§3.3): three ways to mine the same
// market baskets — exact (no privacy), randomized (Agrawal–Srikant-style,
// each individual's bits are flipped before leaving them), and multiparty
// (Clifton-style secure sum across hospitals that won't share raw data).
// The privacy controller then decides which mined patterns each requestor
// may see.
package main

import (
	"fmt"
	"log"

	"webdbsec/internal/mining"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/synth"
)

func main() {
	const items = 40
	baskets := synth.NewBaskets(42, 10000, items, 5)
	fmt.Printf("synthetic data: %d baskets, %d items, planted sets %v\n\n",
		len(baskets.Data), items, baskets.Planted)

	// 1. Exact mining — the non-private baseline.
	truth := mining.Apriori(baskets.Data, 0.15, 2)
	fmt.Printf("exact mining: %d frequent itemsets at support 0.15\n", len(truth))

	// 2. Randomization: individuals flip each bit with probability 1-p
	// before contributing; the miner inverts the distortion statistically.
	fmt.Println("\nrandomized (per-individual) mining, support estimates vs truth:")
	fmt.Printf("  %-6s %-10s %-10s %-12s\n", "p", "precision", "recall", "support-err")
	for _, p := range []float64{0.95, 0.85, 0.70, 0.60} {
		rdz := mining.Randomize(baskets.Data, items, p, 7)
		got, err := mining.PrivateApriori(rdz, items, p, 0.15, 2)
		if err != nil {
			log.Fatal(err)
		}
		q := mining.CompareMinings(truth, got)
		fmt.Printf("  %-6.2f %-10.3f %-10.3f %-12.4f\n", p, q.Precision, q.Recall, q.MeanSupportErr)
	}
	fmt.Println("  (privacy grows as p -> 0.5; accuracy grows as p -> 1)")

	// 3. Multiparty: three hospitals hold horizontal partitions; secure
	// sums reveal only the global counts.
	third := len(baskets.Data) / 3
	parties := []*mining.Party{
		mining.NewParty("hospital-a", baskets.Data[:third]),
		mining.NewParty("hospital-b", baskets.Data[third:2*third]),
		mining.NewParty("hospital-c", baskets.Data[2*third:]),
	}
	multi, err := mining.MultipartyApriori(parties, 0.15, 2)
	if err != nil {
		log.Fatal(err)
	}
	exactMatch := len(multi) == len(truth)
	fmt.Printf("\nmultiparty mining across 3 parties: %d itemsets, identical to centralized: %v\n",
		len(multi), exactMatch)
	tr := &mining.SecureSumTranscript{}
	if _, err := mining.SecureSum(parties, []int{0, 1}, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure-sum wire values for {0,1} (masked, reveal nothing): %v\n", tr.Messages)

	// 4. The privacy controller gates what each requestor sees. Items 0-4
	// model sensitive attributes.
	names := make([]string, items)
	for i := range names {
		names[i] = fmt.Sprintf("item%d", i)
	}
	names[0], names[1] = "name", "disease"
	pc := privacy.NewController()
	pc.Add(&privacy.Constraint{
		Name: "name-disease", Attrs: []string{"name", "disease"}, Class: privacy.Private,
	})
	pc.Add(&privacy.Constraint{
		Name: "disease-semi", Attrs: []string{"disease"},
		Class: privacy.SemiPrivate, NeedToKnow: []string{"researcher"},
	})
	itemName := func(i int) string { return names[i] }

	public := &policy.Subject{ID: "public"}
	researcher := &policy.Subject{ID: "res", Roles: []string{"researcher"}}
	for _, s := range []*policy.Subject{public, researcher} {
		rel, withheld := pc.ReleasePatterns(s, truth, itemName)
		fmt.Printf("\nrelease to %-10s: %d patterns released, %d withheld\n", s.ID, len(rel), len(withheld))
		for _, w := range withheld {
			attrs := make([]string, len(w.Items))
			for i, it := range w.Items {
				attrs[i] = itemName(it)
			}
			fmt.Printf("  withheld: %v (sup %.3f)\n", attrs, w.Support)
		}
	}
}
