// Command xq runs a FLWOR query (internal/xquery) against an XML file,
// optionally through an access control policy so the query sees only an
// authorized view.
//
// Usage:
//
//	xq -file records.xml "FOR $p IN //patient RETURN $p/name"
//	xq -file records.xml -subject nina -roles staff \
//	   -permit "//patient" "FOR $p IN //patient RETURN $p/name"
//
// With -permit, a single cascade read policy for the given subject/roles
// is installed on the given path and the query runs over the resulting
// view — a command-line demonstration of query-over-view semantics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
	"webdbsec/internal/xquery"
)

func main() {
	file := flag.String("file", "", "XML file to query")
	subject := flag.String("subject", "", "subject id (enables policy mode)")
	roles := flag.String("roles", "", "comma-separated subject roles")
	permit := flag.String("permit", "", "path the subject may read (cascade)")
	flag.Parse()
	if *file == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xq -file doc.xml [-subject id -permit path] 'FOR $x IN ... RETURN ...'")
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	doc, err := xmldoc.Parse(*file, f)
	if err != nil {
		log.Fatal(err)
	}
	q, err := xquery.Compile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	var rows []xquery.Row
	if *subject != "" {
		if *permit == "" {
			log.Fatal("xq: -subject needs -permit")
		}
		store := xmldoc.NewStore()
		store.Put(doc)
		base := policy.NewBase(nil)
		p := &policy.Policy{
			Name:    "cli-permit",
			Subject: policy.SubjectSpec{IDs: []string{*subject}},
			Object:  policy.ObjectSpec{Doc: doc.Name, Path: *permit},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		}
		if err := base.Add(p); err != nil {
			log.Fatal(err)
		}
		engine := accessctl.NewEngine(store, base)
		s := &policy.Subject{ID: *subject}
		if *roles != "" {
			s.Roles = strings.Split(*roles, ",")
		}
		rows = q.SecureEval(engine, doc.Name, s)
	} else {
		rows = q.Eval(doc)
	}
	for _, r := range rows {
		fmt.Println(strings.Join(r, "\t"))
	}
}
