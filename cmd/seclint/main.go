// Command seclint is the repo's security/durability vettool: a
// go/analysis-style suite that machine-checks the invariants the code
// otherwise enforces only by review — mutex discipline on annotated
// fields (guardedby), never-dropped durability verdicts (verdictcheck),
// context plumbing on service-layer I/O (ctxio), access-control gating
// of data-path entry points (gatecheck), and the annotation grammar
// itself (annotcheck).
//
// Run it through the go toolchain so it sees compiled export data:
//
//	go build -o bin/seclint ./cmd/seclint
//	go vet -vettool=$(pwd)/bin/seclint ./...
//
// or let `make lint` (part of `make check`) do both. Invoking the binary
// with package patterns re-executes go vet for you: `bin/seclint ./...`.
package main

import (
	"webdbsec/internal/analysis/seclint"
	"webdbsec/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(seclint.Analyzers()...)
}
