// Command seclint is the repo's security/durability vettool: a
// go/analysis-style suite that machine-checks the invariants the code
// otherwise enforces only by review — mutex discipline on annotated
// fields (guardedby), never-dropped durability verdicts (verdictcheck),
// context plumbing on service-layer I/O (ctxio), access-control gating
// of data-path entry points (gatecheck), the annotation grammar itself
// (annotcheck), and two interprocedural taint analyses: web input must
// be parsed before it is executed (taintflow) and secrets must be
// redacted before they are logged (leakcheck).
//
// Run it through the go toolchain so it sees compiled export data:
//
//	go build -o bin/seclint ./cmd/seclint
//	go vet -vettool=$(pwd)/bin/seclint ./...
//
// or let `make lint` (part of `make check`) do both. Invoking the binary
// with package patterns re-executes go vet for you: `bin/seclint ./...`,
// and `bin/seclint -json ./...` emits one JSON finding per line on
// stdout for editors and CI.
package main

import (
	"webdbsec/internal/analysis/seclint"
	"webdbsec/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(seclint.Analyzers()...)
}
