package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/credential"
	"webdbsec/internal/decisioncache"
	"webdbsec/internal/policy"
	"webdbsec/internal/synth"
	"webdbsec/internal/xmldoc"
)

// e17Engine builds the E1-style workload (hospital document, n role-keyed
// policies) and returns the plain engine plus the repeat subject.
func e17Engine(n int) (*accessctl.Engine, *policy.Subject) {
	store := xmldoc.NewStore()
	doc := synth.Hospital(1, 50)
	store.Put(doc)
	base := policy.NewBase(nil)
	for i := 0; i < n; i++ {
		base.MustAdd(&policy.Policy{
			Name:    fmt.Sprintf("p%d", i),
			Subject: policy.SubjectSpec{Roles: []string{fmt.Sprintf("role%d", i%10)}},
			Object:  policy.ObjectSpec{Doc: doc.Name, Path: fmt.Sprintf("/hospital/patient[@ward='%d']", i%8)},
			Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
		})
	}
	w := credential.NewWallet("user7")
	w.Add(&credential.Credential{Type: "staff", Subject: "user7", Attrs: map[string]string{"ward": "3"}})
	return accessctl.NewEngine(store, base), &policy.Subject{ID: "user7", Roles: []string{"role3"}, Wallet: w}
}

// e17Measurement is one policy-count row of the E17 experiment.
type e17Measurement struct {
	Policies    int     `json:"policies"`
	UncachedNs  int64   `json:"uncached_ns"`
	ColdNs      int64   `json:"cold_ns"`
	WarmNs      int64   `json:"warm_ns"`
	Speedup     float64 `json:"speedup_warm_vs_uncached"`
	ZipfHitRate float64 `json:"zipf_hit_rate"`
}

// e17Measure produces the row for one policy count: uncached decision
// latency, cold-miss latency (unique subject per request), warm-hit
// latency (one subject repeating), and the labels-cache hit rate under a
// Zipf subject mix an order of magnitude larger than the cache.
func e17Measure(n int) e17Measurement {
	eng, s := e17Engine(n)
	doc, _ := eng.Store().Get("hospital-50.xml")

	uncached := measure(20, func() { eng.Labels(doc, s, policy.Read) })

	coldEng := decisioncache.NewEngine(e17EngineOnly(n), 1<<17)
	coldDoc, _ := coldEng.Store().Get("hospital-50.xml")
	i := 0
	cold := measure(20, func() {
		coldEng.Labels(coldDoc, &policy.Subject{ID: fmt.Sprintf("u%d", i), Roles: []string{"role3"}}, policy.Read)
		i++
	})

	warmEng := decisioncache.NewEngine(e17EngineOnly(n), 1<<16)
	warmDoc, _ := warmEng.Store().Get("hospital-50.xml")
	warmEng.Labels(warmDoc, s, policy.Read)
	warm := measure(1000, func() { warmEng.Labels(warmDoc, s, policy.Read) })

	zipfEng := decisioncache.NewEngine(e17EngineOnly(n), 1024)
	zipfDoc, _ := zipfEng.Store().Get("hospital-50.xml")
	const nSubjects = 10000
	subjects := make([]*policy.Subject, nSubjects)
	for i := range subjects {
		subjects[i] = &policy.Subject{ID: fmt.Sprintf("user%d", i), Roles: []string{fmt.Sprintf("role%d", i%10)}}
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(17)), 1.3, 1, nSubjects-1)
	for i := 0; i < 1<<15; i++ {
		zipfEng.Labels(zipfDoc, subjects[zipf.Uint64()], policy.Read)
	}
	hitRate := zipfEng.Stats().Labels.HitRate()

	return e17Measurement{
		Policies:    n,
		UncachedNs:  uncached.Nanoseconds(),
		ColdNs:      cold.Nanoseconds(),
		WarmNs:      warm.Nanoseconds(),
		Speedup:     float64(uncached.Nanoseconds()) / float64(warm.Nanoseconds()),
		ZipfHitRate: hitRate,
	}
}

func e17EngineOnly(n int) *accessctl.Engine {
	eng, _ := e17Engine(n)
	return eng
}

func runE17(quick bool) {
	counts := []int{10, 100, 1000}
	if quick {
		counts = []int{10, 100}
	}
	t := &table{header: []string{"policies", "uncached", "cold-miss", "warm-hit", "speedup", "zipf-hit-rate"}}
	for _, n := range counts {
		m := e17Measure(n)
		t.add(fmt.Sprint(n),
			dur(time.Duration(m.UncachedNs)),
			dur(time.Duration(m.ColdNs)),
			dur(time.Duration(m.WarmNs)),
			fmt.Sprintf("%.0fx", m.Speedup),
			fmt.Sprintf("%.2f", m.ZipfHitRate))
	}
	t.print()
}

// snapshot is the before/after record -snapshot writes: "before" is the
// uncached pipeline this PR started from, "after" the cached one.
type snapshot struct {
	Experiment  string           `json:"experiment"`
	Description string           `json:"description"`
	Rows        []e17Measurement `json:"rows"`
}

// writeSnapshot measures E17 and writes the JSON record to path.
func writeSnapshot(path string, quick bool) error {
	counts := []int{10, 100, 1000}
	if quick {
		counts = []int{10, 100}
	}
	snap := snapshot{
		Experiment:  "E17",
		Description: "decision latency before (uncached_ns) and after (warm_ns) the decision cache; cold_ns bounds the miss overhead",
	}
	for _, n := range counts {
		snap.Rows = append(snap.Rows, e17Measure(n))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
