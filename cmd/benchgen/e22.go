package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/core"
	"webdbsec/internal/credential"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/policy"
	"webdbsec/internal/reldb"
	"webdbsec/internal/sysr"
)

// E22 measures the stateless-token fast path (PR 9) over the real HTTP
// surface: the securedb-shaped /query endpoint behind an
// authtoken.Service, driven by concurrent clients. Three auth regimes
// per concurrency level:
//
//   - wallet: every request presents a DISTINCT pre-generated wallet
//     (24 credentials each) and no token — the full slow path, one
//     complete credential evaluation plus the MintGate decision per
//     request. Distinct wallets are the honest baseline: reusing one
//     would hand the slow path PR 9's memoized-verification satellite
//     and erase the cost being measured.
//   - token: each client runs the explicit mint once, then rides the
//     fast path, presenting the rolling successor on every hop — one
//     Ed25519 verification plus a successor signature per request.
//   - memoized wallet: one shared wallet re-presented every request,
//     reported separately — the satellite's best case, sitting between
//     the two.
//
// A replay pass then re-presents consumed tokens and reports the
// verifier's replay-reject accounting.

// e22Row is one concurrency level's measurements.
type e22Row struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests_per_path"`
	WalletP50US    float64 `json:"wallet_p50_us"`
	WalletP99US    float64 `json:"wallet_p99_us"`
	WalletReqSec   float64 `json:"wallet_reqs_per_sec"`
	TokenP50US     float64 `json:"token_p50_us"`
	TokenP99US     float64 `json:"token_p99_us"`
	TokenReqSec    float64 `json:"token_reqs_per_sec"`
	MemoP50US      float64 `json:"memo_wallet_p50_us"`
	P50Speedup     float64 `json:"token_vs_wallet_p50_speedup"`
	MintPerSec     float64 `json:"mints_per_sec_token_run"`
	FastPathRate   float64 `json:"fast_path_hit_rate"`
	MemoHits       uint64  `json:"credential_memo_hits"`
	MemoMisses     uint64  `json:"credential_memo_misses"`
	ReplayEntries  int     `json:"replay_cache_entries_after_token_run"`
	ReplayEvicts   uint64  `json:"replay_cache_evictions"`
	ReplayRejects  uint64  `json:"replay_rejects"`
	ReplayAttempts int     `json:"replay_attempts"`
}

// e22CredsPerWallet is the wallet breadth: every slow-path request
// re-verifies this many Ed25519 credential signatures, exactly what the
// token's single verification replaces. 24 models a federated subject —
// role, clearance and attribute credentials from several authorities.
const e22CredsPerWallet = 24

// e22MintGate is the benchmark's policy decision: the System R catalog
// the /query pipeline itself consults.
type e22MintGate struct{ w *core.SecureWebDB }

func (g e22MintGate) AllowMint(s *policy.Subject) bool {
	return g.w.DB().Grants().HasPrivilege(s.ID, sysr.Select, "patients")
}

// e22Env is one freshly-built serving stack: SecureWebDB demo schema,
// token service, HTTP server, and the credential authority that issues
// the client wallets.
type e22Env struct {
	ts   *httptest.Server
	svc  *authtoken.Service
	cv   *credential.Verifier
	auth *credential.Authority
}

func e22NewEnv(rows int, ttl time.Duration) (*e22Env, error) {
	w := core.NewSecureWebDB(core.Config{})
	dba := &policy.Subject{ID: "dba"}
	if err := w.DB().CreateTable(dba, "CREATE TABLE patients (name TEXT, zip TEXT, age INT, disease TEXT)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf("INSERT INTO patients VALUES ('p%d', '9%04d', %d, 'none')", i, i%100, 20+i%60)
		if _, err := w.DB().Exec(dba, stmt); err != nil {
			return nil, err
		}
	}
	if err := w.DB().Grants().Grant("dba", "ana", sysr.Select, "patients", false); err != nil {
		return nil, err
	}
	pred := reldb.MustParse("SELECT * FROM patients WHERE age >= 0").(*reldb.SelectStmt).Where
	if err := w.DB().AddRowPolicy(&reldb.RowPolicy{
		Name: "analysts-see-all", Table: "patients",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}}, Pred: pred,
	}); err != nil {
		return nil, err
	}

	auth, err := credential.NewAuthority("bench-ca")
	if err != nil {
		return nil, err
	}
	cv := credential.NewVerifier()
	cv.TrustAuthority(auth)
	ring, err := keymgmt.NewMintKeyring(2)
	if err != nil {
		return nil, err
	}
	minter, err := authtoken.NewMinter(ring, cv, e22MintGate{w: w}, ttl)
	if err != nil {
		return nil, err
	}
	svc := &authtoken.Service{Gate: &authtoken.Gate{
		Verifier: authtoken.NewVerifier(ring, ttl, 0, 0),
		Minter:   minter,
	}}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(rw http.ResponseWriter, r *http.Request) {
		subj, ok := svc.Authorize(rw, r)
		if !ok {
			return
		}
		out, err := w.Query(subj, r.FormValue("sql"))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusForbidden)
			return
		}
		fmt.Fprintln(rw, len(out.Result.Rows))
	})
	mux.HandleFunc("/token", svc.MintHandler())
	return &e22Env{ts: httptest.NewServer(mux), svc: svc, cv: cv, auth: auth}, nil
}

// e22Wallet issues a wallet of e22CredsPerWallet distinct credentials
// for subject ana; the serial makes every wallet's fingerprint unique.
func e22Wallet(auth *credential.Authority, serial int) (*credential.Wallet, error) {
	w := credential.NewWallet("ana")
	for c := 0; c < e22CredsPerWallet; c++ {
		cred := auth.Issue("analyst", "ana", map[string]string{
			"serial": fmt.Sprintf("%d-%d", serial, c),
		})
		if err := w.Add(cred); err != nil {
			return nil, err
		}
	}
	return w, nil
}

const e22SQL = "SELECT age FROM patients"

// e22Post issues one /query and returns its latency plus the successor
// token header (empty when none).
func e22Post(client *http.Client, baseURL, wallet, token string) (time.Duration, string, error) {
	form := url.Values{"subject": {"ana"}, "roles": {"analyst"}, "sql": {e22SQL}}
	if wallet != "" {
		form.Set("wallet", wallet)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/query", strings.NewReader(form.Encode()))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if token != "" {
		req.Header.Set(authtoken.TokenHeader, token)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	lat := time.Since(t0)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("query: status %d", resp.StatusCode)
	}
	return lat, resp.Header.Get(authtoken.TokenHeader), nil
}

func e22Mint(client *http.Client, baseURL string) (string, error) {
	resp, err := client.PostForm(baseURL+"/token", url.Values{"subject": {"ana"}, "roles": {"analyst"}})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("mint: status %d", resp.StatusCode)
	}
	var mr authtoken.MintResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return "", err
	}
	return mr.Token, nil
}

// e22Run drives clients workers, perClient requests each, through fn
// (which issues one request for worker w, request i and returns its
// latency). Returns sorted latencies and the wall-clock elapsed.
func e22Run(clients, perClient int, fn func(w, i int, c *http.Client) (time.Duration, error)) ([]time.Duration, time.Duration, error) {
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < clients; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			c := &http.Client{}
			for i := 0; i < perClient; i++ {
				lat, err := fn(wk, i, c)
				if err != nil {
					errs[wk] = err
					return
				}
				lats[wk] = append(lats[wk], lat)
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, elapsed, nil
}

func e22Pct(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(p*float64(len(sorted)-1))].Nanoseconds()) / 1e3
}

// e22Round measures one concurrency level on a fresh environment.
func e22Round(clients, perClient, replays int) (e22Row, error) {
	env, err := e22NewEnv(24, time.Minute)
	if err != nil {
		return e22Row{}, err
	}
	defer env.ts.Close()

	// Slow path: one unique wallet per request, pre-generated and
	// pre-encoded so issuance and encoding stay out of the measurement.
	wallets := make([]string, clients*perClient)
	for i := range wallets {
		w, err := e22Wallet(env.auth, i)
		if err != nil {
			return e22Row{}, err
		}
		if wallets[i], err = authtoken.EncodeWallet(w); err != nil {
			return e22Row{}, err
		}
	}
	walletLats, walletWall, err := e22Run(clients, perClient, func(w, i int, c *http.Client) (time.Duration, error) {
		lat, _, err := e22Post(c, env.ts.URL, wallets[w*perClient+i], "")
		return lat, err
	})
	if err != nil {
		return e22Row{}, err
	}
	memoHits, memoMisses := env.cv.MemoStats()

	// Memoized slow path: one shared wallet, every request after the
	// first per worker a memo hit.
	shared, err := e22Wallet(env.auth, -1)
	if err != nil {
		return e22Row{}, err
	}
	sharedEnc, err := authtoken.EncodeWallet(shared)
	if err != nil {
		return e22Row{}, err
	}
	memoLats, _, err := e22Run(clients, perClient, func(w, i int, c *http.Client) (time.Duration, error) {
		lat, _, err := e22Post(c, env.ts.URL, sharedEnc, "")
		return lat, err
	})
	if err != nil {
		return e22Row{}, err
	}

	// Fast path: mint once per client, then ride the rolling token. The
	// last token per client is kept for the replay pass.
	mintedBefore := env.svc.Gate.Stats().Mint.Minted
	lastTok := make([]string, clients)
	tokenLats, tokenWall, err := e22Run(clients, perClient, func(w, i int, c *http.Client) (time.Duration, error) {
		if lastTok[w] == "" {
			tok, err := e22Mint(c, env.ts.URL)
			if err != nil {
				return 0, err
			}
			lastTok[w] = tok
		}
		lat, next, err := e22Post(c, env.ts.URL, "", lastTok[w])
		if err != nil {
			return 0, err
		}
		if next == "" {
			return 0, fmt.Errorf("no successor token on fast path")
		}
		lastTok[w] = next
		return lat, nil
	})
	if err != nil {
		return e22Row{}, err
	}
	mintRate := float64(env.svc.Gate.Stats().Mint.Minted-mintedBefore) / tokenWall.Seconds()

	// Replay pass: burn each client's live token once, then re-present
	// it; every re-presentation must be rejected by the replay cache.
	replayedBefore := env.svc.Gate.Verifier.Stats().Replayed
	client := &http.Client{}
	attempts := 0
	for w := 0; w < clients && attempts < replays; w++ {
		if _, _, err := e22Post(client, env.ts.URL, "", lastTok[w]); err != nil {
			return e22Row{}, err
		}
		for r := 0; r < replays/clients+1 && attempts < replays; r++ {
			form := url.Values{"subject": {"ana"}, "roles": {"analyst"}, "sql": {e22SQL}}
			req, _ := http.NewRequest(http.MethodPost, env.ts.URL+"/query", strings.NewReader(form.Encode()))
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			req.Header.Set(authtoken.TokenHeader, lastTok[w])
			resp, err := client.Do(req)
			if err != nil {
				return e22Row{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				return e22Row{}, fmt.Errorf("replayed token: status %d, want 401", resp.StatusCode)
			}
			attempts++
		}
	}

	st := env.svc.Gate.Stats()
	row := e22Row{
		Clients:     clients,
		Requests:    clients * perClient,
		WalletP50US: e22Pct(walletLats, 0.50), WalletP99US: e22Pct(walletLats, 0.99),
		WalletReqSec: float64(len(walletLats)) / walletWall.Seconds(),
		TokenP50US:   e22Pct(tokenLats, 0.50), TokenP99US: e22Pct(tokenLats, 0.99),
		TokenReqSec:  float64(len(tokenLats)) / tokenWall.Seconds(),
		MemoP50US:    e22Pct(memoLats, 0.50),
		MintPerSec:   mintRate,
		FastPathRate: st.FastPathHitRate,
		MemoHits:     memoHits, MemoMisses: memoMisses,
		ReplayEntries: st.Verifier.ReplayEntries, ReplayEvicts: st.Verifier.ReplayEvictions,
		ReplayRejects: st.Verifier.Replayed - replayedBefore, ReplayAttempts: attempts,
	}
	if row.TokenP50US > 0 {
		row.P50Speedup = row.WalletP50US / row.TokenP50US
	}
	return row, nil
}

func e22Rows(quick bool) ([]e22Row, error) {
	type level struct{ clients, perClient int }
	levels := []level{{1, 120}, {16, 40}, {64, 16}}
	replays := 48
	if quick {
		levels = []level{{1, 40}, {16, 12}}
		replays = 16
	}
	var rows []e22Row
	for _, l := range levels {
		row, err := e22Round(l.clients, l.perClient, replays)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE22(quick bool) {
	rows, err := e22Rows(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E22: %v\n", err)
		return
	}
	t := &table{header: []string{"clients", "wallet p50", "wallet p99", "memo p50", "token p50", "token p99", "p50 speedup", "token req/s", "mints/s", "fast-path rate", "replay rejects"}}
	for _, r := range rows {
		t.add(fmt.Sprint(r.Clients),
			dur(time.Duration(r.WalletP50US*1e3)), dur(time.Duration(r.WalletP99US*1e3)),
			dur(time.Duration(r.MemoP50US*1e3)),
			dur(time.Duration(r.TokenP50US*1e3)), dur(time.Duration(r.TokenP99US*1e3)),
			fmt.Sprintf("%.1fx", r.P50Speedup),
			fmt.Sprintf("%.0f", r.TokenReqSec), fmt.Sprintf("%.0f", r.MintPerSec),
			fmt.Sprintf("%.2f", r.FastPathRate),
			fmt.Sprintf("%d/%d", r.ReplayRejects, r.ReplayAttempts))
	}
	t.print()
}

// e22Snapshot is the record -snapshot -run E22 writes (BENCH_PR9.json).
type e22Snapshot struct {
	Experiment  string   `json:"experiment"`
	Description string   `json:"description"`
	Rows        []e22Row `json:"rows"`
}

// writeSnapshotE22 measures E22 and writes the JSON record to path.
func writeSnapshotE22(path string, quick bool) error {
	rows, err := e22Rows(quick)
	if err != nil {
		return err
	}
	snap := e22Snapshot{
		Experiment:  "E22",
		Description: "Stateless Ed25519 token fast path over HTTP: per-request full wallet evaluation (24 distinct credentials) vs memoized wallet vs single-verification rolling tokens, with mint rate, fast-path hit rate and replay-cache rejects",
		Rows:        rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
