// Command benchgen runs the synthetic experiment suite (DESIGN.md, E1–E14)
// and prints one table per experiment — the rows recorded in
// EXPERIMENTS.md. Unlike the testing.B benchmarks (which measure time),
// benchgen also reports the quality metrics: mining precision/recall under
// randomization, auxiliary-hash counts of Merkle proofs, inference
// block rates, auction throughput under contention.
//
// Usage:
//
//	benchgen              # run everything
//	benchgen -run E6      # run one experiment
//	benchgen -quick       # smaller workloads (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

var experiments = []struct {
	id   string
	desc string
	run  func(quick bool)
}{
	{"E1", "access decision throughput: identity vs role vs credential", runE1},
	{"E2", "Author-X view computation vs document size and granularity", runE2},
	{"E3", "secure dissemination: keys and encryption cost vs policy configurations", runE3},
	{"E4", "Merkle verification vs full signature; pruning sweep", runE4},
	{"E5", "UDDI inquiry: two-party vs trusted vs untrusted third party", runE5},
	{"E6", "privacy-preserving mining: accuracy vs randomization level", runE6},
	{"E7", "multiparty secure-sum mining vs centralized", runE7},
	{"E8", "inference controller: overhead and leak-block rate", runE8},
	{"E9", "semantic RDF filtering throughput", runE9},
	{"E10", "security-aware query rewrite overhead", runE10},
	{"E11", "secure channel throughput vs plaintext", runE11},
	{"E12", "P3P preference matching and delegation chains", runE12},
	{"E13", "flexible security policy: latency vs strength", runE13},
	{"E14", "auction transaction model: open-bid vs locking", runE14},
	{"E15", "federated query scaling and clearance filtering", runE15},
	{"E16", "provenance-aware RDFS inference vs plain inference", runE16},
	{"E17", "decision cache: uncached vs cold vs warm, Zipf hit rate", runE17},
	{"E19", "WAL group commit: durable commit throughput vs committer count", runE19},
	{"E20", "WAL-shipped replication: commit latency, catch-up lag, failover time vs follower count", runE20},
	{"E21", "MVCC snapshot reads vs locked reads under committing writers; fuzzy-checkpoint stall", runE21},
	{"E22", "stateless token fast path: wallet evaluation vs single-verification tokens over HTTP", runE22},
}

func main() {
	runFlag := flag.String("run", "", "experiment id to run (default: all)")
	quick := flag.Bool("quick", false, "use smaller workloads")
	snapshotFlag := flag.String("snapshot", "", "write the before/after JSON record (-run selects E17, E19, E20, E21 or E22; default E17) to this file and exit")
	flag.Parse()

	if *snapshotFlag != "" {
		var err error
		switch strings.ToUpper(*runFlag) {
		case "", "E17":
			err = writeSnapshot(*snapshotFlag, *quick)
		case "E19":
			err = writeSnapshotE19(*snapshotFlag, *quick)
		case "E20":
			err = writeSnapshotE20(*snapshotFlag, *quick)
		case "E21":
			err = writeSnapshotE21(*snapshotFlag, *quick)
		case "E22":
			err = writeSnapshotE22(*snapshotFlag, *quick)
		default:
			err = fmt.Errorf("no snapshot writer for experiment %q", *runFlag)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n", *snapshotFlag)
		return
	}

	ran := false
	for _, e := range experiments {
		if *runFlag != "" && !strings.EqualFold(*runFlag, e.id) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		start := time.Now()
		e.run(*quick)
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchgen: unknown experiment %q\n", *runFlag)
		os.Exit(1)
	}
}

// table prints an aligned table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) print() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// measure times fn over enough iterations for a stable per-op figure.
func measure(minIters int, fn func()) time.Duration {
	iters := 0
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond || iters < minIters {
		fn()
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

func dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
