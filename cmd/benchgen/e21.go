package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webdbsec/internal/reldb"
	"webdbsec/internal/wal"
)

// E21 measures the MVCC read path (PR 7): snapshot reads against
// committing writers, versus the pre-MVCC locked read path, and the
// fuzzy-checkpoint stall profile. Before PR 7, reads and commits
// serialized through the database's reader/writer lock — a committer
// holding the write side across its durability barrier stalled every
// reader behind the fsync. MVCC readers pin an immutable version and
// never touch a lock, so read latency should be independent of writer
// activity. The locked baseline is emulated faithfully around the same
// engine: readers take an RWMutex read-side around each SELECT, writers
// take it write-side across their whole transaction (insert + durable
// commit), reproducing the old serialization.

// e21ReadRow is one reader-count row: the same Zipf point-query workload
// against 4 committing writers, under the locked emulation and the MVCC
// path.
type e21ReadRow struct {
	Readers         int     `json:"readers"`
	Writers         int     `json:"writers"`
	LockedP50US     float64 `json:"locked_read_p50_us"`
	LockedP99US     float64 `json:"locked_read_p99_us"`
	LockedReadsSec  float64 `json:"locked_reads_per_sec"`
	MVCCP50US       float64 `json:"mvcc_read_p50_us"`
	MVCCP99US       float64 `json:"mvcc_read_p99_us"`
	MVCCReadsSec    float64 `json:"mvcc_reads_per_sec"`
	P50Speedup      float64 `json:"p50_speedup"`
	MVCCCommitsSec  float64 `json:"mvcc_commits_per_sec"`
	LockedCommitSec float64 `json:"locked_commits_per_sec"`
}

// e21CommitRow re-measures the E19 grouped commit path on the MVCC
// engine — the no-write-regression half of the acceptance bar, compared
// against BENCH_PR4.json.
type e21CommitRow struct {
	Committers    int     `json:"committers"`
	Commits       int     `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// e21Checkpoint is the fuzzy-checkpoint stall profile: commit throughput
// with and without back-to-back checkpoints streaming concurrently, and
// the worst gap any committer saw between consecutive commits.
type e21Checkpoint struct {
	Writers           int     `json:"writers"`
	CommitsSecNoCkpt  float64 `json:"commits_per_sec_no_checkpoint"`
	CommitsSecCkpt    float64 `json:"commits_per_sec_during_checkpoints"`
	Checkpoints       int     `json:"checkpoints"`
	MeanCheckpointMS  float64 `json:"mean_checkpoint_ms"`
	MaxCommitStallCk  float64 `json:"max_commit_stall_ms_during_checkpoints"`
	MaxCommitStallRef float64 `json:"max_commit_stall_ms_no_checkpoint"`
}

// e21OpenDB opens a durable database in dir with the read table t
// (rows Zipf-queried keys, hash-indexed) and one private table per
// writer.
func e21OpenDB(dir string, rows, writers int) (*reldb.Database, *wal.WAL, error) {
	w, err := wal.Open(wal.Options{FS: wal.DirFS(dir), Policy: wal.SyncAlways})
	if err != nil {
		return nil, nil, err
	}
	db, err := reldb.OpenDatabase(w)
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.Exec("CREATE TABLE t (k TEXT, v INT)"); err != nil {
		return nil, nil, err
	}
	if _, err := db.Exec("CREATE HASH INDEX ON t (k)"); err != nil {
		return nil, nil, err
	}
	for i := 0; i < rows; i++ {
		txn := db.Begin()
		if _, err := txn.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%d', %d)", i, i)); err != nil {
			return nil, nil, err
		}
		if err := txn.Commit(); err != nil {
			return nil, nil, err
		}
	}
	for g := 0; g < writers; g++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE w%d (k TEXT, v INT)", g)); err != nil {
			return nil, nil, err
		}
	}
	return db, w, nil
}

func e21Pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// e21ReadRun drives readers Zipf point queries against writers committing
// continuously for the given duration and returns read p50/p99, read
// throughput and commit throughput. locked selects the pre-PR7
// emulation. Readers issue at randomized ~2kHz arrivals (sleep jittered
// per op) rather than a tight closed loop: a closed loop re-issues the
// moment the previous read returns, which clusters issue times into the
// lock-free gaps between commits and undercounts the stall (coordinated
// omission); randomized arrivals are uncorrelated with the writer lock
// cycle, so the percentiles answer "what does a read issued at a random
// instant experience".
func e21ReadRun(readers, writers, rows int, duration time.Duration, locked bool) (p50, p99 time.Duration, readsSec, commitsSec float64, err error) {
	dir, err := os.MkdirTemp("", "e21-")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	db, w, err := e21OpenDB(dir, rows, writers)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer w.Close()

	var rw sync.RWMutex // the pre-PR7 database lock, used only when locked
	var stop atomic.Bool
	var commits atomic.Int64
	errs := make([]error, writers+readers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if locked {
					rw.Lock()
				}
				txn := db.Begin()
				_, werr := txn.Exec(fmt.Sprintf("INSERT INTO w%d VALUES ('k%d', %d)", g, i, i))
				if werr == nil {
					werr = txn.Commit()
				} else {
					txn.Abort()
				}
				if locked {
					rw.Unlock()
				}
				if werr != nil {
					errs[g] = werr
					return
				}
				commits.Add(1)
			}
		}(g)
	}
	lats := make([][]time.Duration, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(rows-1))
			for !stop.Load() {
				time.Sleep(time.Duration(200+rng.Intn(600)) * time.Microsecond)
				q := fmt.Sprintf("SELECT v FROM t WHERE k = 'k%d'", zipf.Uint64())
				t0 := time.Now()
				if locked {
					rw.RLock()
				}
				_, rerr := db.Exec(q)
				if locked {
					rw.RUnlock()
				}
				lats[r] = append(lats[r], time.Since(t0))
				if rerr != nil {
					errs[writers+r] = rerr
					return
				}
			}
		}(r)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, 0, e
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	secs := duration.Seconds()
	return e21Pct(all, 0.50), e21Pct(all, 0.99),
		float64(len(all)) / secs, float64(commits.Load()) / secs, nil
}

// e21CheckpointRun measures commit throughput over duration with writers
// committing continuously, optionally with fuzzy checkpoints streaming
// back-to-back the whole time, and the worst per-committer gap between
// consecutive commits — the stall a checkpoint inflicts, if any.
func e21CheckpointRun(writers int, duration time.Duration, checkpoint bool) (commitsSec float64, ckpts int, meanCkptMS, maxStallMS float64, err error) {
	dir, err := os.MkdirTemp("", "e21ck-")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	db, w, err := e21OpenDB(dir, 64, writers)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer w.Close()

	var stop atomic.Bool
	var commits atomic.Int64
	stalls := make([]time.Duration, writers)
	errs := make([]error, writers+1)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := time.Now()
			for i := 0; !stop.Load(); i++ {
				txn := db.Begin()
				_, werr := txn.Exec(fmt.Sprintf("INSERT INTO w%d VALUES ('k%d', %d)", g, i, i))
				if werr == nil {
					werr = txn.Commit()
				} else {
					txn.Abort()
				}
				if werr != nil {
					errs[g] = werr
					return
				}
				commits.Add(1)
				now := time.Now()
				if gap := now.Sub(last); gap > stalls[g] {
					stalls[g] = gap
				}
				last = now
			}
		}(g)
	}
	var ckptTotal time.Duration
	if checkpoint {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				if cerr := db.Checkpoint(); cerr != nil {
					errs[writers] = cerr
					return
				}
				ckptTotal += time.Since(t0)
				ckpts++
			}
		}()
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, 0, e
		}
	}
	var maxStall time.Duration
	for _, s := range stalls {
		if s > maxStall {
			maxStall = s
		}
	}
	if ckpts > 0 {
		meanCkptMS = float64(ckptTotal.Microseconds()) / 1000 / float64(ckpts)
	}
	return float64(commits.Load()) / duration.Seconds(), ckpts, meanCkptMS,
		float64(maxStall.Microseconds()) / 1000, nil
}

func e21ReadRows(quick bool) ([]e21ReadRow, error) {
	const writers, tableRows = 4, 512
	duration := 600 * time.Millisecond
	counts := []int{1, 4, 16, 64}
	if quick {
		duration = 200 * time.Millisecond
		counts = []int{1, 16}
	}
	var rows []e21ReadRow
	for _, readers := range counts {
		lp50, lp99, lrs, lcs, err := e21ReadRun(readers, writers, tableRows, duration, true)
		if err != nil {
			return nil, err
		}
		mp50, mp99, mrs, mcs, err := e21ReadRun(readers, writers, tableRows, duration, false)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if mp50 > 0 {
			speedup = float64(lp50) / float64(mp50)
		}
		rows = append(rows, e21ReadRow{
			Readers: readers, Writers: writers,
			LockedP50US: float64(lp50.Nanoseconds()) / 1e3, LockedP99US: float64(lp99.Nanoseconds()) / 1e3,
			LockedReadsSec: lrs, LockedCommitSec: lcs,
			MVCCP50US: float64(mp50.Nanoseconds()) / 1e3, MVCCP99US: float64(mp99.Nanoseconds()) / 1e3,
			MVCCReadsSec: mrs, MVCCCommitsSec: mcs,
			P50Speedup: speedup,
		})
	}
	return rows, nil
}

func e21CommitRows(quick bool) ([]e21CommitRow, error) {
	totalCommits := 960
	if quick {
		totalCommits = 192
	}
	var rows []e21CommitRow
	for _, committers := range []int{1, 8, 64} {
		ops, _, err := e19Run(committers, totalCommits, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, e21CommitRow{
			Committers:    committers,
			Commits:       totalCommits / committers * committers,
			CommitsPerSec: ops,
		})
	}
	return rows, nil
}

func e21CheckpointProfile(quick bool) (e21Checkpoint, error) {
	const writers = 4
	duration := 600 * time.Millisecond
	if quick {
		duration = 200 * time.Millisecond
	}
	refCS, _, _, refStall, err := e21CheckpointRun(writers, duration, false)
	if err != nil {
		return e21Checkpoint{}, err
	}
	ckCS, ckpts, meanMS, ckStall, err := e21CheckpointRun(writers, duration, true)
	if err != nil {
		return e21Checkpoint{}, err
	}
	return e21Checkpoint{
		Writers:           writers,
		CommitsSecNoCkpt:  refCS,
		CommitsSecCkpt:    ckCS,
		Checkpoints:       ckpts,
		MeanCheckpointMS:  meanMS,
		MaxCommitStallCk:  ckStall,
		MaxCommitStallRef: refStall,
	}, nil
}

func runE21(quick bool) {
	readRows, err := e21ReadRows(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E21: %v\n", err)
		return
	}
	t := &table{header: []string{"readers", "writers", "locked p50", "locked p99", "mvcc p50", "mvcc p99", "p50 speedup", "locked reads/s", "mvcc reads/s", "mvcc commits/s"}}
	for _, r := range readRows {
		t.add(fmt.Sprint(r.Readers), fmt.Sprint(r.Writers),
			dur(time.Duration(r.LockedP50US*1e3)), dur(time.Duration(r.LockedP99US*1e3)),
			dur(time.Duration(r.MVCCP50US*1e3)), dur(time.Duration(r.MVCCP99US*1e3)),
			fmt.Sprintf("%.1fx", r.P50Speedup),
			fmt.Sprintf("%.0f", r.LockedReadsSec), fmt.Sprintf("%.0f", r.MVCCReadsSec),
			fmt.Sprintf("%.0f", r.MVCCCommitsSec))
	}
	t.print()

	commitRows, err := e21CommitRows(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E21: %v\n", err)
		return
	}
	ct := &table{header: []string{"committers", "commits", "commits/s (vs BENCH_PR4.json)"}}
	for _, r := range commitRows {
		ct.add(fmt.Sprint(r.Committers), fmt.Sprint(r.Commits), fmt.Sprintf("%.0f", r.CommitsPerSec))
	}
	fmt.Println()
	ct.print()

	ck, err := e21CheckpointProfile(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E21: %v\n", err)
		return
	}
	fmt.Printf("\n  fuzzy checkpoints during %d-writer commits: %d checkpoints (mean %.2fms),\n", ck.Writers, ck.Checkpoints, ck.MeanCheckpointMS)
	fmt.Printf("  commits/s %.0f without vs %.0f during; max commit stall %.2fms vs %.2fms baseline\n",
		ck.CommitsSecNoCkpt, ck.CommitsSecCkpt, ck.MaxCommitStallRef, ck.MaxCommitStallCk)
}

// e21Snapshot is the record -snapshot -run E21 writes (BENCH_PR7.json).
type e21Snapshot struct {
	Experiment  string         `json:"experiment"`
	Description string         `json:"description"`
	ReadRows    []e21ReadRow   `json:"read_rows"`
	CommitRows  []e21CommitRow `json:"commit_rows"`
	Checkpoint  e21Checkpoint  `json:"checkpoint"`
}

// writeSnapshotE21 measures E21 and writes the JSON record to path.
func writeSnapshotE21(path string, quick bool) error {
	readRows, err := e21ReadRows(quick)
	if err != nil {
		return err
	}
	commitRows, err := e21CommitRows(quick)
	if err != nil {
		return err
	}
	ck, err := e21CheckpointProfile(quick)
	if err != nil {
		return err
	}
	snap := e21Snapshot{
		Experiment:  "E21",
		Description: "MVCC snapshot reads vs the pre-PR7 locked read path under committing writers (Zipf point queries), grouped commit throughput on the MVCC engine, and the fuzzy-checkpoint stall profile",
		ReadRows:    readRows,
		CommitRows:  commitRows,
		Checkpoint:  ck,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
