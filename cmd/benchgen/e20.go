package main

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"webdbsec/internal/replication"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

// E20 measures the WAL-shipped replication layer (PR 6): the durable
// commit path now ends at the cluster quorum, not the local fsync, so the
// interesting numbers are what each follower costs — per-commit quorum
// latency, the catch-up lag until EVERY follower has applied the tail,
// and how long the cluster is leaderless after the leader dies. Appliers
// are no-ops (pure log replicas) so the measurement isolates the
// replication protocol from reldb replay.

// e20Measurement is one follower-count row of the E20 experiment.
type e20Measurement struct {
	Followers     int     `json:"followers"`
	Commits       int     `json:"commits"`
	MeanCommitMS  float64 `json:"mean_commit_ms"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	CatchupMS     float64 `json:"catchup_ms"`
	FailoverMS    float64 `json:"failover_ms"`
}

// e20Cluster is a minimal in-process cluster over loopback TCP.
type e20Cluster struct {
	ids     []string
	nodes   map[string]*replication.Node
	wals    map[string]*wal.WAL
	applied map[string]*atomic.Uint64
}

func e20Key(id string) ed25519.PrivateKey {
	seed := sha256.Sum256([]byte("benchgen-e20|" + id))
	return ed25519.NewKeyFromSeed(seed[:])
}

// e20Start brings up a cluster of n nodes (IDs n1..n<n>; the election's
// ID tie-break makes the highest the first leader) and waits for it.
func e20Start(n int) (*e20Cluster, error) {
	c := &e20Cluster{
		nodes:   make(map[string]*replication.Node),
		wals:    make(map[string]*wal.WAL),
		applied: make(map[string]*atomic.Uint64),
	}
	listeners := make(map[string]net.Listener)
	addrs := make(map[string]string)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		c.ids = append(c.ids, id)
		listeners[id] = l
		addrs[id] = l.Addr().String()
	}
	for _, id := range c.ids {
		fs := faultinject.NewMemFS()
		w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
		if err != nil {
			return nil, err
		}
		peers := make(map[string]string)
		keys := make(map[string]ed25519.PublicKey)
		for _, pid := range c.ids {
			if pid == id {
				continue
			}
			peers[pid] = addrs[pid]
			keys[pid] = e20Key(pid).Public().(ed25519.PublicKey)
		}
		applied := &atomic.Uint64{}
		node, err := replication.NewNode(replication.Config{
			NodeID:    id,
			Listener:  listeners[id],
			Peers:     peers,
			Identity:  e20Key(id),
			PeerKeys:  keys,
			WAL:       w,
			MetaStore: fs,
			Applier: replication.ApplierFuncs{
				ApplyFn:   func(lsn uint64, _ []byte) error { applied.Store(lsn); return nil },
				RestoreFn: func(lsn uint64, _ []byte) error { applied.Store(lsn); return nil },
			},
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		c.nodes[id] = node
		c.wals[id] = w
		c.applied[id] = applied
		if err := node.Start(); err != nil {
			return nil, err
		}
	}
	if c.leader(5*time.Second) == "" {
		return nil, fmt.Errorf("no leader within 5s")
	}
	return c, nil
}

// leader polls until exactly one node leads, returning its ID.
func (c *e20Cluster) leader(within time.Duration) string {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		found, count := "", 0
		for id, node := range c.nodes {
			if node.Role() == replication.LeaderRole {
				found, count = id, count+1
			}
		}
		if count == 1 {
			return found
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ""
}

func (c *e20Cluster) stopAll() {
	for _, id := range c.ids {
		if node := c.nodes[id]; node != nil { // the killed leader is already stopped
			node.Stop()
		}
		_ = c.wals[id].Close()
	}
}

// e20Measure runs one follower count: serial quorum-acked commits, the
// all-follower catch-up tail, then a leader kill and re-election.
// Failover is only measurable when the survivors still form a quorum of
// the original cluster (followers >= 2).
func e20Measure(followers, commits int) (e20Measurement, error) {
	c, err := e20Start(followers + 1)
	if err != nil {
		return e20Measurement{}, err
	}
	defer c.stopAll()
	leadID := c.leader(5 * time.Second)
	if leadID == "" {
		return e20Measurement{}, fmt.Errorf("leader lost before measurement")
	}
	w, node := c.wals[leadID], c.nodes[leadID]
	payload := make([]byte, 128)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	var last uint64
	for i := 0; i < commits; i++ {
		lsn, err := w.Append(payload)
		if err != nil {
			return e20Measurement{}, err
		}
		if err := node.WaitCommitted(ctx, lsn); err != nil {
			return e20Measurement{}, err
		}
		last = lsn
	}
	elapsed := time.Since(start)

	// Catch-up lag: the quorum ack already covers a majority; how long
	// until EVERY follower has applied the tail?
	catchStart := time.Now()
	var catchup time.Duration
	for {
		lagging := false
		for id, a := range c.applied {
			if id != leadID && a.Load() < last {
				lagging = true
				break
			}
		}
		if !lagging {
			catchup = time.Since(catchStart)
			break
		}
		if time.Since(catchStart) > 30*time.Second {
			return e20Measurement{}, fmt.Errorf("followers did not catch up within 30s")
		}
		time.Sleep(500 * time.Microsecond)
	}

	failover := 0.0
	if followers >= 2 {
		c.nodes[leadID].Stop()
		killAt := time.Now()
		delete(c.nodes, leadID) // leader() must find the successor
		if next := c.leader(15 * time.Second); next == "" {
			return e20Measurement{}, fmt.Errorf("no successor within 15s")
		}
		failover = float64(time.Since(killAt).Microseconds()) / 1000
	}

	return e20Measurement{
		Followers:     followers,
		Commits:       commits,
		MeanCommitMS:  float64(elapsed.Microseconds()) / 1000 / float64(commits),
		CommitsPerSec: float64(commits) / elapsed.Seconds(),
		CatchupMS:     float64(catchup.Microseconds()) / 1000,
		FailoverMS:    failover,
	}, nil
}

func e20Rows(quick bool) ([]e20Measurement, error) {
	commits := 400
	counts := []int{1, 2, 4}
	if quick {
		commits = 80
		counts = []int{1, 2}
	}
	var rows []e20Measurement
	for _, f := range counts {
		m, err := e20Measure(f, commits)
		if err != nil {
			return nil, err
		}
		rows = append(rows, m)
	}
	return rows, nil
}

func runE20(quick bool) {
	rows, err := e20Rows(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E20: %v\n", err)
		return
	}
	t := &table{header: []string{"followers", "commits", "mean commit ms", "commits/s", "catchup ms", "failover ms"}}
	for _, m := range rows {
		fo := fmt.Sprintf("%.1f", m.FailoverMS)
		if m.FailoverMS == 0 {
			fo = "n/a (no quorum without leader)"
		}
		t.add(fmt.Sprint(m.Followers), fmt.Sprint(m.Commits),
			fmt.Sprintf("%.2f", m.MeanCommitMS),
			fmt.Sprintf("%.0f", m.CommitsPerSec),
			fmt.Sprintf("%.1f", m.CatchupMS), fo)
	}
	t.print()
}

// e20Snapshot is the record -snapshot -run E20 writes (BENCH_PR6.json).
type e20Snapshot struct {
	Experiment  string           `json:"experiment"`
	Description string           `json:"description"`
	Rows        []e20Measurement `json:"rows"`
}

// writeSnapshotE20 measures E20 and writes the JSON record to path.
func writeSnapshotE20(path string, quick bool) error {
	rows, err := e20Rows(quick)
	if err != nil {
		return err
	}
	snap := e20Snapshot{
		Experiment:  "E20",
		Description: "WAL-shipped replication: quorum commit latency, all-follower catch-up lag and leader failover time, by follower count",
		Rows:        rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
