package main

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"net"
	"sync"
	"time"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/authorx"
	"webdbsec/internal/core"
	"webdbsec/internal/credential"
	"webdbsec/internal/federation"
	"webdbsec/internal/inference"
	"webdbsec/internal/merkle"
	"webdbsec/internal/mining"
	"webdbsec/internal/ontology"
	"webdbsec/internal/p3p"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/secchan"
	"webdbsec/internal/synth"
	"webdbsec/internal/sysr"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

func runE1(quick bool) {
	counts := []int{10, 100, 1000}
	if quick {
		counts = []int{10, 100}
	}
	t := &table{header: []string{"qualification", "policies", "decision-time"}}
	for _, kind := range []string{"identity", "role", "credential"} {
		for _, n := range counts {
			store := xmldoc.NewStore()
			doc := synth.Hospital(1, 50)
			store.Put(doc)
			base := policy.NewBase(nil)
			for i := 0; i < n; i++ {
				p := &policy.Policy{
					Name:   fmt.Sprintf("p%d", i),
					Object: policy.ObjectSpec{Doc: doc.Name, Path: fmt.Sprintf("/hospital/patient[@ward='%d']", i%8)},
					Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
				}
				switch kind {
				case "identity":
					p.Subject = policy.SubjectSpec{IDs: []string{fmt.Sprintf("user%d", i%100)}}
				case "role":
					p.Subject = policy.SubjectSpec{Roles: []string{fmt.Sprintf("role%d", i%10)}}
				case "credential":
					p.Subject = policy.SubjectSpec{CredExpr: credential.MustCompile(fmt.Sprintf("staff.ward = '%d'", i%8))}
				}
				base.MustAdd(p)
			}
			w := credential.NewWallet("user7")
			w.Add(&credential.Credential{Type: "staff", Subject: "user7", Attrs: map[string]string{"ward": "3"}})
			s := &policy.Subject{ID: "user7", Roles: []string{"role3"}, Wallet: w}
			eng := accessctl.NewEngine(store, base)
			d := measure(20, func() { eng.Labels(doc, s, policy.Read) })
			t.add(kind, fmt.Sprint(n), dur(d))
		}
	}
	t.print()
}

func runE2(quick bool) {
	sizes := []int{10, 100, 1000}
	if quick {
		sizes = []int{10, 100}
	}
	t := &table{header: []string{"patients", "nodes", "granularity", "view-time"}}
	for _, patients := range sizes {
		doc := synth.Hospital(2, patients)
		for _, gran := range []struct{ name, path string }{
			{"document", ""}, {"subtree", "//patient"}, {"node", "//ssn"},
		} {
			store := xmldoc.NewStore()
			store.Put(doc)
			base := policy.NewBase(nil)
			base.MustAdd(&policy.Policy{
				Name: "p", Subject: policy.SubjectSpec{IDs: []string{"*"}},
				Object: policy.ObjectSpec{Doc: doc.Name, Path: gran.path},
				Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
			})
			eng := accessctl.NewEngine(store, base)
			s := &policy.Subject{ID: "u"}
			d := measure(10, func() { eng.View(doc.Name, s, policy.Read) })
			t.add(fmt.Sprint(patients), fmt.Sprint(doc.NumNodes()), gran.name, dur(d))
		}
	}
	t.print()
}

func runE3(quick bool) {
	configs := []int{1, 8, 64}
	if quick {
		configs = []int{1, 8}
	}
	t := &table{header: []string{"policy-configs", "keys", "encrypt-time", "trusted-view-baseline"}}
	doc := synth.Hospital(3, 200)
	baselineStore := xmldoc.NewStore()
	baselineStore.Put(doc)
	baseBase := policy.NewBase(nil)
	baseBase.MustAdd(&policy.Policy{
		Name: "all", Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object: policy.ObjectSpec{Doc: doc.Name}, Priv: policy.Read,
		Sign: policy.Permit, Prop: policy.Cascade,
	})
	baselineEng := accessctl.NewEngine(baselineStore, baseBase)
	s := &policy.Subject{ID: "u"}
	baseline := measure(10, func() { baselineEng.View(doc.Name, s, policy.Read) })

	for _, n := range configs {
		store := xmldoc.NewStore()
		store.Put(doc)
		base := policy.NewBase(nil)
		for i := 0; i < n; i++ {
			base.MustAdd(&policy.Policy{
				Name:    fmt.Sprintf("p%d", i),
				Subject: policy.SubjectSpec{Roles: []string{fmt.Sprintf("r%d", i)}},
				Object:  policy.ObjectSpec{Doc: doc.Name, Path: fmt.Sprintf("/hospital/patient[@id='p%d']", i)},
				Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
			})
		}
		pub := authorx.NewPublisher(accessctl.NewEngine(store, base))
		d := measure(3, func() {
			if _, err := pub.Encrypt(doc.Name); err != nil {
				panic(err)
			}
		})
		t.add(fmt.Sprint(n), fmt.Sprint(pub.NumKeys(doc.Name)), dur(d), dur(baseline))
	}
	t.print()
}

func runE4(quick bool) {
	sizes := []int{16, 256, 1024}
	if quick {
		sizes = []int{16, 256}
	}
	signer, err := wsig.NewSigner("prov")
	if err != nil {
		panic(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	t := &table{header: []string{"elements", "pruned", "aux-hashes", "verify-time", "full-sig-baseline"}}
	for _, n := range sizes {
		doc := synth.Hospital(4, n)
		ss := merkle.Sign(doc, signer)
		full := measure(5, func() { merkle.VerifyFull(doc, ss, dir) })
		for _, prunePct := range []int{0, 50, 90} {
			keepEvery := 100 - prunePct
			view, proof := merkle.PruneWithProof(doc, func(nd *xmldoc.Node) bool {
				return nd.ID()*7%100 < keepEvery
			})
			if view == nil {
				continue
			}
			d := measure(5, func() {
				if err := merkle.VerifyView(view, proof, ss, dir); err != nil {
					panic(err)
				}
			})
			t.add(fmt.Sprint(n), fmt.Sprintf("%d%%", prunePct),
				fmt.Sprint(proof.NumAuxHashes()), dur(d), dur(full))
		}
	}
	t.print()
}

func runE5(quick bool) {
	entries := 500
	if quick {
		entries = 100
	}
	reg := uddi.NewRegistry(nil)
	keys := synth.Registry(5, reg, entries)
	req := &policy.Subject{ID: "requestor"}

	prov, err := uddi.NewProvider("prov")
	if err != nil {
		panic(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name: "public", Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object: policy.ObjectSpec{Doc: "*"}, Priv: policy.Read,
		Sign: policy.Permit, Prop: policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	trusted := uddi.NewTrustedAgency(base)
	for i := 0; i < entries; i++ {
		e := synth.Entity(fmt.Sprintf("be-%05d", i), "logistics", 2)
		entry, err := prov.Sign(e)
		if err != nil {
			panic(err)
		}
		agency.Publish(entry)
		trusted.Publish(e)
	}
	i := 0
	t := &table{header: []string{"deployment", "operation", "latency"}}
	t.add("two-party", "get_businessDetail", dur(measure(50, func() {
		reg.GetBusinessDetail(req, keys[i%len(keys)])
		i++
	})))
	t.add("two-party", "find_business", dur(measure(10, func() {
		reg.FindBusiness(req, "logistics", nil)
	})))
	t.add("third-party trusted", "get (plaintext view)", dur(measure(50, func() {
		trusted.Query(req, keys[i%len(keys)])
		i++
	})))
	t.add("third-party untrusted", "get + Merkle verify", dur(measure(50, func() {
		res, err := agency.Query(req, keys[i%len(keys)])
		i++
		if err != nil {
			panic(err)
		}
		if err := res.Verify(dir); err != nil {
			panic(err)
		}
	})))
	t.print()
}

func runE6(quick bool) {
	n, items := 20000, 40
	if quick {
		n = 4000
	}
	baskets := synth.NewBaskets(6, n, items, 5)
	truth := mining.Apriori(baskets.Data, 0.15, 2)
	t := &table{header: []string{"p (retain prob)", "privacy", "precision", "recall", "support-err", "mine-time"}}
	exact := measure(3, func() { mining.Apriori(baskets.Data, 0.15, 2) })
	t.add("1.00 (no privacy)", "none", "1.000", "1.000", "0.0000", dur(exact))
	for _, p := range []float64{0.95, 0.80, 0.65} {
		rdz := mining.Randomize(baskets.Data, items, p, 6)
		var got []mining.FrequentItemset
		d := measure(1, func() {
			var err error
			got, err = mining.PrivateApriori(rdz, items, p, 0.15, 2)
			if err != nil {
				panic(err)
			}
		})
		q := mining.CompareMinings(truth, got)
		t.add(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.0f%% flip", (1-p)*100),
			fmt.Sprintf("%.3f", q.Precision), fmt.Sprintf("%.3f", q.Recall),
			fmt.Sprintf("%.4f", q.MeanSupportErr), dur(d))
	}
	t.print()
}

func runE7(quick bool) {
	n := 8000
	if quick {
		n = 2000
	}
	baskets := synth.NewBaskets(7, n, 30, 5)
	central := mining.Apriori(baskets.Data, 0.2, 2)
	centralTime := measure(3, func() { mining.Apriori(baskets.Data, 0.2, 2) })
	t := &table{header: []string{"parties", "itemsets", "matches-centralized", "mine-time"}}
	t.add("1 (centralized)", fmt.Sprint(len(central)), "-", dur(centralTime))
	for _, parties := range []int{2, 4, 8} {
		chunk := len(baskets.Data) / parties
		ps := make([]*mining.Party, parties)
		for i := 0; i < parties; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if i == parties-1 {
				hi = len(baskets.Data)
			}
			ps[i] = mining.NewParty(fmt.Sprintf("p%d", i), baskets.Data[lo:hi])
		}
		var multi []mining.FrequentItemset
		d := measure(1, func() {
			var err error
			multi, err = mining.MultipartyApriori(ps, 0.2, 2)
			if err != nil {
				panic(err)
			}
		})
		match := "yes"
		if len(multi) != len(central) {
			match = "NO"
		} else {
			for i := range multi {
				if multi[i].Count != central[i].Count {
					match = "NO"
					break
				}
			}
		}
		t.add(fmt.Sprint(parties), fmt.Sprint(len(multi)), match, dur(d))
	}
	t.print()
}

func runE8(quick bool) {
	ruleCounts := []int{100, 1000, 5000}
	if quick {
		ruleCounts = []int{100, 1000}
	}
	t := &table{header: []string{"rules", "check-time", "queries", "blocked", "block-rate"}}
	for _, rules := range ruleCounts {
		pc := privacy.NewController()
		pc.Add(&privacy.Constraint{Name: "c", Attrs: []string{"identity", "disease"}, Class: privacy.Private})
		ic := inference.NewController(pc)
		ic.AddRule(&inference.Rule{Name: "reid", Body: []string{"name", "zip"}, Head: "identity"})
		for i := 0; i < rules; i++ {
			ic.AddRule(&inference.Rule{
				Name: fmt.Sprintf("r%d", i),
				Body: []string{fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)},
				Head: fmt.Sprintf("d%d", i),
			})
		}
		// Timing on fresh subjects.
		i := 0
		d := measure(20, func() {
			ic.Check(&policy.Subject{ID: fmt.Sprintf("u%d", i)}, []string{"age", "zip"})
			i++
		})
		// Leak blocking on a mixed stream: every odd subject builds the
		// channel name→zip→disease across three queries.
		const subjects = 200
		blocked, total := 0, 0
		for s := 0; s < subjects; s++ {
			subj := &policy.Subject{ID: fmt.Sprintf("subj%d", s)}
			var queries [][]string
			if s%2 == 0 {
				queries = [][]string{{"age"}, {"zip"}, {"income"}}
			} else {
				queries = [][]string{{"name", "zip"}, {"age"}, {"disease"}}
			}
			for _, q := range queries {
				total++
				if !ic.Check(subj, q).Allowed {
					blocked++
				}
			}
		}
		t.add(fmt.Sprint(rules), dur(d), fmt.Sprint(total), fmt.Sprint(blocked),
			fmt.Sprintf("%.1f%%", 100*float64(blocked)/float64(total)))
	}
	t.print()
}

func runE9(quick bool) {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	t := &table{header: []string{"triples", "guarded-query", "raw-query", "overhead"}}
	for _, n := range sizes {
		store := rdf.NewStore()
		for i := 0; i < n; i++ {
			store.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("res%d", i%1000)),
				P: rdf.NewIRI(fmt.Sprintf("p%d", i%20)),
				O: rdf.NewLiteral(fmt.Sprintf("v%d", i)),
			})
		}
		g := rdf.NewGuard(store)
		g.AddClassRule(&rdf.ClassRule{Pattern: rdf.Pattern{P: rdf.T(rdf.NewIRI("p1"))}, Level: rdf.Secret})
		c := rdf.NewClearance(&policy.Subject{ID: "u"}, rdf.Unclassified)
		i := 0
		guarded := measure(50, func() {
			g.Query(c, rdf.Pattern{S: rdf.T(rdf.NewIRI(fmt.Sprintf("res%d", i%1000)))})
			i++
		})
		raw := measure(50, func() {
			store.Query(rdf.Pattern{S: rdf.T(rdf.NewIRI(fmt.Sprintf("res%d", i%1000)))})
			i++
		})
		overhead := "-"
		if raw > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(guarded)/float64(raw))
		}
		t.add(fmt.Sprint(n), dur(guarded), dur(raw), overhead)
	}
	t.print()
}

func runE10(quick bool) {
	rows := 5000
	if quick {
		rows = 1000
	}
	mk := func(withPolicies bool) (*reldb.SecureDB, *policy.Subject) {
		sdb := reldb.NewSecureDB(reldb.NewDatabase(), nil)
		dba := &policy.Subject{ID: "dba"}
		sdb.CreateTable(dba, "CREATE TABLE emp (id INT, dept TEXT, salary INT)")
		sdb.DB().Exec("CREATE HASH INDEX ON emp (dept)")
		for i := 0; i < rows; i++ {
			sdb.DB().Exec(fmt.Sprintf("INSERT INTO emp VALUES (%d, 'd%d', %d)", i, i%20, i%200*1000))
		}
		sdb.Grants().Grant("dba", "u", sysr.Select, "emp", false)
		if withPolicies {
			pred := reldb.MustParse("SELECT * FROM emp WHERE salary >= 0").(*reldb.SelectStmt).Where
			sdb.AddRowPolicy(&reldb.RowPolicy{
				Name: "visible-all", Table: "emp",
				Subject: policy.SubjectSpec{IDs: []string{"u"}}, Pred: pred,
			})
		}
		return sdb, &policy.Subject{ID: "u"}
	}
	plain, u1 := mk(false)
	secured, u2 := mk(true)
	t := &table{header: []string{"variant", "query-time"}}
	t.add("privileges only", dur(measure(5, func() {
		plain.Exec(u1, "SELECT id FROM emp WHERE salary > 100000")
	})))
	t.add("privileges + row policy rewrite", dur(measure(5, func() {
		secured.Exec(u2, "SELECT id FROM emp WHERE salary > 100000")
	})))
	t.print()
}

func runE11(quick bool) {
	sizes := []int{1 << 10, 1 << 16, 1 << 20}
	if quick {
		sizes = []int{1 << 10, 1 << 16}
	}
	t := &table{header: []string{"message", "plaintext", "secure-channel", "slowdown"}}
	for _, size := range sizes {
		plain := channelThroughput(false, size)
		secure := channelThroughput(true, size)
		t.add(fmt.Sprintf("%dKB", size/1024),
			fmt.Sprintf("%.0f MB/s", plain), fmt.Sprintf("%.0f MB/s", secure),
			fmt.Sprintf("%.2fx", plain/secure))
	}
	t.print()
}

func channelThroughput(secure bool, size int) float64 {
	payload := make([]byte, size)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	var send func([]byte) error
	if secure {
		pub, priv, _ := ed25519.GenerateKey(nil)
		done := make(chan *secchan.Channel, 1)
		go func() {
			ch, err := secchan.Server(sConn, priv)
			if err == nil {
				done <- ch
			}
		}()
		client, err := secchan.Client(cConn, pub)
		if err != nil {
			panic(err)
		}
		server := <-done
		go func() {
			for {
				if _, err := server.Receive(); err != nil {
					return
				}
			}
		}()
		send = client.Send
	} else {
		pc := secchan.NewPlainChannel(cConn)
		ps := secchan.NewPlainChannel(sConn)
		go func() {
			for {
				if _, err := ps.Receive(); err != nil {
					return
				}
			}
		}()
		send = pc.Send
	}
	d := measure(20, func() {
		if err := send(payload); err != nil {
			panic(err)
		}
	})
	return float64(size) / d.Seconds() / (1 << 20)
}

func runE12(quick bool) {
	t := &table{header: []string{"operation", "size", "latency"}}
	pref := &p3p.Preference{Rules: []p3p.PreferenceRule{
		{Name: "no-health-marketing", Categories: []p3p.Category{p3p.CategoryHealth}, Purposes: []p3p.Purpose{p3p.PurposeMarketing}},
		{Name: "short-retention", Categories: []p3p.Category{p3p.CategoryClickstream}, MaxRetention: 45},
	}}
	for _, n := range []int{100, 1000} {
		policies := make([]*p3p.Policy, n)
		for i := range policies {
			policies[i] = &p3p.Policy{
				Entity: fmt.Sprintf("svc%d", i),
				Statements: []p3p.Statement{{
					Purposes:   []p3p.Purpose{p3p.PurposeCurrent, p3p.PurposeMarketing},
					Recipients: []p3p.Recipient{p3p.RecipientOurs},
					Categories: []p3p.Category{p3p.CategoryOnline, p3p.CategoryClickstream},
					Retention:  30 + i%60,
				}},
			}
		}
		i := 0
		t.add("preference match", fmt.Sprintf("%d policies", n), dur(measure(100, func() {
			pref.Evaluate(policies[i%n])
			i++
		})))
	}
	for _, depth := range []int{2, 8} {
		d := p3p.NewDirectory()
		for i := 0; i <= depth; i++ {
			d.Advertise(fmt.Sprintf("s%d", i), &p3p.Policy{
				Entity: fmt.Sprintf("s%d", i),
				Statements: []p3p.Statement{{
					Purposes:   []p3p.Purpose{p3p.PurposeCurrent},
					Recipients: []p3p.Recipient{p3p.RecipientOurs},
					Categories: []p3p.Category{p3p.CategoryOnline},
					Retention:  100 - i,
				}},
			})
		}
		for i := 0; i < depth; i++ {
			if err := d.Delegate(fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i+1)); err != nil {
				panic(err)
			}
		}
		t.add("delegation chain walk", fmt.Sprintf("depth %d", depth), dur(measure(100, func() {
			d.DelegationChain("s0")
		})))
	}
	t.print()
}

func runE13(quick bool) {
	patients := 300
	if quick {
		patients = 100
	}
	store := xmldoc.NewStore()
	doc := synth.Hospital(13, patients)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name: "names-only", Subject: policy.SubjectSpec{IDs: []string{"u"}},
		Object: policy.ObjectSpec{Doc: doc.Name, Path: "//name"},
		Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	stack := core.NewSemanticStack(
		accessctl.NewEngine(store, base),
		rdf.NewGuard(rdf.NewStore()),
		ontology.NewMediator(ontology.New("o"), rdf.NewStore()),
	)
	u := &policy.Subject{ID: "u"}
	t := &table{header: []string{"strength", "layers-on", "xml-view-latency"}}
	for _, s := range []core.Strength{0, 30, 70, 100} {
		stack.SetStrength(s)
		cfg := stack.Config()
		on := 0
		for _, b := range []bool{cfg.EncryptTransport, cfg.EnforceXMLViews, cfg.VerifyCredentials, cfg.EnforceRDFLevels, cfg.InferenceControl} {
			if b {
				on++
			}
		}
		d := measure(10, func() {
			if _, err := stack.XMLView(doc.Name, u); err != nil {
				panic(err)
			}
		})
		t.add(fmt.Sprintf("%d%%", s), fmt.Sprintf("%d/5", on), dur(d))
	}
	t.print()
}

func runE14(quick bool) {
	bidders := 50
	if quick {
		bidders = 20
	}
	think := 2 * time.Millisecond
	t := &table{header: []string{"model", "bidders", "wall-time", "bids/s"}}

	run := func(name string) {
		db := reldb.NewDatabase()
		a, err := reldb.NewAuctionHouse(db)
		if err != nil {
			panic(err)
		}
		a.Open("item", "seller")
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < bidders; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if name == "open-bid" {
					time.Sleep(think) // thinking happens WITHOUT any lock
					a.PlaceBid("item", fmt.Sprintf("b%d", i), int64(i))
				} else {
					lk := reldb.NewLockingAuctionHouse(a, think)
					lk.PlaceBid("item", fmt.Sprintf("b%d", i), int64(i))
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		t.add(name, fmt.Sprint(bidders), dur(elapsed),
			fmt.Sprintf("%.0f", float64(bidders)/elapsed.Seconds()))
	}
	run("open-bid")
	run("locking (conventional)")
	t.print()
}

func runE16(quick bool) {
	sizes := []int{16, 64}
	if quick {
		sizes = []int{16}
	}
	build := func(classes, instances int) *rdf.Store {
		s := rdf.NewStore()
		for c := 1; c < classes; c++ {
			s.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("C%d", c)),
				P: rdf.NewIRI(rdf.RDFSSubClassOf),
				O: rdf.NewIRI(fmt.Sprintf("C%d", c/2)),
			})
		}
		for i := 0; i < instances; i++ {
			s.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("x%d", i)),
				P: rdf.NewIRI(rdf.RDFType),
				O: rdf.NewIRI(fmt.Sprintf("C%d", 1+i%(classes-1))),
			})
		}
		return s
	}
	t := &table{header: []string{"taxonomy", "variant", "infer-time", "leak-safe"}}
	for _, size := range sizes {
		label := fmt.Sprintf("%d classes, %d instances", size, size*4)
		plain := measure(2, func() { build(size, size*4).InferRDFS() })
		t.add(label, "plain", dur(plain), "NO (derived triples unlabeled)")
		guarded := measure(2, func() {
			s := build(size, size*4)
			g := rdf.NewGuard(s)
			g.AddClassRule(&rdf.ClassRule{
				Pattern: rdf.Pattern{S: rdf.T(rdf.NewIRI("C1"))},
				Level:   rdf.Secret,
			})
			g.InferRDFS()
		})
		t.add(label, "guarded (provenance-pinned)", dur(guarded), "yes")
	}
	t.print()
}

func runE15(quick bool) {
	sizes := []int{2, 8, 32}
	if quick {
		sizes = []int{2, 8}
	}
	t := &table{header: []string{"sources", "clearance", "reachable", "query-time"}}
	for _, nSources := range sizes {
		fed := federation.New()
		for i := 0; i < nSources; i++ {
			db := reldb.NewDatabase()
			db.Exec("CREATE TABLE local_cases (patient TEXT, disease TEXT)")
			for j := 0; j < 200; j++ {
				db.Exec(fmt.Sprintf("INSERT INTO local_cases VALUES ('p%d-%d', 'd%d')", i, j, j%5))
			}
			level := rdf.Unclassified
			if i%2 == 1 {
				level = rdf.Secret
			}
			src := federation.NewSource(fmt.Sprintf("s%02d", i), db, level)
			if err := src.ExportTable(&federation.Export{
				Virtual: "cases", Local: "local_cases", Columns: []string{"patient", "disease"},
			}); err != nil {
				panic(err)
			}
			if err := fed.AddSource(src); err != nil {
				panic(err)
			}
		}
		for _, c := range []struct {
			name  string
			level rdf.Level
			reach int
		}{
			{"secret", rdf.Secret, nSources},
			{"unclassified", rdf.Unclassified, nSources / 2},
		} {
			req := &federation.Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: c.level}
			d := measure(10, func() {
				if _, err := fed.Query(context.Background(), req, "SELECT patient FROM cases WHERE disease = 'd1'"); err != nil {
					panic(err)
				}
			})
			t.add(fmt.Sprint(nSources), c.name, fmt.Sprintf("%d/%d", c.reach, nSources), dur(d))
		}
	}
	t.print()
}
