package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"webdbsec/internal/reldb"
	"webdbsec/internal/wal"
)

// E19 measures what the group-commit pipeline buys on the durable commit
// path: concurrent committers against a real filesystem under SyncAlways,
// grouped (default pipeline) vs baseline (MaxBatchBytes=1, one fsync per
// frame — the PR 3 behaviour). Each committer gets a private table so the
// strict 2PL table locks don't serialize the fsyncs artificially; the
// contention under study is the disk barrier, not the lock manager.

// e19Measurement is one committer-count row of the E19 experiment.
type e19Measurement struct {
	Committers         int     `json:"committers"`
	Commits            int     `json:"commits"`
	BaselineCommitsSec float64 `json:"baseline_commits_per_sec"`
	GroupedCommitsSec  float64 `json:"grouped_commits_per_sec"`
	Speedup            float64 `json:"speedup"`
	BaselineFsyncs     uint64  `json:"baseline_fsyncs"`
	GroupedFsyncs      uint64  `json:"grouped_fsyncs"`
	FsyncsSaved        uint64  `json:"fsyncs_saved"`
	MeanBatchFrames    float64 `json:"mean_batch_frames"`
	MaxBatchFrames     int     `json:"max_batch_frames"`
}

// e19Run drives totalCommits single-insert transactions through a fresh
// durable database split across the committers and returns commits/sec
// plus the WAL's pipeline counters. maxBatchBytes=0 uses the default
// (grouped); 1 is the fsync-per-frame baseline.
func e19Run(committers, totalCommits, maxBatchBytes int) (float64, wal.Stats, error) {
	dir, err := os.MkdirTemp("", "e19-")
	if err != nil {
		return 0, wal.Stats{}, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(wal.Options{FS: wal.DirFS(dir), Policy: wal.SyncAlways, MaxBatchBytes: maxBatchBytes})
	if err != nil {
		return 0, wal.Stats{}, err
	}
	db, err := reldb.OpenDatabase(w)
	if err != nil {
		return 0, wal.Stats{}, err
	}
	for g := 0; g < committers; g++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE t%d (k TEXT, v INT)", g)); err != nil {
			return 0, wal.Stats{}, err
		}
	}
	per := totalCommits / committers
	var wg sync.WaitGroup
	errs := make([]error, committers)
	start := time.Now()
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := db.Begin()
				if _, err := txn.Exec(fmt.Sprintf("INSERT INTO t%d VALUES ('k%d', %d)", g, i, i)); err != nil {
					errs[g] = err
					txn.Abort()
					return
				}
				if err := txn.Commit(); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, wal.Stats{}, err
		}
	}
	st := w.Stats()
	if err := w.Close(); err != nil {
		return 0, wal.Stats{}, err
	}
	return float64(per*committers) / elapsed.Seconds(), st, nil
}

// e19Measure produces the row for one committer count: baseline and
// grouped throughput over the same commit budget, plus the grouped run's
// batch shape.
func e19Measure(committers, totalCommits int) (e19Measurement, error) {
	baseOps, baseStats, err := e19Run(committers, totalCommits, 1)
	if err != nil {
		return e19Measurement{}, err
	}
	groupOps, groupStats, err := e19Run(committers, totalCommits, 0)
	if err != nil {
		return e19Measurement{}, err
	}
	mean := 0.0
	if groupStats.Batches > 0 {
		mean = float64(groupStats.BatchFrames) / float64(groupStats.Batches)
	}
	return e19Measurement{
		Committers:         committers,
		Commits:            totalCommits / committers * committers,
		BaselineCommitsSec: baseOps,
		GroupedCommitsSec:  groupOps,
		Speedup:            groupOps / baseOps,
		BaselineFsyncs:     baseStats.Fsyncs,
		GroupedFsyncs:      groupStats.Fsyncs,
		FsyncsSaved:        groupStats.FsyncsSaved,
		MeanBatchFrames:    mean,
		MaxBatchFrames:     groupStats.MaxBatch,
	}, nil
}

func e19Rows(quick bool) ([]e19Measurement, error) {
	totalCommits := 960
	if quick {
		totalCommits = 192
	}
	var rows []e19Measurement
	for _, c := range []int{1, 8, 64} {
		m, err := e19Measure(c, totalCommits)
		if err != nil {
			return nil, err
		}
		rows = append(rows, m)
	}
	return rows, nil
}

func runE19(quick bool) {
	rows, err := e19Rows(quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "E19: %v\n", err)
		return
	}
	t := &table{header: []string{"committers", "baseline c/s", "grouped c/s", "speedup", "fsyncs base→grp", "saved", "mean batch", "max batch"}}
	for _, m := range rows {
		t.add(fmt.Sprint(m.Committers),
			fmt.Sprintf("%.0f", m.BaselineCommitsSec),
			fmt.Sprintf("%.0f", m.GroupedCommitsSec),
			fmt.Sprintf("%.1fx", m.Speedup),
			fmt.Sprintf("%d→%d", m.BaselineFsyncs, m.GroupedFsyncs),
			fmt.Sprint(m.FsyncsSaved),
			fmt.Sprintf("%.1f", m.MeanBatchFrames),
			fmt.Sprint(m.MaxBatchFrames))
	}
	t.print()
}

// e19Snapshot is the record -snapshot -run E19 writes (BENCH_PR4.json):
// baseline is the fsync-per-frame commit path this PR started from,
// grouped the batched pipeline.
type e19Snapshot struct {
	Experiment  string           `json:"experiment"`
	Description string           `json:"description"`
	Rows        []e19Measurement `json:"rows"`
}

// writeSnapshotE19 measures E19 and writes the JSON record to path.
func writeSnapshotE19(path string, quick bool) error {
	rows, err := e19Rows(quick)
	if err != nil {
		return err
	}
	snap := e19Snapshot{
		Experiment:  "E19",
		Description: "durable commit throughput under SyncAlways: fsync-per-frame baseline vs group commit, by concurrent committer count",
		Rows:        rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
