// Command uddiserver runs a UDDI registry as an HTTP web service in one of
// the paper's three deployment models (§2.2, §4.1):
//
//	-mode two-party    the provider hosts its own registry (default)
//	-mode trusted      a trusted third-party discovery agency
//	-mode untrusted    an untrusted agency serving Merkle-authenticated
//	                   views signed by a built-in demo provider
//
// The server speaks the envelope protocol of internal/wsa on a single POST
// endpoint; GET /describe returns the service description. With -demo, the
// registry is pre-populated with synthetic entries.
package main

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/credential"
	"webdbsec/internal/debugz"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/policy"
	"webdbsec/internal/synth"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsa"
)

// registryMintGate is the registry's mint policy: only an identified
// sender whose wallet carried at least one verified credential from a
// trusted authority (-trustca) may hold a token. The wallet itself was
// fully evaluated by the minter before this decision runs.
type registryMintGate struct{}

func (registryMintGate) AllowMint(s *policy.Subject) bool {
	return s.ID != "" && s.Wallet != nil && len(s.Wallet.Credentials) > 0
}

// newRegistryAuth builds the token service for the envelope surface:
// wallets verify against the -trustca authorities, tokens verify against
// a fresh local keyring.
func newRegistryAuth(ttl time.Duration, trustCAs string) (*authtoken.Service, error) {
	ring, err := keymgmt.NewMintKeyring(2)
	if err != nil {
		return nil, err
	}
	cv := credential.NewVerifier()
	for _, spec := range strings.Split(trustCAs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, hexKey, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-trustca %q: want name=hexpubkey", spec)
		}
		raw, err := hex.DecodeString(hexKey)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("-trustca %q: bad ed25519 public key", spec)
		}
		cv.Trust(name, ed25519.PublicKey(raw))
	}
	minter, err := authtoken.NewMinter(ring, cv, registryMintGate{}, ttl)
	if err != nil {
		return nil, err
	}
	return &authtoken.Service{Gate: &authtoken.Gate{
		Verifier: authtoken.NewVerifier(ring, ttl, 0, 0),
		Minter:   minter,
	}}, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mode := flag.String("mode", "two-party", "deployment: two-party | trusted | untrusted")
	demo := flag.Int("demo", 25, "number of synthetic demo entries (0 = none)")
	debug := flag.Bool("debug", false, "expose /debug/pprof and /debug/vars (off by default)")
	tokenTTL := flag.Duration("tokenttl", 2*time.Minute, "auth-token lifetime for the POST /token fast path (0 disables token auth)")
	trustCAs := flag.String("trustca", "", "comma-separated name=hexpubkey credential authorities trusted for wallet qualification")
	flag.Parse()

	srv := &wsa.RegistryServer{Registry: uddi.NewRegistry(nil)}
	if *tokenTTL > 0 {
		auth, err := newRegistryAuth(*tokenTTL, *trustCAs)
		if err != nil {
			log.Fatalf("uddiserver: token auth: %v", err)
		}
		srv.Auth = auth
	}
	var cachedAgency *uddi.UntrustedAgency

	switch *mode {
	case "two-party", "trusted":
		// Both are served by the plain registry; in a real deployment they
		// differ in who operates the process, not in the code path.
	case "untrusted":
		base := policy.NewBase(nil)
		base.MustAdd(&policy.Policy{
			Name:    "entries-public",
			Subject: policy.SubjectSpec{IDs: []string{"*"}},
			Object:  policy.ObjectSpec{Doc: "*"},
			Priv:    policy.Read,
			Sign:    policy.Permit,
			Prop:    policy.Cascade,
		})
		base.MustAdd(&policy.Policy{
			Name:    "bindings-partner-only",
			Subject: policy.SubjectSpec{NotRoles: []string{"partner"}},
			Object:  policy.ObjectSpec{Doc: "*", Path: "//bindingTemplate"},
			Priv:    policy.Read,
			Sign:    policy.Deny,
			Prop:    policy.Cascade,
		})
		agency := uddi.NewUntrustedAgency(base)
		prov, err := uddi.NewProvider("demo-provider")
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *demo; i++ {
			e := synth.Entity(fmt.Sprintf("be-%05d", i), "logistics", 2)
			entry, err := prov.Sign(e)
			if err != nil {
				log.Fatal(err)
			}
			if err := agency.Publish(entry); err != nil {
				log.Fatal(err)
			}
		}
		srv.Agency = agency
		cachedAgency = agency
		fmt.Printf("untrusted agency: %d signed entries; provider key (hex) for requestor key directories:\n%x\n",
			*demo, prov.Signer().PublicKey())
	default:
		fmt.Fprintf(os.Stderr, "uddiserver: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *mode != "untrusted" && *demo > 0 {
		synth.Registry(1, srv.Registry, *demo)
		log.Printf("registry pre-populated with %d entries", *demo)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if srv.Auth != nil {
		mux.HandleFunc("/token", srv.Auth.MintHandler())
	}
	mux.HandleFunc("/describe", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, srv.Describe("http://"+r.Host+"/").ToXML().Canonical())
	})
	if *debug {
		debugz.Mount(mux)
		if cachedAgency != nil {
			debugz.Publish("uddiserver.decision_cache", func() any { return cachedAgency.CacheStats() })
		}
		if srv.Auth != nil {
			debugz.Publish("uddiserver.authtoken", func() any { return srv.Auth.Gate.Stats() })
		}
		log.Printf("uddiserver: debug endpoints enabled at /debug/pprof and /debug/vars")
	}
	// Serve with timeouts and graceful drain: the registry is the
	// federation's discovery backbone, and a wedged or slow client must
	// not take it down (nor a SIGTERM cut off in-flight inquiries).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("uddiserver (%s mode) listening on %s", *mode, *addr)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("uddiserver: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("uddiserver: shutdown: %v", err)
	}
}
