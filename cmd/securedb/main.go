// Command securedb runs the secure web database (internal/core) as an HTTP
// service: the full §3 pipeline — System R grants, row/column policies,
// privacy constraints, inference control and audit — in front of the
// relational substrate, with a demo medical schema.
//
// Endpoints:
//
//	POST /query    form fields: subject, roles (comma-separated), sql
//	POST /exec     same fields; for INSERT/UPDATE/DELETE
//	GET  /audit    the audit trail
//
// Example:
//
//	curl -d "subject=ana&roles=analyst&sql=SELECT age, zip FROM patients" \
//	     http://localhost:8081/query
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"webdbsec/internal/audit"
	"webdbsec/internal/authtoken"
	"webdbsec/internal/core"
	"webdbsec/internal/credential"
	"webdbsec/internal/debugz"
	"webdbsec/internal/inference"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/reldb"
	"webdbsec/internal/synth"
	"webdbsec/internal/sysr"
	"webdbsec/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	people := flag.Int("people", 200, "synthetic patients to load")
	debug := flag.Bool("debug", false, "expose /debug/pprof and /debug/vars (off by default)")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory only)")
	walSync := flag.String("walsync", "always", "WAL fsync policy with -data: always, interval or never")
	walBatch := flag.Int("walbatch", 1<<20, "group-commit batch cap in bytes (1 = fsync per append, no batching)")
	walMaxDelay := flag.Duration("walmaxdelay", 0, "max time the group-commit leader lingers to widen a batch (0 = ship immediately)")
	ckptEvery := flag.Duration("checkpoint", 0, "with -data, take a fuzzy checkpoint this often while serving (0 = only at shutdown)")
	nodeID := flag.String("nodeid", "", "cluster node ID; enables cluster mode with -replica and -peers")
	replicaAddr := flag.String("replica", "", "replication listen address (host:port) for cluster mode")
	peersSpec := flag.String("peers", "", "comma-separated id=host:port list of every OTHER cluster member")
	clusterSecret := flag.String("clustersecret", "securedb-demo", "shared secret deriving the demo cluster node identities")
	tokenTTL := flag.Duration("tokenttl", 2*time.Minute, "auth-token lifetime for the POST /token fast path (0 disables token auth)")
	flag.Parse()

	if *nodeID != "" || *replicaAddr != "" || *peersSpec != "" {
		runCluster(clusterOpts{
			nodeID:      *nodeID,
			replicaAddr: *replicaAddr,
			peersSpec:   *peersSpec,
			secret:      *clusterSecret,
			dataDir:     *dataDir,
			httpAddr:    *addr,
			people:      *people,
			debug:       *debug,
			tokenTTL:    *tokenTTL,
		})
		return
	}

	cfg := core.Config{}
	// Durable mode: the relational substrate and the audit chain live in
	// write-ahead logs under -data and survive restarts; the demo schema
	// is loaded only on first start.
	var dbWAL, auditWAL *wal.WAL
	fresh := true
	if *dataDir != "" {
		syncPolicy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		dbWAL, err = wal.Open(wal.Options{
			FS: wal.DirFS(filepath.Join(*dataDir, "db")), Policy: syncPolicy,
			MaxBatchBytes: *walBatch, MaxDelay: *walMaxDelay,
		})
		if err != nil {
			log.Fatalf("securedb: open db wal: %v", err)
		}
		auditWAL, err = wal.Open(wal.Options{
			FS: wal.DirFS(filepath.Join(*dataDir, "audit")), Policy: syncPolicy,
			MaxBatchBytes: *walBatch, MaxDelay: *walMaxDelay,
		})
		if err != nil {
			log.Fatalf("securedb: open audit wal: %v", err)
		}
		database, err := reldb.OpenDatabase(dbWAL)
		if err != nil {
			log.Fatalf("securedb: recover database: %v", err)
		}
		auditLog, err := audit.OpenLog(auditWAL)
		if err != nil {
			// A broken audit chain is a refusal to start, not a warning: the
			// accountability trail is the point.
			log.Fatalf("securedb: recover audit log: %v", err)
		}
		if _, ok := database.Table("patients"); ok {
			fresh = false
		}
		cfg.DB = reldb.NewSecureDB(database, nil)
		cfg.Audit = auditLog
		log.Printf("securedb: durable mode: data=%s sync=%s batch=%dB maxdelay=%s fresh=%v",
			*dataDir, syncPolicy, *walBatch, *walMaxDelay, fresh)
	}

	w := core.NewSecureWebDB(cfg)
	if err := setupDemo(w, *people, fresh); err != nil {
		log.Fatal(err)
	}

	// Token fast path: POST /token runs the full evaluation once and hands
	// back a stateless Ed25519 token; the serving endpoints then verify it
	// with one signature check instead of re-qualifying every request.
	var authSvc *authtoken.Service
	if *tokenTTL > 0 {
		var err error
		authSvc, err = newAuthService(*tokenTTL, func() *core.SecureWebDB { return w })
		if err != nil {
			log.Fatalf("securedb: token auth: %v", err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", handler(w, authSvc, true))
	mux.HandleFunc("/exec", handler(w, authSvc, false))
	mux.HandleFunc("/agg", aggHandler(w, authSvc))
	if authSvc != nil {
		mux.HandleFunc("/token", authSvc.MintHandler())
	}
	mux.HandleFunc("/explain", func(rw http.ResponseWriter, r *http.Request) {
		plan, err := w.DB().DB().Explain(r.FormValue("sql"))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(rw, plan)
	})
	mux.HandleFunc("/audit", func(rw http.ResponseWriter, r *http.Request) {
		for _, rec := range w.Audit().Records() {
			fmt.Fprintf(rw, "%4d %-10s %-8s %-60s %s\n", rec.Seq, rec.Actor, rec.Action, rec.Object, rec.Outcome)
		}
	})
	if *debug {
		debugz.Mount(mux)
		debugz.Publish("securedb.parse_cache", func() any { return w.DB().ParseCacheStats() })
		if authSvc != nil {
			debugz.Publish("securedb.authtoken", func() any { return authSvc.Gate.Stats() })
		}
		if dbWAL != nil {
			debugz.Publish("securedb.wal.db", func() any { return dbWAL.Stats() })
			debugz.Publish("securedb.wal.audit", func() any { return auditWAL.Stats() })
		}
		log.Print("securedb: debug endpoints enabled at /debug/pprof and /debug/vars")
	}
	// Serve with timeouts — a slow-loris client or wedged handler must
	// not accumulate goroutines forever — and drain gracefully on
	// SIGINT/SIGTERM so in-flight queries finish.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Periodic fuzzy checkpoints: the checkpoint pins a committed version
	// and streams it out while transactions keep committing, so taking one
	// mid-traffic never blocks or fails — it only bounds restart replay.
	if dbWAL != nil && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := w.DB().DB().Checkpoint(); err != nil {
						log.Printf("securedb: periodic checkpoint: %v", err)
					}
				}
			}
		}()
		log.Printf("securedb: fuzzy checkpoint every %s", *ckptEvery)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("securedb listening on %s (demo schema: patients(name, zip, age, disease))", *addr)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("securedb: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("securedb: shutdown: %v", err)
	}
	// Flush durable state: checkpoint the database so the next start
	// replays nothing. The checkpoint is fuzzy, so it succeeds even if a
	// straggling transaction is still in flight — the WAL tail keeps
	// whatever the snapshot fence excludes. Failures are logged, not
	// fatal — the WAL already holds everything a redo needs.
	if dbWAL != nil {
		if err := w.DB().DB().Checkpoint(); err != nil {
			log.Printf("securedb: checkpoint: %v", err)
		}
		if err := dbWAL.Close(); err != nil {
			log.Printf("securedb: close db wal: %v", err)
		}
		if err := auditWAL.Close(); err != nil {
			log.Printf("securedb: close audit wal: %v", err)
		}
	}
}

// grantMintGate is the MintGate behind every securedb mint: the System R
// grant catalog of the currently-serving pipeline. A subject may hold a
// token only if it owns the demo table or holds a live Select grant on it
// — the same catalog every query consults, so the token attests a real
// policy decision, not a side channel around one. current is indirect so
// the cluster's gate follows promotions and demotions.
type grantMintGate struct {
	current func() *core.SecureWebDB
}

func (g grantMintGate) AllowMint(s *policy.Subject) bool {
	w := g.current()
	if w == nil {
		return false
	}
	return w.DB().Grants().HasPrivilege(s.ID, sysr.Select, "patients")
}

// newAuthService builds the full (mint-capable) token service a leader or
// single node runs: verifier and minter over a fresh keyring, gated on
// the live grant catalog. The keyring is returned to the caller through
// the service's Gate for cluster key export.
func newAuthService(ttl time.Duration, current func() *core.SecureWebDB) (*authtoken.Service, error) {
	ring, err := keymgmt.NewMintKeyring(2)
	if err != nil {
		return nil, err
	}
	return newAuthServiceWithRing(ring, ttl, current)
}

func newAuthServiceWithRing(ring *keymgmt.MintKeyring, ttl time.Duration, current func() *core.SecureWebDB) (*authtoken.Service, error) {
	minter, err := authtoken.NewMinter(ring, credential.NewVerifier(), grantMintGate{current: current}, ttl)
	if err != nil {
		return nil, err
	}
	return &authtoken.Service{Gate: &authtoken.Gate{
		Verifier: authtoken.NewVerifier(ring, ttl, 0, 0),
		Minter:   minter,
	}}, nil
}

// authSubject resolves the request's serving subject: through the token
// gate when the surface has one (fast path, wallet fallback, or legacy
// passthrough), straight from the form fields when token auth is off.
func authSubject(rw http.ResponseWriter, r *http.Request, auth *authtoken.Service) (*policy.Subject, bool) {
	if auth != nil {
		return auth.Authorize(rw, r)
	}
	subject := &policy.Subject{ID: r.FormValue("subject")}
	if roles := r.FormValue("roles"); roles != "" {
		subject.Roles = strings.Split(roles, ",")
	}
	return subject, true
}

func handler(w *core.SecureWebDB, auth *authtoken.Service, isQuery bool) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		subject, ok := authSubject(rw, r, auth)
		if !ok {
			return
		}
		sql := r.FormValue("sql")
		if subject.ID == "" || sql == "" {
			http.Error(rw, "need subject and sql", http.StatusBadRequest)
			return
		}
		if isQuery {
			out, err := w.Query(subject, sql)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusForbidden)
				return
			}
			fmt.Fprintln(rw, strings.Join(out.Result.Columns, "\t"))
			for _, row := range out.Result.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.String()
				}
				fmt.Fprintln(rw, strings.Join(cells, "\t"))
			}
			if len(out.MaskedColumns) > 0 {
				fmt.Fprintf(rw, "# masked by privacy constraints: %s\n", strings.Join(out.MaskedColumns, ", "))
			}
			if len(out.Derived) > 0 {
				fmt.Fprintf(rw, "# inference controller notes you can now derive: %s\n", strings.Join(out.Derived, ", "))
			}
			return
		}
		res, err := w.Execute(subject, sql)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusForbidden)
			return
		}
		fmt.Fprintf(rw, "ok, %d row(s) affected\n", res.Affected)
	}
}

// aggHandler serves statistical queries through the secure aggregate
// path: the subject only ever aggregates over its visible rows.
func aggHandler(w *core.SecureWebDB, auth *authtoken.Service) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		subject, ok := authSubject(rw, r, auth)
		if !ok {
			return
		}
		res, err := w.DB().ExecAggregateSecure(subject, r.FormValue("sql"))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusForbidden)
			return
		}
		fmt.Fprintln(rw, strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(rw, strings.Join(cells, "\t"))
		}
	}
}

// setupDemo loads the demo schema: a patients table, analyst grants, a
// row policy, privacy constraints ({name, disease} private; {zip, disease}
// semi-private for researchers) and the re-identification inference rule.
// When fresh is false (durable restart) the table and rows already exist
// and only the in-memory layers — grants, policies, constraints, rules —
// are reinstalled.
func setupDemo(w *core.SecureWebDB, people int, fresh bool) error {
	dba := &policy.Subject{ID: "dba"}
	if fresh {
		if err := w.DB().CreateTable(dba, "CREATE TABLE patients (name TEXT, zip TEXT, age INT, disease TEXT)"); err != nil {
			return err
		}
		for _, p := range synth.People(1, people) {
			stmt := fmt.Sprintf("INSERT INTO patients VALUES (%s, %s, %d, %s)",
				reldb.QuoteString(p.Name), reldb.QuoteString(p.Zip), p.Age, reldb.QuoteString(p.Disease))
			if _, err := w.DB().Exec(dba, stmt); err != nil {
				return err
			}
		}
	} else {
		// The table and rows were recovered from the WAL, but the grant
		// catalog is in-memory demo configuration: re-register ownership so
		// the grants below have an object to attach to.
		if err := w.DB().Grants().CreateObject("patients", dba.ID); err != nil {
			return err
		}
	}
	for _, grantee := range []string{"ana", "res"} {
		for _, priv := range []sysr.Privilege{sysr.Select} {
			if err := w.DB().Grants().Grant("dba", grantee, priv, "patients", false); err != nil {
				return err
			}
		}
	}
	pred := reldb.MustParse("SELECT * FROM patients WHERE age >= 0").(*reldb.SelectStmt).Where
	if err := w.DB().AddRowPolicy(&reldb.RowPolicy{
		Name: "analysts-see-all", Table: "patients",
		Subject: policy.SubjectSpec{Roles: []string{"analyst", "researcher"}}, Pred: pred,
	}); err != nil {
		return err
	}
	if err := w.Privacy().Add(&privacy.Constraint{
		Name: "name-disease-private", Attrs: []string{"name", "disease"}, Class: privacy.Private,
	}); err != nil {
		return err
	}
	if err := w.Privacy().Add(&privacy.Constraint{
		Name: "zip-disease-research", Attrs: []string{"zip", "disease"},
		Class: privacy.SemiPrivate, NeedToKnow: []string{"researcher"},
	}); err != nil {
		return err
	}
	if err := w.Privacy().Add(&privacy.Constraint{
		Name: "identity-disease-private", Attrs: []string{"identity", "disease"}, Class: privacy.Private,
	}); err != nil {
		return err
	}
	return w.Inference().AddRule(&inference.Rule{
		Name: "reidentification", Body: []string{"name", "zip"}, Head: "identity",
	})
}
