// Cluster mode: with -nodeid, -replica and -peers, securedb joins a
// WAL-shipped replication group. The elected leader serves the full
// read-write pipeline and every write ack carries the cluster durability
// verdict; followers replay the shipped log and serve reads through the
// same access-control gate, refusing writes with a redirect hint to the
// leader. Failover is automatic — when the leader dies, the survivors
// elect by an explicit quorum vote (candidates ordered by tail epoch,
// then durable LSN; one durable grant per node per epoch) and the winner
// promotes its replica in place.
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"webdbsec/internal/audit"
	"webdbsec/internal/authtoken"
	"webdbsec/internal/core"
	"webdbsec/internal/debugz"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/reldb"
	"webdbsec/internal/replication"
	"webdbsec/internal/wal"
)

// clusterOpts carries the parsed cluster flags.
type clusterOpts struct {
	nodeID      string
	replicaAddr string
	peersSpec   string
	// secret derives every node's signing key; leaking it leaks the
	// whole cluster's identities.
	//
	// seclint:secret
	secret   string
	dataDir  string
	httpAddr string
	people   int
	debug    bool
	tokenTTL time.Duration
}

// parsePeers decodes "id=host:port,id=host:port" into the peer map.
func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("peer %q listed twice", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers %q names no peers", spec)
	}
	return peers, nil
}

// demoNodeKey derives a node's ed25519 identity from the shared cluster
// secret, so every member can compute every peer's public key without a
// key-distribution step. Demo-grade: a production deployment provisions
// per-node keys and a credential.Verifier-backed join policy instead.
func demoNodeKey(secret, id string) ed25519.PrivateKey {
	seed := sha256.Sum256([]byte(secret + "|" + id))
	return ed25519.NewKeyFromSeed(seed[:])
}

// runCluster is the cluster-mode main loop. It blocks until shutdown.
func runCluster(o clusterOpts) {
	if o.nodeID == "" || o.replicaAddr == "" || o.peersSpec == "" {
		log.Fatal("securedb: cluster mode needs all of -nodeid, -replica and -peers")
	}
	if o.dataDir == "" {
		log.Fatal("securedb: cluster mode needs -data (the WAL is what gets replicated)")
	}
	peers, err := parsePeers(o.peersSpec)
	if err != nil {
		log.Fatalf("securedb: %v", err)
	}
	if _, self := peers[o.nodeID]; self {
		log.Fatalf("securedb: -peers must list every OTHER node, not %s itself", o.nodeID)
	}

	// The replicated log must be SyncAlways: an Append return doubles as
	// the durability half of the commit verdict the ack protocol ships.
	dbWAL, err := wal.Open(wal.Options{
		FS: wal.DirFS(filepath.Join(o.dataDir, "db")), Policy: wal.SyncAlways,
	})
	if err != nil {
		log.Fatalf("securedb: open db wal: %v", err)
	}
	auditWAL, err := wal.Open(wal.Options{
		FS: wal.DirFS(filepath.Join(o.dataDir, "audit")), Policy: wal.SyncAlways,
	})
	if err != nil {
		log.Fatalf("securedb: open audit wal: %v", err)
	}
	auditLog, err := audit.OpenLog(auditWAL)
	if err != nil {
		log.Fatalf("securedb: recover audit log: %v", err)
	}

	// Every node starts as a follower over its local log; the election
	// decides who promotes.
	follower, err := reldb.OpenFollower(dbWAL)
	if err != nil {
		log.Fatalf("securedb: open follower: %v", err)
	}
	keys := make(map[string]ed25519.PublicKey, len(peers))
	for id := range peers {
		keys[id] = demoNodeKey(o.secret, id).Public().(ed25519.PublicKey)
	}

	r := &replicaSet{nodeID: o.nodeID, w: dbWAL, people: o.people, auditLog: auditLog}
	r.follower.Store(follower)
	r.rebuildFollowerServing()

	// Token auth, cluster form: each node carries its own mint keyring (it
	// only signs while leading) plus a PublicKeySet fed by the replication
	// stream, so a token minted by any leadership verifies on any replica.
	// The leader's gate mints and rolls successors; a follower's gate runs
	// verify-only (negative replay capacity: it cannot sign successors, so
	// it must not consume nonces either).
	if o.tokenTTL > 0 {
		ring, err := keymgmt.NewMintKeyring(2)
		if err != nil {
			log.Fatalf("securedb: token auth: %v", err)
		}
		r.ring = ring
		r.keyset = keymgmt.NewPublicKeySet()
		r.leaderAuth, err = newAuthServiceWithRing(ring, o.tokenTTL, r.current)
		if err != nil {
			log.Fatalf("securedb: token auth: %v", err)
		}
		r.followerAuth = &authtoken.Service{Gate: &authtoken.Gate{
			Verifier: authtoken.NewVerifier(r.keyset, o.tokenTTL, 0, -1),
		}}
	}

	cfg := replication.Config{
		NodeID:     o.nodeID,
		Addr:       o.replicaAddr,
		Peers:      peers,
		Identity:   demoNodeKey(o.secret, o.nodeID),
		PeerKeys:   keys,
		WAL:        dbWAL,
		MetaStore:  wal.DirFS(filepath.Join(o.dataDir, "cluster")),
		Applier:    follower,
		AppliedLSN: follower.AppliedLSN(),
		OnLeader:   r.onLeader,
		OnDemote:   r.onDemote,
		Logf:       log.Printf,
	}
	if r.ring != nil {
		cfg.ExportAuthKeys = r.ring.ExportPublic
		cfg.InstallAuthKeys = r.keyset.Install
	}
	node, err := replication.NewNode(cfg)
	if err != nil {
		log.Fatalf("securedb: replication: %v", err)
	}
	r.node = node
	if err := node.Start(); err != nil {
		log.Fatalf("securedb: replication: %v", err)
	}
	log.Printf("securedb: cluster node %s replicating on %s, peers %v", o.nodeID, o.replicaAddr, peers)

	mux := http.NewServeMux()
	mux.HandleFunc("/query", r.queryHandler())
	mux.HandleFunc("/exec", r.execHandler())
	mux.HandleFunc("/agg", r.aggHandler())
	mux.HandleFunc("/audit", func(rw http.ResponseWriter, req *http.Request) {
		for _, rec := range auditLog.Records() {
			fmt.Fprintf(rw, "%4d %-10s %-8s %-60s %s\n", rec.Seq, rec.Actor, rec.Action, rec.Object, rec.Outcome)
		}
	})
	mux.HandleFunc("/token", func(rw http.ResponseWriter, req *http.Request) {
		// Minting is leader-only: the mint keyring's private half never
		// leaves the node that signs with it, and followers hold only the
		// replicated public set.
		if r.leaderAuth == nil {
			http.Error(rw, "token auth disabled (-tokenttl 0)", http.StatusNotFound)
			return
		}
		if node.Role() != replication.LeaderRole || !r.leading.Load() {
			r.notLeader(rw)
			return
		}
		r.leaderAuth.MintHandler()(rw, req)
	})
	mux.HandleFunc("/cluster", func(rw http.ResponseWriter, req *http.Request) {
		s := node.Snapshot()
		fmt.Fprintf(rw, "node %s role=%s epoch=%d leader=%s commit=%d durable=%d applied=%d\n",
			s.NodeID, s.Role, s.Epoch, s.LeaderID, s.CommitLSN, s.DurableLSN, s.AppliedLSN)
		for id, f := range s.Followers {
			fmt.Fprintf(rw, "follower %s acked=%d queue=%d lastheard=%s\n", id, f.AckedLSN, f.QueueLen, f.LastHeard)
		}
	})
	if o.debug {
		debugz.Mount(mux)
		debugz.Publish("securedb.replication", func() any { return node.Snapshot() })
		if r.leaderAuth != nil {
			debugz.Publish("securedb.authtoken", func() any {
				return map[string]any{
					"leading": r.leading.Load(),
					"leader":  r.leaderAuth.Gate.Stats(),
					"replica": r.followerAuth.Gate.Stats(),
				}
			})
		}
		debugz.Publish("securedb.wal.db", func() any { return dbWAL.Stats() })
		debugz.Publish("securedb.wal.audit", func() any { return auditWAL.Stats() })
		log.Print("securedb: debug endpoints enabled at /debug/pprof and /debug/vars")
	}

	srv := &http.Server{
		Addr:              o.httpAddr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("securedb listening on %s (cluster node %s)", o.httpAddr, o.nodeID)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("securedb: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("securedb: shutdown: %v", err)
	}
	node.Stop()
	if err := dbWAL.Close(); err != nil {
		log.Printf("securedb: close db wal: %v", err)
	}
	if err := auditWAL.Close(); err != nil {
		log.Printf("securedb: close audit wal: %v", err)
	}
}

// replicaSet is the serving state machine around the replication node:
// an atomically-swapped SecureWebDB rebuilt on every role change, so
// request handlers always see a coherent (database, policy) pair.
type replicaSet struct {
	nodeID   string
	node     *replication.Node
	w        *wal.WAL
	people   int
	auditLog *audit.Log

	// Token-auth state (nil when -tokenttl 0): ring signs while leading,
	// keyset verifies what the replication stream shipped, and the two
	// pre-built gates are selected per request by role.
	ring         *keymgmt.MintKeyring
	keyset       *keymgmt.PublicKeySet
	leaderAuth   *authtoken.Service
	followerAuth *authtoken.Service

	follower atomic.Pointer[reldb.Follower]
	serving  atomic.Pointer[core.SecureWebDB]
	leading  atomic.Bool
}

// activeAuth picks the gate for the node's current role: mint-capable
// while leading, verify-only otherwise. Nil when token auth is off.
func (r *replicaSet) activeAuth() *authtoken.Service {
	if r.leaderAuth == nil {
		return nil
	}
	if r.leading.Load() {
		return r.leaderAuth
	}
	return r.followerAuth
}

// rebuildFollowerServing points the pipeline at the follower's replayed
// materialization: reads on a replica traverse the same grant catalog,
// row/column policies, privacy constraints and inference control as on
// the leader — the provably-equal-views requirement.
func (r *replicaSet) rebuildFollowerServing() {
	f := r.follower.Load()
	if f == nil {
		r.serving.Store(nil)
		return
	}
	sdb := reldb.NewSecureDB(f.DB(), nil)
	w := core.NewSecureWebDB(core.Config{DB: sdb, Audit: r.auditLog})
	if err := setupDemo(w, r.people, false); err != nil {
		log.Printf("securedb: replica policy install: %v", err)
		r.serving.Store(nil)
		return
	}
	r.serving.Store(w)
}

// onLeader promotes the follower into the writable database and rebuilds
// the serving pipeline around it; a brand-new cluster's first leader also
// loads the demo schema (which replicates to everyone through the WAL).
func (r *replicaSet) onLeader() {
	f := r.follower.Load()
	if f == nil {
		log.Print("securedb: promote: no follower state")
		return
	}
	db, err := f.Promote()
	if err != nil {
		log.Printf("securedb: promote: %v", err)
		return
	}
	r.follower.Store(nil)
	_, hasDemo := db.Table("patients")
	sdb := reldb.NewSecureDB(db, nil)
	w := core.NewSecureWebDB(core.Config{DB: sdb, Audit: r.auditLog})
	if err := setupDemo(w, r.people, !hasDemo); err != nil {
		log.Printf("securedb: leader demo setup: %v", err)
		return
	}
	r.serving.Store(w)
	// Seed the local public key set with this node's own export before
	// taking traffic: tokens this leadership mints must verify here even
	// after a later demotion, and the replication stream only ships keys
	// peer-to-peer, never self-to-self.
	if r.ring != nil {
		data, _ := r.ring.ExportPublic()
		if err := r.keyset.Install(data); err != nil {
			log.Printf("securedb: install own mint keys: %v", err)
		}
	}
	r.leading.Store(true)
	log.Printf("securedb: %s promoted to leader", r.nodeID)
}

// onDemote drops leadership and rebuilds the replica state machine from
// the local WAL, exactly like a restart.
func (r *replicaSet) onDemote() {
	r.leading.Store(false)
	f, err := reldb.OpenFollower(r.w)
	if err != nil {
		log.Printf("securedb: demote: reopen follower: %v", err)
		r.follower.Store(nil)
		r.serving.Store(nil)
		return
	}
	r.follower.Store(f)
	r.node.SetApplier(f, f.AppliedLSN())
	r.rebuildFollowerServing()
	log.Printf("securedb: %s demoted to follower", r.nodeID)
}

// current returns the serving pipeline, rebuilding a follower's lazily if
// a previous rebuild failed.
func (r *replicaSet) current() *core.SecureWebDB {
	if w := r.serving.Load(); w != nil {
		return w
	}
	if !r.leading.Load() {
		r.rebuildFollowerServing()
	}
	return r.serving.Load()
}

// notLeader writes the standard redirect hint for writes on a replica.
func (r *replicaSet) notLeader(rw http.ResponseWriter) {
	leader := r.node.LeaderID()
	if leader == "" {
		leader = "unknown (election in progress)"
	}
	http.Error(rw, fmt.Sprintf("not the leader; writes go to %s", leader), http.StatusServiceUnavailable)
}

func (r *replicaSet) queryHandler() http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		w := r.current()
		if w == nil {
			http.Error(rw, "replica warming up", http.StatusServiceUnavailable)
			return
		}
		handler(w, r.activeAuth(), true)(rw, req)
	}
}

func (r *replicaSet) aggHandler() http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		w := r.current()
		if w == nil {
			http.Error(rw, "replica warming up", http.StatusServiceUnavailable)
			return
		}
		aggHandler(w, r.activeAuth())(rw, req)
	}
}

// execHandler accepts writes only on the leader, and only acknowledges
// once the cluster durability verdict is in: the written records are
// durable on a quorum, so no failover can roll this ack back.
func (r *replicaSet) execHandler() http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		if r.node.Role() != replication.LeaderRole || !r.leading.Load() {
			r.notLeader(rw)
			return
		}
		w := r.current()
		if w == nil {
			http.Error(rw, "leader warming up", http.StatusServiceUnavailable)
			return
		}
		rec := httpRecorder{header: make(http.Header)}
		handler(w, r.leaderAuth, false)(&rec, req)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		if rec.status < 400 {
			// The statement is in the local log; hold the success ack until
			// the records are durable on a quorum, so no failover can roll
			// this response back.
			ctx, cancel := context.WithTimeout(req.Context(), 5*time.Second)
			defer cancel()
			if err := r.node.WaitCommitted(ctx, r.w.LastLSN()); err != nil {
				http.Error(rw, fmt.Sprintf("commit not acknowledged by quorum: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		for k, vs := range rec.header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(rec.status)
		rw.Write(rec.buf)
	}
}

// httpRecorder buffers the whole response so the quorum verdict can veto
// a would-be success ack.
type httpRecorder struct {
	header http.Header
	status int
	buf    []byte
}

func (h *httpRecorder) Header() http.Header { return h.header }

func (h *httpRecorder) WriteHeader(status int) {
	if h.status == 0 {
		h.status = status
	}
}

func (h *httpRecorder) Write(b []byte) (int, error) {
	if h.status == 0 {
		h.status = http.StatusOK
	}
	h.buf = append(h.buf, b...)
	return len(b), nil
}
