package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/core"
)

// End-to-end over the real HTTP surface: mint at /token (gated on the
// System R catalog), query on the fast path, and watch the token roll.

func newTokenTestServer(t *testing.T) (*httptest.Server, *authtoken.Service) {
	t.Helper()
	w := core.NewSecureWebDB(core.Config{})
	if err := setupDemo(w, 25, true); err != nil {
		t.Fatalf("demo: %v", err)
	}
	svc, err := newAuthService(time.Minute, func() *core.SecureWebDB { return w })
	if err != nil {
		t.Fatalf("auth service: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", handler(w, svc, true))
	mux.HandleFunc("/token", svc.MintHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, svc
}

func mintToken(t *testing.T, ts *httptest.Server, subject, roles string) (string, int) {
	t.Helper()
	resp, err := http.PostForm(ts.URL+"/token", url.Values{"subject": {subject}, "roles": {roles}})
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode
	}
	var mr authtoken.MintResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("mint body: %v", err)
	}
	return mr.Token, resp.StatusCode
}

func queryWithToken(t *testing.T, ts *httptest.Server, subject, roles, token string) (*http.Response, string) {
	t.Helper()
	form := url.Values{"subject": {subject}, "roles": {roles}, "sql": {"SELECT age, zip FROM patients"}}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if token != "" {
		req.Header.Set(authtoken.TokenHeader, token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, resp.Header.Get(authtoken.TokenHeader)
}

func TestMintThenQueryFastPath(t *testing.T) {
	ts, svc := newTokenTestServer(t)
	tok, status := mintToken(t, ts, "ana", "analyst")
	if status != http.StatusOK || tok == "" {
		t.Fatalf("mint: status=%d token=%q", status, tok)
	}
	// Three hops on the fast path; each response rolls the token.
	for i := 0; i < 3; i++ {
		resp, next := queryWithToken(t, ts, "ana", "analyst", tok)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		if next == "" || next == tok {
			t.Fatalf("query %d: token did not roll (next=%q)", i, next)
		}
		tok = next
	}
	st := svc.Gate.Stats()
	if st.FastPath != 3 || st.Mint.Minted != 4 { // 1 explicit + 3 successors
		t.Fatalf("stats = %+v, want 3 fast / 4 minted", st)
	}
}

func TestMintRefusedWithoutGrant(t *testing.T) {
	ts, _ := newTokenTestServer(t)
	// "mallory" holds no Select grant on patients: the MintGate (the same
	// grant catalog queries consult) refuses the token outright.
	if _, status := mintToken(t, ts, "mallory", "analyst"); status != http.StatusForbidden {
		t.Fatalf("ungranted mint: status = %d, want 403", status)
	}
}

func TestStaleTokenFallsBackToLegacyRefusal(t *testing.T) {
	ts, svc := newTokenTestServer(t)
	tok, _ := mintToken(t, ts, "ana", "analyst")
	// Replay: present the same token twice; the second hop is consumed.
	if resp, _ := queryWithToken(t, ts, "ana", "analyst", tok); resp.StatusCode != http.StatusOK {
		t.Fatalf("first use: status %d", resp.StatusCode)
	}
	resp, _ := queryWithToken(t, ts, "ana", "analyst", tok)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed token: status = %d, want 401", resp.StatusCode)
	}
	if st := svc.Gate.Stats(); st.Verifier.Replayed != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 replayed / 1 rejected", st)
	}
}

func TestLegacyFormStillServed(t *testing.T) {
	ts, svc := newTokenTestServer(t)
	resp, _ := queryWithToken(t, ts, "ana", "analyst", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy query: status %d", resp.StatusCode)
	}
	if st := svc.Gate.Stats(); st.Legacy != 1 {
		t.Fatalf("stats = %+v, want 1 legacy", st)
	}
}
