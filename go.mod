module webdbsec

go 1.22
