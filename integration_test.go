// Integration tests: end-to-end scenarios crossing module boundaries the
// way the paper's architecture does — provider → discovery agency →
// requestor over HTTP with verification; owner → broadcast encryption →
// subscriber; database → privacy → inference → audit; and the full
// semantic stack under a changing security situation.
package webdbsec

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/authorx"
	"webdbsec/internal/core"
	"webdbsec/internal/inference"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/mining"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/synth"
	"webdbsec/internal/sysr"
	"webdbsec/internal/uddi"
	"webdbsec/internal/wsa"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// TestIntegrationThirdPartyUDDIOverHTTP: provider signs entries, untrusted
// agency serves them over the envelope protocol, requestors with different
// roles get different VERIFIED views, and a tampering agency is caught end
// to end.
func TestIntegrationThirdPartyUDDIOverHTTP(t *testing.T) {
	prov, err := uddi.NewProvider("acme-provider")
	if err != nil {
		t.Fatal(err)
	}
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: "*"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name:    "bindings-partners",
		Subject: policy.SubjectSpec{NotRoles: []string{"partner"}},
		Object:  policy.ObjectSpec{Doc: "*", Path: "//bindingTemplate"},
		Priv:    policy.Read, Sign: policy.Deny, Prop: policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	for i := 0; i < 10; i++ {
		e := synth.Entity(entityKey(i), "logistics", 2)
		entry, err := prov.Sign(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := agency.Publish(entry); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(&wsa.RegistryServer{Registry: uddi.NewRegistry(nil), Agency: agency})
	defer ts.Close()

	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(prov.Signer())

	ctx := context.Background()
	visitor := &wsa.Client{Endpoint: ts.URL, Sender: "v"}
	res, err := visitor.QueryAuthenticated(ctx, entityKey(3), dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.View.Canonical(), "bindingTemplate") {
		t.Error("visitor sees bindings")
	}
	partner := &wsa.Client{Endpoint: ts.URL, Sender: "p", Roles: []string{"partner"}}
	res, err = partner.QueryAuthenticated(ctx, entityKey(3), dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := res.Entity()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Services) != 2 || len(e.Services[0].Bindings) != 1 {
		t.Errorf("partner entity shape: %+v", e)
	}
}

func entityKey(i int) string {
	return "be-0000" + string(rune('0'+i))
}

// TestIntegrationKeyServiceClosesTheLoop: the requestor has NO out-of-band
// provider key; it locates the key through the XKMS-style key service,
// builds its directory from it, and verifies an untrusted agency's answer.
// After the provider revokes its key, a fresh requestor no longer accepts
// answers signed with it.
func TestIntegrationKeyServiceClosesTheLoop(t *testing.T) {
	prov, err := uddi.NewProvider("acme-provider")
	if err != nil {
		t.Fatal(err)
	}
	// Provider registers its verification key with the key service.
	ks := keymgmt.NewService()
	if err := ks.Register("acme", "acme-provider", prov.Signer().PublicKey()); err != nil {
		t.Fatal(err)
	}
	// Untrusted agency hosts the signed entry.
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "public",
		Subject: policy.SubjectSpec{IDs: []string{"*"}},
		Object:  policy.ObjectSpec{Doc: "*"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	agency := uddi.NewUntrustedAgency(base)
	entry, err := prov.Sign(synth.Entity("be-key-demo", "finance", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := agency.Publish(entry); err != nil {
		t.Fatal(err)
	}
	// Requestor: locate key -> build directory -> query -> verify.
	dir := ks.Directory("acme-provider")
	res, err := agency.Query(&policy.Subject{ID: "r"}, "be-key-demo")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(dir); err != nil {
		t.Fatalf("verification via key service failed: %v", err)
	}
	// Provider revokes; fresh requestors reject.
	if err := ks.Revoke("acme", "acme-provider"); err != nil {
		t.Fatal(err)
	}
	freshDir := ks.Directory("acme-provider")
	if err := res.Verify(freshDir); err == nil {
		t.Error("answer verified against a revoked key binding")
	}
}

// TestIntegrationBroadcastEqualsTrustedViews: for a mixed policy base and
// several subjects, the Author-X encrypted broadcast decrypts to exactly
// the view a trusted server would compute — subject by subject.
func TestIntegrationBroadcastEqualsTrustedViews(t *testing.T) {
	store := xmldoc.NewStore()
	doc := synth.Hospital(99, 30)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name: "staff", Subject: policy.SubjectSpec{Roles: []string{"staff"}},
		Object: policy.ObjectSpec{Doc: doc.Name},
		Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name: "no-ssn", Subject: policy.SubjectSpec{NotRoles: []string{"hr"}},
		Object: policy.ObjectSpec{Doc: doc.Name, Path: "//ssn"},
		Priv:   policy.Read, Sign: policy.Deny, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name: "hr-ssn", Subject: policy.SubjectSpec{Roles: []string{"hr"}},
		Object: policy.ObjectSpec{Doc: doc.Name, Path: "//ssn"},
		Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	eng := accessctl.NewEngine(store, base)
	pub := authorx.NewPublisher(eng)
	diss := authorx.NewDissemination(pub)
	subjects := []*policy.Subject{
		{ID: "n1", Roles: []string{"staff"}},
		{ID: "h1", Roles: []string{"staff", "hr"}},
		{ID: "x1"},
	}
	for _, s := range subjects {
		diss.Subscribe(s)
	}
	dels, err := diss.Push(doc.Name)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]authorx.Delivery{}
	for _, d := range dels {
		byID[d.SubjectID] = d
	}
	for _, s := range subjects {
		got, err := byID[s.ID].Open()
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		want := eng.View(doc.Name, s, policy.Read)
		switch {
		case want == nil && got != nil:
			t.Errorf("%s: broadcast over-grants", s.ID)
		case want != nil && got == nil:
			t.Errorf("%s: broadcast under-grants", s.ID)
		case want != nil && got != nil && want.Canonical() != got.Canonical():
			t.Errorf("%s: broadcast view differs from trusted view", s.ID)
		}
	}
}

// TestIntegrationStatisticalPrivacyPipeline: researchers mine aggregates
// and patterns from a medical table; privacy constraints and the inference
// controller gate what leaves, and the audit chain stays intact.
func TestIntegrationStatisticalPrivacyPipeline(t *testing.T) {
	w := core.NewSecureWebDB(core.Config{})
	dba := &policy.Subject{ID: "dba"}
	if err := w.DB().CreateTable(dba, "CREATE TABLE patients (name TEXT, zip TEXT, age INT, disease TEXT)"); err != nil {
		t.Fatal(err)
	}
	people := synth.People(5, 300)
	for _, p := range people {
		if _, err := w.DB().Exec(dba, "INSERT INTO patients VALUES ('"+p.Name+"', '"+p.Zip+"', "+itoa(p.Age)+", '"+p.Disease+"')"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.DB().Grants().Grant("dba", "res", sysr.Select, "patients", false); err != nil {
		t.Fatal(err)
	}
	pred := reldb.MustParse("SELECT * FROM patients WHERE age >= 0").(*reldb.SelectStmt).Where
	w.DB().AddRowPolicy(&reldb.RowPolicy{
		Name: "res-all", Table: "patients",
		Subject: policy.SubjectSpec{Roles: []string{"researcher"}}, Pred: pred,
	})
	w.Privacy().Add(&privacy.Constraint{
		Name: "nd", Attrs: []string{"name", "disease"}, Class: privacy.Private,
	})
	w.Inference().AddRule(&inference.Rule{Name: "reid", Body: []string{"name", "zip"}, Head: "identity"})
	w.Privacy().Add(&privacy.Constraint{
		Name: "id", Attrs: []string{"identity", "disease"}, Class: privacy.Private,
	})
	res := &policy.Subject{ID: "res", Roles: []string{"researcher"}}

	// Aggregates over visible rows work.
	agg, err := w.DB().ExecAggregateSecure(res, "SELECT COUNT(*), AVG(age) FROM patients GROUP BY disease")
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Rows) < 3 {
		t.Errorf("disease groups = %d", len(agg.Rows))
	}
	// Row query with the private combination gets masked.
	out, err := w.Query(res, "SELECT name, disease FROM patients LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MaskedColumns) != 1 {
		t.Errorf("masked = %v", out.MaskedColumns)
	}
	// The inference channel across queries is closed.
	if _, err := w.Query(res, "SELECT name, zip FROM patients LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query(res, "SELECT disease FROM patients LIMIT 5"); err == nil {
		t.Error("inference channel open")
	}
	if w.Audit().Verify() != -1 {
		t.Error("audit chain broken")
	}
}

// TestIntegrationMinedPatternsGated: mining runs on microdata and the
// privacy controller decides per-requestor which patterns ship.
func TestIntegrationMinedPatternsGated(t *testing.T) {
	people := synth.People(11, 2000)
	// Encode each person as a basket: item 0 = has 'cancer', item 1 =
	// age>=60, item 2 = high income.
	baskets := make([][]int, len(people))
	for i, p := range people {
		var b []int
		if p.Disease == "cancer" || p.Disease == "hiv" {
			b = append(b, 0)
		}
		if p.Age >= 60 {
			b = append(b, 1)
		}
		if p.Income > 150000 {
			b = append(b, 2)
		}
		baskets[i] = b
	}
	patterns := mining.Apriori(baskets, 0.01, 2)
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	names := []string{"serious-disease", "senior", "high-income"}
	pc := privacy.NewController()
	pc.Add(&privacy.Constraint{
		Name: "disease-income", Attrs: []string{"serious-disease", "high-income"},
		Class: privacy.SemiPrivate, NeedToKnow: []string{"actuary"},
	})
	itemName := func(i int) string { return names[i] }
	pub, withheldPub := pc.ReleasePatterns(&policy.Subject{ID: "p"}, patterns, itemName)
	act, withheldAct := pc.ReleasePatterns(&policy.Subject{ID: "a", Roles: []string{"actuary"}}, patterns, itemName)
	if len(withheldAct) != 0 {
		t.Errorf("actuary withheld: %v", withheldAct)
	}
	if len(pub)+len(withheldPub) != len(act) {
		t.Error("pattern accounting broken")
	}
	for _, wp := range withheldPub {
		has0, has2 := false, false
		for _, it := range wp.Items {
			if it == 0 {
				has0 = true
			}
			if it == 2 {
				has2 = true
			}
		}
		if !(has0 && has2) {
			t.Errorf("wrong pattern withheld: %v", wp.Items)
		}
	}
}

// TestIntegrationContextSwitchAcrossStack: the RDF layer's wartime
// classification gates BGP joins through the semantic stack, and the
// situation change declassifies.
func TestIntegrationContextSwitchAcrossStack(t *testing.T) {
	triples := rdf.NewStore()
	triples.AddAll(
		rdf.Triple{S: rdf.NewIRI("unit7"), P: rdf.NewIRI("locatedAt"), O: rdf.NewIRI("grid-42")},
		rdf.Triple{S: rdf.NewIRI("grid-42"), P: rdf.NewIRI("inRegion"), O: rdf.NewIRI("north")},
	)
	guard := rdf.NewGuard(triples)
	guard.AddClassRule(&rdf.ClassRule{
		Name:    "war",
		Pattern: rdf.Pattern{P: rdf.T(rdf.NewIRI("locatedAt"))},
		Level:   rdf.Secret,
		Context: "wartime",
	})
	low := rdf.NewClearance(&policy.Subject{ID: "u"}, rdf.Unclassified)
	whereIsUnit7 := rdf.BGP{
		{S: rdf.T2(rdf.NewIRI("unit7")), P: rdf.T2(rdf.NewIRI("locatedAt")), O: rdf.V("g")},
		{S: rdf.V("g"), P: rdf.T2(rdf.NewIRI("inRegion")), O: rdf.V("r")},
	}
	guard.SetContext("wartime")
	if got := guard.Select(low, whereIsUnit7); len(got) != 0 {
		t.Errorf("wartime join leaked: %v", got)
	}
	guard.SetContext("peacetime")
	got := guard.Select(low, whereIsUnit7)
	if len(got) != 1 || got[0][rdf.Var("r")].Value != "north" {
		t.Errorf("peacetime join = %v", got)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}
