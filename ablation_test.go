// Ablation benchmarks: measure the design choices DESIGN.md calls out by
// removing them.
//
//	A1: index-backed scans vs full scans in the relational engine
//	A2: Merkle proofs vs the alternative "re-sign every view" design
//	A3: policy-configuration (broadcast) encryption vs per-subscriber
//	    view encryption
//	A4: inference control with release history vs stateless checking
//	    (quality ablation: stateless misses every multi-query channel)
package webdbsec

import (
	"fmt"
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/authorx"
	"webdbsec/internal/inference"
	"webdbsec/internal/merkle"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/reldb"
	"webdbsec/internal/synth"
	"webdbsec/internal/wenc"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// --- A1: index ablation ---

func BenchmarkA1IndexAblation(b *testing.B) {
	mk := func(indexed bool) *reldb.Database {
		db := reldb.NewDatabase()
		db.Exec("CREATE TABLE emp (id INT, dept TEXT, salary INT)")
		if indexed {
			db.Exec("CREATE HASH INDEX ON emp (dept)")
			db.Exec("CREATE ORDERED INDEX ON emp (salary)")
		}
		for i := 0; i < 10000; i++ {
			db.Exec(fmt.Sprintf("INSERT INTO emp VALUES (%d, 'd%d', %d)", i, i%50, i))
		}
		return db
	}
	queries := map[string]string{
		"point": "SELECT id FROM emp WHERE dept = 'd7'",
		"range": "SELECT id FROM emp WHERE salary >= 9900",
	}
	for _, indexed := range []bool{true, false} {
		db := mk(indexed)
		for name, q := range queries {
			label := fmt.Sprintf("%s/indexed=%v", name, indexed)
			b.Run(label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- A2: Merkle proofs vs re-signing every view ---

func BenchmarkA2ProofVsResign(b *testing.B) {
	doc := synth.Hospital(21, 256)
	signer, err := wsig.NewSigner("owner")
	if err != nil {
		b.Fatal(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	ss := merkle.Sign(doc, signer)
	keep := func(n *xmldoc.Node) bool { return n.ID()*7%100 < 50 }

	// The Merkle design: the (untrusted) agency builds view+proof per
	// query; the requestor verifies against the owner's ONE signature.
	b.Run("merkle/serve+verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view, proof := merkle.PruneWithProof(doc, keep)
			if err := merkle.VerifyView(view, proof, ss, dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The ablated design: the agency holds a signing key and signs each
	// pruned view afresh. Cheaper per query — but the agency must now be
	// TRUSTED with a key that can forge arbitrary content, which is
	// exactly what the paper's third-party model rules out.
	agencySigner, err := wsig.NewSigner("agency")
	if err != nil {
		b.Fatal(err)
	}
	dir.RegisterSigner(agencySigner)
	b.Run("resign/serve+verify(requires-trusted-agency)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			view := doc.Prune(keep)
			sig := agencySigner.SignDocument(view)
			if !wsig.VerifyDocument(view, sig, agencySigner.PublicKey()) {
				b.Fatal("verify failed")
			}
		}
	})
}

// --- A3: broadcast encryption vs per-subscriber encryption ---

func BenchmarkA3BroadcastVsPerSubscriber(b *testing.B) {
	store := xmldoc.NewStore()
	doc := synth.Hospital(22, 100)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name: "staff", Subject: policy.SubjectSpec{Roles: []string{"staff"}},
		Object: policy.ObjectSpec{Doc: doc.Name},
		Priv:   policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	base.MustAdd(&policy.Policy{
		Name: "no-ssn", Subject: policy.SubjectSpec{NotRoles: []string{"hr"}},
		Object: policy.ObjectSpec{Doc: doc.Name, Path: "//ssn"},
		Priv:   policy.Read, Sign: policy.Deny, Prop: policy.Cascade,
	})
	eng := accessctl.NewEngine(store, base)
	for _, subscribers := range []int{10, 100} {
		subs := make([]*policy.Subject, subscribers)
		for i := range subs {
			roles := []string{"staff"}
			if i%5 == 0 {
				roles = append(roles, "hr")
			}
			subs[i] = &policy.Subject{ID: fmt.Sprintf("s%d", i), Roles: roles}
		}
		// Broadcast: encrypt once per version, grant keys per subscriber.
		b.Run(fmt.Sprintf("broadcast/subs=%d", subscribers), func(b *testing.B) {
			pub := authorx.NewPublisher(eng)
			for i := 0; i < b.N; i++ {
				if _, err := pub.Encrypt(doc.Name); err != nil {
					b.Fatal(err)
				}
				for _, s := range subs {
					if _, err := pub.GrantKeys(doc.Name, s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		// Ablation: compute and encrypt each subscriber's view separately
		// under a per-subscriber key — O(subscribers) ciphertexts per
		// version.
		b.Run(fmt.Sprintf("per-subscriber/subs=%d", subscribers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range subs {
					v := eng.View(doc.Name, s, policy.Read)
					if v == nil {
						continue
					}
					key := wenc.MustNewKey()
					if _, err := wenc.Seal(key, []byte(v.Canonical()), nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- A4: inference history ablation (quality, reported as metrics) ---

func BenchmarkA4InferenceHistoryAblation(b *testing.B) {
	build := func() *inference.Controller {
		pc := privacy.NewController()
		pc.Add(&privacy.Constraint{Name: "c", Attrs: []string{"identity", "disease"}, Class: privacy.Private})
		ic := inference.NewController(pc)
		ic.AddRule(&inference.Rule{Name: "reid", Body: []string{"name", "zip"}, Head: "identity"})
		return ic
	}
	attack := [][]string{{"name", "zip"}, {"disease"}}

	b.Run("with-history", func(b *testing.B) {
		caught := 0
		for i := 0; i < b.N; i++ {
			ic := build()
			s := &policy.Subject{ID: "atk"}
			leaked := true
			for _, q := range attack {
				if !ic.Check(s, q).Allowed {
					leaked = false
					break
				}
			}
			if !leaked {
				caught++
			}
		}
		b.ReportMetric(float64(caught)/float64(b.N)*100, "%caught")
	})
	b.Run("stateless(ablated)", func(b *testing.B) {
		caught := 0
		for i := 0; i < b.N; i++ {
			ic := build()
			leaked := true
			for j, q := range attack {
				// Stateless: every query checked against an empty history
				// (fresh subject id per query).
				s := &policy.Subject{ID: fmt.Sprintf("atk-%d-%d", i, j)}
				if !ic.Check(s, q).Allowed {
					leaked = false
					break
				}
			}
			if !leaked {
				caught++
			}
		}
		// The stateless design passes both queries: 0% of multi-query
		// channels caught.
		b.ReportMetric(float64(caught)/float64(b.N)*100, "%caught")
	})
}
