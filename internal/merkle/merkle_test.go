package merkle

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

const entryXML = `
<businessEntity key="be1" name="Acme">
  <contact>ceo@acme.example</contact>
  <businessService key="bs1">
    <name>shipping</name>
    <bindingTemplate key="bt1" endpoint="https://acme.example/ship"/>
    <price>100</price>
  </businessService>
  <businessService key="bs2">
    <name>billing</name>
    <bindingTemplate key="bt2" endpoint="https://acme.example/bill"/>
    <price>200</price>
  </businessService>
</businessEntity>`

func setup(t *testing.T) (*xmldoc.Document, *wsig.Signer, *wsig.KeyDirectory) {
	t.Helper()
	doc, err := xmldoc.ParseString("entry", entryXML)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := wsig.NewSigner("provider")
	if err != nil {
		t.Fatal(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	return doc, signer, dir
}

func TestHashDeterministic(t *testing.T) {
	d1 := xmldoc.MustParseString("a", `<r b="2" a="1"><c>x</c></r>`)
	d2 := xmldoc.MustParseString("a", `<r a="1" b="2"><c>x</c></r>`)
	if !Equal(DocumentHash(d1), DocumentHash(d2)) {
		t.Error("hash depends on attribute order")
	}
	d3 := xmldoc.MustParseString("a", `<r a="1" b="2"><c>y</c></r>`)
	if Equal(DocumentHash(d1), DocumentHash(d3)) {
		t.Error("different content, same hash")
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	cases := []string{
		`<a><b/><c/></a>`,
		`<a><c/><b/></a>`, // reordered
		`<a><b><c/></b></a>`,
		`<a x="1"/>`,
		`<a>1</a>`,
		`<a><x>1</x></a>`,
	}
	seen := map[string]string{}
	for _, src := range cases {
		h := string(DocumentHash(xmldoc.MustParseString("d", src)))
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %q and %q", prev, src)
		}
		seen[h] = src
	}
}

func TestFullDocumentSummarySignature(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	if !VerifyFull(doc, ss, dir) {
		t.Error("full verification failed")
	}
	tampered := doc.Clone()
	xmldoc.MustCompilePath("//price").Select(tampered)[0].Children[0].Value = "1"
	if VerifyFull(tampered, ss, dir) {
		t.Error("tampered document verified")
	}
}

func TestPrunedViewVerifies(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)

	// The requestor is entitled to bs1 only, without prices.
	keepIDs := map[int]bool{}
	for _, n := range xmldoc.MustCompilePath("/businessEntity/businessService[@key='bs1']").Select(doc) {
		var mark func(*xmldoc.Node)
		mark = func(m *xmldoc.Node) {
			if m.Kind == xmldoc.KindElement && m.Name == "price" {
				return
			}
			keepIDs[m.ID()] = true
			for _, a := range m.Attrs {
				keepIDs[a.ID()] = true
			}
			for _, c := range m.Children {
				mark(c)
			}
		}
		mark(n)
	}
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return keepIDs[n.ID()] })
	if view == nil {
		t.Fatal("nil view")
	}
	if strings.Contains(view.Canonical(), "billing") || strings.Contains(view.Canonical(), "price") {
		t.Fatalf("view leaks pruned content: %s", view.Canonical())
	}
	if proof.NumAuxHashes() == 0 {
		t.Error("expected auxiliary hashes for pruned content")
	}
	if err := VerifyView(view, proof, ss, dir); err != nil {
		t.Fatalf("honest pruned view rejected: %v", err)
	}
}

func TestTamperedViewRejected(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return true })
	// Publisher alters a retained value.
	xmldoc.MustCompilePath("//price").Select(view)[0].Children[0].Value = "1"
	if err := VerifyView(view, proof, ss, dir); err == nil {
		t.Error("tampered view verified")
	}
}

func TestSilentOmissionRejected(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	// Publisher prunes bs2 but "forgets" to disclose the auxiliary hash —
	// i.e. presents the view with a proof claiming nothing was removed
	// there. Build an honest proof for the full doc, then present it with
	// the pruned view.
	fullView, fullProof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return true })
	_ = fullView
	prunedView := doc.Prune(func(n *xmldoc.Node) bool {
		for p := n; p != nil; p = p.Parent {
			if p.Kind == xmldoc.KindElement && p.Name == "businessService" {
				if k, _ := p.Attr("key"); k == "bs2" {
					return false
				}
			}
		}
		return true
	})
	if err := VerifyView(prunedView, fullProof, ss, dir); err == nil {
		t.Error("silent omission verified: completeness violated")
	}
}

func TestReorderedSiblingsRejected(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return true })
	// Swap the two services in the view.
	root := view.Root
	var svcIdx []int
	for i, c := range root.Children {
		if c.Kind == xmldoc.KindElement && c.Name == "businessService" {
			svcIdx = append(svcIdx, i)
		}
	}
	root.Children[svcIdx[0]], root.Children[svcIdx[1]] = root.Children[svcIdx[1]], root.Children[svcIdx[0]]
	if err := VerifyView(view, proof, ss, dir); err == nil {
		t.Error("reordered view verified")
	}
}

func TestForgedProofRejected(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool {
		// Drop the contact subtree entirely.
		for p := n; p != nil; p = p.Parent {
			if p.Kind == xmldoc.KindElement && p.Name == "contact" {
				return false
			}
		}
		return true
	})
	if proof.NumAuxHashes() == 0 {
		t.Fatal("expected at least one auxiliary hash")
	}
	// Flip a byte in the first auxiliary hash.
	for i := range proof.Elems {
		if len(proof.Elems[i].Missing) > 0 {
			proof.Elems[i].Missing[0].Hash[0] ^= 0xff
			break
		}
	}
	if err := VerifyView(view, proof, ss, dir); err == nil {
		t.Error("forged auxiliary hash verified")
	}
}

func TestVerifyViewMalformedProofs(t *testing.T) {
	doc, signer, dir := setup(t)
	ss := Sign(doc, signer)
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return true })

	if err := VerifyView(nil, proof, ss, dir); err == nil {
		t.Error("nil view accepted")
	}
	if err := VerifyView(view, nil, ss, dir); err == nil {
		t.Error("nil proof accepted")
	}
	// Proof with too few element entries.
	short := &Proof{Elems: proof.Elems[:1]}
	if err := VerifyView(view, short, ss, dir); err == nil {
		t.Error("short proof accepted")
	}
	// Proof with extra entries.
	long := &Proof{Elems: append(append([]ElementProof{}, proof.Elems...), ElementProof{})}
	if err := VerifyView(view, long, ss, dir); err == nil {
		t.Error("long proof accepted")
	}
	// Out-of-range position.
	bad := &Proof{Elems: append([]ElementProof{}, proof.Elems...)}
	bad.Elems[0] = ElementProof{Missing: []PosHash{{Pos: 99, Hash: make([]byte, HashSize)}}}
	if err := VerifyView(view, bad, ss, dir); err == nil {
		t.Error("out-of-range proof position accepted")
	}
	// Malformed hash length.
	bad2 := &Proof{Elems: append([]ElementProof{}, proof.Elems...)}
	bad2.Elems[0] = ElementProof{Missing: []PosHash{{Pos: 0, Hash: []byte{1}}}}
	if err := VerifyView(view, bad2, ss, dir); err == nil {
		t.Error("short auxiliary hash accepted")
	}
}

func TestIdenticalSiblingsPruneCorrectly(t *testing.T) {
	// Two structurally identical-named siblings with different content:
	// keep only the second. The proof must bind to the right one.
	doc := xmldoc.MustParseString("d", `<r><item>first</item><item>second</item></r>`)
	signer, _ := wsig.NewSigner("p")
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	ss := Sign(doc, signer)

	second := xmldoc.MustCompilePath("/r/item").Select(doc)[1]
	keep := map[int]bool{second.ID(): true}
	for _, c := range second.Children {
		keep[c.ID()] = true
	}
	view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return keep[n.ID()] })
	if got := view.Root.Children[0].Text(); got != "second" {
		t.Fatalf("view kept %q, want second", got)
	}
	if err := VerifyView(view, proof, ss, dir); err != nil {
		t.Errorf("identical-sibling view rejected: %v", err)
	}
}

func TestQuickRandomPrunesVerify(t *testing.T) {
	signer, err := wsig.NewSigner("p")
	if err != nil {
		t.Fatal(err)
	}
	dir := wsig.NewKeyDirectory()
	dir.RegisterSigner(signer)
	f := func(seed int64) bool {
		doc := randomDoc(seed, 60)
		ss := Sign(doc, signer)
		rng := rand.New(rand.NewSource(seed ^ 0x7ea5))
		view, proof := PruneWithProof(doc, func(n *xmldoc.Node) bool { return rng.Intn(3) != 0 })
		if view == nil {
			return true
		}
		return VerifyView(view, proof, ss, dir) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomDoc(seed int64, maxNodes int) *xmldoc.Document {
	rng := rand.New(rand.NewSource(seed))
	b := xmldoc.NewBuilder("rand", "root")
	names := []string{"a", "b", "c"}
	depth := 0
	n := 1 + rng.Intn(maxNodes)
	for i := 0; i < n; i++ {
		switch op := rng.Intn(5); {
		case op == 0 && depth > 0:
			b.End()
			depth--
		case op <= 2:
			b.Begin(names[rng.Intn(len(names))])
			depth++
		case op == 3:
			b.Text("t")
		default:
			b.Attrib("k"+names[rng.Intn(len(names))], "v")
		}
	}
	return b.Freeze()
}
