// Package merkle implements the Merkle-hash-tree authentication mechanism
// of Bertino, Carminati and Ferrari [4], which the paper (§4.1) proposes
// for untrusted third-party publishing: "the service provider sends the
// discovery agency a summary signature, generated using a technique based
// on Merkle hash trees, for each entry ... the requestor can locally
// recompute the same hash value signed by the service provider ... since a
// requestor may be returned only selected portions of an entry ... the
// discovery agency sends the requestor a set of additional hash values,
// referring to the missing portions, that make it able to locally perform
// the computation of the summary signature."
//
// The Merkle hash of an XML node is defined structurally:
//
//	h(text)    = H(0x02 ‖ value)
//	h(attr)    = H(0x01 ‖ name ‖ 0x00 ‖ value)
//	h(element) = H(0x00 ‖ name ‖ 0x00 ‖ h(c₁) ‖ … ‖ h(cₖ))
//
// where c₁…cₖ are the element's components — attributes first (sorted, as
// Freeze guarantees), then children — in order. The summary signature is a
// wsig signature over the root hash.
//
// A Proof carries, for every element retained in a pruned view, the hashes
// of the components the view dropped, tagged with their original positions.
// The verifier re-computes the root hash bottom-up from the view plus the
// proof and checks the summary signature: any tampering with retained
// content, any reordering, and any silent omission (one not covered by a
// disclosed hash) makes verification fail — authenticity AND completeness,
// without trusting the publisher.
package merkle

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// HashSize is the digest size in bytes.
const HashSize = sha256.Size

// Hash computes the Merkle hash of the subtree rooted at n.
func Hash(n *xmldoc.Node) []byte {
	h := sha256.New()
	switch n.Kind {
	case xmldoc.KindText:
		h.Write([]byte{0x02})
		h.Write([]byte(n.Value))
	case xmldoc.KindAttr:
		h.Write([]byte{0x01})
		h.Write([]byte(n.Name))
		h.Write([]byte{0x00})
		h.Write([]byte(n.Value))
	case xmldoc.KindElement:
		h.Write([]byte{0x00})
		h.Write([]byte(n.Name))
		h.Write([]byte{0x00})
		for _, a := range n.Attrs {
			h.Write(Hash(a))
		}
		for _, c := range n.Children {
			h.Write(Hash(c))
		}
	}
	return h.Sum(nil)
}

// DocumentHash returns the Merkle hash of the document root.
func DocumentHash(d *xmldoc.Document) []byte {
	if d == nil || d.Root == nil {
		return nil
	}
	return Hash(d.Root)
}

// SummarySignature is the provider's signature over a document's Merkle
// root hash.
type SummarySignature struct {
	Sig wsig.Signature
}

// Sign produces the summary signature of a document under the signer's key.
func Sign(d *xmldoc.Document, signer *wsig.Signer) SummarySignature {
	return SummarySignature{Sig: signer.SignBytes(DocumentHash(d))}
}

// VerifyFull checks a summary signature against a complete document.
func VerifyFull(d *xmldoc.Document, ss SummarySignature, dir *wsig.KeyDirectory) bool {
	return dir.Verify(DocumentHash(d), ss.Sig)
}

// PosHash is the Merkle hash of a pruned component, tagged with its
// position in the original element's component list (attributes first,
// then children).
type PosHash struct {
	Pos  int
	Hash []byte
}

// ElementProof lists the pruned components of one retained element.
type ElementProof struct {
	Missing []PosHash
}

// Proof is the auxiliary hash set for a pruned view. Elems holds one entry
// per retained element, in document (pre-)order of the view.
type Proof struct {
	Elems []ElementProof
}

// NumAuxHashes returns the total number of auxiliary hashes in the proof —
// the bandwidth overhead of untrusted publishing, which experiment E4
// measures.
func (p *Proof) NumAuxHashes() int {
	n := 0
	for _, e := range p.Elems {
		n += len(e.Missing)
	}
	return n
}

// PruneWithProof prunes the document to the nodes accepted by keep (plus
// ancestors, as xmldoc.Prune does) and builds the Merkle proof for the
// resulting view. It returns (nil, nil) when nothing is retained.
//
// The publisher (discovery agency) runs this; it needs no signing key —
// only the provider-signed summary signature accompanies the result.
func PruneWithProof(d *xmldoc.Document, keep func(*xmldoc.Node) bool) (*xmldoc.Document, *Proof) {
	// Evaluate keep exactly once per node (it may be stateful), then derive
	// both the view and the retain set from the recorded answers. The
	// retain rule mirrors xmldoc.Prune: a node is retained iff keep accepts
	// it or it has an accepted descendant. Working on the original tree
	// gives exact node identity, so identical-named siblings can never be
	// confused.
	accepted := make([]bool, d.NumNodes())
	d.Walk(func(n *xmldoc.Node) bool {
		accepted[n.ID()] = keep(n)
		return true
	})
	view := d.Prune(func(n *xmldoc.Node) bool { return accepted[n.ID()] })
	if view == nil {
		return nil, nil
	}
	retain := make([]bool, d.NumNodes())
	d.Walk(func(n *xmldoc.Node) bool {
		if accepted[n.ID()] {
			retain[n.ID()] = true
			for p := n.Parent; p != nil; p = p.Parent {
				retain[p.ID()] = true
			}
		}
		return true
	})
	proof := &Proof{}
	// Pre-order over retained elements of the original tree — the same
	// order the view's elements appear in, which is how VerifyView consumes
	// the proof.
	var walk func(orig *xmldoc.Node)
	walk = func(orig *xmldoc.Node) {
		ep := ElementProof{}
		var kept []*xmldoc.Node
		for pos, oc := range components(orig) {
			if retain[oc.ID()] {
				kept = append(kept, oc)
				continue
			}
			ep.Missing = append(ep.Missing, PosHash{Pos: pos, Hash: Hash(oc)})
		}
		proof.Elems = append(proof.Elems, ep)
		for _, oc := range kept {
			if oc.Kind == xmldoc.KindElement {
				walk(oc)
			}
		}
	}
	walk(d.Root)
	return view, proof
}

// components returns the component list of an element: attributes first,
// then children, in order.
func components(e *xmldoc.Node) []*xmldoc.Node {
	out := make([]*xmldoc.Node, 0, len(e.Attrs)+len(e.Children))
	out = append(out, e.Attrs...)
	out = append(out, e.Children...)
	return out
}

// VerifyView recomputes the Merkle root hash of the original document from
// a pruned view and its proof, and checks it against the summary
// signature. It returns nil on success and a descriptive error on any
// authenticity or completeness failure.
func VerifyView(view *xmldoc.Document, proof *Proof, ss SummarySignature, dir *wsig.KeyDirectory) error {
	if view == nil || view.Root == nil {
		return fmt.Errorf("merkle: empty view")
	}
	if proof == nil {
		return fmt.Errorf("merkle: missing proof")
	}
	next := 0
	var hashElem func(e *xmldoc.Node) ([]byte, error)
	hashElem = func(e *xmldoc.Node) ([]byte, error) {
		if next >= len(proof.Elems) {
			return nil, fmt.Errorf("merkle: proof exhausted at element %q", e.Name)
		}
		ep := proof.Elems[next]
		next++
		comps := components(e)
		total := len(comps) + len(ep.Missing)
		// Place missing hashes at their recorded positions; fill the rest
		// with the view components in order.
		slot := make([][]byte, total)
		for _, m := range ep.Missing {
			if m.Pos < 0 || m.Pos >= total {
				return nil, fmt.Errorf("merkle: proof position %d out of range for element %q", m.Pos, e.Name)
			}
			if slot[m.Pos] != nil {
				return nil, fmt.Errorf("merkle: duplicate proof position %d in element %q", m.Pos, e.Name)
			}
			if len(m.Hash) != HashSize {
				return nil, fmt.Errorf("merkle: malformed auxiliary hash in element %q", e.Name)
			}
			slot[m.Pos] = m.Hash
		}
		ci := 0
		for pos := 0; pos < total; pos++ {
			if slot[pos] != nil {
				continue
			}
			if ci >= len(comps) {
				return nil, fmt.Errorf("merkle: component/proof mismatch in element %q", e.Name)
			}
			c := comps[ci]
			ci++
			var h []byte
			var err error
			if c.Kind == xmldoc.KindElement {
				h, err = hashElem(c)
				if err != nil {
					return nil, err
				}
			} else {
				h = Hash(c)
			}
			slot[pos] = h
		}
		if ci != len(comps) {
			return nil, fmt.Errorf("merkle: %d unmatched components in element %q", len(comps)-ci, e.Name)
		}
		h := sha256.New()
		h.Write([]byte{0x00})
		h.Write([]byte(e.Name))
		h.Write([]byte{0x00})
		for _, s := range slot {
			h.Write(s)
		}
		return h.Sum(nil), nil
	}
	root, err := hashElem(view.Root)
	if err != nil {
		return err
	}
	if next != len(proof.Elems) {
		return fmt.Errorf("merkle: proof has %d unused element entries", len(proof.Elems)-next)
	}
	if !dir.Verify(root, ss.Sig) {
		return fmt.Errorf("merkle: summary signature does not verify (signer %q)", ss.Sig.Signer)
	}
	return nil
}

// Equal reports whether two hashes are equal.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
