package mining

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sort"
)

// Multiparty privacy-preserving association mining after Clifton et al.
// [7]: the database is horizontally partitioned across parties that do not
// trust each other with their local counts, yet want the *global* frequent
// itemsets. Global support counts are computed with the secure-sum
// protocol: the initiator masks its count with a random value, each party
// adds its own count modulo m, and the initiator finally removes the mask.
// No party (and no wire observer) learns another party's count — only the
// final sum becomes known.

// Party holds one horizontal partition of the basket database. Its count
// method is private to the protocol: the only thing a Party ever emits is
// a masked partial sum.
type Party struct {
	Name    string
	baskets [][]int
}

// NewParty creates a party over its local data.
func NewParty(name string, baskets [][]int) *Party {
	norm := make([][]int, len(baskets))
	for i, b := range baskets {
		s := append([]int(nil), b...)
		sort.Ints(s)
		norm[i] = dedupe(s)
	}
	return &Party{Name: name, baskets: norm}
}

// NumBaskets returns the party's partition size (public: needed for the
// global support denominator).
func (p *Party) NumBaskets() int { return len(p.baskets) }

// localCount counts the baskets containing the itemset.
func (p *Party) localCount(itemset []int) int64 {
	var n int64
	for _, b := range p.baskets {
		if containsAll(b, itemset) {
			n++
		}
	}
	return n
}

// addShare is the party's protocol step: add the local count to the
// running masked sum, modulo m.
func (p *Party) addShare(masked *big.Int, itemset []int, m *big.Int) *big.Int {
	out := new(big.Int).Add(masked, big.NewInt(p.localCount(itemset)))
	return out.Mod(out, m)
}

// SecureSumTranscript records the values that crossed the wire, so tests
// can verify no raw count leaked.
type SecureSumTranscript struct {
	Messages []*big.Int
}

// SecureSum runs the ring protocol for one itemset across the parties and
// returns the global count. The modulus must exceed any possible sum.
func SecureSum(parties []*Party, itemset []int, transcript *SecureSumTranscript) (int64, error) {
	if len(parties) == 0 {
		return 0, fmt.Errorf("mining: no parties")
	}
	total := 0
	for _, p := range parties {
		total += p.NumBaskets()
	}
	m := big.NewInt(int64(total) + 1)
	// Initiator's mask: uniform in [0, m).
	mask, err := rand.Int(rand.Reader, m)
	if err != nil {
		return 0, fmt.Errorf("mining: secure-sum mask: %w", err)
	}
	// Initiator starts the ring with mask + its own count.
	running := parties[0].addShare(mask, itemset, m)
	record(transcript, running)
	for _, p := range parties[1:] {
		running = p.addShare(running, itemset, m)
		record(transcript, running)
	}
	// Initiator removes the mask.
	sum := new(big.Int).Sub(running, mask)
	sum.Mod(sum, m)
	return sum.Int64(), nil
}

func record(t *SecureSumTranscript, v *big.Int) {
	if t != nil {
		t.Messages = append(t.Messages, new(big.Int).Set(v))
	}
}

// MultipartyApriori mines globally frequent itemsets across the parties
// using one secure sum per candidate. Only global counts are revealed.
func MultipartyApriori(parties []*Party, minSupport float64, maxLen int) ([]FrequentItemset, error) {
	if len(parties) == 0 {
		return nil, fmt.Errorf("mining: no parties")
	}
	total := 0
	maxItem := -1
	for _, p := range parties {
		total += p.NumBaskets()
		for _, b := range p.baskets {
			for _, it := range b {
				if it > maxItem {
					maxItem = it
				}
			}
		}
	}
	if total == 0 {
		return nil, nil
	}
	minCount := int64(minSupport * float64(total))
	if minCount < 1 {
		minCount = 1
	}
	var level [][]int
	var out []FrequentItemset
	for it := 0; it <= maxItem; it++ {
		c, err := SecureSum(parties, []int{it}, nil)
		if err != nil {
			return nil, err
		}
		if c >= minCount {
			level = append(level, []int{it})
			out = append(out, FrequentItemset{Items: []int{it}, Count: int(c), Support: float64(c) / float64(total)})
		}
	}
	sortSets(level)
	for k := 2; len(level) > 0 && (maxLen == 0 || k <= maxLen); k++ {
		cands := candidates(level)
		if len(cands) == 0 {
			break
		}
		level = level[:0]
		for _, cand := range cands {
			c, err := SecureSum(parties, cand, nil)
			if err != nil {
				return nil, err
			}
			if c >= minCount {
				level = append(level, cand)
				out = append(out, FrequentItemset{Items: cand, Count: int(c), Support: float64(c) / float64(total)})
			}
		}
		sortSets(level)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return key(out[i].Items) < key(out[j].Items)
	})
	return out, nil
}
