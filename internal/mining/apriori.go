// Package mining implements the data mining substrate of §3.3 — frequent
// itemset and association rule mining — together with the two
// privacy-preserving variants the paper cites: randomization-based mining
// in the Agrawal–Srikant line [1] (private.go) and Clifton's multiparty
// approach [7] (multiparty.go). The privacy controller of
// internal/privacy filters what the miners may release.
package mining

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FrequentItemset is an itemset with its (relative) support.
type FrequentItemset struct {
	Items   []int
	Count   int
	Support float64
}

// key encodes a sorted itemset for map lookups.
func key(items []int) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = strconv.Itoa(it)
	}
	return strings.Join(parts, ",")
}

// Apriori mines the frequent itemsets of the baskets at the given minimum
// relative support, up to maxLen items per set (0 means unlimited). It is
// the classical levelwise algorithm: L1 from a counting pass, candidate
// generation by self-join with subset pruning, then a counting pass per
// level.
func Apriori(baskets [][]int, minSupport float64, maxLen int) []FrequentItemset {
	n := len(baskets)
	if n == 0 {
		return nil
	}
	minCount := int(minSupport * float64(n))
	if minCount < 1 {
		minCount = 1
	}
	// Normalize baskets: sorted unique items.
	norm := make([][]int, n)
	for i, b := range baskets {
		s := append([]int(nil), b...)
		sort.Ints(s)
		norm[i] = dedupe(s)
	}
	// L1.
	counts := map[int]int{}
	for _, b := range norm {
		for _, it := range b {
			counts[it]++
		}
	}
	var level [][]int
	var out []FrequentItemset
	for it, c := range counts {
		if c >= minCount {
			level = append(level, []int{it})
			out = append(out, FrequentItemset{Items: []int{it}, Count: c, Support: float64(c) / float64(n)})
		}
	}
	sortSets(level)
	for k := 2; len(level) > 0 && (maxLen == 0 || k <= maxLen); k++ {
		cands := candidates(level)
		if len(cands) == 0 {
			break
		}
		cnt := make([]int, len(cands))
		for _, b := range norm {
			for ci, c := range cands {
				if containsAll(b, c) {
					cnt[ci]++
				}
			}
		}
		level = level[:0]
		for ci, c := range cands {
			if cnt[ci] >= minCount {
				level = append(level, c)
				out = append(out, FrequentItemset{Items: c, Count: cnt[ci], Support: float64(cnt[ci]) / float64(n)})
			}
		}
		sortSets(level)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return key(out[i].Items) < key(out[j].Items)
	})
	return out
}

// candidates self-joins the frequent (k-1)-sets into k-candidates and
// prunes those with an infrequent (k-1)-subset.
func candidates(level [][]int) [][]int {
	freq := map[string]bool{}
	for _, s := range level {
		freq[key(s)] = true
	}
	seen := map[string]bool{}
	var out [][]int
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			// Join condition: first k-1 items equal, last differs.
			joinable := true
			for x := 0; x < k-1; x++ {
				if a[x] != b[x] {
					joinable = false
					break
				}
			}
			if !joinable || a[k-1] >= b[k-1] {
				continue
			}
			cand := append(append([]int(nil), a...), b[k-1])
			ck := key(cand)
			if seen[ck] {
				continue
			}
			seen[ck] = true
			// Prune: every (k)-subset of cand must be frequent.
			ok := true
			for drop := 0; drop < len(cand); drop++ {
				sub := make([]int, 0, len(cand)-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				if !freq[key(sub)] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cand)
			}
		}
	}
	sortSets(out)
	return out
}

func sortSets(sets [][]int) {
	sort.Slice(sets, func(i, j int) bool { return key(sets[i]) < key(sets[j]) })
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// containsAll reports whether sorted basket b contains all of sorted set s.
func containsAll(b, s []int) bool {
	i := 0
	for _, want := range s {
		for i < len(b) && b[i] < want {
			i++
		}
		if i >= len(b) || b[i] != want {
			return false
		}
		i++
	}
	return true
}

// Rule is an association rule A ⇒ C.
type Rule struct {
	Antecedent []int
	Consequent []int
	Support    float64
	Confidence float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %.3f, conf %.3f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Rules derives association rules from frequent itemsets at the given
// minimum confidence, splitting each set into every nonempty
// antecedent/consequent partition.
func Rules(freq []FrequentItemset, minConfidence float64) []Rule {
	support := map[string]float64{}
	for _, f := range freq {
		support[key(f.Items)] = f.Support
	}
	var out []Rule
	for _, f := range freq {
		k := len(f.Items)
		if k < 2 {
			continue
		}
		// Enumerate nonempty proper subsets as antecedents.
		for mask := 1; mask < (1<<k)-1; mask++ {
			var ante, cons []int
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					ante = append(ante, f.Items[i])
				} else {
					cons = append(cons, f.Items[i])
				}
			}
			anteSup, ok := support[key(ante)]
			if !ok || anteSup == 0 {
				continue
			}
			conf := f.Support / anteSup
			if conf >= minConfidence {
				out = append(out, Rule{Antecedent: ante, Consequent: cons, Support: f.Support, Confidence: conf})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return key(out[i].Antecedent) < key(out[j].Antecedent)
	})
	return out
}
