package mining

import (
	"fmt"
	"math/rand"
	"sort"
)

// Randomization-based privacy-preserving mining in the Agrawal–Srikant
// line [1] (specifically the MASK flavor for boolean market-basket data):
// every item's presence bit is retained with probability p and flipped
// with probability 1-p before the data leaves the individual. The miner
// sees only the randomized data; supports of the original data are
// *estimated* by inverting the known distortion. Privacy grows as p
// approaches 0.5; accuracy grows as p approaches 1 — experiment E6 sweeps
// this trade-off.

// Randomize flips each item's membership bit with probability 1-p. The
// output baskets list the items present after distortion.
func Randomize(baskets [][]int, numItems int, p float64, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, len(baskets))
	for i, b := range baskets {
		present := make([]bool, numItems)
		for _, it := range b {
			if it >= 0 && it < numItems {
				present[it] = true
			}
		}
		var row []int
		for it := 0; it < numItems; it++ {
			bit := present[it]
			if rng.Float64() > p {
				bit = !bit
			}
			if bit {
				row = append(row, it)
			}
		}
		out[i] = row
	}
	return out
}

// EstimateSupport reconstructs the true support of an itemset from
// randomized baskets. For a k-itemset the observed joint distribution over
// the 2^k presence patterns is the true distribution multiplied by the
// k-fold tensor power of the per-bit distortion matrix
//
//	M = [ p    1-p ]
//	    [ 1-p  p   ]
//
// so the true distribution is recovered by applying M⁻¹ along each of the
// k axes. Estimates are clamped to [0,1]; p = 0.5 is rejected (the
// distortion destroys all information).
func EstimateSupport(randomized [][]int, numItems int, itemset []int, p float64) (float64, error) {
	if p == 0.5 {
		return 0, fmt.Errorf("mining: p=0.5 is not invertible")
	}
	k := len(itemset)
	if k == 0 {
		return 1, nil
	}
	if k > 20 {
		return 0, fmt.Errorf("mining: itemset too large (%d items)", k)
	}
	items := append([]int(nil), itemset...)
	sort.Ints(items)
	size := 1 << k
	counts := make([]float64, size)
	for _, b := range randomized {
		present := map[int]bool{}
		for _, it := range b {
			present[it] = true
		}
		idx := 0
		for bit, it := range items {
			if present[it] {
				idx |= 1 << bit
			}
		}
		counts[idx]++
	}
	n := float64(len(randomized))
	if n == 0 {
		return 0, fmt.Errorf("mining: no baskets")
	}
	for i := range counts {
		counts[i] /= n
	}
	// Apply M^{-1} along each axis. M^{-1} = 1/(2p-1) [[p, -(1-p)], [-(1-p), p]].
	d := 2*p - 1
	a := p / d
	bneg := -(1 - p) / d
	for axis := 0; axis < k; axis++ {
		stride := 1 << axis
		next := make([]float64, size)
		for i := 0; i < size; i++ {
			if i&stride == 0 {
				lo, hi := counts[i], counts[i|stride]
				next[i] = a*lo + bneg*hi
				next[i|stride] = bneg*lo + a*hi
			}
		}
		counts = next
	}
	est := counts[size-1]
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// PrivateApriori mines frequent itemsets from randomized data: the
// levelwise search runs over support *estimates* instead of exact counts.
// Candidates come from the same join-and-prune generation, seeded with the
// estimated-frequent singletons.
func PrivateApriori(randomized [][]int, numItems int, p, minSupport float64, maxLen int) ([]FrequentItemset, error) {
	var level [][]int
	var out []FrequentItemset
	for it := 0; it < numItems; it++ {
		est, err := EstimateSupport(randomized, numItems, []int{it}, p)
		if err != nil {
			return nil, err
		}
		if est >= minSupport {
			level = append(level, []int{it})
			out = append(out, FrequentItemset{Items: []int{it}, Support: est})
		}
	}
	sortSets(level)
	for k := 2; len(level) > 0 && (maxLen == 0 || k <= maxLen); k++ {
		cands := candidates(level)
		if len(cands) == 0 {
			break
		}
		level = level[:0]
		for _, c := range cands {
			est, err := EstimateSupport(randomized, numItems, c, p)
			if err != nil {
				return nil, err
			}
			if est >= minSupport {
				level = append(level, c)
				out = append(out, FrequentItemset{Items: c, Support: est})
			}
		}
		sortSets(level)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return key(out[i].Items) < key(out[j].Items)
	})
	return out, nil
}

// CompareMinings measures how well a private mining run recovered the true
// frequent itemsets: precision/recall over itemsets and the mean absolute
// support error on the intersection. Experiment E6 reports these.
type MiningQuality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	MeanSupportErr float64
}

// CompareMinings computes quality of `got` against ground truth `want`.
func CompareMinings(want, got []FrequentItemset) MiningQuality {
	wantSup := map[string]float64{}
	for _, f := range want {
		wantSup[key(f.Items)] = f.Support
	}
	q := MiningQuality{}
	var errSum float64
	for _, f := range got {
		if sup, ok := wantSup[key(f.Items)]; ok {
			q.TruePositives++
			d := f.Support - sup
			if d < 0 {
				d = -d
			}
			errSum += d
		} else {
			q.FalsePositives++
		}
	}
	q.FalseNegatives = len(want) - q.TruePositives
	if q.TruePositives+q.FalsePositives > 0 {
		q.Precision = float64(q.TruePositives) / float64(q.TruePositives+q.FalsePositives)
	}
	if len(want) > 0 {
		q.Recall = float64(q.TruePositives) / float64(len(want))
	}
	if q.TruePositives > 0 {
		q.MeanSupportErr = errSum / float64(q.TruePositives)
	}
	return q
}
