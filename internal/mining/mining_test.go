package mining

import (
	"math"
	"testing"

	"webdbsec/internal/synth"
)

// tiny fixture with known supports over 5 baskets:
// {0,1} in 4/5, {2} in 3/5, {0,1,2} in 2/5.
func tinyBaskets() [][]int {
	return [][]int{
		{0, 1},
		{0, 1, 2},
		{0, 1, 2},
		{0, 1, 3},
		{2, 4},
	}
}

func findSet(fs []FrequentItemset, items ...int) *FrequentItemset {
	k := key(items)
	for i := range fs {
		if key(fs[i].Items) == k {
			return &fs[i]
		}
	}
	return nil
}

func TestAprioriExactSupports(t *testing.T) {
	fs := Apriori(tinyBaskets(), 0.4, 0)
	if f := findSet(fs, 0); f == nil || f.Count != 4 {
		t.Errorf("support(0) = %+v", f)
	}
	if f := findSet(fs, 0, 1); f == nil || f.Count != 4 || math.Abs(f.Support-0.8) > 1e-9 {
		t.Errorf("support(0,1) = %+v", f)
	}
	if f := findSet(fs, 0, 1, 2); f == nil || f.Count != 2 {
		t.Errorf("support(0,1,2) = %+v", f)
	}
	if f := findSet(fs, 4); f != nil {
		t.Errorf("infrequent singleton reported: %+v", f)
	}
	if f := findSet(fs, 2, 4); f != nil {
		t.Errorf("infrequent pair reported: %+v", f)
	}
}

func TestAprioriMaxLen(t *testing.T) {
	fs := Apriori(tinyBaskets(), 0.4, 2)
	for _, f := range fs {
		if len(f.Items) > 2 {
			t.Errorf("maxLen violated: %v", f.Items)
		}
	}
	if findSet(fs, 0, 1) == nil {
		t.Error("pairs missing at maxLen 2")
	}
}

func TestAprioriEmptyAndDuplicates(t *testing.T) {
	if got := Apriori(nil, 0.5, 0); got != nil {
		t.Errorf("nil baskets = %v", got)
	}
	// Duplicate items in one basket must not double-count.
	fs := Apriori([][]int{{1, 1, 1}, {1}}, 0.5, 0)
	if f := findSet(fs, 1); f == nil || f.Count != 2 {
		t.Errorf("dup handling: %+v", f)
	}
}

func TestAprioriDownwardClosure(t *testing.T) {
	b := synth.NewBaskets(42, 2000, 50, 6)
	fs := Apriori(b.Data, 0.1, 3)
	sup := map[string]float64{}
	for _, f := range fs {
		sup[key(f.Items)] = f.Support
	}
	// Every subset of a frequent set must be frequent with >= support.
	for _, f := range fs {
		if len(f.Items) < 2 {
			continue
		}
		for drop := range f.Items {
			sub := append(append([]int(nil), f.Items[:drop]...), f.Items[drop+1:]...)
			subSup, ok := sup[key(sub)]
			if !ok {
				t.Fatalf("downward closure violated: %v frequent, %v missing", f.Items, sub)
			}
			if subSup < f.Support-1e-9 {
				t.Fatalf("monotonicity violated: sup%v=%f < sup%v=%f", sub, subSup, f.Items, f.Support)
			}
		}
	}
}

func TestAprioriFindsPlantedSets(t *testing.T) {
	b := synth.NewBaskets(7, 5000, 80, 6)
	fs := Apriori(b.Data, 0.15, 3)
	if findSet(fs, 0, 1) == nil {
		t.Error("planted pair {0,1} not found")
	}
	if findSet(fs, 2, 3, 4) == nil {
		t.Error("planted triple {2,3,4} not found")
	}
}

func TestRules(t *testing.T) {
	fs := Apriori(tinyBaskets(), 0.4, 0)
	rules := Rules(fs, 0.9)
	// 0 => 1 has confidence 4/4 = 1.0; 2 => 0 has confidence 2/3 < 0.9.
	found := false
	for _, r := range rules {
		if key(r.Antecedent) == "0" && key(r.Consequent) == "1" {
			found = true
			if math.Abs(r.Confidence-1.0) > 1e-9 {
				t.Errorf("conf(0=>1) = %f", r.Confidence)
			}
		}
		if key(r.Antecedent) == "2" {
			t.Errorf("low-confidence rule released: %v", r)
		}
	}
	if !found {
		t.Error("rule 0=>1 missing")
	}
	if s := rules[0].String(); s == "" {
		t.Error("empty rule string")
	}
}

func TestRandomizeChangesData(t *testing.T) {
	b := synth.NewBaskets(1, 500, 40, 5)
	r := Randomize(b.Data, 40, 0.8, 99)
	if len(r) != len(b.Data) {
		t.Fatal("basket count changed")
	}
	diff := 0
	for i := range r {
		if key(sortedCopy(r[i])) != key(sortedCopy(b.Data[i])) {
			diff++
		}
	}
	if diff < len(r)/2 {
		t.Errorf("randomization barely changed data: %d/%d baskets differ", diff, len(r))
	}
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func TestEstimateSupportRecoversTruth(t *testing.T) {
	const items = 30
	b := synth.NewBaskets(3, 20000, items, 5)
	truth := Apriori(b.Data, 0.0001, 2)
	r := Randomize(b.Data, items, 0.9, 5)
	for _, set := range [][]int{{0}, {5}, {0, 1}} {
		want := findSet(truth, set...)
		if want == nil {
			t.Fatalf("ground truth missing for %v", set)
		}
		got, err := EstimateSupport(r, items, set, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want.Support) > 0.03 {
			t.Errorf("estimate(%v) = %.4f, truth %.4f", set, got, want.Support)
		}
	}
}

func TestEstimateSupportErrors(t *testing.T) {
	if _, err := EstimateSupport([][]int{{0}}, 5, []int{0}, 0.5); err == nil {
		t.Error("p=0.5 accepted")
	}
	if _, err := EstimateSupport(nil, 5, []int{0}, 0.9); err == nil {
		t.Error("empty data accepted")
	}
	if got, err := EstimateSupport([][]int{{0}}, 5, nil, 0.9); err != nil || got != 1 {
		t.Errorf("empty itemset = %v, %v", got, err)
	}
}

func TestPrivateAprioriQualityImprovesWithP(t *testing.T) {
	const items = 40
	b := synth.NewBaskets(11, 8000, items, 5)
	truth := Apriori(b.Data, 0.15, 2)
	if len(truth) == 0 {
		t.Fatal("no ground truth")
	}
	qual := func(p float64) float64 {
		r := Randomize(b.Data, items, p, 17)
		got, err := PrivateApriori(r, items, p, 0.15, 2)
		if err != nil {
			t.Fatal(err)
		}
		q := CompareMinings(truth, got)
		return (q.Precision + q.Recall) / 2
	}
	low, high := qual(0.65), qual(0.95)
	if high < low-0.05 {
		t.Errorf("quality at p=0.95 (%.3f) worse than at p=0.65 (%.3f)", high, low)
	}
	if high < 0.7 {
		t.Errorf("quality at p=0.95 too low: %.3f", high)
	}
}

func TestSecureSumMatchesDirectSum(t *testing.T) {
	b := synth.NewBaskets(5, 3000, 30, 5)
	third := len(b.Data) / 3
	parties := []*Party{
		NewParty("a", b.Data[:third]),
		NewParty("b", b.Data[third:2*third]),
		NewParty("c", b.Data[2*third:]),
	}
	for _, set := range [][]int{{0}, {0, 1}, {2, 3, 4}} {
		var want int64
		for _, p := range parties {
			want += p.localCount(set)
		}
		got, err := SecureSum(parties, set, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("secure sum(%v) = %d, want %d", set, got, want)
		}
	}
}

func TestSecureSumHidesPartialCounts(t *testing.T) {
	// With a random mask, the wire values must not (except by rare
	// coincidence across many runs) equal the raw running sums.
	b := synth.NewBaskets(6, 999, 20, 5)
	third := len(b.Data) / 3
	parties := []*Party{
		NewParty("a", b.Data[:third]),
		NewParty("b", b.Data[third:2*third]),
		NewParty("c", b.Data[2*third:]),
	}
	set := []int{0}
	raw1 := parties[0].localCount(set)
	raw12 := raw1 + parties[1].localCount(set)
	leaks := 0
	const runs = 30
	for i := 0; i < runs; i++ {
		tr := &SecureSumTranscript{}
		if _, err := SecureSum(parties, set, tr); err != nil {
			t.Fatal(err)
		}
		if tr.Messages[0].Int64() == raw1 || tr.Messages[1].Int64() == raw12 {
			leaks++
		}
	}
	// A handful of random collisions is possible; systematic leakage is
	// not.
	if leaks > runs/3 {
		t.Errorf("wire values equal raw counts in %d/%d runs", leaks, runs)
	}
}

func TestMultipartyAprioriEqualsCentralized(t *testing.T) {
	b := synth.NewBaskets(9, 4000, 40, 5)
	half := len(b.Data) / 2
	parties := []*Party{
		NewParty("a", b.Data[:half]),
		NewParty("b", b.Data[half:]),
	}
	central := Apriori(b.Data, 0.15, 3)
	multi, err := MultipartyApriori(parties, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(central) != len(multi) {
		t.Fatalf("itemset counts differ: central %d, multi %d", len(central), len(multi))
	}
	for i := range central {
		if key(central[i].Items) != key(multi[i].Items) || central[i].Count != multi[i].Count {
			t.Errorf("mismatch at %d: central %+v, multi %+v", i, central[i], multi[i])
		}
	}
}

func TestMultipartyErrors(t *testing.T) {
	if _, err := MultipartyApriori(nil, 0.1, 0); err == nil {
		t.Error("no parties accepted")
	}
	if _, err := SecureSum(nil, []int{0}, nil); err == nil {
		t.Error("secure sum with no parties accepted")
	}
	empty := []*Party{NewParty("a", nil)}
	got, err := MultipartyApriori(empty, 0.1, 0)
	if err != nil || got != nil {
		t.Errorf("empty party = %v, %v", got, err)
	}
}

func TestCompareMinings(t *testing.T) {
	want := []FrequentItemset{
		{Items: []int{0}, Support: 0.5},
		{Items: []int{1}, Support: 0.4},
	}
	got := []FrequentItemset{
		{Items: []int{0}, Support: 0.45},
		{Items: []int{9}, Support: 0.2},
	}
	q := CompareMinings(want, got)
	if q.TruePositives != 1 || q.FalsePositives != 1 || q.FalseNegatives != 1 {
		t.Errorf("q = %+v", q)
	}
	if math.Abs(q.Precision-0.5) > 1e-9 || math.Abs(q.Recall-0.5) > 1e-9 {
		t.Errorf("p/r = %f/%f", q.Precision, q.Recall)
	}
	if math.Abs(q.MeanSupportErr-0.05) > 1e-9 {
		t.Errorf("err = %f", q.MeanSupportErr)
	}
}
