package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
)

// Frame format. Every record on disk — log entries and the checkpoint
// snapshot alike — is one frame:
//
//	offset 0  uint32 LE  payload length n
//	offset 4  uint64 LE  LSN
//	offset 12 uint32 LE  CRC32C (Castagnoli) over bytes [4, 16+n)
//	offset 16 n bytes    payload
//
// The checksum covers the LSN as well as the payload, so a frame cannot be
// silently re-sequenced; the length field is validated against both the
// remaining bytes and MaxPayload, so a corrupted length cannot make the
// reader allocate or skip unboundedly.

const (
	frameHeaderSize = 16
	// MaxPayload bounds a single frame's payload; longer lengths are
	// treated as corruption.
	MaxPayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a frame cut short by a crash: the header or payload
// extends past the end of the segment. On open the log truncates here.
var ErrTorn = errors.New("wal: torn frame")

// ErrCorrupt reports a frame whose checksum or length field is invalid —
// bit rot or tampering rather than a clean tear. On open the log also
// truncates here, but the condition is distinguishable for callers that
// want to refuse service instead (the audit log does).
var ErrCorrupt = errors.New("wal: corrupt frame")

// EncodeFrame appends one frame carrying (lsn, payload) to dst and returns
// the extended slice.
func EncodeFrame(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], lsn)
	crc := crc32.Update(0, castagnoli, hdr[4:12])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame reads the frame at the start of b. It returns the frame's
// LSN and payload (aliasing b) and the remaining bytes. An empty b returns
// ErrTorn with a zero-length tail — callers distinguish "clean end" by
// checking len(b) == 0 first.
func DecodeFrame(b []byte) (lsn uint64, payload, rest []byte, err error) {
	if len(b) < frameHeaderSize {
		return 0, nil, nil, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxPayload {
		return 0, nil, nil, ErrCorrupt
	}
	end := frameHeaderSize + int(n)
	if len(b) < end {
		return 0, nil, nil, ErrTorn
	}
	lsn = binary.LittleEndian.Uint64(b[4:12])
	crc := crc32.Update(0, castagnoli, b[4:12])
	crc = crc32.Update(crc, castagnoli, b[frameHeaderSize:end])
	if crc != binary.LittleEndian.Uint32(b[12:16]) {
		return 0, nil, nil, ErrCorrupt
	}
	return lsn, b[frameHeaderSize:end], b[end:], nil
}

// frameSize returns the on-disk size of a frame with an n-byte payload.
func frameSize(n int) int { return frameHeaderSize + n }

// encodeBufPool recycles the byte slices the commit pipeline encodes
// frames into, so the steady-state append path allocates nothing per
// record. The pool stores *[]byte and the same pointer travels through
// get/put — boxing a fresh pointer on every Put would itself allocate,
// defeating the pool.
var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getEncodeBuf returns an empty pooled buffer. Callers append through the
// pointer (the slice may grow and move) and hand the same pointer back to
// putEncodeBuf.
func getEncodeBuf() *[]byte {
	p := encodeBufPool.Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

// putEncodeBuf returns a buffer obtained from getEncodeBuf to the pool.
// Oversized buffers are dropped so a single huge frame doesn't pin memory
// forever.
func putEncodeBuf(p *[]byte) {
	if cap(*p) > 1<<20 {
		return
	}
	encodeBufPool.Put(p)
}
