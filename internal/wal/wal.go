// Package wal is the disk-backed write-ahead log under every durable store
// in this repository: reldb's transaction log, the audit chain, the policy
// base and the XML document store. The paper demands that "recovery
// techniques have to be developed for the transaction models" (§2.1) and
// that data be protected "from malicious corruption" (§1); this package is
// the common substrate for both — an append-only, segmented, CRC32C-framed
// log with a configurable fsync policy, torn-tail detection on open, and a
// checkpoint protocol (snapshot + log truncation) that bounds recovery
// time and disk growth.
//
// Crash model. The log assumes that after a crash a file retains some
// prefix of the bytes written to it (fsynced bytes are always retained;
// unsynced bytes may be partially retained or lost), and that FS.Rename is
// atomic. Under that model Open always recovers a clean record prefix:
// scanning stops at the first torn or corrupt frame, the tail beyond it is
// physically truncated, and later segments are discarded. Which records
// are guaranteed to survive depends on the sync policy: SyncAlways makes
// every Append durable before it returns; SyncInterval and SyncNever trade
// the tail of the log for throughput but never atomicity — recovery still
// yields an exact prefix of the append history.
package wal

import (
	"fmt"
	"sync"
	"time"
)

// SyncPolicy says when appended frames are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Append: an Append that returned nil is
	// durable. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker (Options.Interval) and
	// on explicit Sync/Close. A crash loses at most one interval of
	// appends.
	SyncInterval
	// SyncNever fsyncs only on explicit Sync, Checkpoint and Close. A
	// crash may lose everything since the last explicit barrier.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spellings ("always", "interval", "never")
// to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// Options configures a log.
type Options struct {
	// FS is the storage root. Required.
	FS FS
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment when it would exceed this
	// size (default 4 MiB). A single frame larger than the limit still
	// goes out whole in its own segment.
	SegmentBytes int
}

// Record is one recovered log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Stats are the log's operational counters, published by the servers via
// internal/debugz.
type Stats struct {
	Appends      uint64
	BytesWritten uint64
	Fsyncs       uint64
	Rotations    uint64
	Checkpoints  uint64
	// TornTails counts segments truncated at a bad frame during Open.
	TornTails uint64
	// Segments is the number of live segment files.
	Segments int
	// LastLSN is the highest LSN appended or recovered; SnapshotLSN the
	// LSN the current checkpoint covers (0 = none).
	LastLSN     uint64
	SnapshotLSN uint64
	Policy      string
}

const (
	snapshotName    = "snapshot"
	snapshotTmpName = "snapshot.tmp"
	defaultSegBytes = 4 << 20
	defaultInterval = 100 * time.Millisecond
)

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

func parseSegmentName(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &n); err != nil {
		return 0, false
	}
	if segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: closed")

// WAL is an open log. All methods are safe for concurrent use. After any
// write error the log is poisoned: the error sticks and every subsequent
// mutating call returns it, because a store whose log is in an unknown
// disk state must not pretend to make progress.
type WAL struct {
	mu   sync.Mutex
	fs   FS
	opts Options

	lastLSN  uint64
	snapLSN  uint64
	snapshot []byte
	tail     []Record

	active     File
	activeSize int
	segSeq     int
	segments   []string

	dirty bool
	err   error

	stats Stats

	stop chan struct{}
	done chan struct{}
}

// Open recovers the log rooted at opts.FS: it loads the checkpoint
// snapshot if one exists, scans the segments in order, truncates the first
// torn or corrupt frame and everything after it, and collects the records
// newer than the snapshot for Replay. A corrupt snapshot (failed checksum)
// is not recoverable mechanically and fails Open.
func Open(opts Options) (*WAL, error) {
	if opts.FS == nil {
		return nil, fmt.Errorf("wal: Options.FS is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	w := &WAL{fs: opts.FS, opts: opts}
	w.stats.Policy = opts.Policy.String()
	if err := w.recover(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

func (w *WAL) recover() error {
	names, err := w.fs.List()
	if err != nil {
		return fmt.Errorf("wal: list: %w", err)
	}
	var segNums []int
	for _, name := range names {
		switch {
		case name == snapshotName:
			data, err := w.fs.ReadFile(name)
			if err != nil {
				return fmt.Errorf("wal: read snapshot: %w", err)
			}
			lsn, payload, rest, err := DecodeFrame(data)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("wal: snapshot corrupt: %w", ErrCorrupt)
			}
			w.snapLSN = lsn
			w.snapshot = append([]byte(nil), payload...)
		case name == snapshotTmpName:
			// A checkpoint died before its rename; the tmp is garbage.
			_ = w.fs.Remove(name)
		default:
			if n, ok := parseSegmentName(name); ok {
				segNums = append(segNums, n)
			}
			// Unknown names (e.g. leftover .trunc temporaries) are ignored;
			// WriteTrunc re-creates its temporary from scratch.
		}
	}
	w.lastLSN = w.snapLSN
	truncated := false
	for _, n := range segNums {
		name := segmentName(n)
		if truncated {
			// Everything after a torn segment is dead by construction: the
			// writer never opened a later segment before finishing this one.
			if err := w.fs.Remove(name); err != nil {
				return fmt.Errorf("wal: drop post-torn segment %s: %w", name, err)
			}
			continue
		}
		w.segSeq = n
		data, err := w.fs.ReadFile(name)
		if err != nil {
			return fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		good := 0
		rest := data
		for len(rest) > 0 {
			lsn, payload, next, err := DecodeFrame(rest)
			if err != nil {
				truncated = true
				w.stats.TornTails++
				break
			}
			good = len(data) - len(next)
			rest = next
			if lsn > w.snapLSN {
				w.tail = append(w.tail, Record{LSN: lsn, Payload: append([]byte(nil), payload...)})
			}
			if lsn > w.lastLSN {
				w.lastLSN = lsn
			}
		}
		if truncated {
			if good == 0 {
				if err := w.fs.Remove(name); err != nil {
					return fmt.Errorf("wal: drop torn segment %s: %w", name, err)
				}
				continue
			}
			if err := w.fs.WriteTrunc(name, data[:good]); err != nil {
				return fmt.Errorf("wal: truncate torn segment %s: %w", name, err)
			}
		}
		w.segments = append(w.segments, name)
	}
	w.stats.Segments = len(w.segments)
	w.stats.LastLSN = w.lastLSN
	w.stats.SnapshotLSN = w.snapLSN
	return nil
}

// Snapshot returns the checkpoint payload recovered at Open, the LSN it
// covers, and whether one exists.
func (w *WAL) Snapshot() ([]byte, uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snapshot == nil {
		return nil, 0, false
	}
	return w.snapshot, w.snapLSN, true
}

// Replay calls fn for every record recovered at Open that is newer than
// the snapshot, in LSN order. It does not see records appended after Open.
func (w *WAL) Replay(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	tail := w.tail
	w.mu.Unlock()
	for _, r := range tail {
		if err := fn(r.LSN, r.Payload); err != nil {
			return err
		}
	}
	return nil
}

// LastLSN returns the highest LSN appended or recovered.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// Err returns the sticky write error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is durable when Append returns nil.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds MaxPayload", len(payload))
	}
	need := frameSize(len(payload))
	if err := w.ensureActive(need); err != nil {
		w.err = err
		return 0, err
	}
	lsn := w.lastLSN + 1
	buf := EncodeFrame(nil, lsn, payload)
	if _, err := w.active.Write(buf); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return 0, w.err
	}
	w.lastLSN = lsn
	w.activeSize += len(buf)
	w.dirty = true
	w.stats.Appends++
	w.stats.BytesWritten += uint64(len(buf))
	w.stats.LastLSN = lsn
	if w.opts.Policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// ensureActive opens a segment with room for need more bytes, rotating the
// current one if necessary. Lock held.
func (w *WAL) ensureActive(need int) error {
	if w.active != nil && w.activeSize > 0 && w.activeSize+need > w.opts.SegmentBytes {
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.active.Close(); err != nil {
			return fmt.Errorf("wal: rotate close: %w", err)
		}
		w.active = nil
		w.stats.Rotations++
	}
	if w.active == nil {
		w.segSeq++
		name := segmentName(w.segSeq)
		f, err := w.fs.Create(name)
		if err != nil {
			return fmt.Errorf("wal: create segment %s: %w", name, err)
		}
		w.active = f
		w.activeSize = 0
		w.segments = append(w.segments, name)
		w.stats.Segments = len(w.segments)
	}
	return nil
}

func (w *WAL) syncLocked() error {
	if w.active == nil || !w.dirty {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.dirty = false
	w.stats.Fsyncs++
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

// Checkpoint installs snapshot as the new recovery base covering every
// record appended so far, then deletes the log segments: recovery becomes
// "load snapshot, replay nothing", and disk usage drops to the snapshot.
// The protocol is crash-safe at every step: the snapshot is written to a
// temporary file, fsynced, and renamed into place (the atomic commit
// point); segments are deleted only afterwards, and a crash between rename
// and deletion merely leaves stale segments whose records are skipped on
// open because their LSNs are covered by the snapshot.
func (w *WAL) Checkpoint(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(snapshot) > MaxPayload {
		return fmt.Errorf("wal: snapshot %d bytes exceeds MaxPayload", len(snapshot))
	}
	f, err := w.fs.Create(snapshotTmpName)
	if err != nil {
		w.err = fmt.Errorf("wal: checkpoint create: %w", err)
		return w.err
	}
	buf := EncodeFrame(nil, w.lastLSN, snapshot)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		w.err = fmt.Errorf("wal: checkpoint write: %w", err)
		return w.err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.err = fmt.Errorf("wal: checkpoint fsync: %w", err)
		return w.err
	}
	if err := f.Close(); err != nil {
		w.err = fmt.Errorf("wal: checkpoint close: %w", err)
		return w.err
	}
	if err := w.fs.Rename(snapshotTmpName, snapshotName); err != nil {
		w.err = fmt.Errorf("wal: checkpoint rename: %w", err)
		return w.err
	}
	// Committed. Everything below is cleanup; failures poison the log but
	// cannot lose the checkpoint.
	w.snapLSN = w.lastLSN
	w.snapshot = append([]byte(nil), snapshot...)
	w.tail = nil
	if w.active != nil {
		if err := w.active.Close(); err != nil {
			w.err = fmt.Errorf("wal: checkpoint close segment: %w", err)
			return w.err
		}
		w.active = nil
		w.dirty = false
	}
	for _, name := range w.segments {
		if err := w.fs.Remove(name); err != nil {
			w.err = fmt.Errorf("wal: checkpoint drop segment %s: %w", name, err)
			return w.err
		}
	}
	w.segments = nil
	w.activeSize = 0
	w.stats.Checkpoints++
	w.stats.Segments = 0
	w.stats.SnapshotLSN = w.snapLSN
	w.stats.BytesWritten += uint64(len(buf))
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close flushes and closes the log. Further use returns ErrClosed.
func (w *WAL) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == ErrClosed {
		return nil
	}
	var firstErr error
	if w.err == nil {
		firstErr = w.syncLocked()
	}
	if w.active != nil {
		if err := w.active.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		w.active = nil
	}
	w.err = ErrClosed
	return firstErr
}

// flushLoop is the SyncInterval background fsync.
func (w *WAL) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}
