// Package wal is the disk-backed write-ahead log under every durable store
// in this repository: reldb's transaction log, the audit chain, the policy
// base and the XML document store. The paper demands that "recovery
// techniques have to be developed for the transaction models" (§2.1) and
// that data be protected "from malicious corruption" (§1); this package is
// the common substrate for both — an append-only, segmented, CRC32C-framed
// log with a configurable fsync policy, torn-tail detection on open, a
// checkpoint protocol (snapshot + log truncation) that bounds recovery
// time and disk growth, and a group-commit pipeline that coalesces
// concurrent appends into shared writes and fsyncs.
//
// Crash model. The log assumes that after a crash a file retains some
// prefix of the bytes written to it (fsynced bytes are always retained;
// unsynced bytes may be partially retained or lost), and that FS.Rename is
// atomic. Under that model Open always recovers a clean record prefix:
// scanning stops at the first torn or corrupt frame, the tail beyond it is
// physically truncated, and later segments are discarded. Which records
// are guaranteed to survive depends on the sync policy: SyncAlways makes
// every Append durable before it returns; SyncInterval and SyncNever trade
// the tail of the log for throughput but never atomicity — recovery still
// yields an exact prefix of the append history.
//
// Group commit. Appenders do not write to the file themselves: they
// enqueue an encoded frame into a commit queue and wait for a verdict. The
// first waiter becomes the batch leader, claims the file, coalesces every
// queued frame (up to Options.MaxBatchBytes) into one buffered write and —
// under SyncAlways — one shared fsync, then releases all waiters in the
// batch with the same verdict. Followers that enqueue while the leader is
// inside the fsync form the next batch, so under concurrent commit load
// the fsync cost is amortized across the batch instead of paid per record.
// The durability contract is unchanged: a nil verdict means the frame is
// on disk, and a failed batch write or fsync fails every waiter in the
// batch and poisons the log — no waiter is ever acknowledged by a barrier
// that did not complete. Frames are written in LSN order, so after a crash
// mid-batch the recovered prefix is still an exact prefix of the append
// history.
package wal

import (
	"fmt"
	"sync"
	"time"
)

// SyncPolicy says when appended frames are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every batch: an Append that returned nil is
	// durable. The safest policy; group commit is what makes it fast
	// under concurrency.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker (Options.Interval) and
	// on explicit Sync/Close. A crash loses at most one interval of
	// appends.
	SyncInterval
	// SyncNever fsyncs only on explicit Sync, Checkpoint and Close. A
	// crash may lose everything since the last explicit barrier.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spellings ("always", "interval", "never")
// to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// Options configures a log.
type Options struct {
	// FS is the storage root. Required.
	FS FS
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment when it would exceed this
	// size (default 4 MiB). A single frame or batch larger than the limit
	// still goes out whole in its own segment.
	SegmentBytes int
	// MaxBatchBytes caps how many queued frame bytes one group-commit
	// batch coalesces into a single write + fsync (default 1 MiB). A
	// batch always carries at least one frame, so setting this to 1
	// degenerates to one fsync per append — the pre-group-commit
	// baseline, kept reachable for measurement.
	MaxBatchBytes int
	// MaxDelay, when positive, lets the batch leader linger up to this
	// long after the oldest queued frame before shipping the batch, so
	// late committers can widen it. The default 0 ships immediately:
	// natural batching (frames queued while the previous fsync runs)
	// already forms batches under load without taxing latency.
	MaxDelay time.Duration
}

// Record is one recovered log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Stats are the log's operational counters, published by the servers via
// internal/debugz.
type Stats struct {
	Appends      uint64
	BytesWritten uint64
	Fsyncs       uint64
	Rotations    uint64
	Checkpoints  uint64
	// TornTails counts segments truncated at a bad frame during Open.
	TornTails uint64
	// Segments is the number of live segment files.
	Segments int
	// LastLSN is the highest LSN appended or recovered; SnapshotLSN the
	// LSN the current checkpoint covers (0 = none); DurableLSN the highest
	// LSN behind a completed durability barrier (what replication ships).
	LastLSN     uint64
	SnapshotLSN uint64
	DurableLSN  uint64
	Policy      string

	// Group-commit pipeline counters. Batches is the number of coalesced
	// writes; BatchFrames the frames they carried (== Appends once the
	// queue drains); FsyncsSaved the fsyncs group commit avoided under
	// SyncAlways (frames that rode a batchmate's barrier); MaxBatch the
	// largest batch observed, in frames.
	Batches     uint64
	BatchFrames uint64
	FsyncsSaved uint64
	MaxBatch    int
	// BatchSizes is a frames-per-batch histogram with buckets
	// [1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, >64].
	BatchSizes [8]uint64
	// CommitWaitNs is an enqueue-to-verdict latency histogram with
	// buckets [<10µs, <100µs, <1ms, <10ms, <100ms, ≥100ms].
	CommitWaitNs [6]uint64
}

const (
	snapshotName      = "snapshot"
	snapshotTmpName   = "snapshot.tmp"
	defaultSegBytes   = 4 << 20
	defaultInterval   = 100 * time.Millisecond
	defaultBatchBytes = 1 << 20
)

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

func parseSegmentName(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%08d.log", &n); err != nil {
		return 0, false
	}
	if segmentName(n) != name {
		return 0, false
	}
	return n, true
}

// batchBucket maps a frames-per-batch count to its Stats.BatchSizes
// bucket: [1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, >64].
func batchBucket(n int) int {
	b := 0
	for n > 1 && b < 7 {
		n = (n + 1) / 2
		b++
	}
	return b
}

// waitBucket maps an enqueue-to-verdict latency to its Stats.CommitWaitNs
// bucket: [<10µs, <100µs, <1ms, <10ms, <100ms, ≥100ms].
func waitBucket(d time.Duration) int {
	switch {
	case d < 10*time.Microsecond:
		return 0
	case d < 100*time.Microsecond:
		return 1
	case d < time.Millisecond:
		return 2
	case d < 10*time.Millisecond:
		return 3
	case d < 100*time.Millisecond:
		return 4
	}
	return 5
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: closed")

// WAL is an open log. All methods are safe for concurrent use. After any
// write error the log is poisoned: the error sticks and every subsequent
// mutating call returns it, because a store whose log is in an unknown
// disk state must not pretend to make progress.
//
// Two ownership domains guard the state. Queue state — LSN counter,
// commit queue, sticky error, stats, recovered snapshot — is under mu.
// File state — active segment handle, its size, the segment list, the
// dirty flag — belongs to whoever holds io ownership (ioBusy, claimed and
// released under mu), so the batch leader can run write+fsync without
// holding mu and committers keep enqueuing into the next batch meanwhile.
type WAL struct {
	mu   sync.Mutex
	cond *sync.Cond
	fs   FS
	opts Options

	lastLSN  uint64   // seclint:guardedby mu
	snapLSN  uint64   // seclint:guardedby mu
	snapshot []byte   // seclint:guardedby mu
	tail     []Record // seclint:guardedby mu

	// Replication watermarks. writtenLSN is the highest LSN whose frame
	// reached the file; durableLSN the highest LSN covered by a completed
	// durability barrier (batch fsync under SyncAlways, explicit Sync,
	// checkpoint). Cursors surface only records at or below durableLSN, so
	// a replication stream never ships bytes the leader could still lose.
	writtenLSN uint64 // seclint:guardedby mu
	durableLSN uint64 // seclint:guardedby mu

	// watchers are the channels registered by Watch, signaled (without
	// blocking) whenever durableLSN advances.
	watchers []chan struct{} // seclint:guardedby mu
	// rewinds counts TruncateTo/InstallSnapshot calls: history behind the
	// watermarks changed, so cursors must drop their cached positions.
	rewinds uint64 // seclint:guardedby mu

	// Commit pipeline: qbuf holds the encoded frames of queued appends
	// (pooled; nil when the queue is empty), queue their pending acks in
	// LSN order. leader is true while some goroutine is draining the
	// queue; ioBusy while someone (the leader, Sync, Checkpoint, Close or
	// the interval flusher) owns the file. scratch is the leader's private
	// waiter list, reused batch to batch so draining allocates nothing.
	qbuf    *[]byte // seclint:guardedby mu
	queue   []*Ack  // seclint:guardedby mu
	scratch []*Ack  // seclint:guardedby mu
	leader  bool    // seclint:guardedby mu
	ioBusy  bool    // seclint:guardedby mu
	// checkpointing is true while a fuzzy CheckpointAt streams its snapshot
	// and deletes sealed segments. It is NOT io ownership — batch leaders
	// keep claiming ioBusy and writing the active segment throughout — but
	// the quiesce-based file operations (Checkpoint, Sync, TruncateTo,
	// InstallSnapshot, Close) wait for it, because they touch the snapshot
	// file and segment list a fuzzy checkpoint is working on.
	checkpointing bool // seclint:guardedby mu

	// File state: owned by the io-ownership holder (see above), touched by
	// writeBatch/checkpointIO without mu — deliberately not mu-guarded.
	// The segment NAME list, by contrast, lives under mu (io holders report
	// created/deleted segments back under the lock) so cursors can snapshot
	// it while the batch leader writes.
	active     File
	activeSize int
	segSeq     int
	segments   []string // seclint:guardedby mu
	dirty      bool     // seclint:guardedby mu

	err error // seclint:guardedby mu

	stats Stats // seclint:guardedby mu

	stop chan struct{} // seclint:guardedby mu
	done chan struct{} // seclint:guardedby mu
}

// Ack is the pending durability verdict of an AppendAsync: Wait blocks
// until the batch carrying the frame has been written (and, under
// SyncAlways, fsynced) and returns the batch's shared verdict.
type Ack struct {
	w    *WAL
	lsn  uint64
	size int
	enq  time.Time
	done bool
	err  error
}

// Wait blocks until the frame's batch verdict is known. A nil return under
// SyncAlways means the frame is on disk. If no leader is draining the
// queue, the caller becomes the leader — group commit needs no background
// goroutine.
func (a *Ack) Wait() error {
	w := a.w
	w.mu.Lock()
	for !a.done {
		if !w.leader {
			w.leader = true
			w.driveLocked()
			w.leader = false
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
	err := a.err
	w.mu.Unlock()
	return err
}

// LSN returns the sequence number assigned to the frame at enqueue.
func (a *Ack) LSN() uint64 { return a.lsn }

// Open recovers the log rooted at opts.FS: it loads the checkpoint
// snapshot if one exists, scans the segments in order, truncates the first
// torn or corrupt frame and everything after it, and collects the records
// newer than the snapshot for Replay. A corrupt snapshot (failed checksum)
// is not recoverable mechanically and fails Open.
//
// seclint:locked w is not yet published; no other goroutine can hold a reference before Open returns
func Open(opts Options) (*WAL, error) {
	if opts.FS == nil {
		return nil, fmt.Errorf("wal: Options.FS is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = defaultBatchBytes
	}
	w := &WAL{fs: opts.FS, opts: opts}
	w.cond = sync.NewCond(&w.mu)
	w.stats.Policy = opts.Policy.String()
	if err := w.recover(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop(w.stop, w.done)
	}
	return w, nil
}

// seclint:locked runs only from Open, before w is published
func (w *WAL) recover() error {
	names, err := w.fs.List()
	if err != nil {
		return fmt.Errorf("wal: list: %w", err)
	}
	var segNums []int
	for _, name := range names {
		switch {
		case name == snapshotName:
			data, err := w.fs.ReadFile(name)
			if err != nil {
				return fmt.Errorf("wal: read snapshot: %w", err)
			}
			lsn, payload, rest, err := DecodeFrame(data)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("wal: snapshot corrupt: %w", ErrCorrupt)
			}
			w.snapLSN = lsn
			w.snapshot = append([]byte(nil), payload...)
		case name == snapshotTmpName:
			// A checkpoint died before its rename; the tmp is garbage.
			_ = w.fs.Remove(name)
		default:
			if n, ok := parseSegmentName(name); ok {
				segNums = append(segNums, n)
			}
			// Unknown names (e.g. leftover .trunc temporaries) are ignored;
			// WriteTrunc re-creates its temporary from scratch.
		}
	}
	w.lastLSN = w.snapLSN
	truncated := false
	for _, n := range segNums {
		name := segmentName(n)
		if truncated {
			// Everything after a torn segment is dead by construction: the
			// writer never opened a later segment before finishing this one.
			if err := w.fs.Remove(name); err != nil {
				return fmt.Errorf("wal: drop post-torn segment %s: %w", name, err)
			}
			continue
		}
		w.segSeq = n
		data, err := w.fs.ReadFile(name)
		if err != nil {
			return fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		good := 0
		rest := data
		for len(rest) > 0 {
			lsn, payload, next, err := DecodeFrame(rest)
			if err != nil {
				truncated = true
				w.stats.TornTails++
				break
			}
			good = len(data) - len(next)
			rest = next
			if lsn > w.snapLSN {
				w.tail = append(w.tail, Record{LSN: lsn, Payload: append([]byte(nil), payload...)})
			}
			if lsn > w.lastLSN {
				w.lastLSN = lsn
			}
		}
		if truncated {
			if good == 0 {
				if err := w.fs.Remove(name); err != nil {
					return fmt.Errorf("wal: drop torn segment %s: %w", name, err)
				}
				continue
			}
			if err := w.fs.WriteTrunc(name, data[:good]); err != nil {
				return fmt.Errorf("wal: truncate torn segment %s: %w", name, err)
			}
		}
		w.segments = append(w.segments, name)
	}
	w.writtenLSN = w.lastLSN
	w.durableLSN = w.lastLSN
	w.stats.Segments = len(w.segments)
	w.stats.LastLSN = w.lastLSN
	w.stats.SnapshotLSN = w.snapLSN
	w.stats.DurableLSN = w.durableLSN
	return nil
}

// Snapshot returns the checkpoint payload recovered at Open (or installed
// since), the LSN it covers, and whether one exists.
//
// Concurrency contract: Snapshot is safe while commits, checkpoints and
// replication cursors run; the returned slice is a private copy the caller
// owns. Nothing hands out the log's internal state — readers that want the
// records themselves go through OpenCursor, whose iteration is anchored to
// the mu-guarded watermarks rather than raw slices.
func (w *WAL) Snapshot() ([]byte, uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snapshot == nil {
		return nil, 0, false
	}
	return append([]byte(nil), w.snapshot...), w.snapLSN, true
}

// Replay calls fn for every record recovered at Open that is newer than
// the snapshot, in LSN order. It does not see records appended after Open
// — it is the recovery-time view, for stores rebuilding their state once.
//
// Concurrency contract: safe while commits continue. Replay iterates a
// snapshot of the recovered tail taken under the lock; the tail itself is
// immutable after Open (Checkpoint replaces, never mutates, it), so fn
// observes a frozen prefix even if a checkpoint runs mid-iteration.
// Streaming consumers that must also see post-Open appends use OpenCursor.
func (w *WAL) Replay(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	tail := w.tail
	w.mu.Unlock()
	for _, r := range tail {
		if err := fn(r.LSN, r.Payload); err != nil {
			return err
		}
	}
	return nil
}

// LastLSN returns the highest LSN appended or recovered (enqueued frames
// count — their LSNs are assigned and final).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// Err returns the sticky write error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is durable when Append returns nil. Concurrent Appends are
// coalesced: the frame may reach disk in a shared batch write under a
// shared fsync.
// seclint:sink
func (w *WAL) Append(payload []byte) (uint64, error) {
	lsn, a, err := w.AppendAsync(payload)
	if err != nil {
		return 0, err
	}
	if err := a.Wait(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendAsync enqueues one record into the commit pipeline and returns
// its LSN immediately; the returned Ack yields the durability verdict.
// The caller may enqueue several frames and wait only on the last: frames
// are written strictly in LSN order, so a nil verdict for a frame implies
// every lower-LSN frame is also on disk. An error here means the frame
// was never enqueued (poisoned or closed log, oversized payload).
// seclint:sink
func (w *WAL) AppendAsync(payload []byte) (uint64, *Ack, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, nil, w.err
	}
	if len(payload) > MaxPayload {
		return 0, nil, fmt.Errorf("wal: payload %d bytes exceeds MaxPayload", len(payload))
	}
	lsn := w.lastLSN + 1
	w.lastLSN = lsn
	if w.qbuf == nil {
		w.qbuf = getEncodeBuf()
	}
	*w.qbuf = EncodeFrame(*w.qbuf, lsn, payload)
	a := &Ack{w: w, lsn: lsn, size: frameSize(len(payload)), enq: time.Now()}
	w.queue = append(w.queue, a)
	w.stats.Appends++
	w.stats.BytesWritten += uint64(a.size)
	w.stats.LastLSN = lsn
	return lsn, a, nil
}

// driveLocked drains the commit queue as the batch leader. Caller holds
// w.mu and has set w.leader; driveLocked returns with the queue empty (or
// failed, if the log poisoned). For each batch it claims io ownership,
// releases w.mu for the write+fsync so followers keep enqueuing, then
// delivers the shared verdict to every waiter in the batch.
//
// seclint:locked caller holds w.mu (and releases/reacquires it around the batch I/O below)
func (w *WAL) driveLocked() {
	for len(w.queue) > 0 {
		if w.err != nil {
			w.failQueueLocked(w.err)
			return
		}
		if d := w.opts.MaxDelay; d > 0 {
			// Linger to let late committers widen the batch, bounded by the
			// oldest waiter's enqueue time.
			if wait := d - time.Since(w.queue[0].enq); wait > 0 && len(*w.qbuf) < w.opts.MaxBatchBytes {
				w.mu.Unlock()
				time.Sleep(wait)
				w.mu.Lock()
				if w.err != nil {
					continue
				}
			}
		}
		for w.ioBusy {
			w.cond.Wait()
		}
		if w.err != nil || len(w.queue) == 0 {
			continue
		}
		// Take the batch: at least one frame, at most MaxBatchBytes. The
		// batch buffer is detached whole — followers enqueuing during the
		// write get a fresh pooled buffer, so nothing aliases the bytes in
		// flight. The waiter list is copied into the leader-owned scratch
		// so the queue's backing array can be reused immediately.
		n, nb := 1, w.queue[0].size
		for n < len(w.queue) && nb+w.queue[n].size <= w.opts.MaxBatchBytes {
			nb += w.queue[n].size
			n++
		}
		bp := w.qbuf
		batch := (*bp)[:nb]
		w.scratch = append(w.scratch[:0], w.queue[:n]...)
		waiters := w.scratch
		if n == len(w.queue) {
			w.qbuf = nil
			w.queue = w.queue[:0]
		} else {
			w.qbuf = getEncodeBuf()
			*w.qbuf = append(*w.qbuf, (*bp)[nb:]...)
			m := copy(w.queue, w.queue[n:])
			w.queue = w.queue[:m]
		}
		w.ioBusy = true
		wasDirty := w.dirty
		w.mu.Unlock()
		dirty, newSeg, fsyncs, rotations, err := w.writeBatch(batch, wasDirty)
		w.mu.Lock()
		w.ioBusy = false
		w.dirty = dirty
		if newSeg != "" {
			w.segments = append(w.segments, newSeg)
		}
		if err == nil {
			last := waiters[n-1].lsn
			w.writtenLSN = last
			if w.opts.Policy == SyncAlways {
				w.advanceDurableLocked(last)
			}
		}
		w.stats.Fsyncs += fsyncs
		w.stats.Rotations += rotations
		w.stats.Segments = len(w.segments)
		w.stats.Batches++
		w.stats.BatchFrames += uint64(n)
		w.stats.BatchSizes[batchBucket(n)]++
		if n > w.stats.MaxBatch {
			w.stats.MaxBatch = n
		}
		if err == nil && w.opts.Policy == SyncAlways && n > 1 {
			w.stats.FsyncsSaved += uint64(n - 1)
		}
		if err != nil && w.err == nil {
			w.err = err
		}
		now := time.Now()
		for _, a := range waiters {
			a.done = true
			a.err = err
			w.stats.CommitWaitNs[waitBucket(now.Sub(a.enq))]++
		}
		putEncodeBuf(bp)
		w.cond.Broadcast()
	}
}

// failQueueLocked delivers err to every queued waiter and empties the
// queue. Lock held.
//
// seclint:locked caller holds w.mu
func (w *WAL) failQueueLocked(err error) {
	now := time.Now()
	for _, a := range w.queue {
		a.done = true
		a.err = err
		w.stats.CommitWaitNs[waitBucket(now.Sub(a.enq))]++
	}
	w.queue = w.queue[:0]
	if w.qbuf != nil {
		putEncodeBuf(w.qbuf)
		w.qbuf = nil
	}
	w.cond.Broadcast()
}

// writeBatch writes one coalesced batch of frames to the active segment,
// rotating first when the batch would overflow it, and fsyncs under
// SyncAlways. It runs with io ownership but without w.mu; it touches only
// io-owned fields and reports counter deltas — and the name of any segment
// it created — for the caller to fold into the mu-guarded state.
func (w *WAL) writeBatch(buf []byte, wasDirty bool) (dirty bool, newSeg string, fsyncs, rotations uint64, err error) {
	dirty = wasDirty
	if w.active != nil && w.activeSize > 0 && w.activeSize+len(buf) > w.opts.SegmentBytes {
		if dirty {
			if err = w.active.Sync(); err != nil {
				return dirty, newSeg, fsyncs, rotations, fmt.Errorf("wal: fsync: %w", err)
			}
			dirty = false
			fsyncs++
		}
		if err = w.active.Close(); err != nil {
			return dirty, newSeg, fsyncs, rotations, fmt.Errorf("wal: rotate close: %w", err)
		}
		w.active = nil
		rotations++
	}
	if w.active == nil {
		w.segSeq++
		name := segmentName(w.segSeq)
		f, err := w.fs.Create(name)
		if err != nil {
			return dirty, newSeg, fsyncs, rotations, fmt.Errorf("wal: create segment %s: %w", name, err)
		}
		w.active = f
		w.activeSize = 0
		newSeg = name
	}
	if _, err = w.active.Write(buf); err != nil {
		return dirty, newSeg, fsyncs, rotations, fmt.Errorf("wal: append: %w", err)
	}
	w.activeSize += len(buf)
	dirty = true
	if w.opts.Policy == SyncAlways {
		if err = w.active.Sync(); err != nil {
			return dirty, newSeg, fsyncs, rotations, fmt.Errorf("wal: fsync: %w", err)
		}
		dirty = false
		fsyncs++
	}
	return dirty, newSeg, fsyncs, rotations, nil
}

// quiesceLocked drains the commit pipeline and claims io ownership. On
// return (lock held) the queue is empty, no leader is active, and the
// caller owns the file until releaseIOLocked. Every LSN assigned so far
// has been written (or the log is poisoned); LSNs assigned afterwards
// cannot reach the file until the caller releases ownership.
//
// seclint:locked caller holds w.mu
func (w *WAL) quiesceLocked() {
	for {
		if len(w.queue) > 0 && !w.leader {
			w.leader = true
			w.driveLocked()
			w.leader = false
			w.cond.Broadcast()
			continue
		}
		if len(w.queue) == 0 && !w.leader && !w.ioBusy && !w.checkpointing {
			w.ioBusy = true
			return
		}
		w.cond.Wait()
	}
}

// seclint:locked caller holds w.mu
func (w *WAL) releaseIOLocked() {
	w.ioBusy = false
	w.cond.Broadcast()
}

// Sync drains the pipeline and fsyncs the active segment regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.quiesceLocked()
	defer w.releaseIOLocked()
	if w.err != nil {
		return w.err
	}
	if w.active == nil || !w.dirty {
		w.advanceDurableLocked(w.writtenLSN)
		return nil
	}
	w.mu.Unlock()
	err := w.active.Sync()
	w.mu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: fsync: %w", err)
		}
		return w.err
	}
	w.dirty = false
	w.stats.Fsyncs++
	w.advanceDurableLocked(w.writtenLSN)
	return nil
}

// Checkpoint installs snapshot as the new recovery base covering every
// record appended so far, then deletes the log segments: recovery becomes
// "load snapshot, replay nothing", and disk usage drops to the snapshot.
// The protocol is crash-safe at every step: the snapshot is written to a
// temporary file, fsynced, and renamed into place (the atomic commit
// point); segments are deleted only afterwards, and a crash between rename
// and deletion merely leaves stale segments whose records are skipped on
// open because their LSNs are covered by the snapshot. The pipeline is
// drained first, so the snapshot's coverage claim never outruns the disk;
// callers whose snapshot covers only a prefix of the log (fuzzy
// checkpoints over an MVCC version) use CheckpointAt instead.
// seclint:sink
func (w *WAL) Checkpoint(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(snapshot) > MaxPayload {
		return fmt.Errorf("wal: snapshot %d bytes exceeds MaxPayload", len(snapshot))
	}
	w.quiesceLocked()
	defer w.releaseIOLocked()
	if w.err != nil {
		return w.err
	}
	lastLSN := w.lastLSN
	segs := append([]string(nil), w.segments...)
	w.mu.Unlock()
	written, err := w.checkpointIO(snapshot, lastLSN, segs)
	w.mu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	w.snapLSN = lastLSN
	w.snapshot = append([]byte(nil), snapshot...)
	w.tail = nil
	w.dirty = false
	w.segments = nil
	w.writtenLSN = lastLSN
	w.advanceDurableLocked(lastLSN)
	w.stats.Checkpoints++
	w.stats.Segments = 0
	w.stats.SnapshotLSN = lastLSN
	w.stats.BytesWritten += uint64(written)
	return nil
}

// checkpointIO performs the checkpoint's file work: tmp write, fsync,
// atomic rename, then cleanup of the given segments. Runs with io
// ownership, without w.mu (segs is the caller's copy of the mu-guarded
// list). A failure after the rename poisons the log but cannot lose the
// checkpoint.
func (w *WAL) checkpointIO(snapshot []byte, lastLSN uint64, segs []string) (int, error) {
	f, err := w.fs.Create(snapshotTmpName)
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint create: %w", err)
	}
	bp := getEncodeBuf()
	*bp = EncodeFrame(*bp, lastLSN, snapshot)
	buf := *bp
	defer putEncodeBuf(bp)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := w.fs.Rename(snapshotTmpName, snapshotName); err != nil {
		return 0, fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	// Committed. Everything below is cleanup; failures poison the log but
	// cannot lose the checkpoint.
	if w.active != nil {
		if err := w.active.Close(); err != nil {
			return 0, fmt.Errorf("wal: checkpoint close segment: %w", err)
		}
		w.active = nil
	}
	for _, name := range segs {
		if err := w.fs.Remove(name); err != nil {
			return 0, fmt.Errorf("wal: checkpoint drop segment %s: %w", name, err)
		}
	}
	w.activeSize = 0
	return len(buf), nil
}

// CheckpointAt installs snapshot as the new recovery base covering every
// record with LSN <= upTo, WITHOUT quiescing the commit pipeline: appends,
// batches and fsyncs keep running while the snapshot streams out. This is
// the fuzzy-checkpoint primitive — the store above pins a consistent
// in-memory version, keeps committing, and fences the log here at a point
// the version provably covers (reldb additionally holds upTo below the
// oldest in-flight transaction's first record so redo never loses a
// record it needs).
//
// Only sealed segments — never the one the batch pipeline may still be
// appending to — whose frames all lie at or below upTo are deleted; the
// records above the fence survive for replay. Crash-safety is the same
// protocol as Checkpoint: tmp write + fsync + atomic rename is the commit
// point, segment deletion happens after it, and a crash in between leaves
// stale segments whose covered records are skipped on open. A checkpoint
// at or below the current snapshot LSN is a no-op. Because the fsynced
// snapshot itself makes every record at or below upTo recoverable, the
// durable watermark advances to upTo on success.
// seclint:sink
func (w *WAL) CheckpointAt(snapshot []byte, upTo uint64) error {
	candidates, claimed, err := w.claimCheckpoint(snapshot, upTo)
	if err != nil || !claimed {
		return err
	}

	written, removed, err := w.fuzzyCheckpointIO(snapshot, upTo, candidates)

	w.mu.Lock()
	defer w.mu.Unlock()
	w.checkpointing = false
	w.cond.Broadcast()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	w.snapLSN = upTo
	w.snapshot = append([]byte(nil), snapshot...)
	// Replace — never mutate — the recovered tail (Replay iterates it
	// without the lock).
	var tail []Record
	for _, r := range w.tail {
		if r.LSN > upTo {
			tail = append(tail, r)
		}
	}
	w.tail = tail
	if len(removed) > 0 {
		rm := make(map[string]bool, len(removed))
		for _, name := range removed {
			rm[name] = true
		}
		var kept []string
		for _, name := range w.segments {
			if !rm[name] {
				kept = append(kept, name)
			}
		}
		w.segments = kept
	}
	w.advanceDurableLocked(upTo)
	w.stats.Checkpoints++
	w.stats.Segments = len(w.segments)
	w.stats.SnapshotLSN = upTo
	w.stats.BytesWritten += uint64(written)
	return nil
}

// claimCheckpoint validates a CheckpointAt request and claims the single
// checkpoint slot. claimed is false with a nil error when the request is
// a no-op (upTo at or below the current snapshot). On a true claim it
// also snapshots the deletion candidates: every segment name but the
// last — the last named segment may be the active file the pipeline is
// writing and is always spared (a later checkpoint reaps it once it is
// sealed). The claim serializes against other fuzzy checkpoints and
// against any quiesce-based file operation currently holding io
// ownership; batch leaders claiming ioBusy after checkpointing is set
// proceed concurrently.
func (w *WAL) claimCheckpoint(snapshot []byte, upTo uint64) (candidates []string, claimed bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(snapshot) > MaxPayload {
		return nil, false, fmt.Errorf("wal: snapshot %d bytes exceeds MaxPayload", len(snapshot))
	}
	for w.checkpointing || w.ioBusy {
		if w.err != nil {
			return nil, false, w.err
		}
		w.cond.Wait()
	}
	if w.err != nil {
		return nil, false, w.err
	}
	if upTo <= w.snapLSN {
		return nil, false, nil
	}
	if upTo > w.lastLSN {
		return nil, false, fmt.Errorf("wal: checkpoint at %d beyond last LSN %d", upTo, w.lastLSN)
	}
	w.checkpointing = true
	if len(w.segments) > 1 {
		candidates = append([]string(nil), w.segments[:len(w.segments)-1]...)
	}
	return candidates, true, nil
}

// fuzzyCheckpointIO performs CheckpointAt's file work: tmp write, fsync,
// atomic rename, then deletion of the candidate segments fully covered by
// upTo. It runs WITHOUT io ownership — concurrent batch leaders write the
// active segment while this streams — touching only the snapshot files and
// sealed segments. Deletion stops at the first candidate with a frame
// above upTo (frames are in LSN order across segments, so later candidates
// are above it too).
func (w *WAL) fuzzyCheckpointIO(snapshot []byte, upTo uint64, candidates []string) (written int, removed []string, err error) {
	f, err := w.fs.Create(snapshotTmpName)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: checkpoint create: %w", err)
	}
	bp := getEncodeBuf()
	*bp = EncodeFrame(*bp, upTo, snapshot)
	buf := *bp
	defer putEncodeBuf(bp)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, nil, fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := w.fs.Rename(snapshotTmpName, snapshotName); err != nil {
		return 0, nil, fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	// Committed. Deletions below are cleanup; a failure poisons the log but
	// cannot lose the checkpoint.
	for _, name := range candidates {
		data, err := w.fs.ReadFile(name)
		if err != nil {
			return len(buf), removed, fmt.Errorf("wal: checkpoint read segment %s: %w", name, err)
		}
		covered := true
		rest := data
		for len(rest) > 0 {
			lsn, _, next, derr := DecodeFrame(rest)
			if derr != nil || lsn > upTo {
				covered = false
				break
			}
			rest = next
		}
		if !covered {
			break
		}
		if err := w.fs.Remove(name); err != nil {
			return len(buf), removed, fmt.Errorf("wal: checkpoint drop segment %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return len(buf), removed, nil
}

// advanceDurableLocked raises the durable watermark and pokes the
// registered watchers. Lock held.
//
// seclint:locked caller holds w.mu
func (w *WAL) advanceDurableLocked(lsn uint64) {
	if lsn <= w.durableLSN {
		return
	}
	w.durableLSN = lsn
	w.stats.DurableLSN = lsn
	for _, ch := range w.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// DurableLSN returns the highest LSN covered by a completed durability
// barrier: under SyncAlways it tracks every acknowledged batch; under the
// lazy policies it advances on explicit Sync, the interval flush and
// Checkpoint. Replication cursors are bounded by it.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableLSN
}

// Watch registers and returns a 1-buffered channel that receives a (
// coalesced) signal whenever the durable watermark advances — the wake-up
// a replication leader blocks on between batches. Release it with Unwatch.
func (w *WAL) Watch() chan struct{} {
	ch := make(chan struct{}, 1)
	w.mu.Lock()
	w.watchers = append(w.watchers, ch)
	w.mu.Unlock()
	return ch
}

// Unwatch removes a channel registered by Watch.
func (w *WAL) Unwatch(ch chan struct{}) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, c := range w.watchers {
		if c == ch {
			w.watchers = append(w.watchers[:i], w.watchers[i+1:]...)
			return
		}
	}
}

// TruncateTo discards every record with LSN greater than lsn — the rejoin
// primitive of replication: a follower whose tail outruns the new leader's
// history (the old leader shipped records that never reached a quorum)
// cuts back to the leader's watermark before streaming resumes. It refuses
// to cut below the checkpoint snapshot (use InstallSnapshot for a full
// resync). A no-op when lsn >= LastLSN.
func (w *WAL) TruncateTo(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.quiesceLocked()
	defer w.releaseIOLocked()
	if w.err != nil {
		return w.err
	}
	if lsn >= w.lastLSN {
		return nil
	}
	if lsn < w.snapLSN {
		return fmt.Errorf("wal: truncate to %d below snapshot %d (full resync required)", lsn, w.snapLSN)
	}
	segs := append([]string(nil), w.segments...)
	w.mu.Unlock()
	kept, err := w.truncateIO(lsn, segs)
	w.mu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	w.segments = kept
	w.lastLSN = lsn
	w.writtenLSN = lsn
	if w.durableLSN > lsn {
		w.durableLSN = lsn
	}
	for len(w.tail) > 0 && w.tail[len(w.tail)-1].LSN > lsn {
		w.tail = w.tail[:len(w.tail)-1]
	}
	w.dirty = false
	w.rewinds++
	w.stats.LastLSN = lsn
	w.stats.DurableLSN = w.durableLSN
	w.stats.Segments = len(w.segments)
	return nil
}

// truncateIO rewrites the segment files so no frame with LSN > lsn
// survives, returning the kept segment names. Runs with io ownership,
// without w.mu.
func (w *WAL) truncateIO(lsn uint64, segs []string) ([]string, error) {
	if w.active != nil {
		if err := w.active.Close(); err != nil {
			return nil, fmt.Errorf("wal: truncate close: %w", err)
		}
		w.active = nil
		w.activeSize = 0
	}
	var kept []string
	cut := false
	for _, name := range segs {
		if cut {
			if err := w.fs.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: truncate drop %s: %w", name, err)
			}
			continue
		}
		data, err := w.fs.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("wal: truncate read %s: %w", name, err)
		}
		good := 0
		rest := data
		for len(rest) > 0 {
			frameLSN, _, next, err := DecodeFrame(rest)
			if err != nil || frameLSN > lsn {
				cut = true
				break
			}
			good = len(data) - len(next)
			rest = next
		}
		switch {
		case !cut:
			kept = append(kept, name)
		case good == 0:
			if err := w.fs.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: truncate drop %s: %w", name, err)
			}
		default:
			if err := w.fs.WriteTrunc(name, data[:good]); err != nil {
				return nil, fmt.Errorf("wal: truncate %s: %w", name, err)
			}
			kept = append(kept, name)
		}
	}
	return kept, nil
}

// InstallSnapshot replaces the log's entire history with the given
// snapshot covering lsn: the full-resync primitive a follower uses when
// its history diverged from the leader's beyond repair, or fell behind the
// leader's checkpoint. Afterwards LastLSN == SnapshotLSN == lsn and the
// next Append is assigned lsn+1.
func (w *WAL) InstallSnapshot(snapshot []byte, lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if len(snapshot) > MaxPayload {
		return fmt.Errorf("wal: snapshot %d bytes exceeds MaxPayload", len(snapshot))
	}
	w.quiesceLocked()
	defer w.releaseIOLocked()
	if w.err != nil {
		return w.err
	}
	segs := append([]string(nil), w.segments...)
	w.mu.Unlock()
	written, err := w.checkpointIO(snapshot, lsn, segs)
	w.mu.Lock()
	if err != nil {
		if w.err == nil {
			w.err = err
		}
		return w.err
	}
	w.snapLSN = lsn
	w.snapshot = append([]byte(nil), snapshot...)
	w.lastLSN = lsn
	w.writtenLSN = lsn
	w.tail = nil
	w.dirty = false
	w.segments = nil
	w.rewinds++
	if lsn > w.durableLSN {
		w.advanceDurableLocked(lsn)
	} else {
		// A resync may rewind the watermark; no watcher poke needed.
		w.durableLSN = lsn
	}
	w.stats.Checkpoints++
	w.stats.Segments = 0
	w.stats.LastLSN = lsn
	w.stats.SnapshotLSN = lsn
	w.stats.DurableLSN = lsn
	w.stats.BytesWritten += uint64(written)
	return nil
}

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Close drains the pipeline, flushes and closes the log. Further use
// returns ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == ErrClosed {
		return nil
	}
	w.quiesceLocked()
	var firstErr error
	if w.err == nil && w.active != nil && w.dirty {
		w.mu.Unlock()
		err := w.active.Sync()
		w.mu.Lock()
		if err != nil {
			firstErr = err
		} else {
			w.dirty = false
			w.stats.Fsyncs++
			w.advanceDurableLocked(w.writtenLSN)
		}
	}
	if w.active != nil {
		w.mu.Unlock()
		err := w.active.Close()
		w.mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		w.active = nil
	}
	w.err = ErrClosed
	w.releaseIOLocked()
	return firstErr
}

// flushLoop is the SyncInterval background fsync: each tick it drains any
// unled queue (so async appends never outlive the interval's loss bound)
// and syncs the active segment.
func (w *WAL) flushLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil && len(w.queue) > 0 && !w.leader {
				w.leader = true
				w.driveLocked()
				w.leader = false
				w.cond.Broadcast()
			}
			if w.err == nil && !w.leader && !w.ioBusy && w.active != nil && w.dirty {
				w.ioBusy = true
				w.mu.Unlock()
				err := w.active.Sync()
				w.mu.Lock()
				if err != nil {
					if w.err == nil {
						w.err = fmt.Errorf("wal: fsync: %w", err)
					}
				} else {
					w.dirty = false
					w.stats.Fsyncs++
					w.advanceDurableLocked(w.writtenLSN)
				}
				w.releaseIOLocked()
			}
			w.mu.Unlock()
		}
	}
}
