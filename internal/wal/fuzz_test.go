package wal_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"webdbsec/internal/wal"
)

// FuzzWALDecode feeds arbitrary bytes to the frame decoder. Two
// properties must hold for any input: the decoder never panics, and any
// frame it accepts re-encodes to exactly the bytes it consumed (so a
// recovered log can only contain data that was genuinely written).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(wal.EncodeFrame(nil, 1, []byte("hello")))
	f.Add(wal.EncodeFrame(wal.EncodeFrame(nil, 1, []byte("a")), 2, []byte("b")))
	// Torn tail: a valid frame followed by half of another.
	torn := wal.EncodeFrame(nil, 7, []byte("committed"))
	torn = append(torn, wal.EncodeFrame(nil, 8, []byte("torn-off-here"))[:9]...)
	f.Add(torn)
	// Huge declared length with no body.
	var huge [16]byte
	binary.LittleEndian.PutUint32(huge[:4], 1<<30)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for len(rest) > 0 {
			lsn, payload, next, err := wal.DecodeFrame(rest)
			if err != nil {
				return
			}
			consumed := rest[:len(rest)-len(next)]
			if re := wal.EncodeFrame(nil, lsn, payload); !bytes.Equal(re, consumed) {
				t.Fatalf("accepted frame does not round-trip:\nconsumed %x\nreencode %x", consumed, re)
			}
			if len(next) >= len(rest) {
				t.Fatalf("decoder made no progress: %d -> %d bytes", len(rest), len(next))
			}
			rest = next
		}
	})
}
