package wal

import (
	"errors"
	"fmt"
)

// ErrCompacted is returned by OpenCursor and Cursor.Next when the
// requested position has been folded into a checkpoint snapshot: the
// records no longer exist individually, so a streaming consumer must
// restart from the snapshot (Snapshot + InstallSnapshot on the far side).
var ErrCompacted = errors.New("wal: position compacted into snapshot")

// Cursor is a read-only iterator over the log's durable records, anchored
// at an LSN: Next surfaces records in LSN order, starting after the anchor
// and never beyond the durable watermark — a frame is visible only once
// its durability barrier completed, so a replication stream cannot ship
// bytes the log could still lose in a crash.
//
// Concurrency contract: a cursor reads segment data through the FS and
// coordinates with writers only through the mu-guarded watermarks and
// segment list — it never touches the io-owned file handle, so any number
// of cursors may run while commits, checkpoints and truncations continue.
// A checkpoint that compacts records out from under a cursor surfaces as
// ErrCompacted on the next call; a concurrent TruncateTo simply moves the
// durable watermark down and the cursor waits at the new boundary.
// A Cursor itself is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	w *WAL
	// next is the LSN the cursor will surface next.
	next uint64
	// seg/off remember the decode position: segs[segIdx] consumed through
	// byte off. segs is the cursor's snapshot of the segment list; it is
	// refreshed whenever the position goes stale.
	segs   []string
	segIdx int
	off    int
	// data caches the bytes of segs[segIdx] so a streaming consumer decodes
	// O(1) per record instead of re-reading the whole segment every call
	// (which made catch-up quadratic in segment size). The cache is dropped
	// whenever the cursor returns without a record or the position is
	// invalidated, so a re-grown or rewritten file is always re-read before
	// the next decode.
	data []byte
	// rewinds is the WAL rewind generation the cached position belongs to;
	// a TruncateTo/InstallSnapshot since invalidates it.
	rewinds uint64
}

// OpenCursor returns a cursor surfacing durable records with LSN > after.
// ErrCompacted means the position predates the checkpoint snapshot and the
// consumer must resync from Snapshot first. A cursor does not pin
// anything: the log may checkpoint or truncate underneath it, and the
// cursor reports ErrCompacted / waits accordingly.
func (w *WAL) OpenCursor(after uint64) (*Cursor, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil && w.err != ErrClosed {
		return nil, w.err
	}
	if after < w.snapLSN {
		return nil, fmt.Errorf("%w: cursor at %d, snapshot covers %d", ErrCompacted, after, w.snapLSN)
	}
	return &Cursor{w: w, next: after + 1, rewinds: w.rewinds}, nil
}

// Next returns the next durable record, if one is available. ok is false
// when the cursor has caught up with the durable watermark — wait on
// Watch and retry. The returned payload is a private copy.
func (c *Cursor) Next() (rec Record, ok bool, err error) {
	w := c.w
	w.mu.Lock()
	durable, snap, rewinds := w.durableLSN, w.snapLSN, w.rewinds
	segs := append([]string(nil), w.segments...)
	w.mu.Unlock()
	if rewinds != c.rewinds {
		// History was truncated or replaced since the last call: the cached
		// byte position may point into rewritten bytes, and records already
		// surfaced may have been cut. Restart from the snapshot boundary and
		// redeliver — the consumer observes the LSN going backwards, which
		// is exactly the history-rewrite signal. Rewinds only happen during
		// join-time divergence repair, so the redundancy is never on a hot
		// path.
		c.rewinds = rewinds
		c.segs, c.segIdx, c.off, c.data = nil, 0, 0, nil
		c.next = snap + 1
	}
	if c.next > durable {
		c.data = nil
		return Record{}, false, nil
	}
	if c.next <= snap {
		return Record{}, false, fmt.Errorf("%w: cursor at %d, snapshot covers %d", ErrCompacted, c.next-1, snap)
	}
	if !sameSegPrefix(c.segs, segs, c.segIdx) {
		// Segments rotated, truncated or checkpointed under us: rescan from
		// the start of the surviving list. The LSN filter keeps the output
		// exactly-once.
		c.segIdx, c.off, c.data = 0, 0, nil
	}
	c.segs = segs
	for c.segIdx < len(c.segs) {
		if c.off >= len(c.data) {
			// Cache empty or consumed: (re-)read the segment. This is the
			// only FS read on the streaming path — while cached bytes last,
			// decoding is O(1) per record.
			data, err := w.fs.ReadFile(c.segs[c.segIdx])
			if err != nil {
				// The segment vanished (checkpoint or truncation won the
				// race); restart from the fresh list on the next call.
				c.segs, c.data = nil, nil
				return Record{}, false, nil
			}
			if c.off > len(data) {
				// The file shrank in place (torn-tail truncation on a
				// rejoin); rescan it.
				c.off = 0
			}
			c.data = data
		}
		data := c.data
		rest := data[c.off:]
		for len(rest) > 0 {
			lsn, payload, next, err := DecodeFrame(rest)
			if err == ErrTorn {
				// A frame still being written when the cache was read.
				// Durable frames are complete on disk, so the target record
				// is further along — drop the cache and wait for the writer.
				c.data = nil
				return Record{}, false, nil
			}
			if err != nil {
				return Record{}, false, fmt.Errorf("wal: cursor read %s: %w", c.segs[c.segIdx], err)
			}
			c.off = len(data) - len(next)
			rest = next
			if lsn < c.next {
				continue
			}
			if lsn != c.next {
				return Record{}, false, fmt.Errorf("wal: cursor expected LSN %d, found %d in %s", c.next, lsn, c.segs[c.segIdx])
			}
			c.next = lsn + 1
			return Record{LSN: lsn, Payload: append([]byte(nil), payload...)}, true, nil
		}
		// Segment exhausted. Move on only if a later segment exists — the
		// record must then live there; otherwise the record is still being
		// appended to this (active) segment: drop the cache so the next call
		// re-reads the grown file.
		if c.segIdx+1 >= len(c.segs) {
			c.data = nil
			return Record{}, false, nil
		}
		c.segIdx++
		c.off = 0
		c.data = nil
	}
	return Record{}, false, nil
}

// sameSegPrefix reports whether the first n+1 names of old and new agree —
// i.e. the cursor's position in old is still meaningful in new.
func sameSegPrefix(old, new []string, n int) bool {
	if len(old) == 0 {
		return len(new) == 0 || n == 0
	}
	if n >= len(new) || n >= len(old) {
		return false
	}
	for i := 0; i <= n; i++ {
		if old[i] != new[i] {
			return false
		}
	}
	return true
}
