package wal_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openTestWAL(t *testing.T, fs wal.FS, opts wal.Options) *wal.WAL {
	t.Helper()
	opts.FS = fs
	w, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func mustAppend(t *testing.T, w *wal.WAL, payload string) uint64 {
	t.Helper()
	lsn, err := w.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return lsn
}

func drainCursor(t *testing.T, c *wal.Cursor) []wal.Record {
	t.Helper()
	var out []wal.Record
	for {
		rec, ok, err := c.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func TestCursorStreamsAppends(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, w, fmt.Sprintf("rec-%d", i))
	}
	c, err := w.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	recs := drainCursor(t, c)
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || string(r.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = (%d, %q)", i, r.LSN, r.Payload)
		}
	}
	// Caught up: no record, no error.
	if _, ok, err := c.Next(); ok || err != nil {
		t.Fatalf("caught-up Next = (%v, %v), want (false, nil)", ok, err)
	}
	// New appends become visible after the durability barrier; Watch wakes
	// the consumer.
	watch := w.Watch()
	defer w.Unwatch(watch)
	mustAppend(t, w, "late")
	select {
	case <-watch:
	case <-time.After(2 * time.Second):
		t.Fatal("watch channel never signaled")
	}
	recs = drainCursor(t, c)
	if len(recs) != 1 || string(recs[0].Payload) != "late" {
		t.Fatalf("post-watch records = %v", recs)
	}
}

func TestCursorAnchoredMidStream(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, w, fmt.Sprintf("r%d", i))
	}
	c, err := w.OpenCursor(7)
	if err != nil {
		t.Fatalf("OpenCursor(7): %v", err)
	}
	recs := drainCursor(t, c)
	if len(recs) != 3 || recs[0].LSN != 8 {
		t.Fatalf("anchored cursor read %v", recs)
	}
}

func TestCursorAcrossRotation(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{SegmentBytes: 64})
	defer w.Close()
	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, w, fmt.Sprintf("payload-%02d", i))
	}
	if w.Stats().Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", w.Stats().Segments)
	}
	c, err := w.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	recs := drainCursor(t, c)
	if len(recs) != n {
		t.Fatalf("got %d records across rotation, want %d", len(recs), n)
	}
}

// TestCursorConcurrentCommits is the satellite's concurrency contract in
// action: a replication stream reads while commits continue, under the
// race detector.
func TestCursorConcurrentCommits(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{SegmentBytes: 256})
	defer w.Close()
	const n = 300
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("c-%03d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c, err := w.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	watch := w.Watch()
	defer w.Unwatch(watch)
	var got []wal.Record
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		rec, ok, err := c.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if ok {
			got = append(got, rec)
			continue
		}
		select {
		case <-watch:
		case <-deadline:
			t.Fatalf("timed out with %d/%d records", len(got), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || string(r.Payload) != fmt.Sprintf("c-%03d", i) {
			t.Fatalf("record %d = (%d, %q)", i, r.LSN, r.Payload)
		}
	}
}

func TestCursorCompactedByCheckpoint(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	for i := 0; i < 6; i++ {
		mustAppend(t, w, fmt.Sprintf("r%d", i))
	}
	c, err := w.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	if err := w.Checkpoint([]byte("snap")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, _, err := c.Next(); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("Next after checkpoint = %v, want wal.ErrCompacted", err)
	}
	// A fresh cursor below the snapshot is refused outright.
	if _, err := w.OpenCursor(2); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("OpenCursor(2) = %v, want wal.ErrCompacted", err)
	}
	// Anchored at the snapshot it streams the post-checkpoint records.
	mustAppend(t, w, "after-cp")
	c2, err := w.OpenCursor(6)
	if err != nil {
		t.Fatalf("OpenCursor(6): %v", err)
	}
	recs := drainCursor(t, c2)
	if len(recs) != 1 || recs[0].LSN != 7 || string(recs[0].Payload) != "after-cp" {
		t.Fatalf("post-checkpoint cursor read %v", recs)
	}
}

func TestTruncateTo(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{SegmentBytes: 80})
	for i := 0; i < 10; i++ {
		mustAppend(t, w, fmt.Sprintf("r%d", i))
	}
	if err := w.TruncateTo(5); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after truncate = %d, want 5", got)
	}
	if got := w.DurableLSN(); got != 5 {
		t.Fatalf("DurableLSN after truncate = %d, want 5", got)
	}
	// Appends continue from the cut.
	if lsn := mustAppend(t, w, "new-6"); lsn != 6 {
		t.Fatalf("post-truncate append LSN = %d, want 6", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Recovery sees exactly the surviving prefix plus the new record.
	w2 := openTestWAL(t, fs, wal.Options{})
	defer w2.Close()
	var got []string
	err := w2.Replay(func(lsn uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	want := []string{"1:r0", "2:r1", "3:r2", "4:r3", "5:r4", "6:new-6"}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTruncateBelowSnapshotRefused(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, w, "x")
	}
	if err := w.Checkpoint([]byte("snap")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := w.TruncateTo(3); err == nil {
		t.Fatal("TruncateTo below snapshot succeeded, want refusal")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("refused truncate poisoned the log: %v", err)
	}
}

func TestInstallSnapshot(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	for i := 0; i < 4; i++ {
		mustAppend(t, w, "diverged")
	}
	if err := w.InstallSnapshot([]byte("leader-state"), 42); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if got := w.LastLSN(); got != 42 {
		t.Fatalf("LastLSN = %d, want 42", got)
	}
	if lsn := mustAppend(t, w, "streamed-43"); lsn != 43 {
		t.Fatalf("post-install append LSN = %d, want 43", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := openTestWAL(t, fs, wal.Options{})
	defer w2.Close()
	snap, lsn, ok := w2.Snapshot()
	if !ok || lsn != 42 || string(snap) != "leader-state" {
		t.Fatalf("recovered snapshot = (%q, %d, %v)", snap, lsn, ok)
	}
	n := 0
	if err := w2.Replay(func(lsn uint64, payload []byte) error {
		n++
		if lsn != 43 || string(payload) != "streamed-43" {
			return fmt.Errorf("unexpected record (%d, %q)", lsn, payload)
		}
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
}

// TestCursorSurvivesRewind covers the divergence-repair race: a cursor
// mid-stream when the log truncates and re-appends different content must
// surface the new history, never stale bytes.
func TestCursorSurvivesRewind(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	for i := 0; i < 8; i++ {
		mustAppend(t, w, fmt.Sprintf("old-%d", i))
	}
	c, err := w.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	// Read half, then rewind the log under the cursor.
	for i := 0; i < 4; i++ {
		if _, ok, err := c.Next(); !ok || err != nil {
			t.Fatalf("Next %d = (%v, %v)", i, ok, err)
		}
	}
	if err := w.TruncateTo(2); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	mustAppend(t, w, "new-3")
	// The cursor restarts from the snapshot boundary: the LSN going
	// backwards is the history-rewrite signal, and the replayed stream is
	// the new history — never stale bytes.
	recs := drainCursor(t, c)
	want := []string{"1:old-0", "2:old-1", "3:new-3"}
	if len(recs) != len(want) {
		t.Fatalf("post-rewind stream has %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if got := fmt.Sprintf("%d:%s", r.LSN, r.Payload); got != want[i] {
			t.Fatalf("post-rewind record %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestSnapshotReturnsCopy(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openTestWAL(t, fs, wal.Options{})
	defer w.Close()
	mustAppend(t, w, "r")
	if err := w.Checkpoint([]byte("state")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap, _, ok := w.Snapshot()
	if !ok {
		t.Fatal("no snapshot")
	}
	snap[0] = 'X'
	again, _, _ := w.Snapshot()
	if string(again) != "state" {
		t.Fatalf("mutating the returned snapshot leaked into the log: %q", again)
	}
}
