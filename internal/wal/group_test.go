package wal_test

import (
	"fmt"
	"sync"
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

// TestGroupCommitConcurrent hammers the pipeline with concurrent
// committers under SyncAlways and checks the two contracts that matter:
// every acknowledged append replays after reopen, in strict LSN order,
// and the batching bookkeeping is internally consistent.
func TestGroupCommitConcurrent(t *testing.T) {
	fs := faultinject.NewMemFS()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("Appends = %d, want %d", st.Appends, goroutines*perG)
	}
	if st.BatchFrames != st.Appends {
		t.Fatalf("BatchFrames = %d, want %d (queue must be drained)", st.BatchFrames, st.Appends)
	}
	if st.Batches == 0 || st.Batches > st.BatchFrames {
		t.Fatalf("Batches = %d out of range (frames %d)", st.Batches, st.BatchFrames)
	}
	// Under SyncAlways every batch fsyncs once; every frame beyond the
	// first in its batch rode a shared barrier.
	if got, want := st.FsyncsSaved, st.BatchFrames-st.Batches; got != want {
		t.Fatalf("FsyncsSaved = %d, want %d", got, want)
	}
	var hist uint64
	for _, n := range st.BatchSizes {
		hist += n
	}
	if hist != st.Batches {
		t.Fatalf("BatchSizes histogram sums to %d, want %d batches", hist, st.Batches)
	}
	var waits uint64
	for _, n := range st.CommitWaitNs {
		waits += n
	}
	if waits != st.Appends {
		t.Fatalf("CommitWaitNs histogram sums to %d, want %d appends", waits, st.Appends)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: all acknowledged frames present, LSNs a gapless 1..N run.
	w2, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var last uint64
	if err := w2.Replay(func(lsn uint64, payload []byte) error {
		if lsn != last+1 {
			return fmt.Errorf("LSN gap: %d after %d", lsn, last)
		}
		last = lsn
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", last, goroutines*perG)
	}
}

// TestGroupCommitAsyncBatch checks deterministic coalescing: frames
// enqueued with AppendAsync before anyone waits must go out as a single
// batch under one fsync, and a nil verdict on the last frame covers the
// earlier ones by LSN ordering.
func TestGroupCommitAsyncBatch(t *testing.T) {
	fs := faultinject.NewMemFS()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 5
	var last *wal.Ack
	for i := 0; i < n; i++ {
		lsn, a, err := w.AppendAsync([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) || a.LSN() != lsn {
			t.Fatalf("enqueue %d got LSN %d/%d", i, lsn, a.LSN())
		}
		last = a
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Batches != 1 || st.BatchFrames != n || st.MaxBatch != n {
		t.Fatalf("batch stats = %d batches / %d frames / max %d, want 1/%d/%d",
			st.Batches, st.BatchFrames, st.MaxBatch, n, n)
	}
	if st.Fsyncs != 1 {
		t.Fatalf("Fsyncs = %d, want 1 shared barrier", st.Fsyncs)
	}
	if got := fs.SyncCount(); got != 1 {
		t.Fatalf("filesystem saw %d fsyncs, want 1", got)
	}
	if st.FsyncsSaved != n-1 {
		t.Fatalf("FsyncsSaved = %d, want %d", st.FsyncsSaved, n-1)
	}
	// n=5 lands in the 5-8 bucket (index 3) of the batch-size histogram.
	if st.BatchSizes[3] != 1 {
		t.Fatalf("BatchSizes[3] = %d, want the one batch of %d frames", st.BatchSizes[3], n)
	}
}

// TestGroupCommitBaselineKnob checks that MaxBatchBytes=1 degenerates to
// the fsync-per-commit baseline: every frame its own batch, nothing saved.
func TestGroupCommitBaselineKnob(t *testing.T) {
	fs := faultinject.NewMemFS()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways, MaxBatchBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 4
	var last *wal.Ack
	for i := 0; i < n; i++ {
		_, a, err := w.AppendAsync([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		last = a
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Batches != n || st.MaxBatch != 1 || st.FsyncsSaved != 0 {
		t.Fatalf("baseline knob: %d batches / max %d / saved %d, want %d/1/0",
			st.Batches, st.MaxBatch, st.FsyncsSaved, n)
	}
	if got := fs.SyncCount(); got != n {
		t.Fatalf("filesystem saw %d fsyncs, want %d", got, n)
	}
}

// TestGroupCommitPoisonFailsWholeBatch arms the filesystem to die and
// checks that every waiter of the failed batch gets the error, the error
// sticks, and later appends are refused — no waiter is ever acknowledged
// by a barrier that did not complete.
func TestGroupCommitPoisonFailsWholeBatch(t *testing.T) {
	fs := faultinject.NewMemFS()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append([]byte("healthy")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	const n = 4
	acks := make([]*wal.Ack, n)
	for i := range acks {
		_, a, err := w.AppendAsync([]byte(fmt.Sprintf("doomed%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		acks[i] = a
	}
	for i, a := range acks {
		if err := a.Wait(); err == nil {
			t.Fatalf("waiter %d acknowledged by a crashed backend", i)
		}
	}
	if w.Err() == nil {
		t.Fatal("batch failure did not poison the log")
	}
	if _, _, err := w.AppendAsync([]byte("after")); err == nil {
		t.Fatal("poisoned log accepted a new append")
	}
}

// TestCrashGroupCommitBatchBoundaries enqueues one multi-frame batch and
// kills the filesystem at every byte offset of the coalesced write —
// covering every frame boundary inside the batch. Invariants: if the
// batch was acknowledged, every frame survives both post-crash images;
// if not, recovery still yields an exact LSN prefix of the batch.
func TestCrashGroupCommitBatchBoundaries(t *testing.T) {
	const n = 6
	// Dry run to learn the batch's total size in bytes.
	dry := faultinject.NewMemFS()
	dryW, err := wal.Open(wal.Options{FS: dry, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte { return []byte(fmt.Sprintf("batch-record-%02d", i)) }
	var last *wal.Ack
	for i := 0; i < n; i++ {
		if _, a, err := dryW.AppendAsync(payload(i)); err != nil {
			t.Fatal(err)
		} else {
			last = a
		}
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := dryW.Stats(); st.Batches != 1 {
		t.Fatalf("dry run produced %d batches, want 1", st.Batches)
	}
	total := dry.BytesWritten()
	dryW.Close()

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	points := 0
	for cut := int64(0); cut <= total; cut += stride {
		points++
		fs := faultinject.NewMemFS()
		fs.LimitWriteBytes(cut)
		w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		var acks []*wal.Ack
		for i := 0; i < n; i++ {
			_, a, err := w.AppendAsync(payload(i))
			if err != nil {
				break
			}
			acks = append(acks, a)
		}
		acked := len(acks) == n && acks[n-1].Wait() == nil
		for _, drop := range []bool{false, true} {
			img := fs.AfterCrash(drop)
			w2, err := wal.Open(wal.Options{FS: img, Policy: wal.SyncAlways})
			if err != nil {
				t.Fatalf("cut=%d drop=%v: reopen: %v", cut, drop, err)
			}
			var lsns []uint64
			if err := w2.Replay(func(lsn uint64, p []byte) error {
				if want := payload(int(lsn - 1)); string(p) != string(want) {
					return fmt.Errorf("LSN %d payload %q, want %q", lsn, p, want)
				}
				lsns = append(lsns, lsn)
				return nil
			}); err != nil {
				t.Fatalf("cut=%d drop=%v: %v", cut, drop, err)
			}
			for i, lsn := range lsns {
				if lsn != uint64(i+1) {
					t.Fatalf("cut=%d drop=%v: recovered LSNs %v are not a prefix", cut, drop, lsns)
				}
			}
			if acked && len(lsns) != n {
				t.Fatalf("cut=%d drop=%v: batch acknowledged but only %d/%d frames recovered", cut, drop, len(lsns), n)
			}
			// Determinism: recovering the same image twice agrees.
			w3, err := wal.Open(wal.Options{FS: img, Policy: wal.SyncAlways})
			if err != nil {
				t.Fatalf("cut=%d drop=%v: second reopen: %v", cut, drop, err)
			}
			if w3.LastLSN() != w2.LastLSN() {
				t.Fatalf("cut=%d drop=%v: recovery nondeterministic: %d vs %d", cut, drop, w2.LastLSN(), w3.LastLSN())
			}
			w2.Close()
			w3.Close()
		}
	}
	t.Logf("crash matrix: %d in-batch byte points × 2 images over a %d-byte batch", points, total)
}

// TestCrashGroupCommitMidSharedFsync kills the filesystem inside the
// batch's one shared fsync: the barrier never completes, so no waiter may
// have been acknowledged, and both post-crash images must recover to a
// clean prefix.
func TestCrashGroupCommitMidSharedFsync(t *testing.T) {
	const n = 6
	fs := faultinject.NewMemFS()
	fs.LimitSyncs(0)
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var acks []*wal.Ack
	for i := 0; i < n; i++ {
		_, a, err := w.AppendAsync([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	for i, a := range acks {
		if a.Wait() == nil {
			t.Fatalf("waiter %d acknowledged though the shared fsync died", i)
		}
	}
	for _, drop := range []bool{false, true} {
		img := fs.AfterCrash(drop)
		w2, err := wal.Open(wal.Options{FS: img, Policy: wal.SyncAlways})
		if err != nil {
			t.Fatalf("drop=%v: reopen: %v", drop, err)
		}
		var last uint64
		if err := w2.Replay(func(lsn uint64, p []byte) error {
			if lsn != last+1 {
				return fmt.Errorf("LSN gap %d after %d", lsn, last)
			}
			last = lsn
			return nil
		}); err != nil {
			t.Fatalf("drop=%v: %v", drop, err)
		}
		if last > n {
			t.Fatalf("drop=%v: recovered %d frames, more than were written", drop, last)
		}
		w2.Close()
	}
}

// BenchmarkGroupCommit measures commit throughput on a real filesystem
// under SyncAlways for {1, 8, 64} concurrent committers, grouped
// (default pipeline) vs baseline (MaxBatchBytes=1, one fsync per
// append). The grouped/baseline ratio at 64 committers is E19's headline.
func BenchmarkGroupCommit(b *testing.B) {
	payload := make([]byte, 128)
	for _, committers := range []int{1, 8, 64} {
		for _, mode := range []struct {
			name       string
			batchBytes int
		}{{"grouped", 0}, {"baseline", 1}} {
			b.Run(fmt.Sprintf("committers=%d/%s", committers, mode.name), func(b *testing.B) {
				dir := b.TempDir()
				w, err := wal.Open(wal.Options{FS: wal.DirFS(dir), Policy: wal.SyncAlways, MaxBatchBytes: mode.batchBytes})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				b.ReportAllocs()
				b.SetBytes(int64(len(payload)))
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / committers
				if per == 0 {
					per = 1
				}
				for g := 0; g < committers; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							if _, err := w.Append(payload); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}
