package wal_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openMem(t *testing.T, fs wal.FS, policy wal.SyncPolicy) *wal.WAL {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func replayAll(t *testing.T, w *wal.WAL) []wal.Record {
	t.Helper()
	var out []wal.Record
	err := w.Replay(func(lsn uint64, payload []byte) error {
		out = append(out, wal.Record{LSN: lsn, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReopenReplay(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openMem(t, fs, wal.SyncAlways)
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		lsn, err := w.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := openMem(t, fs, wal.SyncAlways)
	got := replayAll(t, w2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.LSN, r.Payload, i+1, want[i])
		}
	}
	if w2.LastLSN() != 50 {
		t.Fatalf("LastLSN = %d, want 50", w2.LastLSN())
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openMem(t, fs, wal.SyncAlways)
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Corrupt the segment by chopping bytes off its end: every cut inside
	// the last frame must recover exactly the first 4 records.
	names, _ := fs.List()
	var seg string
	for _, n := range names {
		seg = n
	}
	full, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(full) / 5
	for cut := len(full) - 1; cut > len(full)-frame; cut-- {
		fsCut := faultinject.NewMemFS()
		if err := fsCut.WriteTrunc(seg, full[:cut]); err != nil {
			t.Fatal(err)
		}
		w2 := openMem(t, fsCut, wal.SyncAlways)
		got := replayAll(t, w2)
		if len(got) != 4 {
			t.Fatalf("cut at %d: recovered %d records, want 4", cut, len(got))
		}
		if w2.Stats().TornTails != 1 {
			t.Fatalf("cut at %d: TornTails = %d, want 1", cut, w2.Stats().TornTails)
		}
		// The truncation is physical: a second open sees a clean log.
		w2.Close()
		w3 := openMem(t, fsCut, wal.SyncAlways)
		if w3.Stats().TornTails != 0 {
			t.Fatalf("cut at %d: tail not physically truncated", cut)
		}
		w3.Close()
	}
}

func TestCorruptFrameTruncates(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openMem(t, fs, wal.SyncAlways)
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	names, _ := fs.List()
	data, _ := fs.ReadFile(names[0])
	// Flip a bit in the middle frame's payload: records 1 and 2 die, 0
	// survives.
	data[len(data)/2] ^= 0x40
	fs2 := faultinject.NewMemFS()
	fs2.WriteTrunc(names[0], data)
	w2 := openMem(t, fs2, wal.SyncAlways)
	got := replayAll(t, w2)
	if len(got) != 1 {
		t.Fatalf("recovered %d records after mid-log corruption, want 1", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := faultinject.NewMemFS()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after %d bytes with 256-byte segments", 10*len(payload))
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", st.Segments)
	}
	w.Close()
	w2 := openMem(t, fs, wal.SyncNever)
	if got := replayAll(t, w2); len(got) != 10 {
		t.Fatalf("recovered %d records across segments, want 10", len(got))
	}
	w2.Close()
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openMem(t, fs, wal.SyncAlways)
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint([]byte("state@10")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st := w.Stats(); st.Segments != 0 || st.Checkpoints != 1 {
		t.Fatalf("post-checkpoint stats = %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w2 := openMem(t, fs, wal.SyncAlways)
	snap, lsn, ok := w2.Snapshot()
	if !ok || string(snap) != "state@10" || lsn != 10 {
		t.Fatalf("Snapshot = (%q, %d, %v), want (state@10, 10, true)", snap, lsn, ok)
	}
	got := replayAll(t, w2)
	if len(got) != 3 || got[0].LSN != 11 {
		t.Fatalf("post-checkpoint tail = %d records starting lsn %d, want 3 from 11", len(got), got[0].LSN)
	}
	if w2.LastLSN() != 13 {
		t.Fatalf("LastLSN = %d, want 13", w2.LastLSN())
	}
	w2.Close()
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		fs := faultinject.NewMemFS()
		w := openMem(t, fs, wal.SyncAlways)
		if _, err := w.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append([]byte("b")); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 2 {
			t.Fatalf("Fsyncs = %d, want 2", st.Fsyncs)
		}
		w.Close()
	})
	t.Run("never", func(t *testing.T) {
		fs := faultinject.NewMemFS()
		w := openMem(t, fs, wal.SyncNever)
		if _, err := w.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 0 {
			t.Fatalf("Fsyncs = %d, want 0", st.Fsyncs)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 1 {
			t.Fatalf("Fsyncs after explicit Sync = %d, want 1", st.Fsyncs)
		}
		w.Close()
	})
	t.Run("interval", func(t *testing.T) {
		fs := faultinject.NewMemFS()
		w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncInterval, Interval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for w.Stats().Fsyncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("background flusher never synced")
			}
			time.Sleep(time.Millisecond)
		}
		w.Close()
	})
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{FS: wal.DirFS(dir), Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("disk-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := wal.Open(wal.Options{FS: wal.DirFS(dir), Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, ok := w2.Snapshot()
	if !ok || string(snap) != "snap" {
		t.Fatalf("Snapshot = (%q, %v)", snap, ok)
	}
	got := replayAll(t, w2)
	if len(got) != 1 || string(got[0].Payload) != "tail" {
		t.Fatalf("tail = %v", got)
	}
	w2.Close()
}

func TestClosedWALRejectsUse(t *testing.T) {
	fs := faultinject.NewMemFS()
	w := openMem(t, fs, wal.SyncAlways)
	if _, err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]byte("b")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// BenchmarkAppendSyncPolicy measures the fsync-policy cost on the real
// filesystem — the E18 throughput numbers.
func BenchmarkAppendSyncPolicy(b *testing.B) {
	payload := bytes.Repeat([]byte("r"), 128)
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			w, err := wal.Open(wal.Options{FS: wal.DirFS(b.TempDir()), Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
