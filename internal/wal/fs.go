package wal

import (
	"os"
	"path/filepath"
	"sort"
)

// File is the writable handle the log needs from its storage: sequential
// writes, an explicit durability barrier, and close. It is deliberately
// smaller than *os.File so a fault-injecting implementation (see
// internal/resilience/faultinject) can stand in for the disk and kill the
// process at any byte.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable (fsync).
	Sync() error
	Close() error
}

// FS is the directory-rooted filesystem the log lives in. All names are
// flat (no separators); Rename must be atomic with respect to crashes —
// after a crash the target holds either its old or its new content, never
// a mixture. That is the only atomicity the log's checkpoint protocol
// relies on.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// WriteTrunc atomically-enough replaces name's content with data:
	// implementations write a temporary file, sync it, and rename it over
	// name. Used to truncate a torn segment tail.
	WriteTrunc(name string, data []byte) error
	Rename(oldname, newname string) error
	Remove(name string) error
	// List returns the file names in the root, sorted.
	List() ([]string, error)
}

// dirFS is the production FS: a real directory.
type dirFS struct{ dir string }

// DirFS returns an FS rooted at dir, creating the directory if needed on
// first write.
func DirFS(dir string) FS { return &dirFS{dir: dir} }

func (d *dirFS) path(name string) string { return filepath.Join(d.dir, name) }

func (d *dirFS) Create(name string) (File, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(d.path(name))
}

func (d *dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

func (d *dirFS) WriteTrunc(name string, data []byte) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	tmp := d.path(name + ".trunc")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, d.path(name))
}

func (d *dirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *dirFS) Remove(name string) error { return os.Remove(d.path(name)) }

func (d *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
