package authtoken

import (
	"fmt"
	"sync/atomic"
	"time"

	"webdbsec/internal/policy"
)

// Gate is the request-time authentication gate the serving stack puts in
// front of its handlers: consult the token verifier first, fall back to
// the full wallet path. The fast path costs one Ed25519 verification
// plus a nonce consume; the slow path is a complete mint — full wallet
// verification and the MintGate policy decision — whose product is a
// token, so a wallet-authenticated response upgrades the client to the
// fast path for free.
type Gate struct {
	Verifier *Verifier
	// Minter is nil on a read replica: the gate then verifies tokens but
	// cannot roll successors or evaluate wallets — see Authenticate.
	Minter *Minter

	fast      atomic.Uint64
	slow      atomic.Uint64
	legacy    atomic.Uint64
	rejected  atomic.Uint64
	fallbacks atomic.Uint64
}

// Auth paths, as reported in AuthResult.Path and counted in GateStats.
const (
	// PathToken: authenticated by token verification alone.
	PathToken = "token"
	// PathWallet: authenticated by the full wallet evaluation (and
	// upgraded — the result carries a fresh token).
	PathWallet = "wallet"
	// PathLegacy: no auth material presented; the caller decides whether
	// its deployment still serves such requests.
	PathLegacy = "legacy"
)

// AuthResult is a successful authentication.
type AuthResult struct {
	// Path says which path authenticated the request.
	Path string
	// Token is the credential the client should present next: the
	// successor of a consumed token, or the freshly minted product of a
	// wallet evaluation. Nil on the legacy path.
	Token *Token
	// ExpiresAt is when Token ages out (clients refresh against it).
	ExpiresAt time.Time
}

// Authenticate authenticates subject s presenting rawToken (nil when the
// client holds none) at instant now.
//
//   - A valid token bound to s's serving fingerprint authenticates the
//     request and is consumed; the result carries its successor.
//   - A failed or absent token falls back to the full wallet path when s
//     carries a wallet: a complete Mint evaluation, whose token rides
//     back on the result.
//   - Neither token nor wallet is the legacy path: Authenticate reports
//     it rather than refusing, because whether unauthenticated requests
//     are still served is deployment policy, not this gate's call.
//
// A non-nil error means the request presented auth material and all of
// it failed — the caller should refuse the request.
func (g *Gate) Authenticate(s *policy.Subject, rawToken []byte, now time.Time) (*AuthResult, error) {
	if len(rawToken) > 0 {
		t, err := g.Verifier.VerifyBound(rawToken, s, now)
		if err == nil {
			if g.Minter == nil {
				// Read replica: the token authenticates, but no successor
				// can be signed here — the client keeps presenting the
				// same token (the replica's verifier runs in read-replica
				// mode, which does not consume nonces).
				g.fast.Add(1)
				return &AuthResult{Path: PathToken, ExpiresAt: time.Unix(t.IssuedAt, 0).Add(g.Verifier.TTL())}, nil
			}
			succ, mintErr := g.Minter.mintBound(t.Subject, now)
			if mintErr != nil {
				g.rejected.Add(1)
				return nil, fmt.Errorf("authtoken: roll successor: %w", mintErr)
			}
			g.fast.Add(1)
			return &AuthResult{Path: PathToken, Token: succ, ExpiresAt: now.Add(g.Minter.TTL())}, nil
		}
		if s.Wallet == nil || g.Minter == nil {
			g.rejected.Add(1)
			return nil, err
		}
		// Token dead (expired, rotated away, replay after a lost
		// response) but the client also presented its wallet: re-qualify
		// from scratch.
		g.fallbacks.Add(1)
	}
	if s.Wallet != nil {
		if g.Minter == nil {
			g.rejected.Add(1)
			return nil, ErrMintUnavailable
		}
		t, err := g.Minter.Mint(s, now)
		if err != nil {
			g.rejected.Add(1)
			return nil, err
		}
		g.slow.Add(1)
		return &AuthResult{Path: PathWallet, Token: t, ExpiresAt: now.Add(g.Minter.TTL())}, nil
	}
	g.legacy.Add(1)
	return &AuthResult{Path: PathLegacy}, nil
}

// GateStats aggregates the gate's path counters with the verifier's and
// minter's — the one struct debugz publishes per serving surface.
type GateStats struct {
	// FastPath counts token-authenticated requests, SlowPath full wallet
	// evaluations, Legacy requests with no auth material, Rejected
	// refusals, TokenFallbacks requests whose token failed but whose
	// wallet then re-qualified them.
	FastPath       uint64
	SlowPath       uint64
	Legacy         uint64
	Rejected       uint64
	TokenFallbacks uint64
	// FastPathHitRate is FastPath over all authenticated traffic
	// (fast+slow), the headline number for the fast path's reach.
	FastPathHitRate float64
	Verifier        VerifierStats
	Mint            MintStats
}

// Stats snapshots the gate and its components.
func (g *Gate) Stats() GateStats {
	fast, slow := g.fast.Load(), g.slow.Load()
	st := GateStats{
		FastPath:       fast,
		SlowPath:       slow,
		Legacy:         g.legacy.Load(),
		Rejected:       g.rejected.Load(),
		TokenFallbacks: g.fallbacks.Load(),
		Verifier:       g.Verifier.Stats(),
	}
	if g.Minter != nil {
		st.Mint = g.Minter.Stats()
	}
	if fast+slow > 0 {
		st.FastPathHitRate = float64(fast) / float64(fast+slow)
	}
	return st
}
