// Package authtoken is the stateless authentication fast path: a
// fixed-layout binary token, minted once after a full wallet/credential
// evaluation has succeeded, that any node holding the epoch public-key
// set can verify with a single Ed25519 check — no credential store, no
// policy-base lookup, no per-request signature sweep over the wallet.
//
// The paper's subject model (§3.1) qualifies subjects by credentials, and
// every request re-derives that qualification: each wallet signature is
// re-verified and the policy base re-consulted. PR 2's decision cache
// made the *decision* cheap; this package makes the *qualification*
// cheap, following the trust-brokerage separation — mint once after the
// full trust decision, verify cheaply everywhere — and the offline
// verifier idiom of constrained-device credential tokens.
//
// Token layout (101 bytes, integers big-endian):
//
//	offset  size  field
//	     0     1  version (currently 1)
//	     1     4  key epoch — which mint key signed this token
//	     5     8  issued-at, unix seconds
//	    13     8  nonce — random, single-use (see below)
//	    21    16  subject fingerprint — the PR 2 binding identity
//	    37    64  Ed25519 signature over bytes [0,37)
//
// The subject fingerprint is policy.Subject.Fingerprint over the
// *serving* identity (ID + roles, nil wallet): the identity every
// post-auth decision — row policies, privacy constraints, decision
// caches — actually observes, since request paths carry no wallet once
// qualification is done. Binding it means a token cannot be replayed
// under a different identity or role set, and cached decisions key
// exactly as they would for the slow path.
//
// Tokens are single-use: every successful verification consumes the
// nonce (sharded bounded replay cache) and the server rolls the token,
// returning a successor — same fingerprint, fresh nonce, signed with the
// *current* key epoch — in the response. A client therefore always holds
// exactly one live token; a lost response degrades to a re-mint through
// the full wallet path, and key rotation migrates clients automatically
// as successors pick up the new epoch.
package authtoken

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only token version this package mints or verifies.
const Version = 1

// Layout constants. The signature covers everything before it.
const (
	signedLen = 37
	// TokenLen is the exact encoded size; Decode rejects anything else.
	TokenLen = signedLen + ed25519.SignatureSize // 101
)

// ErrMalformed reports a token that is not structurally valid: wrong
// length, unknown version — anything Decode cannot even parse.
var ErrMalformed = errors.New("authtoken: malformed token")

// Token is the decoded form.
type Token struct {
	// Epoch names the mint key that signed the token; the verifier looks
	// it up in its epoch public-key set.
	Epoch uint32
	// IssuedAt is the mint instant, unix seconds. The verifier derives
	// expiry (IssuedAt+TTL) and the future-skew bound from it.
	IssuedAt int64
	// Nonce is random and single-use; the replay cache consumes it.
	//
	// seclint:secret
	Nonce uint64
	// Subject is the raw 16-byte subject fingerprint the token is bound
	// to (the hex-decoded policy.Subject.Fingerprint of the serving
	// identity).
	Subject [16]byte
	// Sig is the issuer's Ed25519 signature over the signed prefix.
	Sig [ed25519.SignatureSize]byte
}

// Encode renders the token in the fixed wire layout.
func (t *Token) Encode() []byte {
	out := make([]byte, TokenLen)
	out[0] = Version
	binary.BigEndian.PutUint32(out[1:5], t.Epoch)
	binary.BigEndian.PutUint64(out[5:13], uint64(t.IssuedAt))
	binary.BigEndian.PutUint64(out[13:21], t.Nonce)
	copy(out[21:37], t.Subject[:])
	copy(out[signedLen:], t.Sig[:])
	return out
}

// EncodeString renders the token for HTTP transport (unpadded URL-safe
// base64 — header- and form-value-clean).
func (t *Token) EncodeString() string {
	return base64.RawURLEncoding.EncodeToString(t.Encode())
}

// Decode parses the fixed layout. It checks structure only — length and
// version; signature, freshness and replay are the verifier's job.
// seclint:sanitizer
func Decode(raw []byte) (*Token, error) {
	if len(raw) != TokenLen {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrMalformed, len(raw), TokenLen)
	}
	if raw[0] != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrMalformed, raw[0], Version)
	}
	t := &Token{
		Epoch:    binary.BigEndian.Uint32(raw[1:5]),
		IssuedAt: int64(binary.BigEndian.Uint64(raw[5:13])),
		Nonce:    binary.BigEndian.Uint64(raw[13:21]),
	}
	copy(t.Subject[:], raw[21:37])
	copy(t.Sig[:], raw[signedLen:])
	return t, nil
}

// DecodeString parses the base64 transport form.
// seclint:sanitizer
func DecodeString(s string) (*Token, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return Decode(raw)
}

// signedPrefix returns the bytes the signature covers.
func (t *Token) signedPrefix() []byte {
	return t.Encode()[:signedLen]
}
