package authtoken

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
)

// HTTP binding of the fast path, shared by securedb, uddiserver and the
// benchmark driver so all surfaces speak one protocol:
//
//	request   X-Auth-Token header (or form "token"): base64url token
//	          X-Auth-Wallet header (or form "wallet"): base64url JSON wallet
//	          form "subject", "roles": the serving identity
//	response  X-Auth-Token: the successor (or freshly minted) token
//	          X-Auth-Expires: its expiry, unix seconds
//
// The response headers are what makes refresh transparent: every
// authenticated response re-arms the client with the token to present
// next, so rotation and single-use consumption never surface as errors
// on a well-behaved client.

// Header names.
const (
	// TokenHeader carries the token, request and response.
	TokenHeader = "X-Auth-Token"
	// WalletHeader carries the base64url JSON wallet on surfaces whose
	// body is not form-encoded (the wsa envelope endpoint).
	WalletHeader = "X-Auth-Wallet"
	// ExpiresHeader carries the response token's expiry, unix seconds.
	ExpiresHeader = "X-Auth-Expires"
)

// Service is the HTTP surface: a mint endpoint plus per-request
// authentication for handlers.
type Service struct {
	Gate *Gate
}

// SubjectFromRequest builds the presented subject from the request's
// form fields and auth headers. The wallet, when present, is only
// *decoded* here — verification is the minter's job.
func SubjectFromRequest(r *http.Request) (*policy.Subject, error) {
	s := &policy.Subject{ID: r.FormValue("subject")}
	if roles := r.FormValue("roles"); roles != "" {
		s.Roles = strings.Split(roles, ",")
	}
	enc := r.FormValue("wallet")
	if enc == "" {
		enc = r.Header.Get(WalletHeader)
	}
	if enc != "" {
		w, err := DecodeWallet(enc)
		if err != nil {
			return nil, err
		}
		s.Wallet = w
	}
	return s, nil
}

// tokenFromRequest extracts the raw presented token, nil when absent.
func tokenFromRequest(r *http.Request) ([]byte, error) {
	enc := r.Header.Get(TokenHeader)
	if enc == "" {
		enc = r.FormValue("token")
	}
	if enc == "" {
		return nil, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("%w: token encoding: %v", ErrMalformed, err)
	}
	return raw, nil
}

// Authorize authenticates the request: token fast path first, wallet
// fallback, legacy passthrough when no material is presented. On success
// it arms the response with the next token and returns the serving
// subject; on failure it writes 401 and returns ok=false — the handler
// must stop.
func (s *Service) Authorize(w http.ResponseWriter, r *http.Request) (*policy.Subject, bool) {
	subj, err := SubjectFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	raw, err := tokenFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	res, err := s.Gate.Authenticate(subj, raw, time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return nil, false
	}
	if res.Token != nil {
		w.Header().Set(TokenHeader, res.Token.EncodeString())
		w.Header().Set(ExpiresHeader, fmt.Sprintf("%d", res.ExpiresAt.Unix()))
	}
	// The wallet authenticated (or qualified) the request; handlers and
	// everything below them see the serving identity, same as the fast
	// path, so decisions and caches key identically on both.
	return &policy.Subject{ID: subj.ID, Roles: subj.Roles}, true
}

// MintResponse is the mint endpoint's JSON body.
type MintResponse struct {
	// Token is the base64url token to present in TokenHeader.
	Token string `json:"token"`
	// ExpiresUnix is its expiry (issued-at + TTL), unix seconds.
	ExpiresUnix int64 `json:"expires_unix"`
	// Subject is the bound serving fingerprint, hex — the PR 2 decision
	// cache key for this identity.
	Subject string `json:"subject"`
}

// MintHandler serves POST /token: the explicit slow path. The subject
// presents identity, roles and its full wallet; a complete credential
// evaluation plus the MintGate policy decision stand between the request
// and the signature.
func (s *Service) MintHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		subj, err := SubjectFromRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		t, err := s.Gate.Minter.Mint(subj, time.Now())
		if err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(MintResponse{
			Token:       t.EncodeString(),
			ExpiresUnix: t.IssuedAt + int64(s.Gate.Minter.TTL()/time.Second),
			Subject:     fmt.Sprintf("%x", t.Subject),
		})
	}
}

// EncodeWallet renders a wallet for transport: base64url over its JSON
// encoding (header- and form-value-clean).
func EncodeWallet(w *credential.Wallet) (string, error) {
	raw, err := json.Marshal(w)
	if err != nil {
		return "", fmt.Errorf("authtoken: encode wallet: %w", err)
	}
	return base64.RawURLEncoding.EncodeToString(raw), nil
}

// DecodeWallet parses the transport form.
func DecodeWallet(enc string) (*credential.Wallet, error) {
	raw, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("authtoken: wallet encoding: %w", err)
	}
	var w credential.Wallet
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("authtoken: wallet decode: %w", err)
	}
	return &w, nil
}
