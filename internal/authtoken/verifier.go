package authtoken

import (
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"webdbsec/internal/policy"
)

// Verification verdicts. All are terminal for the presented token; only
// ErrExpired and ErrUnknownEpoch are worth a client-side re-mint (the
// token aged out or rotation outran it) — the rest indicate a hostile or
// corrupted presentation.
var (
	// ErrExpired: issued-at + TTL is in the past.
	ErrExpired = errors.New("authtoken: token expired")
	// ErrFutureSkew: issued-at is further in the future than the
	// configured clock-skew tolerance — no honest clock pair produces it.
	ErrFutureSkew = errors.New("authtoken: token issued in the future beyond skew tolerance")
	// ErrReplay: the nonce was already consumed. Tokens are single-use;
	// the legitimate holder received a successor with the response that
	// consumed this one.
	ErrReplay = errors.New("authtoken: nonce already used (replay)")
	// ErrUnknownEpoch: no public key for the token's key epoch — minted
	// before the retention window, or by a leadership this replica has
	// not heard from yet.
	ErrUnknownEpoch = errors.New("authtoken: unknown key epoch")
	// ErrBadSignature: structurally fine, cryptographically not.
	ErrBadSignature = errors.New("authtoken: bad signature")
	// ErrSubjectMismatch: the token is valid but bound to a different
	// subject fingerprint than the one presenting it.
	ErrSubjectMismatch = errors.New("authtoken: token bound to a different subject")
)

// VerifyKeys resolves a key epoch to its Ed25519 public key. Implemented
// by keymgmt.MintKeyring (the minting node verifies its own epochs) and
// keymgmt.PublicKeySet (followers verify from the replicated set).
type VerifyKeys interface {
	VerifyKey(epoch uint32) (ed25519.PublicKey, bool)
}

// Verifier checks tokens statelessly: one signature verification against
// the epoch key set, a timestamp window, and a nonce-consume in the
// bounded replay cache. It holds no credential store and consults no
// policy base — which is exactly why seclint's gatecheck only lets calls
// to it count as an access gate because the *mint* side is provably
// behind a real policy decision.
type Verifier struct {
	keys   VerifyKeys
	ttl    time.Duration
	skew   time.Duration
	replay *replayCache

	verified        atomic.Uint64
	expired         atomic.Uint64
	futureSkew      atomic.Uint64
	replayed        atomic.Uint64
	badSig          atomic.Uint64
	unknownEpoch    atomic.Uint64
	malformed       atomic.Uint64
	subjectMismatch atomic.Uint64
}

// DefaultSkew is the clock-skew tolerance used when none is given: wide
// enough for real NTP drift between cluster members, narrow enough that
// a pre-dated token is caught.
const DefaultSkew = 30 * time.Second

// NewVerifier builds a verifier over the key set. ttl bounds token
// lifetime from issued-at; skew <= 0 selects DefaultSkew; replayCapacity
// bounds the nonce cache (0 selects 65536). A NEGATIVE replayCapacity
// disables nonce consumption entirely — read-replica mode: a replica
// cannot sign successors, so tokens must stay presentable there across
// their TTL; single-use enforcement lives where minting does (the
// leader), and the TTL plus the signature bound a replica's exposure.
func NewVerifier(keys VerifyKeys, ttl, skew time.Duration, replayCapacity int) *Verifier {
	if skew <= 0 {
		skew = DefaultSkew
	}
	if replayCapacity < 0 {
		return &Verifier{keys: keys, ttl: ttl, skew: skew}
	}
	if replayCapacity == 0 {
		replayCapacity = 65536
	}
	return &Verifier{keys: keys, ttl: ttl, skew: skew, replay: newReplayCache(replayCapacity)}
}

// TTL returns the configured token lifetime.
func (v *Verifier) TTL() time.Duration { return v.ttl }

// Verify checks raw at instant now and consumes its nonce. On success
// the decoded token returns; the caller owes the client a successor
// (tokens are single-use). The error classifies the failure — see the
// package errors — and is counted in Stats either way.
//
// Check order is deliberate: structure, epoch key, signature, time
// window, then replay. The nonce is consumed last, so a presentation
// that fails for any other reason does not burn the legitimate holder's
// token.
// seclint:sanitizer
func (v *Verifier) Verify(raw []byte, now time.Time) (*Token, error) {
	return v.verifyBound(raw, nil, now)
}

// VerifyBound is Verify plus identity binding: the token must be bound
// to exactly the serving fingerprint of subject s (ID + roles). A valid
// token presented under the wrong identity fails ErrSubjectMismatch
// without consuming the nonce.
// seclint:sanitizer
func (v *Verifier) VerifyBound(raw []byte, s *policy.Subject, now time.Time) (*Token, error) {
	fp := BindingFingerprint(s)
	return v.verifyBound(raw, &fp, now)
}

func (v *Verifier) verifyBound(raw []byte, bind *[16]byte, now time.Time) (*Token, error) {
	t, err := Decode(raw)
	if err != nil {
		v.malformed.Add(1)
		return nil, err
	}
	key, ok := v.keys.VerifyKey(t.Epoch)
	if !ok {
		v.unknownEpoch.Add(1)
		return nil, fmt.Errorf("%w: epoch %d", ErrUnknownEpoch, t.Epoch)
	}
	if !ed25519.Verify(key, t.signedPrefix(), t.Sig[:]) {
		v.badSig.Add(1)
		return nil, ErrBadSignature
	}
	issued := time.Unix(t.IssuedAt, 0)
	if now.After(issued.Add(v.ttl)) {
		v.expired.Add(1)
		return nil, fmt.Errorf("%w: issued %s, ttl %s", ErrExpired, issued.UTC().Format(time.RFC3339), v.ttl)
	}
	if issued.After(now.Add(v.skew)) {
		v.futureSkew.Add(1)
		return nil, fmt.Errorf("%w: issued %s", ErrFutureSkew, issued.UTC().Format(time.RFC3339))
	}
	if bind != nil && t.Subject != *bind {
		v.subjectMismatch.Add(1)
		return nil, ErrSubjectMismatch
	}
	if v.replay != nil {
		expires := t.IssuedAt + int64(v.ttl/time.Second) + int64(v.skew/time.Second) + 1
		if !v.replay.consume(t.Nonce, expires, now.Unix()) {
			v.replayed.Add(1)
			return nil, ErrReplay
		}
	}
	v.verified.Add(1)
	return t, nil
}

// VerifierStats is the counter snapshot debugz publishes.
type VerifierStats struct {
	Verified        uint64
	Expired         uint64
	FutureSkew      uint64
	Replayed        uint64
	BadSignature    uint64
	UnknownEpoch    uint64
	Malformed       uint64
	SubjectMismatch uint64
	// ReplayEntries is the live nonce count; ReplayEvictions counts
	// capacity evictions of live nonces (each one briefly re-opened a
	// replay window — a sustained nonzero rate means the cache is
	// undersized for the token population).
	ReplayEntries   int
	ReplayEvictions uint64
}

// Stats snapshots the verifier's counters.
func (v *Verifier) Stats() VerifierStats {
	var entries int
	var evictions uint64
	if v.replay != nil {
		entries, evictions = v.replay.stats()
	}
	return VerifierStats{
		Verified:        v.verified.Load(),
		Expired:         v.expired.Load(),
		FutureSkew:      v.futureSkew.Load(),
		Replayed:        v.replayed.Load(),
		BadSignature:    v.badSig.Load(),
		UnknownEpoch:    v.unknownEpoch.Load(),
		Malformed:       v.malformed.Load(),
		SubjectMismatch: v.subjectMismatch.Load(),
		ReplayEntries:   entries,
		ReplayEvictions: evictions,
	}
}

// BindingFingerprint computes the 16-byte serving-identity fingerprint a
// token binds: policy.Subject.Fingerprint over ID and roles with a nil
// wallet. The wallet deliberately stays out: it qualifies the subject at
// mint time and is fully evaluated there, while every decision made
// after authentication — row policies, privacy constraints, the decision
// caches — sees exactly this wallet-less serving identity. Binding the
// same fingerprint means cached decisions key identically on both the
// token and wallet paths.
func BindingFingerprint(s *policy.Subject) [16]byte {
	serving := policy.Subject{ID: s.ID, Roles: s.Roles}
	var fp [16]byte
	raw, err := hex.DecodeString(serving.Fingerprint())
	if err != nil || len(raw) != len(fp) {
		// Fingerprint returns its own hex; this is unreachable short of
		// memory corruption, but a zero binding must never verify.
		return fp
	}
	copy(fp[:], raw)
	return fp
}
