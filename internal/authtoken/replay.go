package authtoken

import (
	"sync"
)

// replayShards fixes the shard count; like the decision cache, sixteen
// is plenty to keep verification's one map touch off a global lock at
// request concurrency.
const replayShards = 16

// replayCache is the sharded bounded nonce set behind single-use tokens.
// Consuming a nonce is one mutex + map insert on 1/16th of the space;
// entries die with their token (issued-at + TTL + skew, after which the
// stateless timestamp check rejects the token anyway, so remembering the
// nonce buys nothing). Each shard is bounded: when full it evicts its
// oldest live entry FIFO — that briefly re-opens the replay window for
// the evicted token, so evictions are counted and surfaced in Stats
// rather than hidden (size the cache to the token population, not the
// other way around).
type replayCache struct {
	shards [replayShards]replayShard
}

type replayShard struct {
	mu       sync.Mutex
	capacity int              // seclint:guardedby mu
	seen     map[uint64]int64 // seclint:guardedby mu
	order    []replayEntry    // seclint:guardedby mu
	evicted  uint64           // seclint:guardedby mu
}

type replayEntry struct {
	nonce   uint64
	expires int64
}

// newReplayCache bounds the cache to roughly capacity nonces overall.
func newReplayCache(capacity int) *replayCache {
	if capacity < replayShards {
		capacity = replayShards
	}
	per := (capacity + replayShards - 1) / replayShards
	c := &replayCache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.capacity = per
		s.seen = make(map[uint64]int64, per)
		s.mu.Unlock()
	}
	return c
}

// shardFor mixes the (already random) nonce so even adversarially minted
// nonce patterns spread across shards.
func (c *replayCache) shardFor(nonce uint64) *replayShard {
	h := nonce * 0x9e3779b97f4a7c15 // Fibonacci hashing
	return &c.shards[h>>(64-4)]
}

// consume marks the nonce used until expires. It returns false — replay —
// when the nonce is already live.
func (c *replayCache) consume(nonce uint64, expires, now int64) bool {
	s := c.shardFor(nonce)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Drop entries whose tokens can no longer verify; this also frees
	// the capacity their nonces were holding. A nonce re-marked after
	// expiry leaves its stale order entry behind, so dropping one must
	// only delete the map entry it actually owns.
	for len(s.order) > 0 && s.order[0].expires <= now {
		s.dropHeadLocked()
	}
	if exp, dup := s.seen[nonce]; dup && exp > now {
		return false
	}
	if len(s.order) >= s.capacity {
		s.dropHeadLocked()
		s.evicted++
	}
	s.seen[nonce] = expires
	s.order = append(s.order, replayEntry{nonce: nonce, expires: expires})
	return true
}

// dropHeadLocked removes the oldest order entry, deleting its map entry
// only when it still owns it (a re-marked nonce's map entry belongs to a
// newer order slot).
//
// seclint:locked caller holds s.mu
func (s *replayShard) dropHeadLocked() {
	e := s.order[0]
	s.order = s.order[1:]
	if exp, ok := s.seen[e.nonce]; ok && exp == e.expires {
		delete(s.seen, e.nonce)
	}
}

// stats sums entry counts and evictions across shards.
func (c *replayCache) stats() (entries int, evictions uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += len(s.seen)
		evictions += s.evicted
		s.mu.Unlock()
	}
	return entries, evictions
}
