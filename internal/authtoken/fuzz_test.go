package authtoken_test

import (
	"bytes"
	"testing"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/policy"
)

// FuzzTokenDecode drives arbitrary bytes through the binary token codec
// and, when they decode, through a live verifier. Invariants: Decode
// never panics, anything it accepts re-encodes to the identical bytes
// (the signature covers the canonical encoding, so a non-canonical
// decode would be a forgery vector), and the verifier classifies every
// input without panicking.
func FuzzTokenDecode(f *testing.F) {
	ring, err := keymgmt.NewMintKeyring(1)
	if err != nil {
		f.Fatalf("keyring: %v", err)
	}
	m, err := authtoken.NewMinter(ring, nil, fuzzGate{}, time.Minute)
	if err != nil {
		f.Fatalf("minter: %v", err)
	}
	v := authtoken.NewVerifier(ring, time.Minute, 0, 1024)
	now := time.Now()
	tok, err := m.Mint(&policy.Subject{ID: "fuzz", Roles: []string{"r"}}, now)
	if err != nil {
		f.Fatalf("mint: %v", err)
	}
	valid := tok.Encode()

	f.Add(valid)
	f.Add(valid[:authtoken.TokenLen-1])
	f.Add(valid[:37]) // signed prefix only
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xff}, authtoken.TokenLen))
	f.Add(append(append([]byte{}, valid...), 0xaa))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := authtoken.Decode(raw)
		if err != nil {
			if dec != nil {
				t.Fatalf("error with non-nil token")
			}
			return
		}
		if !bytes.Equal(dec.Encode(), raw) {
			t.Fatalf("decode/encode not canonical")
		}
		if _, err := authtoken.DecodeString(dec.EncodeString()); err != nil {
			t.Fatalf("string round trip: %v", err)
		}
		// Whatever decoded must classify cleanly, never panic.
		v.Verify(raw, now)
	})
}

type fuzzGate struct{}

func (fuzzGate) AllowMint(*policy.Subject) bool { return true }
