package authtoken

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
)

// SigningKeys supplies the current mint key. Implemented by
// keymgmt.MintKeyring; the epoch stamps the token so rotation
// invalidates old tokens once their epoch leaves the retention window.
type SigningKeys interface {
	SigningKey() (epoch uint32, key ed25519.PrivateKey)
}

// MintGate is the real access-control decision a mint must pass — the
// anchor of the whole fast path's soundness argument. A token attests
// "this subject passed full qualification once"; that attestation is
// only worth trusting if the mint site actually ran a policy decision.
// Deployments implement it over their authorization machinery (securedb
// gates on the System R grant catalog), and seclint's gatecheck enforces
// that Mint entry points reach it: a token-verified entry point counts
// as gated only because mint sites provably are.
//
// seclint:gate
type MintGate interface {
	// AllowMint decides whether the fully-evaluated subject may hold a
	// token. It runs after wallet verification, so implementations may
	// trust s.Wallet's signatures.
	AllowMint(s *policy.Subject) bool
}

// Mint refusals.
var (
	// ErrMintDenied: the gate's policy decision said no.
	ErrMintDenied = errors.New("authtoken: mint denied by policy")
	// ErrWalletInvalid: the presented wallet did not fully verify. Mint
	// refuses partially-valid wallets outright instead of attesting the
	// valid subset: a token asserts the subject's *entire* presented
	// qualification was checked, and letting an invalid credential ride
	// along would let the fast path diverge from what a full re-evaluation
	// of the same wallet would decide.
	ErrWalletInvalid = errors.New("authtoken: wallet failed full credential verification")
	// ErrMintUnavailable: this surface cannot mint (a read replica holds
	// only the public verify-key set) — wallet qualification happens at
	// the leader's mint endpoint.
	ErrMintUnavailable = errors.New("authtoken: minting unavailable on this node")
)

// Minter issues tokens after the full slow-path evaluation: every wallet
// credential verified against the trusted issuer keys, subject binding
// on each credential, then the MintGate policy decision. Only then does
// it sign — so holding a token is evidence the whole evaluation ran.
type Minter struct {
	keys  SigningKeys
	creds *credential.Verifier
	gate  MintGate
	ttl   time.Duration

	minted atomic.Uint64
	denied atomic.Uint64
}

// NewMinter builds a minter. gate is mandatory — a gate-less minter
// would be an ungated entry into every token-accepting surface. creds
// may be nil only when no wallets are ever presented (the minter then
// refuses any wallet-bearing subject).
func NewMinter(keys SigningKeys, creds *credential.Verifier, gate MintGate, ttl time.Duration) (*Minter, error) {
	if keys == nil {
		return nil, fmt.Errorf("authtoken: minter needs signing keys")
	}
	if gate == nil {
		return nil, fmt.Errorf("authtoken: minter needs a MintGate — an ungated mint would void the fast path's soundness")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("authtoken: token ttl must be positive, got %s", ttl)
	}
	return &Minter{keys: keys, creds: creds, gate: gate, ttl: ttl}, nil
}

// TTL returns the advertised token lifetime (clients refresh against it).
func (m *Minter) TTL() time.Duration { return m.ttl }

// Mint runs the full evaluation for s and, if it passes, issues a token
// bound to s's serving fingerprint at instant now.
func (m *Minter) Mint(s *policy.Subject, now time.Time) (*Token, error) {
	if s == nil || s.ID == "" {
		m.denied.Add(1)
		return nil, fmt.Errorf("%w: no subject", ErrMintDenied)
	}
	if s.Wallet != nil {
		if err := m.checkWallet(s); err != nil {
			m.denied.Add(1)
			return nil, err
		}
	}
	if !m.gate.AllowMint(s) {
		m.denied.Add(1)
		return nil, fmt.Errorf("%w: subject %s", ErrMintDenied, s.ID)
	}
	return m.mintBound(BindingFingerprint(s), now)
}

// checkWallet is the full credential evaluation: the wallet must belong
// to the subject, every credential must speak about the subject, and
// every signature must verify against a trusted issuer. All-or-nothing —
// see ErrWalletInvalid.
func (m *Minter) checkWallet(s *policy.Subject) error {
	w := s.Wallet
	if w.Subject != s.ID {
		return fmt.Errorf("%w: wallet belongs to %q, presented by %q", ErrWalletInvalid, w.Subject, s.ID)
	}
	for _, c := range w.Credentials {
		if c.Subject != s.ID {
			return fmt.Errorf("%w: credential %q issued to %q, presented by %q", ErrWalletInvalid, c.Type, c.Subject, s.ID)
		}
	}
	if m.creds == nil {
		return fmt.Errorf("%w: no credential verifier configured", ErrWalletInvalid)
	}
	if valid := m.creds.Valid(w); len(valid) != len(w.Credentials) {
		return fmt.Errorf("%w: %d of %d credentials verify", ErrWalletInvalid, len(valid), len(w.Credentials))
	}
	return nil
}

// mintBound signs a token for an already-established fingerprint. It is
// unexported on purpose: inside this package the only callers are Mint
// (after the full evaluation above) and the Gate's successor roll (after
// a successful verification, which chains back to some Mint) — no path
// reaches a signature without a policy decision at its root.
func (m *Minter) mintBound(fp [16]byte, now time.Time) (*Token, error) {
	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("authtoken: nonce: %w", err)
	}
	epoch, key := m.keys.SigningKey()
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("authtoken: no usable mint key for epoch %d", epoch)
	}
	t := &Token{
		Epoch:    epoch,
		IssuedAt: now.Unix(),
		Nonce:    binary.BigEndian.Uint64(nb[:]),
		Subject:  fp,
	}
	copy(t.Sig[:], ed25519.Sign(key, t.signedPrefix()))
	m.minted.Add(1)
	return t, nil
}

// MintStats is the counter snapshot debugz publishes.
type MintStats struct {
	Minted uint64
	Denied uint64
}

// Stats snapshots the minter's counters.
func (m *Minter) Stats() MintStats {
	return MintStats{Minted: m.minted.Load(), Denied: m.denied.Load()}
}
