package authtoken_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"webdbsec/internal/authtoken"
	"webdbsec/internal/credential"
	"webdbsec/internal/keymgmt"
	"webdbsec/internal/policy"
)

// allowAll is the permissive MintGate for tests that exercise the token
// machinery rather than the policy decision.
type allowAll struct{}

func (allowAll) AllowMint(*policy.Subject) bool { return true }

// denyAll refuses every mint.
type denyAll struct{}

func (denyAll) AllowMint(*policy.Subject) bool { return false }

func newTestGate(t *testing.T, ttl time.Duration) (*authtoken.Gate, *keymgmt.MintKeyring) {
	t.Helper()
	ring, err := keymgmt.NewMintKeyring(2)
	if err != nil {
		t.Fatalf("keyring: %v", err)
	}
	m, err := authtoken.NewMinter(ring, credential.NewVerifier(), allowAll{}, ttl)
	if err != nil {
		t.Fatalf("minter: %v", err)
	}
	v := authtoken.NewVerifier(ring, ttl, 30*time.Second, 1024)
	return &authtoken.Gate{Verifier: v, Minter: m}, ring
}

func subj(id string, roles ...string) *policy.Subject {
	return &policy.Subject{ID: id, Roles: roles}
}

func TestMintVerifyRoundTrip(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana", "analyst")

	tok, err := g.Minter.Mint(s, now)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	if tok.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", tok.Epoch)
	}
	if want := authtoken.BindingFingerprint(s); tok.Subject != want {
		t.Fatalf("subject fingerprint mismatch")
	}

	raw := tok.Encode()
	if len(raw) != authtoken.TokenLen {
		t.Fatalf("encoded length = %d, want %d", len(raw), authtoken.TokenLen)
	}
	got, err := g.Verifier.VerifyBound(raw, s, now.Add(time.Second))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got.Nonce != tok.Nonce || got.IssuedAt != tok.IssuedAt {
		t.Fatalf("decoded token differs from minted")
	}
}

func TestEncodeStringRoundTrip(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	tok, err := g.Minter.Mint(subj("ana"), time.Now())
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	back, err := authtoken.DecodeString(tok.EncodeString())
	if err != nil {
		t.Fatalf("decode string: %v", err)
	}
	if !bytes.Equal(back.Encode(), tok.Encode()) {
		t.Fatalf("string round trip altered the token")
	}
}

func TestExpiredToken(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")
	tok, _ := g.Minter.Mint(s, now)

	_, err := g.Verifier.VerifyBound(tok.Encode(), s, now.Add(time.Minute+time.Second))
	if !errors.Is(err, authtoken.ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if st := g.Verifier.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", st.Expired)
	}
}

func TestFutureBeyondSkew(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")
	// Minted "in the future": the verifier's clock is behind the minter's
	// by more than the 30s skew tolerance.
	tok, _ := g.Minter.Mint(s, now.Add(45*time.Second))

	_, err := g.Verifier.VerifyBound(tok.Encode(), s, now)
	if !errors.Is(err, authtoken.ErrFutureSkew) {
		t.Fatalf("err = %v, want ErrFutureSkew", err)
	}
	// Within skew it verifies.
	tok2, _ := g.Minter.Mint(s, now.Add(20*time.Second))
	if _, err := g.Verifier.VerifyBound(tok2.Encode(), s, now); err != nil {
		t.Fatalf("within-skew verify: %v", err)
	}
}

func TestReplayedNonce(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")
	tok, _ := g.Minter.Mint(s, now)
	raw := tok.Encode()

	if _, err := g.Verifier.VerifyBound(raw, s, now); err != nil {
		t.Fatalf("first presentation: %v", err)
	}
	_, err := g.Verifier.VerifyBound(raw, s, now.Add(time.Second))
	if !errors.Is(err, authtoken.ErrReplay) {
		t.Fatalf("second presentation: err = %v, want ErrReplay", err)
	}
	if st := g.Verifier.Stats(); st.Replayed != 1 || st.Verified != 1 {
		t.Fatalf("stats = %+v, want 1 verified / 1 replayed", st)
	}
}

func TestWrongKeyEpochAfterRotation(t *testing.T) {
	g, ring := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")
	tok, _ := g.Minter.Mint(s, now)

	// One rotation: epoch 1 is still inside the keep-2 window.
	if _, err := ring.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if _, err := g.Verifier.VerifyBound(tok.Encode(), s, now); err != nil {
		t.Fatalf("verify within keep window: %v", err)
	}

	// Second rotation evicts epoch 1 entirely.
	tok2, _ := g.Minter.Mint(s, now) // epoch 2
	if _, err := ring.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	_, err := g.Verifier.VerifyBound(tok2.Encode(), s, now)
	if err != nil {
		t.Fatalf("epoch 2 should survive one rotation under keep=2: %v", err)
	}
	fresh, _ := g.Minter.Mint(s, now)
	if fresh.Epoch != 3 {
		t.Fatalf("fresh epoch = %d, want 3", fresh.Epoch)
	}
	// Re-present the epoch-1 token (its nonce was consumed above, but the
	// epoch check fires first, which is what we assert).
	_, err = g.Verifier.VerifyBound(tok.Encode(), s, now)
	if !errors.Is(err, authtoken.ErrUnknownEpoch) {
		t.Fatalf("err = %v, want ErrUnknownEpoch", err)
	}
}

func TestTruncatedAndBitFlipped(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")
	tok, _ := g.Minter.Mint(s, now)
	raw := tok.Encode()

	for _, n := range []int{0, 1, authtoken.TokenLen - 1, authtoken.TokenLen + 1} {
		var cut []byte
		if n <= len(raw) {
			cut = raw[:n]
		} else {
			cut = append(append([]byte{}, raw...), 0)
		}
		if _, err := g.Verifier.Verify(cut, now); !errors.Is(err, authtoken.ErrMalformed) {
			t.Fatalf("len %d: err = %v, want ErrMalformed", n, err)
		}
	}

	// Flip one bit in every region of the layout: each must fail, none may
	// panic, and none may consume the real nonce.
	for _, off := range []int{1, 4, 14, 22, 40, 70} {
		flipped := append([]byte{}, raw...)
		flipped[off] ^= 0x80
		if _, err := g.Verifier.Verify(flipped, now); err == nil {
			t.Fatalf("bit flip at %d verified", off)
		}
	}
	// Version byte flip is malformed, not a signature failure.
	flipped := append([]byte{}, raw...)
	flipped[0] ^= 0xff
	if _, err := g.Verifier.Verify(flipped, now); !errors.Is(err, authtoken.ErrMalformed) {
		t.Fatalf("version flip: want ErrMalformed")
	}
	// The genuine token still works: nothing above consumed its nonce.
	if _, err := g.Verifier.VerifyBound(raw, s, now); err != nil {
		t.Fatalf("genuine token after tamper attempts: %v", err)
	}
}

func TestWrongSubjectFingerprint(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	ana := subj("ana", "analyst")
	tok, _ := g.Minter.Mint(ana, now)

	for _, other := range []*policy.Subject{
		subj("res", "analyst"),    // different ID
		subj("ana"),               // same ID, missing role
		subj("ana", "researcher"), // same ID, different role
	} {
		_, err := g.Verifier.VerifyBound(tok.Encode(), other, now)
		if !errors.Is(err, authtoken.ErrSubjectMismatch) {
			t.Fatalf("subject %v: err = %v, want ErrSubjectMismatch", other, err)
		}
	}
	// Role order must not matter: the fingerprint sorts roles.
	multi, _ := g.Minter.Mint(subj("bob", "a", "b"), now)
	if _, err := g.Verifier.VerifyBound(multi.Encode(), subj("bob", "b", "a"), now); err != nil {
		t.Fatalf("role order changed the binding: %v", err)
	}
	// The mismatches must not have burned ana's nonce.
	if _, err := g.Verifier.VerifyBound(tok.Encode(), ana, now); err != nil {
		t.Fatalf("rightful holder after mismatches: %v", err)
	}
}

// Wallet binding also excludes the wallet from the fingerprint: the token
// covers the serving identity only.
func TestBindingIgnoresWallet(t *testing.T) {
	s := subj("ana", "analyst")
	withWallet := &policy.Subject{ID: "ana", Roles: []string{"analyst"}, Wallet: credential.NewWallet("ana")}
	if authtoken.BindingFingerprint(s) != authtoken.BindingFingerprint(withWallet) {
		t.Fatalf("wallet changed the binding fingerprint")
	}
}

func TestMintWalletAllOrNothing(t *testing.T) {
	ring, _ := keymgmt.NewMintKeyring(1)
	auth, _ := credential.NewAuthority("hospital")
	rogue, _ := credential.NewAuthority("rogue")
	cv := credential.NewVerifier()
	cv.TrustAuthority(auth)
	m, err := authtoken.NewMinter(ring, cv, allowAll{}, time.Minute)
	if err != nil {
		t.Fatalf("minter: %v", err)
	}
	now := time.Now()

	good := credential.NewWallet("ana")
	good.Add(auth.Issue("clinician", "ana", nil))
	if _, err := m.Mint(&policy.Subject{ID: "ana", Wallet: good}, now); err != nil {
		t.Fatalf("fully-valid wallet refused: %v", err)
	}

	// One untrusted credential poisons the whole wallet.
	mixed := credential.NewWallet("ana")
	mixed.Add(auth.Issue("clinician", "ana", nil))
	mixed.Add(rogue.Issue("admin", "ana", nil))
	_, err = m.Mint(&policy.Subject{ID: "ana", Wallet: mixed}, now)
	if !errors.Is(err, authtoken.ErrWalletInvalid) {
		t.Fatalf("mixed wallet: err = %v, want ErrWalletInvalid", err)
	}

	// A wallet belonging to someone else is refused before verification.
	stolen := credential.NewWallet("res")
	stolen.Add(auth.Issue("clinician", "res", nil))
	_, err = m.Mint(&policy.Subject{ID: "ana", Wallet: stolen}, now)
	if !errors.Is(err, authtoken.ErrWalletInvalid) {
		t.Fatalf("stolen wallet: err = %v, want ErrWalletInvalid", err)
	}

	// A credential about a different subject smuggled into the wallet
	// (bypassing Wallet.Add via direct construction) is refused.
	smuggled := &credential.Wallet{Subject: "ana", Credentials: []*credential.Credential{
		auth.Issue("clinician", "res", nil),
	}}
	_, err = m.Mint(&policy.Subject{ID: "ana", Wallet: smuggled}, now)
	if !errors.Is(err, authtoken.ErrWalletInvalid) {
		t.Fatalf("smuggled credential: err = %v, want ErrWalletInvalid", err)
	}
}

func TestMintGateDenied(t *testing.T) {
	ring, _ := keymgmt.NewMintKeyring(1)
	m, err := authtoken.NewMinter(ring, credential.NewVerifier(), denyAll{}, time.Minute)
	if err != nil {
		t.Fatalf("minter: %v", err)
	}
	_, err = m.Mint(subj("ana"), time.Now())
	if !errors.Is(err, authtoken.ErrMintDenied) {
		t.Fatalf("err = %v, want ErrMintDenied", err)
	}
	if st := m.Stats(); st.Denied != 1 || st.Minted != 0 {
		t.Fatalf("stats = %+v, want 1 denied / 0 minted", st)
	}
}

func TestMinterConstructorRefusals(t *testing.T) {
	ring, _ := keymgmt.NewMintKeyring(1)
	if _, err := authtoken.NewMinter(nil, nil, allowAll{}, time.Minute); err == nil {
		t.Fatalf("nil keys accepted")
	}
	if _, err := authtoken.NewMinter(ring, nil, nil, time.Minute); err == nil {
		t.Fatalf("nil gate accepted")
	}
	if _, err := authtoken.NewMinter(ring, nil, allowAll{}, 0); err == nil {
		t.Fatalf("zero ttl accepted")
	}
}

func TestGateFastPathRollsSuccessor(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana", "analyst")

	// Bootstrap on the wallet-less slow path is impossible; use Mint.
	first, err := g.Minter.Mint(s, now)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	raw := first.Encode()
	// Chain several hops: each Authenticate consumes the presented token
	// and hands back a distinct successor.
	seen := map[uint64]bool{first.Nonce: true}
	for hop := 0; hop < 5; hop++ {
		res, err := g.Authenticate(s, raw, now.Add(time.Duration(hop)*time.Second))
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if res.Path != authtoken.PathToken {
			t.Fatalf("hop %d: path = %s, want token", hop, res.Path)
		}
		if res.Token == nil || seen[res.Token.Nonce] {
			t.Fatalf("hop %d: successor missing or nonce reused", hop)
		}
		seen[res.Token.Nonce] = true
		raw = res.Token.Encode()
	}
	st := g.Stats()
	if st.FastPath != 5 || st.SlowPath != 0 {
		t.Fatalf("stats = %+v, want 5 fast / 0 slow", st)
	}
	if st.FastPathHitRate != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", st.FastPathHitRate)
	}
}

func TestGateWalletFallbackAndLegacy(t *testing.T) {
	ring, _ := keymgmt.NewMintKeyring(1)
	auth, _ := credential.NewAuthority("hospital")
	cv := credential.NewVerifier()
	cv.TrustAuthority(auth)
	m, _ := authtoken.NewMinter(ring, cv, allowAll{}, time.Minute)
	g := &authtoken.Gate{Verifier: authtoken.NewVerifier(ring, time.Minute, 0, 0), Minter: m}
	now := time.Now()

	w := credential.NewWallet("ana")
	w.Add(auth.Issue("clinician", "ana", nil))
	withWallet := &policy.Subject{ID: "ana", Roles: []string{"analyst"}, Wallet: w}

	// Wallet-only request: slow path, result carries a token.
	res, err := g.Authenticate(withWallet, nil, now)
	if err != nil || res.Path != authtoken.PathWallet || res.Token == nil {
		t.Fatalf("wallet path: res=%+v err=%v", res, err)
	}

	// Expired token + wallet: falls back to the full path, succeeds.
	stale, _ := g.Minter.Mint(withWallet, now.Add(-2*time.Minute))
	res, err = g.Authenticate(withWallet, stale.Encode(), now)
	if err != nil || res.Path != authtoken.PathWallet {
		t.Fatalf("fallback: res=%+v err=%v", res, err)
	}

	// Expired token, no wallet: rejected.
	bare := subj("ana", "analyst")
	stale2, _ := g.Minter.Mint(bare, now.Add(-2*time.Minute))
	if _, err := g.Authenticate(bare, stale2.Encode(), now); !errors.Is(err, authtoken.ErrExpired) {
		t.Fatalf("rejected path: err = %v, want ErrExpired", err)
	}

	// No material at all: legacy passthrough.
	res, err = g.Authenticate(subj("legacyuser"), nil, now)
	if err != nil || res.Path != authtoken.PathLegacy || res.Token != nil {
		t.Fatalf("legacy path: res=%+v err=%v", res, err)
	}

	st := g.Stats()
	if st.SlowPath != 2 || st.TokenFallbacks != 1 || st.Rejected != 1 || st.Legacy != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeaderMintedVerifiesOnReplicaKeySet(t *testing.T) {
	// Leader side: its own keyring signs and verifies.
	g, ring := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana", "analyst")
	tok, _ := g.Minter.Mint(s, now)

	// Replica side: verify against the shipped public set only.
	set := keymgmt.NewPublicKeySet()
	rv := authtoken.NewVerifier(set, time.Minute, 0, 0)
	if _, err := rv.VerifyBound(tok.Encode(), s, now); !errors.Is(err, authtoken.ErrUnknownEpoch) {
		t.Fatalf("empty set: err = %v, want ErrUnknownEpoch", err)
	}
	raw, gen := ring.ExportPublic()
	if gen != 1 {
		t.Fatalf("gen = %d, want 1", gen)
	}
	if err := set.Install(raw); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := rv.VerifyBound(tok.Encode(), s, now); err != nil {
		t.Fatalf("replica verify: %v", err)
	}

	// Rotate past the keep window; the re-shipped set kills the old epoch.
	ring.Rotate()
	ring.Rotate()
	raw2, gen2 := ring.ExportPublic()
	if gen2 != 3 {
		t.Fatalf("gen after two rotations = %d, want 3", gen2)
	}
	if err := set.Install(raw2); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
	tok2, _ := g.Minter.Mint(s, now)
	_, err := rv.VerifyBound(tok2.Encode(), s, now)
	if err != nil {
		t.Fatalf("current-epoch token on replica: %v", err)
	}
	if _, err := rv.VerifyBound(tok.Encode(), s, now); !errors.Is(err, authtoken.ErrUnknownEpoch) {
		t.Fatalf("rotated-away token: err = %v, want ErrUnknownEpoch", err)
	}
}

// TestReplayCacheUnderConcurrency is the -race workout: many goroutines
// race distinct tokens plus deliberate duplicates through one verifier.
func TestReplayCacheUnderConcurrency(t *testing.T) {
	g, _ := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana")

	const workers = 8
	const perWorker = 40
	mint := func(n int) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			tok, err := g.Minter.Mint(s, now)
			if err != nil {
				t.Fatalf("mint: %v", err)
			}
			out[i] = tok.Encode()
		}
		return out
	}
	unique := mint(workers * perWorker) // each consumed by exactly one worker
	shared := mint(perWorker)           // raced by every worker

	var wg sync.WaitGroup
	var dup atomic64
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := g.Verifier.VerifyBound(unique[base*perWorker+i], s, now); err != nil {
					t.Errorf("unique token failed: %v", err)
				}
				// All workers race the shared pool: exactly one consumer
				// may win each token.
				if _, err := g.Verifier.VerifyBound(shared[i], s, now); err == nil {
					dup.add(1)
				}
			}
		}(wkr)
	}
	wg.Wait()

	if got, want := dup.load(), uint64(perWorker); got != want {
		t.Fatalf("shared-pool wins = %d, want exactly %d", got, want)
	}
	st := g.Verifier.Stats()
	if want := uint64(workers*perWorker + perWorker); st.Verified != want {
		t.Fatalf("verified = %d, want %d", st.Verified, want)
	}
	if want := uint64((workers - 1) * perWorker); st.Replayed != want {
		t.Fatalf("replayed = %d, want %d", st.Replayed, want)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64 // seclint:guardedby mu
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestReplayCacheEviction fills a tiny cache beyond capacity and checks
// evictions are counted rather than silently widening the window.
func TestReplayCacheEviction(t *testing.T) {
	ring, _ := keymgmt.NewMintKeyring(1)
	m, _ := authtoken.NewMinter(ring, nil, allowAll{}, time.Hour)
	// Capacity 16 is the floor; shard-level capacity is 16/16 = 1.
	v := authtoken.NewVerifier(ring, time.Hour, 0, 16)
	now := time.Now()
	s := subj("ana")
	for i := 0; i < 200; i++ {
		tok, _ := m.Mint(s, now)
		if _, err := v.VerifyBound(tok.Encode(), s, now); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	st := v.Stats()
	if st.ReplayEvictions == 0 {
		t.Fatalf("expected capacity evictions, got none (entries=%d)", st.ReplayEntries)
	}
	if st.ReplayEntries > 16 {
		t.Fatalf("cache grew past capacity: %d entries", st.ReplayEntries)
	}
}

// TestReadReplicaGate covers the verify-only configuration a follower
// runs: negative replay capacity (no nonce consumption — the replica
// cannot sign successors, so tokens must stay presentable) and a nil
// Minter (fast path only; wallet traffic is refused toward the leader).
func TestReadReplicaGate(t *testing.T) {
	leaderGate, ring := newTestGate(t, time.Minute)
	now := time.Now()
	s := subj("ana", "analyst")
	tok, err := leaderGate.Minter.Mint(s, now)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}

	keyset := keymgmt.NewPublicKeySet()
	data, _ := ring.ExportPublic()
	if err := keyset.Install(data); err != nil {
		t.Fatalf("install: %v", err)
	}
	replica := &authtoken.Gate{Verifier: authtoken.NewVerifier(keyset, time.Minute, 0, -1)}

	// The same token authenticates repeatedly: no consumption, no successor.
	for i := 0; i < 3; i++ {
		res, err := replica.Authenticate(s, tok.Encode(), now)
		if err != nil {
			t.Fatalf("replica verify %d: %v", i, err)
		}
		if res.Path != authtoken.PathToken || res.Token != nil {
			t.Fatalf("replica result = %+v, want token path with no successor", res)
		}
		if want := time.Unix(tok.IssuedAt, 0).Add(time.Minute); !res.ExpiresAt.Equal(want) {
			t.Fatalf("ExpiresAt = %v, want %v", res.ExpiresAt, want)
		}
	}

	// Wallet traffic cannot qualify here.
	ws := subj("bea")
	ws.Wallet = credential.NewWallet("bea")
	if _, err := replica.Authenticate(ws, nil, now); !errors.Is(err, authtoken.ErrMintUnavailable) {
		t.Fatalf("wallet on replica: err = %v, want ErrMintUnavailable", err)
	}
	// A dead token with a wallet attached is still refused (no fallback mint).
	if _, err := replica.Authenticate(ws, tok.Encode(), now); err == nil {
		t.Fatalf("foreign token + wallet on replica: expected refusal")
	}

	st := replica.Stats()
	if st.FastPath != 3 || st.Rejected != 2 {
		t.Fatalf("stats = %+v, want 3 fast / 2 rejected", st)
	}
	// TTL still applies on the replica even without nonce state.
	if _, err := replica.Authenticate(s, tok.Encode(), now.Add(2*time.Minute)); !errors.Is(err, authtoken.ErrExpired) {
		t.Fatalf("expired on replica: err = %v, want ErrExpired", err)
	}
}
