package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy configures Retry: capped exponential backoff with jitter.
// The zero value is usable and means "3 attempts, 50ms base, doubling,
// capped at 2s, 20% jitter". Sleep and Rand are injectable so tests can
// capture the schedule deterministically instead of sleeping.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the ± fraction of the delay randomized away, in [0,1].
	// Jittering de-synchronizes retry storms: after a failover, every
	// replica and client rediscovers the new leader at the same moment,
	// and an unjittered schedule would land their reconnects in aligned
	// waves. The zero value means the 0.2 default — jitter is on unless
	// explicitly disabled with a negative value (deterministic tests
	// only); it never pushes a delay past MaxDelay.
	Jitter float64
	// Classify overrides the package-level Classify.
	Classify func(error) Class
	// Sleep overrides the context-aware wait between attempts.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand overrides the jitter source; must return values in [0,1).
	Rand func() float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 3
}

func (p RetryPolicy) classify(err error) Class {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Classify(err)
}

// defaultRand is a locked shared source; math/rand's global source is
// already locked but seeded, and we want an isolated stream.
var defaultRand = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(1))}

func (p RetryPolicy) random() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	defaultRand.mu.Lock()
	defer defaultRand.mu.Unlock()
	return defaultRand.r.Float64()
}

// backoff computes the jittered delay before attempt+2 (attempt counts
// completed failures, starting at 0).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	if jitter == 0 && p.Jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		// d * (1 - j + 2j*u): uniform in [d(1-j), d(1+j)].
		d *= 1 - jitter + 2*jitter*p.random()
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs op until it succeeds, returns a terminal error, the context
// ends, or MaxAttempts is exhausted. The last error is returned, wrapped
// with the attempt count when the budget ran out.
func Retry(ctx context.Context, p RetryPolicy, op func(ctx context.Context) error) error {
	_, err := RetryValue(ctx, p, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, op(ctx)
	})
	return err
}

// RetryValue is Retry for operations that produce a value.
func RetryValue[T any](ctx context.Context, p RetryPolicy, op func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	attempts := p.attempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return zero, fmt.Errorf("%w (context ended after %d attempt(s): %w)", lastErr, attempt, err)
			}
			return zero, err
		}
		v, err := op(ctx)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if p.classify(err) == Terminal {
			return zero, err
		}
		if attempt == attempts-1 {
			break
		}
		if serr := p.sleep(ctx, p.backoff(attempt)); serr != nil {
			return zero, fmt.Errorf("%w (retry aborted: %w)", lastErr, serr)
		}
	}
	return zero, fmt.Errorf("resilience: %d attempt(s) failed: %w", attempts, lastErr)
}
