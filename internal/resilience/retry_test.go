package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// capture returns a Sleep hook that records each backoff without actually
// sleeping, keeping the schedule deterministic and the tests instant.
func capture(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: -1, Sleep: capture(&delays)}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Two failures → two sleeps, exponential: 10ms, 20ms (Jitter<0 → none).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != 2 || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", delays, want)
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{MaxAttempts: 3, Sleep: capture(&delays)}
	boom := errors.New("boom")
	err := Retry(context.Background(), p, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("exhaustion error %v does not wrap the last cause", err)
	}
	if len(delays) != 2 {
		t.Errorf("sleeps = %d, want 2 (no sleep after the final attempt)", len(delays))
	}
}

func TestRetryTerminalShortCircuits(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: capture(new([]time.Duration))}
	denied := MarkTerminal(errors.New("access denied"))
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return denied
	})
	if calls != 1 {
		t.Errorf("terminal error retried: %d calls", calls)
	}
	if !errors.Is(err, denied) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryBreakerOpenIsTerminal(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: capture(new([]time.Duration))}
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return fmt.Errorf("call: %w", ErrOpen)
	})
	if calls != 1 {
		t.Errorf("open-circuit error retried: %d calls", calls)
	}
	if !errors.Is(err, ErrOpen) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, RetryPolicy{MaxAttempts: 3}, func(context.Context) error {
		calls++
		return errors.New("never classified")
	})
	if calls != 0 {
		t.Errorf("op ran %d time(s) under a dead context", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryAbortsWhenContextEndsMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // context dies while waiting out the backoff
			return ctx.Err()
		},
	}
	boom := errors.New("flaky")
	err := Retry(ctx, p, func(context.Context) error { return boom })
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want both the cause and context.Canceled", err)
	}
}

func TestRetryValueReturnsValue(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Sleep: capture(new([]time.Duration))}
	calls := 0
	v, err := RetryValue(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Errorf("RetryValue = (%d, %v)", v, err)
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: 3 * time.Second, Jitter: -1}
	if d := p.backoff(10); d != 3*time.Second {
		t.Errorf("backoff(10) = %v, want cap %v", d, 3*time.Second)
	}
}

func TestBackoffJitterStaysInBand(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if d := p.backoff(0); d != 50*time.Millisecond {
		t.Errorf("u=0 → %v, want 50ms (lower band edge)", d)
	}
	p.Rand = func() float64 { return 0.999999 }
	if d := p.backoff(0); d < 149*time.Millisecond || d > 150*time.Millisecond {
		t.Errorf("u→1 → %v, want ~150ms (upper band edge)", d)
	}
}

// TestBackoffDefaultJitterDesynchronizes: the ZERO-VALUE policy jitters.
// After a failover every replica rediscovers the new leader at the same
// instant; if the default schedule were deterministic, their reconnects
// would arrive in aligned waves and thundering-herd the fresh leader.
// The default band is ±20% of the computed delay.
func TestBackoffDefaultJitterDesynchronizes(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond}
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := p.backoff(0)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("sample %d = %v, outside the default ±20%% band [80ms, 120ms]", i, d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 zero-value backoffs were identical: default jitter not applied")
	}
}

// TestBackoffJitterNeverExceedsCap: upward jitter is clamped at MaxDelay,
// so the bounded-recovery-time promise survives the randomization.
func TestBackoffJitterNeverExceedsCap(t *testing.T) {
	p := RetryPolicy{
		BaseDelay: time.Second,
		MaxDelay:  time.Second,
		Jitter:    0.5,
		Rand:      func() float64 { return 0.999999 },
	}
	if d := p.backoff(0); d > time.Second {
		t.Errorf("jittered backoff %v exceeds MaxDelay %v", d, time.Second)
	}
}

// TestBackoffNegativeJitterDisables: a negative Jitter is the explicit
// deterministic mode (used by tests that assert exact schedules).
func TestBackoffNegativeJitterDisables(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: -1}
	for i := 0; i < 8; i++ {
		if d := p.backoff(0); d != 100*time.Millisecond {
			t.Fatalf("backoff(0) = %v with Jitter=-1, want exactly 100ms", d)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{errors.New("unknown"), Retryable},
		{MarkTerminal(errors.New("bad request")), Terminal},
		{MarkRetryable(context.Canceled), Retryable}, // explicit mark wins
		{context.Canceled, Terminal},
		{context.DeadlineExceeded, Terminal},
		{fmt.Errorf("wrap: %w", ErrOpen), Terminal},
		{nil, Terminal}, // nothing to retry
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
