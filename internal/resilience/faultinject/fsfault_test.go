package faultinject

import (
	"errors"
	"testing"
)

func TestWriteBudgetTearsFinalWrite(t *testing.T) {
	fs := NewMemFS()
	fs.LimitWriteBytes(10)
	f, err := fs.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	// This write crosses the budget: only the first 2 bytes land, then
	// the "machine" dies.
	if _, err := f.Write([]byte("ABCDEF")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write over budget: err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not marked crashed")
	}
	// Nothing was synced, so a crash that drops unsynced data loses it all…
	img := fs.AfterCrash(true)
	if data, err := img.ReadFile("seg"); err != nil || len(data) != 0 {
		t.Fatalf("drop-unsynced image: data = %q, err = %v", data, err)
	}
	// …while a lucky crash keeps the torn prefix.
	img2 := fs.AfterCrash(false)
	data, err := img2.ReadFile("seg")
	if err != nil || string(data) != "12345678AB" {
		t.Fatalf("keep-unsynced image: data = %q, err = %v", data, err)
	}
}

func TestSyncLimitCrashesWithoutDurability(t *testing.T) {
	fs := NewMemFS()
	fs.LimitSyncs(1)
	f, _ := fs.Create("seg")
	f.Write([]byte("first"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	f.Write([]byte("second"))
	// The second fsync dies before advancing the durable watermark.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second sync: err = %v, want ErrCrashed", err)
	}
	img := fs.AfterCrash(true)
	data, err := img.ReadFile("seg")
	if err != nil || string(data) != "first" {
		t.Fatalf("after crashed fsync: data = %q, err = %v", data, err)
	}
}

func TestOperationsAfterCrashFail(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("seg")
	fs.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if _, err := fs.Create("other"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash: %v", err)
	}
	if err := fs.Rename("seg", "x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
}

func TestRenameIsAtomic(t *testing.T) {
	fs := NewMemFS()
	if err := fs.WriteTrunc("snapshot.tmp", []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("snapshot.tmp", "snapshot"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("snapshot.tmp"); err == nil {
		t.Fatal("tmp file still present after rename")
	}
	data, err := fs.ReadFile("snapshot")
	if err != nil || string(data) != "state" {
		t.Fatalf("renamed file = %q, err = %v", data, err)
	}
	// WriteTrunc output is durable: it survives a drop-unsynced crash.
	fs.Crash()
	img := fs.AfterCrash(true)
	if data, _ := img.ReadFile("snapshot"); string(data) != "state" {
		t.Fatalf("snapshot lost across crash: %q", data)
	}
}

func TestCounters(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("seg")
	f.Write([]byte("1234"))
	f.Sync()
	f.Write([]byte("56"))
	if got := fs.BytesWritten(); got != 6 {
		t.Fatalf("BytesWritten = %d, want 6", got)
	}
	if got := fs.SyncCount(); got != 1 {
		t.Fatalf("SyncCount = %d, want 1", got)
	}
}
