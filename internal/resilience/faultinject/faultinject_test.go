package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestGateKinds(t *testing.T) {
	inj := New(Steps(None, Error, Corrupt))
	ctx := context.Background()
	if err := inj.Gate(ctx); err != nil {
		t.Errorf("None gate = %v", err)
	}
	if err := inj.Gate(ctx); !errors.Is(err, ErrInjected) {
		t.Errorf("Error gate = %v", err)
	}
	if err := inj.Gate(ctx); !errors.Is(err, ErrCorrupted) {
		t.Errorf("Corrupt gate = %v", err)
	}
	// Past the end of the script: clean.
	if err := inj.Gate(ctx); err != nil {
		t.Errorf("exhausted script gate = %v", err)
	}
}

func TestGateDropBlocksUntilContextEnds(t *testing.T) {
	inj := New(Always(Drop))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Gate(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Drop gate = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("Drop gate did not respect the context deadline")
	}
}

func TestGateDelayIsContextAware(t *testing.T) {
	inj := New(Always(Delay))
	inj.Delay = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Gate(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Delay gate = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("hour-long delay slept past the deadline")
	}
}

func TestCustomError(t *testing.T) {
	custom := errors.New("custom outage")
	inj := New(Always(Error))
	inj.Err = custom
	if err := inj.Gate(context.Background()); !errors.Is(err, custom) {
		t.Errorf("gate = %v, want custom error", err)
	}
}

func TestNilInjectorPassesThrough(t *testing.T) {
	var inj *Injector
	if err := inj.Gate(context.Background()); err != nil {
		t.Errorf("nil injector gate = %v", err)
	}
}

func TestSeededPlanIsDeterministic(t *testing.T) {
	w := Weights{Drop: 0.1, Delay: 0.2, Error: 0.2, Corrupt: 0.1}
	a, b := Seeded(42, w), Seeded(42, w)
	saw := map[Kind]bool{}
	for i := 0; i < 500; i++ {
		ka, kb := a.Next(), b.Next()
		if ka != kb {
			t.Fatalf("step %d: %v != %v — same seed diverged", i, ka, kb)
		}
		saw[ka] = true
	}
	for _, k := range []Kind{None, Drop, Delay, Error, Corrupt} {
		if !saw[k] {
			t.Errorf("500 draws never produced %v", k)
		}
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer srv.Close()

	inj := New(Steps(Error, Corrupt, None))
	client := &http.Client{Transport: WrapTransport(nil, inj)}

	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Errorf("Error round trip = %v", err)
	}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Corrupt round trip failed at transport: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == "payload" {
		t.Error("Corrupt round trip delivered pristine body")
	}

	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("clean round trip = %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "payload" {
		t.Errorf("clean body = %q", body)
	}
}

func TestTransportDropRespectsRequestContext(t *testing.T) {
	inj := New(Always(Drop))
	client := &http.Client{Transport: WrapTransport(nil, inj)}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:0/", nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Error("dropped request succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("dropped request outlived its context")
	}
}
