package faultinject

// The storage half of the harness: an in-memory filesystem implementing
// wal.FS whose process can be "killed" at any byte of any write or in the
// middle of any fsync. Crash-matrix tests (internal/wal, internal/reldb,
// internal/audit) run a scripted workload against a MemFS, kill it at
// every record and byte boundary, reopen the surviving disk image and
// assert the store's recovery invariants.
//
// The durability model mirrors a POSIX file over a page cache:
//
//   - Write appends to the file's buffer; the bytes are *accepted* but not
//     yet durable.
//   - Sync marks everything buffered so far durable (fsync returning).
//   - A crash keeps all durable bytes. Accepted-but-unsynced bytes either
//     survive (the kernel happened to flush them — AfterCrash(false)) or
//     are lost (AfterCrash(true)). Both outcomes are legal on real
//     hardware, so crash tests assert their invariants under both.
//
// Two independent kill switches arm the crash: LimitWriteBytes kills the
// process at an exact byte offset of the global write stream (the write
// crossing the limit applies only the prefix that fits — a torn write);
// LimitSyncs kills it inside the n-th fsync (the fsync does not complete,
// so the bytes it covered remain non-durable). After either trips, every
// mutating operation returns ErrCrashed, exactly as a dead process
// performs no further I/O.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/wal"
)

// ErrCrashed is returned by every operation on a MemFS after its kill
// switch has tripped or Crash was called.
var ErrCrashed = errors.New("faultinject: simulated crash")

// MemFS is an in-memory wal.FS with crash injection. Safe for concurrent
// use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	crashed bool

	// writeLimit is the remaining accepted write bytes before the crash
	// (-1 = unarmed). syncLimit is the remaining completed fsyncs before a
	// crash mid-fsync (-1 = unarmed).
	writeLimit int64
	syncLimit  int64

	written int64
	syncs   int64
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty, unarmed filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), writeLimit: -1, syncLimit: -1}
}

// LimitWriteBytes arms the write kill switch: after n more bytes are
// accepted, the write crossing the boundary applies only its first
// in-budget bytes and the filesystem crashes.
func (m *MemFS) LimitWriteBytes(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeLimit = n
}

// LimitSyncs arms the fsync kill switch: the (n+1)-th Sync call crashes
// before completing, leaving its bytes non-durable.
func (m *MemFS) LimitSyncs(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncLimit = n
}

// Crash kills the filesystem immediately.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Crashed reports whether a kill switch has tripped.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// BytesWritten returns the total bytes accepted across all files — the
// coordinate system for LimitWriteBytes crash points.
func (m *MemFS) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// SyncCount returns the number of completed fsyncs — the coordinate system
// for LimitSyncs crash points.
func (m *MemFS) SyncCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// AfterCrash returns the disk image a restarted process would find: a
// fresh, unarmed MemFS holding each file's durable bytes plus — when
// dropUnsynced is false — the accepted-but-unsynced tail. dropUnsynced
// true models the page cache dying with the machine; false models a
// process-only crash where the kernel flushed everything accepted.
func (m *MemFS) AfterCrash(dropUnsynced bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		keep := len(f.data)
		if dropUnsynced {
			keep = f.synced
		}
		out.files[name] = &memFile{
			data:   append([]byte(nil), f.data[:keep]...),
			synced: keep,
		}
	}
	return out
}

// memHandle is an open writable file.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

// Create implements wal.FS.
func (m *MemFS) Create(name string) (wal.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed || h.closed {
		return 0, ErrCrashed
	}
	n := len(p)
	if m.writeLimit >= 0 && int64(n) > m.writeLimit {
		n = int(m.writeLimit)
		h.f.data = append(h.f.data, p[:n]...)
		m.written += int64(n)
		m.crashed = true
		return n, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	m.written += int64(n)
	if m.writeLimit >= 0 {
		m.writeLimit -= int64(n)
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed || h.closed {
		return ErrCrashed
	}
	if m.syncLimit == 0 {
		// Killed inside fsync: the barrier never completed.
		m.crashed = true
		return ErrCrashed
	}
	if m.syncLimit > 0 {
		m.syncLimit--
	}
	h.f.synced = len(h.f.data)
	m.syncs++
	return nil
}

func (h *memHandle) Close() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	h.closed = true
	return nil
}

// ReadFile implements wal.FS. Reads are allowed even after a crash so
// tests can inspect the corpse, but recovery should go through AfterCrash.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("faultinject: %s: file does not exist", name)
	}
	return append([]byte(nil), f.data...), nil
}

// WriteTrunc implements wal.FS: an atomic full-content replacement, fully
// durable when it returns nil.
func (m *MemFS) WriteTrunc(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.writeLimit >= 0 && int64(len(data)) > m.writeLimit {
		// The replacement is written via a temporary and renamed, so a
		// crash mid-way leaves the original untouched.
		m.crashed = true
		return ErrCrashed
	}
	if m.writeLimit >= 0 {
		m.writeLimit -= int64(len(data))
	}
	m.written += int64(len(data))
	m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
	return nil
}

// Rename implements wal.FS; atomic.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("faultinject: rename %s: file does not exist", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements wal.FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("faultinject: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	return nil
}

// List implements wal.FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

var _ wal.FS = (*MemFS)(nil)
