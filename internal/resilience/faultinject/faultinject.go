// Package faultinject is a deterministic fault-injection harness for the
// distributed layers: federation sources, HTTP transports, and secchan
// net.Conns. Faults come from a Plan — either an explicit step script or a
// seeded pseudo-random stream — so tests replay identically and never
// depend on wall-clock races; delays are context-aware and trip the
// caller's deadline rather than sleeping past it.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None lets the operation through untouched.
	None Kind = iota
	// Drop makes the operation vanish: a conn write is swallowed, an HTTP
	// round trip blocks until the request context ends, a gated operation
	// blocks until its context ends. Simulates a partitioned/stalled peer.
	Drop
	// Delay stalls the operation for the injector's Delay, then proceeds.
	Delay
	// Error fails the operation immediately with the injector's Err.
	Error
	// Corrupt lets the operation through with a flipped bit in its bytes
	// (conn writes, HTTP response bodies); operations with no byte stream
	// fail with ErrCorrupted.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Corrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// ErrInjected is the default injected failure. It carries no terminal
// mark, so resilience.Classify treats it as retryable — like the
// transient network error it stands in for.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCorrupted reports a Corrupt fault on an operation without a byte
// stream to tamper with.
var ErrCorrupted = errors.New("faultinject: injected corruption")

// Plan yields the fault for each successive operation.
type Plan interface {
	Next() Kind
}

// PlanFunc adapts a function to a Plan.
type PlanFunc func() Kind

// Next implements Plan.
func (f PlanFunc) Next() Kind { return f() }

// Always faults every operation the same way.
func Always(k Kind) Plan { return PlanFunc(func() Kind { return k }) }

// Steps scripts an explicit fault sequence; operations beyond the script
// pass untouched. Safe for concurrent use.
func Steps(kinds ...Kind) Plan {
	var mu sync.Mutex
	i := 0
	return PlanFunc(func() Kind {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(kinds) {
			return None
		}
		k := kinds[i]
		i++
		return k
	})
}

// Weights are per-fault probabilities for Seeded; the remainder to 1.0 is
// the probability of None.
type Weights struct {
	Drop, Delay, Error, Corrupt float64
}

// Seeded draws faults pseudo-randomly from a seeded stream: the same seed
// and weights always produce the same fault sequence when consumed
// sequentially. Safe for concurrent use.
func Seeded(seed int64, w Weights) Plan {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed))
	return PlanFunc(func() Kind {
		mu.Lock()
		defer mu.Unlock()
		u := r.Float64()
		switch {
		case u < w.Drop:
			return Drop
		case u < w.Drop+w.Delay:
			return Delay
		case u < w.Drop+w.Delay+w.Error:
			return Error
		case u < w.Drop+w.Delay+w.Error+w.Corrupt:
			return Corrupt
		default:
			return None
		}
	})
}

// Injector applies a Plan to operations.
type Injector struct {
	plan Plan
	// Delay is how long a Delay fault stalls (default 10ms).
	Delay time.Duration
	// Err is what an Error fault returns (default ErrInjected).
	Err error
}

// New builds an injector over plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan}
}

func (i *Injector) next() Kind {
	if i == nil || i.plan == nil {
		return None
	}
	return i.plan.Next()
}

func (i *Injector) delay() time.Duration {
	if i.Delay > 0 {
		return i.Delay
	}
	return 10 * time.Millisecond
}

func (i *Injector) err() error {
	if i.Err != nil {
		return i.Err
	}
	return ErrInjected
}

// Gate is the generic operation-level hook: call it at the top of any
// operation (e.g. a federation source's exec) to subject that operation to
// the plan. Delay waits context-aware; Drop blocks until the context ends
// (a context without deadline blocks forever — exactly like the stalled
// peer it simulates); Error and Corrupt fail immediately.
func (i *Injector) Gate(ctx context.Context) error {
	switch i.next() {
	case None:
		return nil
	case Delay:
		t := time.NewTimer(i.delay())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return fmt.Errorf("faultinject: delayed past deadline: %w", ctx.Err())
		case <-t.C:
			return nil
		}
	case Drop:
		<-ctx.Done()
		return fmt.Errorf("faultinject: dropped: %w", ctx.Err())
	case Error:
		return i.err()
	case Corrupt:
		return ErrCorrupted
	default:
		return nil
	}
}

// Conn wraps a net.Conn, faulting writes according to the plan. Reads
// pass through untouched, so one faulty endpoint suffices to exercise
// both directions of a protocol.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn applies inj to every Write on c.
func WrapConn(c net.Conn, inj *Injector) *Conn {
	return &Conn{Conn: c, inj: inj}
}

// Write implements net.Conn with fault injection.
func (c *Conn) Write(p []byte) (int, error) {
	switch c.inj.next() {
	case Drop:
		// Swallow silently: the caller believes the bytes left, the peer
		// never sees them — a lossy link / stalled middlebox.
		return len(p), nil
	case Delay:
		time.Sleep(c.inj.delay())
		return c.Conn.Write(p)
	case Error:
		return 0, c.inj.err()
	case Corrupt:
		if len(p) == 0 {
			return c.Conn.Write(p)
		}
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0x01
		return c.Conn.Write(q)
	default:
		return c.Conn.Write(p)
	}
}

// Transport wraps an http.RoundTripper, faulting round trips according to
// the plan.
type Transport struct {
	next http.RoundTripper
	inj  *Injector
}

// WrapTransport applies inj to every round trip; rt nil means
// http.DefaultTransport.
func WrapTransport(rt http.RoundTripper, inj *Injector) *Transport {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &Transport{next: rt, inj: inj}
}

// RoundTrip implements http.RoundTripper with fault injection.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.inj.next() {
	case Drop:
		<-req.Context().Done()
		return nil, fmt.Errorf("faultinject: dropped request: %w", req.Context().Err())
	case Delay:
		tm := time.NewTimer(t.inj.delay())
		defer tm.Stop()
		select {
		case <-req.Context().Done():
			return nil, fmt.Errorf("faultinject: delayed past deadline: %w", req.Context().Err())
		case <-tm.C:
		}
		return t.next.RoundTrip(req)
	case Error:
		return nil, t.inj.err()
	case Corrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &corruptBody{inner: resp.Body}
		return resp, nil
	default:
		return t.next.RoundTrip(req)
	}
}

// corruptBody flips a bit in the first byte of the body's first read.
type corruptBody struct {
	inner io.ReadCloser
	done  bool
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if !b.done && n > 0 {
		p[0] ^= 0x01
		b.done = true
	}
	return n, err
}

func (b *corruptBody) Close() error { return b.inner.Close() }
