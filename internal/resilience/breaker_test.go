package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// clock is a settable fake time source for deterministic breaker tests.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testBreaker(failures int, cooldown time.Duration) (*Breaker, *clock) {
	ck := &clock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: failures,
		Cooldown:         cooldown,
		Now:              ck.Now,
	})
	return b, ck
}

func fail(b *Breaker, err error) error {
	return b.Do(context.Background(), func(context.Context) error { return err })
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	boom := errors.New("down")
	for i := 0; i < 3; i++ {
		if err := fail(b, boom); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	// Open circuit fails fast without invoking the op.
	ran := false
	err := b.Do(context.Background(), func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, ErrOpen) || ran {
		t.Errorf("open breaker: err=%v ran=%v", err, ran)
	}
	if b.Rejected() != 1 {
		t.Errorf("rejected = %d, want 1", b.Rejected())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	boom := errors.New("down")
	fail(b, boom)
	fail(b, boom)
	fail(b, nil) // success breaks the streak
	fail(b, boom)
	fail(b, boom)
	if b.State() != Closed {
		t.Errorf("non-consecutive failures opened the breaker")
	}
}

func TestBreakerTerminalErrorsDoNotTrip(t *testing.T) {
	b, _ := testBreaker(2, time.Minute)
	denied := MarkTerminal(errors.New("access denied"))
	for i := 0; i < 10; i++ {
		fail(b, denied)
	}
	if b.State() != Closed {
		t.Errorf("client faults opened the circuit: %v", b.State())
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	b, ck := testBreaker(1, time.Minute)
	fail(b, errors.New("down"))
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	// Before the cooldown: still rejecting.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow during cooldown = %v", err)
	}
	ck.Advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	// Only MaxProbes (1) concurrent probe is admitted.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted")
	}
	b.Record(nil) // probe succeeds
	if b.State() != Closed {
		t.Errorf("state after successful probe = %v, want closed", b.State())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, ck := testBreaker(1, time.Minute)
	fail(b, errors.New("down"))
	ck.Advance(time.Minute)
	if err := fail(b, errors.New("still down")); err == nil {
		t.Fatal("probe unexpectedly succeeded")
	}
	if b.State() != Open {
		t.Errorf("state after failed probe = %v, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	ck.Advance(30 * time.Second)
	if b.State() != Open {
		t.Errorf("cooldown did not restart after failed probe")
	}
	ck.Advance(30 * time.Second)
	if b.State() != HalfOpen {
		t.Errorf("second cooldown did not admit probes")
	}
}

func TestBreakerSuccessThreshold(t *testing.T) {
	ck := &clock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		SuccessThreshold: 2,
		MaxProbes:        2,
		Cooldown:         time.Second,
		Now:              ck.Now,
	})
	fail(b, errors.New("down"))
	ck.Advance(time.Second)
	fail(b, nil)
	if b.State() != HalfOpen {
		t.Fatalf("one probe success closed a threshold-2 breaker")
	}
	fail(b, nil)
	if b.State() != Closed {
		t.Errorf("two probe successes did not close: %v", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, ck := testBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				var err error
				if (n+j)%3 == 0 {
					err = errors.New("flaky")
				}
				fail(b, err)
				if j%50 == 0 {
					ck.Advance(time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion beyond "the race detector stays quiet and the state is
	// one of the three legal positions".
	switch b.State() {
	case Closed, Open, HalfOpen:
	default:
		t.Errorf("illegal state %v", b.State())
	}
}
