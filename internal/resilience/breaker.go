package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests fail fast with ErrOpen until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probe requests test recovery.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Allow/Do while the breaker rejects traffic.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes a Breaker. Zero values take the documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// SuccessThreshold is the probe successes needed to close again
	// (default 1).
	SuccessThreshold int
	// Cooldown is how long the breaker stays Open before admitting
	// probes (default 10s).
	Cooldown time.Duration
	// MaxProbes bounds concurrent half-open probes (default 1).
	MaxProbes int
	// IsFailure decides whether an operation outcome counts against the
	// service. The default counts retryable-class errors only: terminal
	// errors (malformed request, access denied) say nothing about the
	// service's health and must not open the circuit.
	IsFailure func(error) bool
	// Now is injectable for deterministic tests.
	Now func() time.Time
}

// Breaker is a closed/open/half-open circuit breaker. Safe for concurrent
// use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while Closed
	successes int // probe successes while HalfOpen
	probes    int // in-flight probes while HalfOpen
	openedAt  time.Time
	rejected  uint64
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.SuccessThreshold <= 0 {
		cfg.SuccessThreshold = 1
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.MaxProbes <= 0 {
		cfg.MaxProbes = 1
	}
	if cfg.IsFailure == nil {
		cfg.IsFailure = func(err error) bool {
			return err != nil && Classify(err) == Retryable
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// State returns the current position, applying any due Open→HalfOpen
// transition first.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Rejected returns how many calls ErrOpen has turned away.
func (b *Breaker) Rejected() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// maybeHalfOpen transitions Open→HalfOpen once the cooldown has elapsed.
// Callers hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.probes = 0
		b.successes = 0
	}
}

// Allow reserves permission for one call. It returns ErrOpen when the
// circuit rejects traffic. Every successful Allow MUST be paired with a
// Record call reporting the outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case Open:
		b.rejected++
		return ErrOpen
	case HalfOpen:
		if b.probes >= b.cfg.MaxProbes {
			b.rejected++
			return ErrOpen
		}
		b.probes++
	}
	return nil
}

// Record reports the outcome of a call admitted by Allow.
func (b *Breaker) Record(err error) {
	failed := b.cfg.IsFailure(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if failed {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.trip()
			}
		} else {
			b.failures = 0
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = Closed
			b.failures = 0
			b.successes = 0
			b.probes = 0
		}
	case Open:
		// A straggler finishing after the circuit re-opened; nothing to do.
	}
}

// trip moves to Open. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.successes = 0
	b.probes = 0
}

// Do runs op under the breaker: Allow, op, Record. ErrOpen short-circuits
// without invoking op.
func (b *Breaker) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op(ctx)
	b.Record(err)
	return err
}
