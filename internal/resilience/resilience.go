// Package resilience provides the fault-tolerance primitives the
// distributed layers (federation fan-out, WSA HTTP binding, secure
// channels, third-party agency calls) share: error classification into
// retryable vs terminal, retries with exponential backoff and jitter, and
// a closed/open/half-open circuit breaker.
//
// The paper's vision (§5) demands end-to-end security over *untrusted,
// unreliable* communication layers, and its federation story (§2.1, §5)
// assumes autonomous sources that may be slow, partitioned, or down. A
// security architecture that wedges or dies when a counterparty stalls is
// not enforcing anything — these primitives are what let enforcement hold
// under failure.
package resilience

import (
	"context"
	"errors"
	"net"
)

// Class partitions errors by whether retrying the failed operation could
// plausibly succeed.
type Class int

const (
	// Retryable errors are transient: timeouts, connection resets,
	// temporarily unavailable services. Retrying with backoff may succeed.
	Retryable Class = iota
	// Terminal errors are permanent for this request: malformed input,
	// denied access, unknown keys, cancelled contexts. Retrying burns
	// budget without hope.
	Terminal
)

func (c Class) String() string {
	if c == Terminal {
		return "terminal"
	}
	return "retryable"
}

// classified carries an explicit classification mark through error chains.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// MarkTerminal wraps err so Classify reports it Terminal. A nil err is
// returned unchanged.
func MarkTerminal(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Terminal}
}

// MarkRetryable wraps err so Classify reports it Retryable. A nil err is
// returned unchanged.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Retryable}
}

// Classify decides whether an error is worth retrying. Explicit marks
// (MarkTerminal / MarkRetryable) win; a cancelled or expired context is
// terminal (the caller's deadline is spent — retrying cannot un-spend it);
// everything else, including net.Error timeouts, is presumed transient.
// This default suits transport-layer plumbing, where unknown failures are
// usually the network's fault; application layers mark their permanent
// errors terminal.
func Classify(err error) Class {
	if err == nil {
		return Terminal // nothing to retry
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Terminal
	}
	if errors.Is(err, ErrOpen) {
		// The whole point of an open circuit is failing fast; retrying
		// against it would reintroduce the wait it exists to remove.
		return Terminal
	}
	return Retryable
}

// IsTimeout reports whether err is (or wraps) a deadline-style failure: a
// net.Error timeout or context.DeadlineExceeded.
func IsTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
