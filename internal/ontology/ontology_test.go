package ontology

import (
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
)

// medOntology: Record ⊒ MedicalRecord ⊒ PsychRecord; Person ⊒ Patient.
func medOntology(t *testing.T) *Ontology {
	t.Helper()
	o := New("medical")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.AddClass("Record"))
	must(o.AddClass("MedicalRecord", "Record"))
	must(o.AddClass("PsychRecord", "MedicalRecord"))
	must(o.AddClass("Person"))
	must(o.AddClass("Patient", "Person"))
	must(o.AddProperty("recordOf", "MedicalRecord", "Patient"))
	return o
}

func TestSubsumption(t *testing.T) {
	o := medOntology(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"PsychRecord", "Record", true},
		{"PsychRecord", "MedicalRecord", true},
		{"MedicalRecord", "PsychRecord", false},
		{"Record", "Record", true},
		{"Patient", "Record", false},
		{"Ghost", "Record", false},
		{"Ghost", "Ghost", false},
	}
	for _, c := range cases {
		if got := o.IsSubClassOf(c.a, c.b); got != c.want {
			t.Errorf("IsSubClassOf(%s,%s) = %v", c.a, c.b, got)
		}
	}
	subs := o.Subclasses("Record")
	if len(subs) != 3 || subs[0] != "MedicalRecord" {
		t.Errorf("Subclasses(Record) = %v", subs)
	}
}

func TestCycleRejected(t *testing.T) {
	o := medOntology(t)
	if err := o.AddClass("Record", "PsychRecord"); err == nil {
		t.Error("cycle accepted")
	}
	if err := o.AddClass("X", "X"); err == nil {
		t.Error("self-parent accepted")
	}
}

func TestPropertyValidation(t *testing.T) {
	o := medOntology(t)
	if err := o.AddProperty("p", "Ghost", "Patient"); err == nil {
		t.Error("unknown domain accepted")
	}
	if err := o.AddProperty("p", "Patient", "Ghost"); err == nil {
		t.Error("unknown range accepted")
	}
	d, r, ok := o.Property("recordOf")
	if !ok || d != "MedicalRecord" || r != "Patient" {
		t.Errorf("Property = %s,%s,%v", d, r, ok)
	}
}

func TestLevelsInheritUpward(t *testing.T) {
	o := medOntology(t)
	if err := o.SetLevel("MedicalRecord", rdf.Confidential); err != nil {
		t.Fatal(err)
	}
	if err := o.SetLevel("Ghost", rdf.Secret); err == nil {
		t.Error("level on unknown class accepted")
	}
	// Subclass inherits (at least) the parent's level.
	if got := o.LevelOf("PsychRecord"); got != rdf.Confidential {
		t.Errorf("PsychRecord level = %v", got)
	}
	// Own higher level wins.
	o.SetLevel("PsychRecord", rdf.Secret)
	if got := o.LevelOf("PsychRecord"); got != rdf.Secret {
		t.Errorf("PsychRecord level = %v", got)
	}
	// Parent level unaffected.
	if got := o.LevelOf("MedicalRecord"); got != rdf.Confidential {
		t.Errorf("MedicalRecord level = %v", got)
	}
	if got := o.LevelOf("Person"); got != rdf.Unclassified {
		t.Errorf("Person level = %v", got)
	}
}

func TestToRDFAndInference(t *testing.T) {
	o := medOntology(t)
	s := rdf.NewStore()
	o.ToRDF(s)
	s.Add(rdf.Triple{S: rdf.NewIRI("rec1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("PsychRecord")})
	s.InferRDFS()
	want := rdf.Triple{S: rdf.NewIRI("rec1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("Record")}
	if !s.Has(want) {
		t.Error("taxonomy did not drive RDFS inference")
	}
}

func mediatorFixture(t *testing.T) (*Mediator, *rdf.Store) {
	t.Helper()
	o := medOntology(t)
	s := rdf.NewStore()
	s.AddAll(
		rdf.Triple{S: rdf.NewIRI("rec1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("PsychRecord")},
		rdf.Triple{S: rdf.NewIRI("rec2"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("MedicalRecord")},
		rdf.Triple{S: rdf.NewIRI("p1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("Patient")},
		rdf.Triple{S: rdf.NewIRI("rec1"), P: rdf.NewIRI("recordOf"), O: rdf.NewIRI("p1")},
	)
	return NewMediator(o, s), s
}

func TestConceptPolicySubsumption(t *testing.T) {
	m, _ := mediatorFixture(t)
	// Physicians may read medical records (and thus psych records, a
	// subclass) — policy written once at the MedicalRecord concept.
	if err := m.AddPolicy(&ConceptPolicy{
		Name:    "phys-medrec",
		Subject: policy.SubjectSpec{Roles: []string{"physician"}},
		Concept: "MedicalRecord",
		Sign:    policy.Permit,
	}); err != nil {
		t.Fatal(err)
	}
	phys := &policy.Subject{ID: "d", Roles: []string{"physician"}}
	nurse := &policy.Subject{ID: "n", Roles: []string{"nurse"}}

	if !m.MayAccess(phys, rdf.NewIRI("rec1")) {
		t.Error("physician denied psych record (subclass of permitted concept)")
	}
	if !m.MayAccess(phys, rdf.NewIRI("rec2")) {
		t.Error("physician denied medical record")
	}
	if m.MayAccess(phys, rdf.NewIRI("p1")) {
		t.Error("physician granted patient resource without policy")
	}
	if m.MayAccess(nurse, rdf.NewIRI("rec2")) {
		t.Error("nurse granted without policy")
	}
	got := m.VisibleInstances(phys)
	if len(got) != 2 || got[0].Value != "rec1" || got[1].Value != "rec2" {
		t.Errorf("visible = %v", got)
	}
}

func TestConceptDenyOverridesAtSubclass(t *testing.T) {
	m, _ := mediatorFixture(t)
	m.AddPolicy(&ConceptPolicy{
		Name:    "phys-medrec",
		Subject: policy.SubjectSpec{Roles: []string{"physician"}},
		Concept: "MedicalRecord",
		Sign:    policy.Permit,
	})
	m.AddPolicy(&ConceptPolicy{
		Name:    "psych-locked",
		Subject: policy.SubjectSpec{Roles: []string{"physician"}},
		Concept: "PsychRecord",
		Sign:    policy.Deny,
	})
	phys := &policy.Subject{ID: "d", Roles: []string{"physician"}}
	if m.MayAccess(phys, rdf.NewIRI("rec1")) {
		t.Error("deny at subclass ignored")
	}
	if !m.MayAccess(phys, rdf.NewIRI("rec2")) {
		t.Error("deny leaked to superclass instances")
	}
}

func TestAboutFiltered(t *testing.T) {
	m, _ := mediatorFixture(t)
	m.AddPolicy(&ConceptPolicy{
		Name:    "phys-medrec",
		Subject: policy.SubjectSpec{Roles: []string{"physician"}},
		Concept: "MedicalRecord",
		Sign:    policy.Permit,
	})
	phys := &policy.Subject{ID: "d", Roles: []string{"physician"}}
	about := m.About(phys, rdf.NewIRI("rec1"))
	if len(about) != 2 {
		t.Errorf("about rec1 = %d triples", len(about))
	}
	nurse := &policy.Subject{ID: "n", Roles: []string{"nurse"}}
	if got := m.About(nurse, rdf.NewIRI("rec1")); got != nil {
		t.Errorf("nurse sees %v", got)
	}
}

func TestPolicyUnknownConcept(t *testing.T) {
	m, _ := mediatorFixture(t)
	if err := m.AddPolicy(&ConceptPolicy{Name: "x", Concept: "Ghost"}); err == nil {
		t.Error("policy on unknown concept accepted")
	}
}

func TestAlignmentViolations(t *testing.T) {
	mil := New("military")
	mil.AddClass("Asset")
	mil.AddClass("TroopPosition", "Asset")
	mil.SetLevel("TroopPosition", rdf.Secret)

	civ := New("civilian")
	civ.AddClass("Location")
	civ.AddClass("PointOfInterest", "Location")

	a := NewAlignment(mil, civ)
	if err := a.Map("TroopPosition", "PointOfInterest"); err != nil {
		t.Fatal(err)
	}
	if err := a.Map("Asset", "Location"); err != nil {
		t.Fatal(err)
	}
	if err := a.Map("Ghost", "Location"); err == nil {
		t.Error("unknown source concept accepted")
	}
	if err := a.Map("Asset", "Ghost"); err == nil {
		t.Error("unknown target concept accepted")
	}
	v := a.Violations()
	if len(v) != 1 || v[0].From != "TroopPosition" || v[0].FromLevel != rdf.Secret {
		t.Fatalf("violations = %+v", v)
	}
	// Raising the target's level resolves the violation.
	civ.SetLevel("PointOfInterest", rdf.Secret)
	if got := a.Violations(); len(got) != 0 {
		t.Errorf("violations after fix = %+v", got)
	}
	if to, ok := a.Translate("Asset"); !ok || to != "Location" {
		t.Errorf("Translate = %s,%v", to, ok)
	}
	if _, ok := a.Translate("Nope"); ok {
		t.Error("Translate of unmapped concept")
	}
}
