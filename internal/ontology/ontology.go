// Package ontology implements ontology management with security, covering
// both directions the paper identifies in §3.2: "access to the ontologies
// may depend on the roles of the user, and/or on the credentials he or she
// may possess. On the other hand, one could use ontologies to specify
// security policies. That is, ontologies may help in securing the semantic
// web." — and §5: "ontologies may have security levels attached to them.
// The challenge is how does one use these ontologies for secure
// information integration."
//
// An Ontology is a class taxonomy with properties; concepts carry security
// levels; concept policies grant access by ontological class (covering all
// subclasses); and Alignment checks that mapping concepts across two
// ontologies does not connect a higher-classified concept to a
// lower-classified one (secure interoperation).
package ontology

import (
	"fmt"
	"sort"

	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
)

// Ontology is a named class taxonomy with typed properties and per-concept
// security levels.
type Ontology struct {
	Name string

	classes map[string]bool
	// parents maps a class to its direct superclasses.
	parents map[string][]string
	// levels maps a class to its assigned security level (absent =
	// Unclassified).
	levels map[string]rdf.Level
	// props maps a property name to its (domain, range) classes.
	props map[string][2]string
}

// New returns an empty ontology.
func New(name string) *Ontology {
	return &Ontology{
		Name:    name,
		classes: make(map[string]bool),
		parents: make(map[string][]string),
		levels:  make(map[string]rdf.Level),
		props:   make(map[string][2]string),
	}
}

// AddClass declares a class with the given direct superclasses (declared
// implicitly if new). Cycles are rejected.
func (o *Ontology) AddClass(name string, parents ...string) error {
	o.classes[name] = true
	for _, p := range parents {
		o.classes[p] = true
		if p == name || o.IsSubClassOf(p, name) {
			return fmt.Errorf("ontology: %s ⊑ %s would create a cycle", name, p)
		}
		o.parents[name] = append(o.parents[name], p)
	}
	return nil
}

// HasClass reports whether the class is declared.
func (o *Ontology) HasClass(name string) bool { return o.classes[name] }

// Classes returns the declared classes, sorted.
func (o *Ontology) Classes() []string {
	out := make([]string, 0, len(o.classes))
	for c := range o.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AddProperty declares a property with its domain and range classes.
func (o *Ontology) AddProperty(name, domain, rng string) error {
	if !o.classes[domain] {
		return fmt.Errorf("ontology: property %s: unknown domain %s", name, domain)
	}
	if !o.classes[rng] {
		return fmt.Errorf("ontology: property %s: unknown range %s", name, rng)
	}
	o.props[name] = [2]string{domain, rng}
	return nil
}

// Property returns the (domain, range) of a property.
func (o *Ontology) Property(name string) (domain, rng string, ok bool) {
	dr, ok := o.props[name]
	return dr[0], dr[1], ok
}

// IsSubClassOf reports whether a ⊑ b (reflexive, transitive).
func (o *Ontology) IsSubClassOf(a, b string) bool {
	if a == b {
		return o.classes[a]
	}
	seen := map[string]bool{}
	stack := []string{a}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[c] {
			continue
		}
		seen[c] = true
		for _, p := range o.parents[c] {
			if p == b {
				return true
			}
			stack = append(stack, p)
		}
	}
	return false
}

// Subclasses returns every class c with c ⊑ root, sorted.
func (o *Ontology) Subclasses(root string) []string {
	var out []string
	for c := range o.classes {
		if o.IsSubClassOf(c, root) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// SetLevel attaches a security level to a class.
func (o *Ontology) SetLevel(class string, l rdf.Level) error {
	if !o.classes[class] {
		return fmt.Errorf("ontology: unknown class %s", class)
	}
	o.levels[class] = l
	return nil
}

// LevelOf returns the effective level of a class: the maximum of its own
// and its ancestors' levels — an instance of a sensitive class does not
// become readable by viewing it as its harmless superclass's sibling, but
// subclasses of a sensitive class stay sensitive.
func (o *Ontology) LevelOf(class string) rdf.Level {
	level := o.levels[class]
	seen := map[string]bool{}
	stack := []string{class}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[c] {
			continue
		}
		seen[c] = true
		if l := o.levels[c]; l > level {
			level = l
		}
		stack = append(stack, o.parents[c]...)
	}
	return level
}

// ToRDF materializes the taxonomy into a triple store (rdfs:subClassOf,
// rdfs:domain, rdfs:range), so the rdf machinery (inference, guards) can
// operate on it.
func (o *Ontology) ToRDF(s *rdf.Store) {
	for c := range o.classes {
		s.Add(rdf.Triple{S: rdf.NewIRI(c), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.RDFSClass)})
		for _, p := range o.parents[c] {
			s.Add(rdf.Triple{S: rdf.NewIRI(c), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI(p)})
		}
	}
	for name, dr := range o.props {
		s.AddAll(
			rdf.Triple{S: rdf.NewIRI(name), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.RDFSProperty)},
			rdf.Triple{S: rdf.NewIRI(name), P: rdf.NewIRI(rdf.RDFSDomain), O: rdf.NewIRI(dr[0])},
			rdf.Triple{S: rdf.NewIRI(name), P: rdf.NewIRI(rdf.RDFSRange), O: rdf.NewIRI(dr[1])},
		)
	}
}

// ConceptPolicy grants or denies access to the instances of an ontology
// concept — "one could use ontologies to specify security policies". The
// policy covers every subclass of the concept.
type ConceptPolicy struct {
	Name    string
	Subject policy.SubjectSpec
	Concept string
	Sign    policy.Sign
}

// Mediator evaluates concept policies over an RDF instance store: it knows
// which resources are instances of which concepts (via rdf:type plus the
// ontology's subsumption) and filters triples about them.
type Mediator struct {
	onto     *Ontology
	store    *rdf.Store
	policies []*ConceptPolicy
}

// NewMediator wraps an ontology and an instance store.
func NewMediator(o *Ontology, s *rdf.Store) *Mediator {
	return &Mediator{onto: o, store: s}
}

// AddPolicy installs a concept policy.
func (m *Mediator) AddPolicy(p *ConceptPolicy) error {
	if !m.onto.HasClass(p.Concept) {
		return fmt.Errorf("ontology: policy %s: unknown concept %s", p.Name, p.Concept)
	}
	m.policies = append(m.policies, p)
	return nil
}

// conceptsOf returns the declared classes of a resource (direct rdf:type
// arcs only; subsumption happens in the policy check).
func (m *Mediator) conceptsOf(res rdf.Term) []string {
	var out []string
	for _, t := range m.store.Query(rdf.Pattern{S: rdf.T(res), P: rdf.T(rdf.NewIRI(rdf.RDFType))}) {
		if t.O.Kind == rdf.IRI {
			out = append(out, t.O.Value)
		}
	}
	return out
}

// MayAccess decides whether the subject may access resources of the given
// direct class set: deny policies win; otherwise any applicable permit
// grants; default deny (closed).
func (m *Mediator) mayAccessClasses(s *policy.Subject, classes []string) bool {
	permitted := false
	for _, p := range m.policies {
		applies := false
		for _, c := range classes {
			if m.onto.IsSubClassOf(c, p.Concept) {
				applies = true
				break
			}
		}
		if !applies || !p.Subject.Matches(s, nil) {
			continue
		}
		if p.Sign == policy.Deny {
			return false
		}
		permitted = true
	}
	return permitted
}

// MayAccess decides access to one resource.
func (m *Mediator) MayAccess(s *policy.Subject, res rdf.Term) bool {
	classes := m.conceptsOf(res)
	if len(classes) == 0 {
		return false
	}
	return m.mayAccessClasses(s, classes)
}

// VisibleInstances returns the typed resources the subject may access,
// sorted by IRI.
func (m *Mediator) VisibleInstances(s *policy.Subject) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, t := range m.store.Query(rdf.Pattern{P: rdf.T(rdf.NewIRI(rdf.RDFType))}) {
		if seen[t.S] {
			continue
		}
		seen[t.S] = true
		if m.MayAccess(s, t.S) {
			out = append(out, t.S)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// About returns the triples whose subject is the resource, filtered by the
// concept policies.
func (m *Mediator) About(s *policy.Subject, res rdf.Term) []rdf.Triple {
	if !m.MayAccess(s, res) {
		return nil
	}
	return m.store.Query(rdf.Pattern{S: rdf.T(res)})
}

// Alignment maps concepts of one ontology onto another for information
// integration. Violations finds pairs that would leak: a source concept
// mapped to a target concept with a strictly lower security level.
type Alignment struct {
	From  *Ontology
	To    *Ontology
	pairs map[string]string
}

// NewAlignment returns an empty alignment between two ontologies.
func NewAlignment(from, to *Ontology) *Alignment {
	return &Alignment{From: from, To: to, pairs: make(map[string]string)}
}

// Map aligns a source concept with a target concept.
func (a *Alignment) Map(from, to string) error {
	if !a.From.HasClass(from) {
		return fmt.Errorf("ontology: alignment: unknown source concept %s", from)
	}
	if !a.To.HasClass(to) {
		return fmt.Errorf("ontology: alignment: unknown target concept %s", to)
	}
	a.pairs[from] = to
	return nil
}

// Violation is an alignment pair that would declassify data.
type Violation struct {
	From      string
	To        string
	FromLevel rdf.Level
	ToLevel   rdf.Level
}

// Violations returns the alignment pairs where the source concept's
// effective level exceeds the target's — the integration would let data
// flow from a higher classification to a lower one.
func (a *Alignment) Violations() []Violation {
	var out []Violation
	for from, to := range a.pairs {
		fl, tl := a.From.LevelOf(from), a.To.LevelOf(to)
		if fl > tl {
			out = append(out, Violation{From: from, To: to, FromLevel: fl, ToLevel: tl})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Translate maps a source concept to its aligned target concept.
func (a *Alignment) Translate(from string) (string, bool) {
	to, ok := a.pairs[from]
	return to, ok
}
