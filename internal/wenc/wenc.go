// Package wenc provides the symmetric encryption primitives behind the
// paper's "secure broadcasting" of documents (§4.1): "the service provider
// encrypts the entries to be published ... according to its access control
// policies: all the entry portions to which the same policies apply are
// encrypted with the same key", with the provider "distributing keys to the
// service requestors in such a way that each service requestor receives all
// and only the keys corresponding to the information it is entitled to
// access."
//
// This package supplies keys, AEAD sealing (AES-256-GCM) and key rings; the
// policy-driven grouping itself lives in internal/authorx.
package wenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"sort"
)

// KeySize is the symmetric key size in bytes (AES-256).
const KeySize = 32

// Key is a symmetric content-encryption key.
type Key []byte

// NewKey generates a fresh random key.
func NewKey() (Key, error) {
	k := make(Key, KeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("wenc: generate key: %w", err)
	}
	return k, nil
}

// MustNewKey is NewKey that panics on error (entropy failure).
func MustNewKey() Key {
	k, err := NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// Seal encrypts plaintext under the key with AES-256-GCM, binding the
// additional data aad. The nonce is prepended to the returned ciphertext.
func Seal(key Key, plaintext, aad []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("wenc: nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, aad), nil
}

// Open decrypts a Seal ciphertext, authenticating aad.
func Open(key Key, ciphertext, aad []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < gcm.NonceSize() {
		return nil, fmt.Errorf("wenc: ciphertext shorter than nonce")
	}
	nonce, body := ciphertext[:gcm.NonceSize()], ciphertext[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, body, aad)
	if err != nil {
		return nil, fmt.Errorf("wenc: open: %w", err)
	}
	return pt, nil
}

func newGCM(key Key) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("wenc: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("wenc: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// KeyRing holds the keys a subject has been handed, indexed by key
// identifier (in authorx, the policy-configuration class).
type KeyRing struct {
	keys map[string]Key
}

// NewKeyRing returns an empty key ring.
func NewKeyRing() *KeyRing { return &KeyRing{keys: make(map[string]Key)} }

// Add stores a key under the identifier.
func (r *KeyRing) Add(id string, k Key) { r.keys[id] = k }

// Get returns the key stored under the identifier.
func (r *KeyRing) Get(id string) (Key, bool) {
	k, ok := r.keys[id]
	return k, ok
}

// Len returns the number of keys held.
func (r *KeyRing) Len() int { return len(r.keys) }

// IDs returns the sorted key identifiers.
func (r *KeyRing) IDs() []string {
	out := make([]string, 0, len(r.keys))
	for id := range r.keys {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
