package wenc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	k := MustNewKey()
	ct, err := Seal(k, []byte("secret"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Open(k, ct, []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "secret" {
		t.Errorf("roundtrip = %q", pt)
	}
}

func TestOpenWrongKey(t *testing.T) {
	k1, k2 := MustNewKey(), MustNewKey()
	ct, _ := Seal(k1, []byte("secret"), nil)
	if _, err := Open(k2, ct, nil); err == nil {
		t.Error("wrong key decrypts")
	}
}

func TestOpenWrongAAD(t *testing.T) {
	k := MustNewKey()
	ct, _ := Seal(k, []byte("secret"), []byte("doc1/node5"))
	if _, err := Open(k, ct, []byte("doc1/node6")); err == nil {
		t.Error("AAD not bound")
	}
}

func TestOpenTamperedCiphertext(t *testing.T) {
	k := MustNewKey()
	ct, _ := Seal(k, []byte("secret"), nil)
	ct[len(ct)-1] ^= 0x01
	if _, err := Open(k, ct, nil); err == nil {
		t.Error("tampered ciphertext decrypts")
	}
}

func TestOpenTruncated(t *testing.T) {
	k := MustNewKey()
	if _, err := Open(k, []byte{1, 2, 3}, nil); err == nil {
		t.Error("truncated ciphertext accepted")
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := Seal(Key("short"), []byte("x"), nil); err == nil {
		t.Error("short key accepted")
	}
	if _, err := Open(Key("short"), []byte("x"), nil); err == nil {
		t.Error("short key accepted for open")
	}
}

func TestNonceFreshness(t *testing.T) {
	k := MustNewKey()
	ct1, _ := Seal(k, []byte("same"), nil)
	ct2, _ := Seal(k, []byte("same"), nil)
	if bytes.Equal(ct1, ct2) {
		t.Error("two seals of same plaintext identical: nonce reuse")
	}
}

func TestKeyRing(t *testing.T) {
	r := NewKeyRing()
	k1, k2 := MustNewKey(), MustNewKey()
	r.Add("class1", k1)
	r.Add("class2", k2)
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	got, ok := r.Get("class1")
	if !ok || !bytes.Equal(got, k1) {
		t.Error("Get(class1) wrong")
	}
	if _, ok := r.Get("class9"); ok {
		t.Error("missing key found")
	}
	ids := r.IDs()
	if len(ids) != 2 || ids[0] != "class1" || ids[1] != "class2" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestQuickRoundTripArbitraryPayloads(t *testing.T) {
	k := MustNewKey()
	f := func(pt, aad []byte) bool {
		ct, err := Seal(k, pt, aad)
		if err != nil {
			return false
		}
		got, err := Open(k, ct, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
