// Package rbac implements role-based access control, the first of the two
// "more flexible ways of qualifying subjects" the paper calls for in §3.1
// (the other, credentials, lives in internal/credential).
//
// The model follows the NIST RBAC standard families: core RBAC (users,
// roles, permissions, sessions), hierarchical RBAC (role inheritance with
// cycle detection), and constrained RBAC (static and dynamic separation of
// duty). Permission review operations are provided for administration.
package rbac

import (
	"fmt"
	"sort"
	"sync"
)

// Permission is an (operation, object) pair, e.g. ("read", "/hospital/patient").
type Permission struct {
	Op     string
	Object string
}

func (p Permission) String() string { return p.Op + " " + p.Object }

// System is an RBAC policy base plus its live sessions. All methods are
// safe for concurrent use.
type System struct {
	mu sync.RWMutex

	roles map[string]bool
	users map[string]bool

	// userRoles: user -> assigned roles.
	userRoles map[string]map[string]bool
	// rolePerms: role -> directly granted permissions.
	rolePerms map[string]map[Permission]bool
	// parents: junior role -> senior roles that inherit its permissions.
	// We store the conventional direction: inherits[senior][junior] = true,
	// meaning senior inherits junior's permissions.
	inherits map[string]map[string]bool

	// ssd holds static separation-of-duty constraints: no user may be
	// assigned n or more roles from the set.
	ssd []sodConstraint
	// dsd holds dynamic separation-of-duty constraints: no session may
	// activate n or more roles from the set.
	dsd []sodConstraint

	sessions map[string]*Session
	nextSess int
}

type sodConstraint struct {
	name  string
	roles map[string]bool
	n     int
}

// Session is an activated subset of a user's roles.
type Session struct {
	ID     string
	User   string
	active map[string]bool
	sys    *System
}

// NewSystem returns an empty RBAC system.
func NewSystem() *System {
	return &System{
		roles:     make(map[string]bool),
		users:     make(map[string]bool),
		userRoles: make(map[string]map[string]bool),
		rolePerms: make(map[string]map[Permission]bool),
		inherits:  make(map[string]map[string]bool),
		sessions:  make(map[string]*Session),
	}
}

// AddRole registers a role. Adding an existing role is a no-op.
func (s *System) AddRole(role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roles[role] = true
}

// AddUser registers a user.
func (s *System) AddUser(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[user] = true
}

// Roles returns all roles, sorted.
func (s *System) Roles() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.roles))
	for r := range s.roles {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// AssignUser assigns a role to a user, enforcing static separation of duty.
func (s *System) AssignUser(user, role string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[user] {
		return fmt.Errorf("rbac: unknown user %q", user)
	}
	if !s.roles[role] {
		return fmt.Errorf("rbac: unknown role %q", role)
	}
	cur := s.userRoles[user]
	if cur == nil {
		cur = make(map[string]bool)
		s.userRoles[user] = cur
	}
	cur[role] = true
	if c := s.violatedSoD(s.ssd, cur); c != "" {
		delete(cur, role)
		return fmt.Errorf("rbac: assigning %q to %q violates SSD constraint %q", role, user, c)
	}
	return nil
}

// DeassignUser removes a role assignment and deactivates it in any session.
func (s *System) DeassignUser(user, role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.userRoles[user], role)
	for _, sess := range s.sessions {
		if sess.User == user {
			delete(sess.active, role)
		}
	}
}

// GrantPermission grants a permission directly to a role.
func (s *System) GrantPermission(role string, p Permission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.roles[role] {
		return fmt.Errorf("rbac: unknown role %q", role)
	}
	m := s.rolePerms[role]
	if m == nil {
		m = make(map[Permission]bool)
		s.rolePerms[role] = m
	}
	m[p] = true
	return nil
}

// RevokePermission removes a direct permission from a role.
func (s *System) RevokePermission(role string, p Permission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.rolePerms[role], p)
}

// AddInheritance makes senior inherit all permissions of junior
// (senior ≥ junior in the role hierarchy). Cycles are rejected.
func (s *System) AddInheritance(senior, junior string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.roles[senior] {
		return fmt.Errorf("rbac: unknown role %q", senior)
	}
	if !s.roles[junior] {
		return fmt.Errorf("rbac: unknown role %q", junior)
	}
	if senior == junior || s.reachable(junior, senior) {
		return fmt.Errorf("rbac: inheritance %s ≥ %s would create a cycle", senior, junior)
	}
	m := s.inherits[senior]
	if m == nil {
		m = make(map[string]bool)
		s.inherits[senior] = m
	}
	m[junior] = true
	return nil
}

// reachable reports whether from inherits (transitively) to.
// Caller must hold the lock.
func (s *System) reachable(from, to string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r == to {
			return true
		}
		if seen[r] {
			continue
		}
		seen[r] = true
		for j := range s.inherits[r] {
			stack = append(stack, j)
		}
	}
	return false
}

// juniorsOf returns role plus every role it transitively inherits from.
// Caller must hold the lock.
func (s *System) juniorsOf(role string) map[string]bool {
	out := map[string]bool{}
	stack := []string{role}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[r] {
			continue
		}
		out[r] = true
		for j := range s.inherits[r] {
			stack = append(stack, j)
		}
	}
	return out
}

// AddSSD adds a static separation-of-duty constraint: no user may hold n or
// more of the given roles.
func (s *System) AddSSD(name string, roles []string, n int) error {
	return s.addSoD(&s.ssd, name, roles, n)
}

// AddDSD adds a dynamic separation-of-duty constraint: no session may
// activate n or more of the given roles.
func (s *System) AddDSD(name string, roles []string, n int) error {
	return s.addSoD(&s.dsd, name, roles, n)
}

func (s *System) addSoD(dst *[]sodConstraint, name string, roles []string, n int) error {
	if n < 2 {
		return fmt.Errorf("rbac: SoD constraint %q: cardinality must be >= 2", name)
	}
	if len(roles) < n {
		return fmt.Errorf("rbac: SoD constraint %q: needs at least %d roles", name, n)
	}
	set := make(map[string]bool, len(roles))
	for _, r := range roles {
		set[r] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	*dst = append(*dst, sodConstraint{name: name, roles: set, n: n})
	return nil
}

// violatedSoD returns the name of the first constraint in cs violated by
// holding/activating the given role set, or "".
func (s *System) violatedSoD(cs []sodConstraint, held map[string]bool) string {
	for _, c := range cs {
		count := 0
		for r := range held {
			if c.roles[r] {
				count++
			}
		}
		if count >= c.n {
			return c.name
		}
	}
	return ""
}

// CreateSession opens a session for the user with no roles active.
func (s *System) CreateSession(user string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[user] {
		return nil, fmt.Errorf("rbac: unknown user %q", user)
	}
	s.nextSess++
	sess := &Session{
		ID:     fmt.Sprintf("s%d", s.nextSess),
		User:   user,
		active: make(map[string]bool),
		sys:    s,
	}
	s.sessions[sess.ID] = sess
	return sess, nil
}

// CloseSession drops the session.
func (s *System) CloseSession(sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sess.ID)
}

// Activate adds a role to the session's active set, enforcing assignment
// and dynamic separation of duty.
func (sess *Session) Activate(role string) error {
	s := sess.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.userRoles[sess.User][role] {
		return fmt.Errorf("rbac: role %q not assigned to user %q", role, sess.User)
	}
	sess.active[role] = true
	if c := s.violatedSoD(s.dsd, sess.active); c != "" {
		delete(sess.active, role)
		return fmt.Errorf("rbac: activating %q violates DSD constraint %q", role, c)
	}
	return nil
}

// Deactivate removes a role from the session's active set.
func (sess *Session) Deactivate(role string) {
	s := sess.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(sess.active, role)
}

// ActiveRoles returns the sorted active roles of the session.
func (sess *Session) ActiveRoles() []string {
	s := sess.sys
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(sess.active))
	for r := range sess.active {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// CheckAccess reports whether the session may perform the operation on the
// object: some active role (or a role it inherits) must hold the
// permission.
func (sess *Session) CheckAccess(op, object string) bool {
	s := sess.sys
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := Permission{Op: op, Object: object}
	for r := range sess.active {
		for j := range s.juniorsOf(r) {
			if s.rolePerms[j][p] {
				return true
			}
		}
	}
	return false
}

// RolePermissions returns the effective permissions of a role, including
// inherited ones, sorted.
func (s *System) RolePermissions(role string) []Permission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[Permission]bool{}
	for j := range s.juniorsOf(role) {
		for p := range s.rolePerms[j] {
			set[p] = true
		}
	}
	out := make([]Permission, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// UserRoles returns the roles assigned to a user, sorted.
func (s *System) UserRoles(user string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.userRoles[user]))
	for r := range s.userRoles[user] {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// AuthorizedUsers returns the users that hold the role, directly, sorted.
func (s *System) AuthorizedUsers(role string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for u, rs := range s.userRoles {
		if rs[role] {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}
