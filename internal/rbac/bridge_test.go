package rbac

import (
	"testing"

	"webdbsec/internal/credential"
)

func TestSubjectForUsesActiveRolesOnly(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("alice", "physician"))
	mustNoErr(t, s.AssignUser("alice", "nurse"))
	sess, err := s.CreateSession("alice")
	mustNoErr(t, err)
	mustNoErr(t, sess.Activate("physician"))

	subj := SubjectFor(sess, nil)
	if subj.ID != "alice" {
		t.Errorf("id = %q", subj.ID)
	}
	if len(subj.Roles) != 1 || subj.Roles[0] != "physician" {
		t.Errorf("roles = %v, want active roles only", subj.Roles)
	}
	if !subj.HasRole("physician") || subj.HasRole("nurse") {
		t.Error("role predicate wrong")
	}
	w := credential.NewWallet("alice")
	subj = SubjectFor(sess, w)
	if subj.Wallet != w {
		t.Error("wallet not attached")
	}
}
