package rbac

import (
	"webdbsec/internal/credential"
	"webdbsec/internal/policy"
)

// SubjectFor bridges an RBAC session into the policy layer's subject
// representation: the subject's roles are the session's ACTIVE roles (not
// everything assigned — least privilege), optionally carrying a credential
// wallet for policies that qualify subjects both ways.
func SubjectFor(sess *Session, wallet *credential.Wallet) *policy.Subject {
	return &policy.Subject{
		ID:     sess.User,
		Roles:  sess.ActiveRoles(),
		Wallet: wallet,
	}
}
