package rbac

import (
	"fmt"
	"sync"
	"testing"
)

func newHospital(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	for _, r := range []string{"employee", "nurse", "physician", "chief"} {
		s.AddRole(r)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		s.AddUser(u)
	}
	// chief ≥ physician ≥ employee; nurse ≥ employee.
	mustNoErr(t, s.AddInheritance("physician", "employee"))
	mustNoErr(t, s.AddInheritance("chief", "physician"))
	mustNoErr(t, s.AddInheritance("nurse", "employee"))
	mustNoErr(t, s.GrantPermission("employee", Permission{"read", "/hospital"}))
	mustNoErr(t, s.GrantPermission("physician", Permission{"read", "/hospital/patient"}))
	mustNoErr(t, s.GrantPermission("chief", Permission{"write", "/hospital/policy"}))
	return s
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionAccessWithInheritance(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("alice", "chief"))
	sess, err := s.CreateSession("alice")
	mustNoErr(t, err)
	mustNoErr(t, sess.Activate("chief"))

	for _, c := range []struct {
		op, obj string
		want    bool
	}{
		{"read", "/hospital", true},         // inherited via physician->employee
		{"read", "/hospital/patient", true}, // inherited via physician
		{"write", "/hospital/policy", true}, // direct
		{"write", "/hospital/patient", false},
	} {
		if got := sess.CheckAccess(c.op, c.obj); got != c.want {
			t.Errorf("CheckAccess(%s,%s) = %v, want %v", c.op, c.obj, got, c.want)
		}
	}
}

func TestNoAccessWithoutActivation(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("bob", "physician"))
	sess, err := s.CreateSession("bob")
	mustNoErr(t, err)
	if sess.CheckAccess("read", "/hospital") {
		t.Error("access granted with no active roles")
	}
	mustNoErr(t, sess.Activate("physician"))
	if !sess.CheckAccess("read", "/hospital") {
		t.Error("access denied after activation")
	}
	sess.Deactivate("physician")
	if sess.CheckAccess("read", "/hospital") {
		t.Error("access survives deactivation")
	}
}

func TestActivateUnassignedRole(t *testing.T) {
	s := newHospital(t)
	sess, err := s.CreateSession("carol")
	mustNoErr(t, err)
	if err := sess.Activate("chief"); err == nil {
		t.Error("activated a role never assigned")
	}
}

func TestInheritanceCycleRejected(t *testing.T) {
	s := newHospital(t)
	if err := s.AddInheritance("employee", "chief"); err == nil {
		t.Error("cycle employee>=chief accepted (chief already >= employee)")
	}
	if err := s.AddInheritance("chief", "chief"); err == nil {
		t.Error("self-inheritance accepted")
	}
}

func TestUnknownEntities(t *testing.T) {
	s := NewSystem()
	s.AddRole("r")
	s.AddUser("u")
	if err := s.AssignUser("ghost", "r"); err == nil {
		t.Error("assigned to unknown user")
	}
	if err := s.AssignUser("u", "ghost"); err == nil {
		t.Error("assigned unknown role")
	}
	if err := s.GrantPermission("ghost", Permission{"read", "x"}); err == nil {
		t.Error("granted to unknown role")
	}
	if _, err := s.CreateSession("ghost"); err == nil {
		t.Error("session for unknown user")
	}
	if err := s.AddInheritance("ghost", "r"); err == nil {
		t.Error("inheritance with unknown senior")
	}
	if err := s.AddInheritance("r", "ghost"); err == nil {
		t.Error("inheritance with unknown junior")
	}
}

func TestStaticSeparationOfDuty(t *testing.T) {
	s := NewSystem()
	s.AddRole("cashier")
	s.AddRole("auditor")
	s.AddUser("mallory")
	mustNoErr(t, s.AddSSD("cashier-auditor", []string{"cashier", "auditor"}, 2))
	mustNoErr(t, s.AssignUser("mallory", "cashier"))
	if err := s.AssignUser("mallory", "auditor"); err == nil {
		t.Fatal("SSD violation accepted")
	}
	// The failed assignment must not stick.
	if rs := s.UserRoles("mallory"); len(rs) != 1 || rs[0] != "cashier" {
		t.Errorf("roles after failed assign = %v", rs)
	}
}

func TestDynamicSeparationOfDuty(t *testing.T) {
	s := NewSystem()
	s.AddRole("submitter")
	s.AddRole("approver")
	s.AddUser("dave")
	mustNoErr(t, s.AddDSD("submit-approve", []string{"submitter", "approver"}, 2))
	mustNoErr(t, s.AssignUser("dave", "submitter"))
	mustNoErr(t, s.AssignUser("dave", "approver"))
	sess, err := s.CreateSession("dave")
	mustNoErr(t, err)
	mustNoErr(t, sess.Activate("submitter"))
	if err := sess.Activate("approver"); err == nil {
		t.Fatal("DSD violation accepted")
	}
	if got := sess.ActiveRoles(); len(got) != 1 || got[0] != "submitter" {
		t.Errorf("active roles = %v", got)
	}
	// Deactivate, then the other role becomes activatable.
	sess.Deactivate("submitter")
	mustNoErr(t, sess.Activate("approver"))
}

func TestSoDConstraintValidation(t *testing.T) {
	s := NewSystem()
	if err := s.AddSSD("bad", []string{"a", "b"}, 1); err == nil {
		t.Error("cardinality 1 accepted")
	}
	if err := s.AddSSD("bad", []string{"a"}, 2); err == nil {
		t.Error("constraint with fewer roles than n accepted")
	}
}

func TestPermissionReview(t *testing.T) {
	s := newHospital(t)
	perms := s.RolePermissions("chief")
	if len(perms) != 3 {
		t.Fatalf("chief permissions = %v, want 3", perms)
	}
	perms = s.RolePermissions("nurse")
	if len(perms) != 1 || perms[0].Object != "/hospital" {
		t.Fatalf("nurse permissions = %v", perms)
	}
	mustNoErr(t, s.AssignUser("alice", "chief"))
	mustNoErr(t, s.AssignUser("bob", "chief"))
	if got := s.AuthorizedUsers("chief"); len(got) != 2 || got[0] != "alice" {
		t.Errorf("authorized users = %v", got)
	}
}

func TestRevokePermission(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("bob", "physician"))
	sess, _ := s.CreateSession("bob")
	mustNoErr(t, sess.Activate("physician"))
	if !sess.CheckAccess("read", "/hospital/patient") {
		t.Fatal("expected access before revoke")
	}
	s.RevokePermission("physician", Permission{"read", "/hospital/patient"})
	if sess.CheckAccess("read", "/hospital/patient") {
		t.Error("access survives revoke")
	}
}

func TestDeassignKillsSessionRole(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("bob", "physician"))
	sess, _ := s.CreateSession("bob")
	mustNoErr(t, sess.Activate("physician"))
	s.DeassignUser("bob", "physician")
	if sess.CheckAccess("read", "/hospital") {
		t.Error("access survives deassignment")
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := newHospital(t)
	mustNoErr(t, s.AssignUser("alice", "physician"))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := s.CreateSession("alice")
			if err != nil {
				errs <- err
				return
			}
			if err := sess.Activate("physician"); err != nil {
				errs <- err
				return
			}
			if !sess.CheckAccess("read", "/hospital/patient") {
				errs <- fmt.Errorf("concurrent access denied")
			}
			s.CloseSession(sess)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRolesSorted(t *testing.T) {
	s := NewSystem()
	s.AddRole("zeta")
	s.AddRole("alpha")
	s.AddRole("alpha") // duplicate is a no-op
	got := s.Roles()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Roles() = %v", got)
	}
}
