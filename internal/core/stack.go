package core

import (
	"fmt"

	"webdbsec/internal/ontology"
	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/xmldoc"
)

// This file implements §5: "For the semantic web to be secure all of its
// components have to be secure ... Security cuts across all layers and
// this is a challenge. That is, we need security for each of the layer and
// we must also ensure secure interoperability."
//
// The stack's layers, bottom-up: secure transport (internal/secchan,
// composed by callers around the stack), secure XML (accessctl views),
// secure RDF (rdf.Guard), secure ontologies/interoperation
// (ontology.Mediator and Alignment), and the inference problem at the top
// (inference.Controller, wired in by SecureWebDB).
//
// The flexible security policy is the paper's closing §5 idea: "we cannot
// also make the system inefficient if we must guarantee one hundred
// percent security at all times. What is needed is a flexible security
// policy. During some situations we may need one hundred percent security
// while during some other situations say thirty percent security
// (whatever that means) may be sufficient." Strength makes "whatever that
// means" concrete: a percentage maps to which layers actually enforce.

// Strength is a security strength percentage in [0, 100].
type Strength int

// LayerConfig says which protections a given strength enforces.
type LayerConfig struct {
	// VerifyCredentials: check credential signatures during subject
	// qualification (below, policies match unverified claims).
	VerifyCredentials bool
	// EnforceXMLViews: compute pruned views (below, whole documents flow
	// to privilege holders).
	EnforceXMLViews bool
	// EnforceRDFLevels: apply semantic classification rules.
	EnforceRDFLevels bool
	// InferenceControl: run the inference controller on releases.
	InferenceControl bool
	// EncryptTransport: require the secure channel instead of plaintext.
	EncryptTransport bool
}

// Profile maps a strength to its layer configuration. Protections switch
// on in order of the damage their absence causes — transport first (the
// paper's "one cannot just have secure TCP/IP built on untrusted
// communication layers" makes it the floor), inference control last (it is
// the most expensive and the subtlest threat).
func Profile(s Strength) LayerConfig {
	if s < 0 {
		s = 0
	}
	if s > 100 {
		s = 100
	}
	return LayerConfig{
		EncryptTransport:  s >= 20,
		EnforceXMLViews:   s >= 40,
		VerifyCredentials: s >= 60,
		EnforceRDFLevels:  s >= 80,
		InferenceControl:  s >= 100,
	}
}

// XMLEngine is the slice of the access-control engine the stack's XML
// layer needs. Both *accessctl.Engine and the caching
// *decisioncache.Engine satisfy it; the latter serves repeated requests by
// the same role class from its decision cache.
type XMLEngine interface {
	View(docName string, s *policy.Subject, priv policy.Privilege) *xmldoc.Document
	Store() *xmldoc.Store
	Base() *policy.Base
}

// SemanticStack wires the XML, RDF and ontology layers under one flexible
// policy.
type SemanticStack struct {
	XML      XMLEngine
	RDF      *rdf.Guard
	Ontology *ontology.Mediator
	strength Strength
	config   LayerConfig
}

// NewSemanticStack builds a stack at full strength.
func NewSemanticStack(xml XMLEngine, guard *rdf.Guard, med *ontology.Mediator) *SemanticStack {
	st := &SemanticStack{XML: xml, RDF: guard, Ontology: med}
	st.SetStrength(100)
	return st
}

// SetStrength reconfigures every layer for the new situation.
func (st *SemanticStack) SetStrength(s Strength) {
	st.strength = s
	st.config = Profile(s)
}

// Strength returns the active strength.
func (st *SemanticStack) Strength() Strength { return st.strength }

// Config returns the active layer configuration.
func (st *SemanticStack) Config() LayerConfig { return st.config }

// XMLView serves a document under the active strength: a pruned view when
// XML enforcement is on, the whole document (for any subject holding at
// least one applicable permit) when it is off.
func (st *SemanticStack) XMLView(docName string, s *policy.Subject) (*xmldoc.Document, error) {
	if st.XML == nil {
		return nil, fmt.Errorf("core: stack has no XML layer")
	}
	if st.config.EnforceXMLViews {
		v := st.XML.View(docName, s, policy.Read)
		if v == nil {
			return nil, fmt.Errorf("core: access denied to %s", docName)
		}
		return v, nil
	}
	doc, ok := st.XML.Store().Get(docName)
	if !ok {
		return nil, fmt.Errorf("core: unknown document %s", docName)
	}
	// Reduced strength still requires SOME applicable permit — it relaxes
	// granularity, not authentication.
	if len(st.XML.Base().Applicable(st.XML.Store(), docName, s, policy.Read)) == 0 {
		return nil, fmt.Errorf("core: access denied to %s", docName)
	}
	return doc, nil
}

// RDFQuery serves a triple query under the active strength: guarded when
// RDF enforcement is on, raw store otherwise.
func (st *SemanticStack) RDFQuery(c *rdf.Clearance, p rdf.Pattern) []rdf.Triple {
	if st.RDF == nil {
		return nil
	}
	if st.config.EnforceRDFLevels {
		return st.RDF.Query(c, p)
	}
	return st.RDF.Store().Query(p)
}

// CheckInteroperation verifies an ontology alignment before data flows
// across it — §5's "the challenge is how does one use these ontologies for
// secure information integration". It fails on any level violation
// regardless of strength: declassification-by-integration is never
// acceptable.
func (st *SemanticStack) CheckInteroperation(a *ontology.Alignment) error {
	if vs := a.Violations(); len(vs) > 0 {
		return fmt.Errorf("core: alignment declassifies %d concept(s), first: %s (%v) -> %s (%v)",
			len(vs), vs[0].From, vs[0].FromLevel, vs[0].To, vs[0].ToLevel)
	}
	return nil
}
