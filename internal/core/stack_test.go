package core

import (
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/ontology"
	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/xmldoc"
)

func TestProfileMonotone(t *testing.T) {
	// Higher strength never switches a protection off.
	count := func(c LayerConfig) int {
		n := 0
		for _, b := range []bool{
			c.VerifyCredentials, c.EnforceXMLViews, c.EnforceRDFLevels,
			c.InferenceControl, c.EncryptTransport,
		} {
			if b {
				n++
			}
		}
		return n
	}
	prev := -1
	for s := 0; s <= 100; s += 10 {
		n := count(Profile(Strength(s)))
		if n < prev {
			t.Fatalf("strength %d enables fewer layers than weaker setting", s)
		}
		prev = n
	}
	if count(Profile(0)) != 0 {
		t.Error("strength 0 enforces something")
	}
	if count(Profile(100)) != 5 {
		t.Error("strength 100 does not enforce everything")
	}
	// Clamping.
	if Profile(-5) != Profile(0) || Profile(150) != Profile(100) {
		t.Error("strength not clamped")
	}
}

func stackFixture(t *testing.T) *SemanticStack {
	t.Helper()
	store := xmldoc.NewStore()
	doc := xmldoc.MustParseString("r.xml", `<r><pub>ok</pub><sec>hidden</sec></r>`)
	store.Put(doc)
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "pub-only",
		Subject: policy.SubjectSpec{IDs: []string{"u"}},
		Object:  policy.ObjectSpec{Doc: "r.xml", Path: "/r/pub"},
		Priv:    policy.Read,
		Sign:    policy.Permit,
		Prop:    policy.Cascade,
	})
	xml := accessctl.NewEngine(store, base)

	rstore := rdf.NewStore()
	rstore.AddAll(
		rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewIRI("open")},
		rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("loc"), O: rdf.NewIRI("grid")},
	)
	guard := rdf.NewGuard(rstore)
	guard.AddClassRule(&rdf.ClassRule{Pattern: rdf.Pattern{P: rdf.T(rdf.NewIRI("loc"))}, Level: rdf.Secret})

	onto := ontology.New("o")
	onto.AddClass("Thing")
	med := ontology.NewMediator(onto, rstore)
	return NewSemanticStack(xml, guard, med)
}

func TestXMLViewStrengthDependent(t *testing.T) {
	st := stackFixture(t)
	u := &policy.Subject{ID: "u"}

	st.SetStrength(100)
	v, err := st.XMLView("r.xml", u)
	if err != nil {
		t.Fatal(err)
	}
	if len(xmldoc.MustCompilePath("/r/sec").Select(v)) != 0 {
		t.Error("secret element in full-strength view")
	}
	// At strength 30 (below the XML-view threshold) the whole document
	// flows to permit holders.
	st.SetStrength(30)
	v, err = st.XMLView("r.xml", u)
	if err != nil {
		t.Fatal(err)
	}
	if len(xmldoc.MustCompilePath("/r/sec").Select(v)) != 1 {
		t.Error("reduced strength still pruned")
	}
	// But strangers are still rejected.
	if _, err := st.XMLView("r.xml", &policy.Subject{ID: "stranger"}); err == nil {
		t.Error("stranger served at reduced strength")
	}
	if _, err := st.XMLView("ghost.xml", u); err == nil {
		t.Error("unknown doc served")
	}
}

func TestRDFQueryStrengthDependent(t *testing.T) {
	st := stackFixture(t)
	low := rdf.NewClearance(&policy.Subject{ID: "u"}, rdf.Unclassified)

	st.SetStrength(100)
	got := st.RDFQuery(low, rdf.Pattern{})
	if len(got) != 1 {
		t.Errorf("full strength: %d triples, want 1", len(got))
	}
	st.SetStrength(50) // below RDF threshold (80)
	got = st.RDFQuery(low, rdf.Pattern{})
	if len(got) != 2 {
		t.Errorf("reduced strength: %d triples, want 2", len(got))
	}
}

func TestCheckInteroperationAlwaysStrict(t *testing.T) {
	st := stackFixture(t)
	mil := ontology.New("mil")
	mil.AddClass("TroopPosition")
	mil.SetLevel("TroopPosition", rdf.Secret)
	civ := ontology.New("civ")
	civ.AddClass("POI")
	a := ontology.NewAlignment(mil, civ)
	a.Map("TroopPosition", "POI")

	for _, s := range []Strength{0, 50, 100} {
		st.SetStrength(s)
		if err := st.CheckInteroperation(a); err == nil {
			t.Errorf("declassifying alignment accepted at strength %d", s)
		}
	}
	civ.SetLevel("POI", rdf.Secret)
	if err := st.CheckInteroperation(a); err != nil {
		t.Errorf("safe alignment rejected: %v", err)
	}
}
