// Package core assembles the paper's contribution out of the substrates:
// a secure web database front end (access control + privacy constraints +
// inference control + audit, §3), and the layered secure-semantic-web
// stack with the flexible security policy of §5 (stack.go).
package core

import (
	"fmt"

	"webdbsec/internal/audit"
	"webdbsec/internal/inference"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/reldb"
)

// SecureWebDB is the full §3.1+§3.3 pipeline in front of the relational
// substrate. A query passes, in order:
//
//  1. System R privilege check and row/column policy rewrite
//     (reldb.SecureDB) — discretionary access control;
//  2. privacy-constraint filtering of the result columns
//     (privacy.Controller) — the privacy controller;
//  3. the inference controller (inference.Controller) — the released
//     attribute set, combined with the requestor's history, must not let
//     it derive anything the constraints protect;
//  4. the audit log records the decision either way.
type SecureWebDB struct {
	sec   *reldb.SecureDB
	priv  *privacy.Controller
	infer *inference.Controller
	log   *audit.Log
}

// Config carries the components; zero fields get fresh defaults.
type Config struct {
	DB      *reldb.SecureDB
	Privacy *privacy.Controller
	Infer   *inference.Controller
	Audit   *audit.Log
}

// NewSecureWebDB assembles the pipeline.
func NewSecureWebDB(cfg Config) *SecureWebDB {
	if cfg.DB == nil {
		cfg.DB = reldb.NewSecureDB(reldb.NewDatabase(), nil)
	}
	if cfg.Privacy == nil {
		cfg.Privacy = privacy.NewController()
	}
	if cfg.Infer == nil {
		cfg.Infer = inference.NewController(cfg.Privacy)
	}
	if cfg.Audit == nil {
		cfg.Audit = audit.NewLog()
	}
	return &SecureWebDB{sec: cfg.DB, priv: cfg.Privacy, infer: cfg.Infer, log: cfg.Audit}
}

// DB exposes the secure relational layer for administration (grants,
// policies, table creation).
func (w *SecureWebDB) DB() *reldb.SecureDB { return w.sec }

// Privacy exposes the privacy controller for constraint administration.
func (w *SecureWebDB) Privacy() *privacy.Controller { return w.priv }

// Inference exposes the inference controller for rule administration.
func (w *SecureWebDB) Inference() *inference.Controller { return w.infer }

// Audit exposes the audit log.
func (w *SecureWebDB) Audit() *audit.Log { return w.log }

// QueryOutcome is the result of a gated query.
type QueryOutcome struct {
	Result *reldb.Result
	// MaskedColumns lists columns blanked by privacy constraints.
	MaskedColumns []string
	// Derived lists attributes the inference controller determined the
	// subject can now deduce.
	Derived []string
}

// Query runs a SELECT through the whole pipeline.
func (w *SecureWebDB) Query(s *policy.Subject, sql string) (*QueryOutcome, error) {
	res, err := w.sec.Exec(s, sql)
	if err != nil {
		w.log.Append(s.ID, "query", sql, "deny:access")
		return nil, err
	}
	masked := w.priv.FilterResult(s, res)
	// Only columns that actually flow to the subject count for inference.
	var released []string
	maskedSet := map[string]bool{}
	for _, m := range masked {
		maskedSet[m] = true
	}
	for _, c := range res.Columns {
		if !maskedSet[c] {
			released = append(released, c)
		}
	}
	dec := w.infer.Check(s, released)
	if !dec.Allowed {
		w.log.Append(s.ID, "query", sql, "deny:inference:"+dec.Violation)
		return nil, fmt.Errorf("core: query refused: releasing %v would let %s infer protected information (constraint %s)",
			released, s.ID, dec.Violation)
	}
	w.log.Append(s.ID, "query", sql, "permit")
	return &QueryOutcome{Result: res, MaskedColumns: masked, Derived: dec.Derived}, nil
}

// Execute runs non-SELECT DML through the access control layer with
// auditing.
func (w *SecureWebDB) Execute(s *policy.Subject, sql string) (*reldb.Result, error) {
	res, err := w.sec.Exec(s, sql)
	if err != nil {
		w.log.Append(s.ID, "execute", sql, "deny")
		return nil, err
	}
	w.log.Append(s.ID, "execute", sql, "permit")
	return res, nil
}
