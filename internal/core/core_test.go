package core

import (
	"strings"
	"testing"

	"webdbsec/internal/inference"
	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
	"webdbsec/internal/reldb"
	"webdbsec/internal/sysr"
)

// setupPipeline builds a SecureWebDB over a patients table with grants for
// "analyst", a row policy exposing all rows, a privacy constraint making
// {name, disease} private, and an inference rule name ∧ zip → identity
// with {identity, disease} private.
func setupPipeline(t *testing.T) (*SecureWebDB, *policy.Subject) {
	t.Helper()
	w := NewSecureWebDB(Config{})
	dba := &policy.Subject{ID: "dba"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DB().CreateTable(dba, "CREATE TABLE patients (name TEXT, zip TEXT, age INT, disease TEXT)"))
	for _, r := range []string{
		"('Ada', '10001', 34, 'flu')",
		"('Bob', '10002', 56, 'cancer')",
	} {
		if _, err := w.DB().Exec(dba, "INSERT INTO patients VALUES "+r); err != nil {
			t.Fatal(err)
		}
	}
	must(w.DB().Grants().Grant("dba", "ana", sysr.Select, "patients", false))
	pred := reldb.MustParse("SELECT * FROM patients WHERE age >= 0").(*reldb.SelectStmt).Where
	must(w.DB().AddRowPolicy(&reldb.RowPolicy{
		Name: "analysts-all", Table: "patients",
		Subject: policy.SubjectSpec{Roles: []string{"analyst"}}, Pred: pred,
	}))
	must(w.Privacy().Add(&privacy.Constraint{
		Name: "name-disease", Attrs: []string{"name", "disease"}, Class: privacy.Private,
	}))
	must(w.Privacy().Add(&privacy.Constraint{
		Name: "identity-disease", Attrs: []string{"identity", "disease"}, Class: privacy.Private,
	}))
	must(w.Inference().AddRule(&inference.Rule{
		Name: "reid", Body: []string{"name", "zip"}, Head: "identity",
	}))
	analyst := &policy.Subject{ID: "ana", Roles: []string{"analyst"}}
	return w, analyst
}

func TestPipelineCleanQuery(t *testing.T) {
	w, analyst := setupPipeline(t)
	out, err := w.Query(analyst, "SELECT age, zip FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != 2 || len(out.MaskedColumns) != 0 {
		t.Errorf("out = %+v", out)
	}
	if w.Audit().Len() == 0 {
		t.Error("no audit record")
	}
}

func TestPipelinePrivacyMasking(t *testing.T) {
	w, analyst := setupPipeline(t)
	out, err := w.Query(analyst, "SELECT name, disease FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MaskedColumns) != 1 || out.MaskedColumns[0] != "disease" {
		t.Fatalf("masked = %v", out.MaskedColumns)
	}
	for _, r := range out.Result.Rows {
		if !r[1].IsNull() {
			t.Error("disease leaked")
		}
	}
}

func TestPipelineInferenceGate(t *testing.T) {
	w, analyst := setupPipeline(t)
	// Query 1: name+zip derives identity; identity alone is not protected,
	// so this flows.
	if _, err := w.Query(analyst, "SELECT name, zip FROM patients"); err != nil {
		t.Fatalf("first query blocked: %v", err)
	}
	// Query 2: disease now combines with the remembered identity into a
	// private combination.
	_, err := w.Query(analyst, "SELECT age, disease FROM patients")
	if err == nil {
		t.Fatal("inference channel not blocked")
	}
	// The closure contains both {identity, disease} and — via the
	// remembered name — {name, disease}; either constraint may be the one
	// reported.
	if !strings.Contains(err.Error(), "-disease") {
		t.Errorf("err = %v", err)
	}
	recs := w.Audit().Records()
	last := recs[len(recs)-1]
	if !strings.HasPrefix(last.Outcome, "deny:inference") {
		t.Errorf("last audit outcome = %q", last.Outcome)
	}
}

func TestMaskedColumnsDoNotFeedInference(t *testing.T) {
	w, analyst := setupPipeline(t)
	// name+disease: disease is masked by privacy, so the subject only
	// actually receives name — which must not poison its history with
	// disease.
	if _, err := w.Query(analyst, "SELECT name, disease FROM patients"); err != nil {
		t.Fatal(err)
	}
	hist := w.Inference().History("ana")
	for _, a := range hist {
		if a == "disease" {
			t.Error("masked column entered inference history")
		}
	}
}

func TestPipelineAccessDenied(t *testing.T) {
	w, _ := setupPipeline(t)
	stranger := &policy.Subject{ID: "nobody"}
	if _, err := w.Query(stranger, "SELECT age FROM patients"); err == nil {
		t.Fatal("stranger query accepted")
	}
	recs := w.Audit().Records()
	if recs[len(recs)-1].Outcome != "deny:access" {
		t.Errorf("outcome = %q", recs[len(recs)-1].Outcome)
	}
}

func TestExecuteAudited(t *testing.T) {
	w, _ := setupPipeline(t)
	dba := &policy.Subject{ID: "dba"}
	if _, err := w.Execute(dba, "INSERT INTO patients VALUES ('Cyd', '10003', 40, 'cold')"); err != nil {
		t.Fatal(err)
	}
	stranger := &policy.Subject{ID: "nobody"}
	if _, err := w.Execute(stranger, "DELETE FROM patients"); err == nil {
		t.Fatal("stranger DML accepted")
	}
	if got := w.Audit().Verify(); got != -1 {
		t.Errorf("audit chain corrupt at %d", got)
	}
}

func TestDefaultsConstructed(t *testing.T) {
	w := NewSecureWebDB(Config{})
	if w.DB() == nil || w.Privacy() == nil || w.Inference() == nil || w.Audit() == nil {
		t.Error("defaults missing")
	}
}
