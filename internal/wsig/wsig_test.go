package wsig

import (
	"testing"

	"webdbsec/internal/xmldoc"
)

func newSigner(t *testing.T, name string) *Signer {
	t.Helper()
	s, err := NewSigner(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSignVerifyBytes(t *testing.T) {
	s := newSigner(t, "provider")
	sig := s.SignBytes([]byte("hello"))
	if sig.Signer != "provider" {
		t.Errorf("signer = %q", sig.Signer)
	}
	if !VerifyBytes([]byte("hello"), sig, s.PublicKey()) {
		t.Error("valid signature rejected")
	}
	if VerifyBytes([]byte("hellx"), sig, s.PublicKey()) {
		t.Error("signature verified over altered data")
	}
}

func TestSignVerifyDocument(t *testing.T) {
	s := newSigner(t, "p")
	doc := xmldoc.MustParseString("d", `<a x="1"><b>t</b></a>`)
	sig := s.SignDocument(doc)
	if !VerifyDocument(doc, sig, s.PublicKey()) {
		t.Error("valid doc signature rejected")
	}
	// Structurally identical doc with different attribute order verifies.
	doc2 := xmldoc.MustParseString("d", `<a  x="1"><b>t</b></a>`)
	if !VerifyDocument(doc2, sig, s.PublicKey()) {
		t.Error("canonicalization broken: identical doc rejected")
	}
	tampered := xmldoc.MustParseString("d", `<a x="2"><b>t</b></a>`)
	if VerifyDocument(tampered, sig, s.PublicKey()) {
		t.Error("tampered doc verified")
	}
}

func TestSignVerifySubtree(t *testing.T) {
	s := newSigner(t, "p")
	doc := xmldoc.MustParseString("d", `<r><a>1</a><b>2</b></r>`)
	a := xmldoc.MustCompilePath("/r/a").Select(doc)[0]
	b := xmldoc.MustCompilePath("/r/b").Select(doc)[0]
	sig := s.SignSubtree(a)
	if !VerifySubtree(a, sig, s.PublicKey()) {
		t.Error("subtree signature rejected")
	}
	if VerifySubtree(b, sig, s.PublicKey()) {
		t.Error("signature transferred to different subtree")
	}
}

func TestKeyDirectory(t *testing.T) {
	alice := newSigner(t, "alice")
	bob := newSigner(t, "bob")
	d := NewKeyDirectory()
	d.RegisterSigner(alice)

	sig := alice.SignBytes([]byte("msg"))
	if !d.Verify([]byte("msg"), sig) {
		t.Error("registered signer rejected")
	}
	bobSig := bob.SignBytes([]byte("msg"))
	if d.Verify([]byte("msg"), bobSig) {
		t.Error("unregistered signer accepted")
	}
	// Impersonation: bob signs but claims to be alice.
	bobSig.Signer = "alice"
	if d.Verify([]byte("msg"), bobSig) {
		t.Error("impersonated signature accepted")
	}
	if _, ok := d.Lookup("alice"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := d.Lookup("carol"); ok {
		t.Error("lookup of unknown signer succeeded")
	}
}

func TestSignatureHex(t *testing.T) {
	s := newSigner(t, "p")
	sig := s.SignBytes([]byte("x"))
	if len(sig.Hex()) != 2*len(sig.Value) {
		t.Error("hex length wrong")
	}
}
