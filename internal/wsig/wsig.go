// Package wsig provides digital signatures over canonical XML, standing in
// for the W3C XML-Signature work the paper points at ("The focus is on
// XML-Signature Syntax and Processing...", §3.2; "the latest UDDI
// specifications allow one to optionally sign some of the elements in a
// registry, according to the W3C XML Signature syntax", §4.1).
//
// Signatures are Ed25519 over the SHA-256 digest of the canonical
// serialization of a document or subtree. Both detached signatures (over
// raw bytes) and element signatures (over a subtree) are supported.
package wsig

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"webdbsec/internal/xmldoc"
)

// Signature is a detached signature with its signer's name attached so the
// verifier can look up the right key.
type Signature struct {
	Signer string
	Value  []byte
}

// Hex returns the signature value in hexadecimal, for embedding in XML
// attributes.
func (s Signature) Hex() string { return hex.EncodeToString(s.Value) }

// Signer holds an Ed25519 signing key.
type Signer struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner creates a signer with a fresh key pair.
func NewSigner(name string) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("wsig: generate key for %s: %w", name, err)
	}
	return &Signer{Name: name, pub: pub, priv: priv}, nil
}

// PublicKey returns the signer's verification key.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.pub }

// SignBytes signs arbitrary bytes (after hashing).
func (s *Signer) SignBytes(data []byte) Signature {
	d := sha256.Sum256(data)
	return Signature{Signer: s.Name, Value: ed25519.Sign(s.priv, d[:])}
}

// SignDocument signs the canonical form of a document.
func (s *Signer) SignDocument(doc *xmldoc.Document) Signature {
	return s.SignBytes([]byte(doc.Canonical()))
}

// SignSubtree signs the canonical form of the subtree rooted at n.
func (s *Signer) SignSubtree(n *xmldoc.Node) Signature {
	return s.SignBytes([]byte(xmldoc.CanonicalSubtree(n)))
}

// VerifyBytes checks a signature over raw bytes.
func VerifyBytes(data []byte, sig Signature, pub ed25519.PublicKey) bool {
	d := sha256.Sum256(data)
	return ed25519.Verify(pub, d[:], sig.Value)
}

// VerifyDocument checks a document signature.
func VerifyDocument(doc *xmldoc.Document, sig Signature, pub ed25519.PublicKey) bool {
	return VerifyBytes([]byte(doc.Canonical()), sig, pub)
}

// VerifySubtree checks a subtree signature.
func VerifySubtree(n *xmldoc.Node, sig Signature, pub ed25519.PublicKey) bool {
	return VerifyBytes([]byte(xmldoc.CanonicalSubtree(n)), sig, pub)
}

// KeyDirectory maps signer names to verification keys — the trust anchor
// store a requestor consults.
type KeyDirectory struct {
	keys map[string]ed25519.PublicKey
}

// NewKeyDirectory returns an empty directory.
func NewKeyDirectory() *KeyDirectory {
	return &KeyDirectory{keys: make(map[string]ed25519.PublicKey)}
}

// Register adds a signer's key.
func (d *KeyDirectory) Register(name string, pub ed25519.PublicKey) { d.keys[name] = pub }

// RegisterSigner adds the signer directly.
func (d *KeyDirectory) RegisterSigner(s *Signer) { d.Register(s.Name, s.pub) }

// Verify checks sig over data against the key registered for sig.Signer.
func (d *KeyDirectory) Verify(data []byte, sig Signature) bool {
	pub, ok := d.keys[sig.Signer]
	return ok && VerifyBytes(data, sig, pub)
}

// Lookup returns the key registered for the named signer.
func (d *KeyDirectory) Lookup(name string) (ed25519.PublicKey, bool) {
	k, ok := d.keys[name]
	return k, ok
}
