package reldb

import (
	"math"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/sysr"
)

func aggDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE sales (region TEXT, amount INT, rep TEXT)")
	for _, r := range []string{
		"('east', 100, 'a')",
		"('east', 200, 'b')",
		"('west', 50, 'c')",
		"('west', 150, 'a')",
		"('west', NULL, 'd')",
	} {
		mustExec(t, db, "INSERT INTO sales VALUES "+r)
	}
	return db
}

func execAgg(t *testing.T, db *Database, src string) *Result {
	t.Helper()
	st, err := ParseAggregate(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := db.ExecAggregate(st)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func TestAggregateGlobal(t *testing.T) {
	db := aggDB(t)
	res := execAgg(t, db, "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0] != Int(5) {
		t.Errorf("count(*) = %v", r[0])
	}
	if r[1] != Float(500) {
		t.Errorf("sum = %v", r[1])
	}
	if math.Abs(r[2].F-125) > 1e-9 {
		t.Errorf("avg = %v (nulls must not count)", r[2])
	}
	if r[3] != Int(50) || r[4] != Int(200) {
		t.Errorf("min/max = %v/%v", r[3], r[4])
	}
}

func TestAggregateCountColumnSkipsNulls(t *testing.T) {
	db := aggDB(t)
	res := execAgg(t, db, "SELECT COUNT(amount) FROM sales")
	if res.Rows[0][0] != Int(4) {
		t.Errorf("count(amount) = %v, want 4", res.Rows[0][0])
	}
}

func TestAggregateWhere(t *testing.T) {
	db := aggDB(t)
	res := execAgg(t, db, "SELECT SUM(amount) FROM sales WHERE region = 'east'")
	if res.Rows[0][0] != Float(300) {
		t.Errorf("east sum = %v", res.Rows[0][0])
	}
}

func TestAggregateGroupBy(t *testing.T) {
	db := aggDB(t)
	res := execAgg(t, db, "SELECT COUNT(*), SUM(amount) FROM sales GROUP BY region")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Columns[0] != "region" || res.Columns[2] != "SUM(amount)" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Groups sorted by key: east then west.
	if res.Rows[0][0] != Str("east") || res.Rows[0][1] != Int(2) || res.Rows[0][2] != Float(300) {
		t.Errorf("east row = %v", res.Rows[0])
	}
	if res.Rows[1][0] != Str("west") || res.Rows[1][1] != Int(3) || res.Rows[1][2] != Float(200) {
		t.Errorf("west row = %v", res.Rows[1])
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE empty (v INT)")
	res := execAgg(t, db, "SELECT COUNT(*), SUM(v), MIN(v) FROM empty")
	r := res.Rows[0]
	if r[0] != Int(0) || !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("empty aggregate = %v", r)
	}
	// Grouped over empty: no rows.
	res = execAgg(t, db, "SELECT COUNT(*) FROM empty GROUP BY v")
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty = %v", res.Rows)
	}
}

func TestAggregateParseErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT name FROM sales",             // not an aggregate
		"SELECT SUM(*) FROM sales",           // * only for COUNT
		"SELECT NOPE(x) FROM sales",          // unknown function
		"SELECT COUNT(*) FROM",               // missing table
		"SELECT COUNT(*) FROM sales GROUP x", // bad group by
		"SELECT COUNT(*) FROM sales trailing",
		"INSERT INTO sales VALUES (1)",
	} {
		if _, err := ParseAggregate(src); err == nil {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestAggregateExecErrors(t *testing.T) {
	db := aggDB(t)
	for _, src := range []string{
		"SELECT SUM(region) FROM sales",  // non-numeric sum
		"SELECT COUNT(ghost) FROM sales", // unknown column
		"SELECT COUNT(*) FROM ghost",     // unknown table
		"SELECT COUNT(*) FROM sales GROUP BY ghost",
	} {
		st, err := ParseAggregate(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := db.ExecAggregate(st); err == nil {
			t.Errorf("%q: want exec error", src)
		}
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	db := aggDB(t)
	res := execAgg(t, db, "SELECT MIN(rep), MAX(rep) FROM sales")
	if res.Rows[0][0] != Str("a") || res.Rows[0][1] != Str("d") {
		t.Errorf("min/max rep = %v", res.Rows[0])
	}
}

func TestSecureAggregateRespectsRowPolicies(t *testing.T) {
	sdb := NewSecureDB(NewDatabase(), nil)
	dba := &policy.Subject{ID: "dba"}
	if err := sdb.CreateTable(dba, "CREATE TABLE sales (region TEXT, amount INT)"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"('east', 100)", "('east', 200)", "('west', 50)"} {
		if _, err := sdb.Exec(dba, "INSERT INTO sales VALUES "+r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sdb.Grants().Grant("dba", "east-analyst", sysr.Select, "sales", false); err != nil {
		t.Fatal(err)
	}
	pred := MustParse("SELECT * FROM sales WHERE region = 'east'").(*SelectStmt).Where
	sdb.AddRowPolicy(&RowPolicy{
		Name: "east-only", Table: "sales",
		Subject: policy.SubjectSpec{IDs: []string{"east-analyst"}}, Pred: pred,
	})
	analyst := &policy.Subject{ID: "east-analyst"}
	res, err := sdb.ExecAggregateSecure(analyst, "SELECT COUNT(*), SUM(amount) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != Int(2) || res.Rows[0][1] != Float(300) {
		t.Errorf("aggregate over visible rows = %v (west row must not count)", res.Rows[0])
	}
	// Stranger with grants but no row policy sees zero rows, not an error
	// revealing the table size.
	if err := sdb.Grants().Grant("dba", "outsider", sysr.Select, "sales", false); err != nil {
		t.Fatal(err)
	}
	res, err = sdb.ExecAggregateSecure(&policy.Subject{ID: "outsider"}, "SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != Int(0) {
		t.Errorf("outsider count = %v, want 0", res.Rows[0][0])
	}
	// No privilege at all: refused.
	if _, err := sdb.ExecAggregateSecure(&policy.Subject{ID: "nobody"}, "SELECT COUNT(*) FROM sales"); err == nil {
		t.Error("aggregate without SELECT privilege accepted")
	}
}
