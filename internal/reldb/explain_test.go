package reldb

import (
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/sysr"
)

func TestExplainChoosesAccessPath(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE HASH INDEX ON emp (dept)")
	mustExec(t, db, "CREATE ORDERED INDEX ON emp (salary)")

	p, err := db.Explain("SELECT * FROM emp WHERE dept = 'eng'")
	if err != nil {
		t.Fatal(err)
	}
	if p.Access != "index-eq" || p.IndexColumn != "dept" || p.EstRows != 2 {
		t.Errorf("plan = %+v", p)
	}
	p, err = db.Explain("SELECT * FROM emp WHERE salary >= 85")
	if err != nil {
		t.Fatal(err)
	}
	if p.Access != "index-range" || p.IndexColumn != "salary" || p.EstRows != 3 {
		t.Errorf("plan = %+v", p)
	}
	p, err = db.Explain("SELECT * FROM emp WHERE name = 'Ada'")
	if err != nil {
		t.Fatal(err)
	}
	if p.Access != "full-scan" || p.EstRows != 5 {
		t.Errorf("plan = %+v", p)
	}
	if !strings.Contains(p.String(), "FULL SCAN") {
		t.Errorf("plan string = %q", p.String())
	}
}

func TestExplainCostOrdersAlternatives(t *testing.T) {
	// The cost model must rank the indexed plan cheaper than the scan for
	// a selective predicate.
	plain := empDB(t)
	indexed := empDB(t)
	mustExec(t, indexed, "CREATE HASH INDEX ON emp (dept)")
	q := "SELECT * FROM emp WHERE dept = 'ops'"
	pScan, err := plain.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	pIdx, err := indexed.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if pIdx.EstCost >= pScan.EstCost {
		t.Errorf("index cost %d !< scan cost %d", pIdx.EstCost, pScan.EstCost)
	}
}

func TestExplainErrors(t *testing.T) {
	db := empDB(t)
	if _, err := db.Explain("DELETE FROM emp"); err == nil {
		t.Error("EXPLAIN of DML accepted")
	}
	if _, err := db.Explain("SELECT * FROM ghost"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Explain("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDescribe(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE HASH INDEX ON emp (dept)")
	mustExec(t, db, "CREATE ORDERED INDEX ON emp (salary)")
	info, err := db.Describe("emp")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 5 || len(info.Columns) != 4 {
		t.Errorf("info = %+v", info)
	}
	if len(info.Hash) != 1 || info.Hash[0] != "dept" {
		t.Errorf("hash indexes = %v", info.Hash)
	}
	if len(info.Ordered) != 1 || info.Ordered[0] != "salary" {
		t.Errorf("ordered indexes = %v", info.Ordered)
	}
	if _, err := db.Describe("ghost"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestSecurityMetadata(t *testing.T) {
	sdb := NewSecureDB(NewDatabase(), nil)
	dba := &policy.Subject{ID: "dba"}
	if err := sdb.CreateTable(dba, "CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	sdb.Grants().Grant("dba", "u", sysr.Select, "t", false)
	pred := MustParse("SELECT * FROM t WHERE a >= 0").(*SelectStmt).Where
	sdb.AddRowPolicy(&RowPolicy{Name: "rp", Table: "t", Subject: policy.SubjectSpec{IDs: []string{"u"}}, Pred: pred})
	sdb.AddColPolicy(&ColPolicy{Name: "cp", Table: "t", Subject: policy.SubjectSpec{IDs: []string{"u"}}, Columns: []string{"a"}})
	md := sdb.Metadata()
	if len(md.Grants["t"]) != 2 { // dba (owner) + u
		t.Errorf("grants = %v", md.Grants)
	}
	if len(md.RowPolicies["t"]) != 1 || md.RowPolicies["t"][0] != "rp" {
		t.Errorf("row policies = %v", md.RowPolicies)
	}
	if len(md.ColPolicies["t"]) != 1 || md.ColPolicies["t"][0] != "cp" {
		t.Errorf("col policies = %v", md.ColPolicies)
	}
}
