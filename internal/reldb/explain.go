package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// Query cost model and metadata catalog. §2.1 asks "Query processing
// involves developing a cost model. Are there special cost models for
// Internet database management?" and "what is metadata? Metadata describes
// all of the information pertaining to a data source ... access control
// issues, and policies enforced." Explain exposes the planner's choice and
// estimated cost; Describe and SecureDB.Metadata expose the catalog
// including its security content.

// Plan describes how a SELECT would execute.
type Plan struct {
	Table string
	// Access is "index-eq", "index-range" or "full-scan".
	Access string
	// IndexColumn names the index column when an index is used.
	IndexColumn string
	// EstRows is the estimated candidate rows the access path yields.
	EstRows int
	// EstCost is the cost-model estimate: candidates examined plus a
	// per-result predicate charge.
	EstCost int
}

func (p Plan) String() string {
	switch p.Access {
	case "full-scan":
		return fmt.Sprintf("FULL SCAN %s (est %d rows, cost %d)", p.Table, p.EstRows, p.EstCost)
	default:
		return fmt.Sprintf("%s %s(%s) (est %d rows, cost %d)",
			strings.ToUpper(p.Access), p.Table, p.IndexColumn, p.EstRows, p.EstCost)
	}
}

// Explain plans a SELECT without executing it.
func (db *Database) Explain(src string) (*Plan, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("reldb: EXPLAIN supports SELECT only")
	}
	t, okT := db.Table(sel.Table)
	if !okT {
		return nil, fmt.Errorf("reldb: unknown table %s", sel.Table)
	}
	plan := &Plan{Table: sel.Table, Access: "full-scan", EstRows: t.Len()}
	if cmp := indexableCmp(t, sel.Where); cmp != nil {
		switch cmp.Op {
		case "=":
			if ids, ok := t.LookupEq(cmp.Col, cmp.Val); ok {
				plan.Access = "index-eq"
				plan.IndexColumn = cmp.Col
				plan.EstRows = len(ids)
			}
		default:
			var lo, hi *Value
			v := cmp.Val
			if cmp.Op == "<" || cmp.Op == "<=" {
				hi = &v
			} else {
				lo = &v
			}
			if ids, ok := t.LookupRange(cmp.Col, lo, hi); ok {
				plan.Access = "index-range"
				plan.IndexColumn = cmp.Col
				plan.EstRows = len(ids)
			}
		}
	}
	// Cost model: one unit per candidate row plus one per predicate node
	// evaluated over it.
	predCost := 1
	if sel.Where != nil {
		predCost += exprNodes(sel.Where)
	}
	plan.EstCost = plan.EstRows * predCost
	return plan, nil
}

func exprNodes(e Expr) int {
	switch x := e.(type) {
	case *AndExpr:
		return 1 + exprNodes(x.L) + exprNodes(x.R)
	case *OrExpr:
		return 1 + exprNodes(x.L) + exprNodes(x.R)
	case *NotExpr:
		return 1 + exprNodes(x.E)
	default:
		return 1
	}
}

// TableInfo is one catalog row.
type TableInfo struct {
	Name    string
	Columns []Column
	Rows    int
	Hash    []string // hash-indexed columns
	Ordered []string // ordered-indexed columns
}

// Describe returns the catalog entry of a table.
func (db *Database) Describe(table string) (*TableInfo, error) {
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", table)
	}
	info := &TableInfo{Name: table, Columns: t.Schema.Columns, Rows: t.Len()}
	for _, c := range t.Schema.Columns {
		if t.HasHashIndex(c.Name) {
			info.Hash = append(info.Hash, c.Name)
		}
		if t.HasOrderedIndex(c.Name) {
			info.Ordered = append(info.Ordered, c.Name)
		}
	}
	return info, nil
}

// SecurityMetadata summarizes the security content of the catalog — "the
// metadata ... also includes security policies".
type SecurityMetadata struct {
	// Grants maps object -> subjects holding SELECT (representative of the
	// grant state; full detail via Grants()).
	Grants map[string][]string
	// RowPolicies maps table -> policy names.
	RowPolicies map[string][]string
	// ColPolicies maps table -> policy names.
	ColPolicies map[string][]string
}

// Metadata returns the security metadata of the secured database.
func (s *SecureDB) Metadata() SecurityMetadata {
	md := SecurityMetadata{
		Grants:      map[string][]string{},
		RowPolicies: map[string][]string{},
		ColPolicies: map[string][]string{},
	}
	for _, table := range s.db.Tables() {
		if subs := s.grants.Subjects("SELECT", table); len(subs) > 0 {
			md.Grants[table] = subs
		}
	}
	for _, p := range s.rowPols {
		md.RowPolicies[p.Table] = append(md.RowPolicies[p.Table], p.Name)
	}
	for _, p := range s.colPols {
		md.ColPolicies[p.Table] = append(md.ColPolicies[p.Table], p.Name)
	}
	for _, m := range []map[string][]string{md.RowPolicies, md.ColPolicies} {
		for k := range m {
			sort.Strings(m[k])
		}
	}
	return md
}
