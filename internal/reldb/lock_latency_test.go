package reldb

import (
	"testing"
	"time"
)

// TestLockReleaseWakesWaitersImmediately: a waiter blocked on a lock must
// be woken by the holder's release, not by its own deadline timer. The
// lock timeout is set far above the pass threshold, so if releaseAll ever
// stops broadcasting the condvar the waiter oversleeps to its deadline
// and this test fails on latency (regression guard for the wakeup path in
// releaseAll/waitUntil).
func TestLockReleaseWakesWaitersImmediately(t *testing.T) {
	lm := newLockManager()
	lm.Timeout = 10 * time.Second

	if err := lm.acquireExclusive(1, "t"); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan time.Duration, 1)
	released := make(chan time.Time, 1)
	go func() {
		if err := lm.acquireExclusive(2, "t"); err != nil {
			t.Error(err)
		}
		acquired <- time.Since(<-released)
	}()
	// Give the waiter time to park on the condvar, then release.
	time.Sleep(100 * time.Millisecond)
	released <- time.Now()
	lm.releaseAll(1)

	select {
	case wake := <-acquired:
		// Generous for CI jitter, but an order of magnitude below the lock
		// timeout: a waiter that slept to its deadline cannot pass.
		if wake > time.Second {
			t.Fatalf("waiter took %v after release; release must broadcast", wake)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never acquired the lock after release")
	}
	lm.releaseAll(2)
}

// TestReadersNeverEnterLockManager: the MVCC contract — the lock manager
// arbitrates writers only. A SELECT issued while another transaction
// holds a table's exclusive lock returns immediately from the pinned
// committed version; it neither waits for the writer nor times out. The
// lock timeout is set far above the pass threshold so a read that ever
// re-enters the lock path fails on latency.
func TestReadersNeverEnterLockManager(t *testing.T) {
	db := NewDatabase()
	db.lockMgr.Timeout = 10 * time.Second
	mustExec(t, db, "CREATE TABLE t (n INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	txn := db.Begin()
	if _, err := txn.ExecStmt(MustParse("INSERT INTO t VALUES (2)")); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := db.Exec("SELECT n FROM t")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("read under writer lock: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("read saw %d rows, want the 1 committed row", len(res.Rows))
	}
	if elapsed > time.Second {
		t.Fatalf("read took %v under a held writer lock; reads must be lock-free", elapsed)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLockWaitStillTimesOut: the deadline timer remains the deadlock
// breaker — a waiter whose lock is never released gets ErrLockTimeout
// close to its configured timeout, not arbitrarily later.
func TestLockWaitStillTimesOut(t *testing.T) {
	lm := newLockManager()
	lm.Timeout = 150 * time.Millisecond
	if err := lm.acquireExclusive(1, "t"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lm.acquireExclusive(2, "t")
	elapsed := time.Since(start)
	if err != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v for a 150ms deadline", elapsed)
	}
}
