package reldb

import (
	"fmt"
	"sync"
)

// Integrity constraints. §2.1: "Maintaining the integrity of the data is
// critical. Since the data may originate from multiple sources around the
// world, it will be difficult to keep tabs on the accuracy of the data.
// Appropriate data quality maintenance techniques need thus be developed."
// And §3.1: "the transaction will have to ensure that the integrity as
// well as security constraints are satisfied."
//
// A CheckConstraint is a predicate every row of a table must satisfy; it
// is enforced on INSERT and UPDATE, inside and outside transactions (the
// check runs before the write, so a violating statement fails atomically).
// NOT NULL is a declarative special case.

// CheckConstraint is one named table predicate.
type CheckConstraint struct {
	Name  string
	Table string
	Check Expr
}

// constraintSet holds a database's constraints; attached lazily.
type constraintSet struct {
	mu     sync.RWMutex
	checks []*CheckConstraint
	// notNull: table -> column names that must not be NULL.
	notNull map[string]map[string]bool
}

func (db *Database) constraints() *constraintSet {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cons == nil {
		db.cons = &constraintSet{notNull: make(map[string]map[string]bool)}
	}
	return db.cons
}

// AddCheck installs a CHECK constraint. Existing rows are validated first:
// a constraint the current data violates is rejected.
//
// seclint:exempt schema administration on the trusted setup path, not a data entry point
func (db *Database) AddCheck(c *CheckConstraint) error {
	if c.Name == "" || c.Table == "" || c.Check == nil {
		return fmt.Errorf("reldb: check constraint needs a name, table and predicate")
	}
	t, ok := db.Table(c.Table)
	if !ok {
		return fmt.Errorf("reldb: unknown table %s", c.Table)
	}
	var violation error
	t.Scan(func(id int64, r Row) bool {
		okRow, err := c.Check.Eval(&t.Schema, r)
		if err != nil {
			violation = err
			return false
		}
		if !okRow {
			violation = fmt.Errorf("reldb: existing row %d violates constraint %s", id, c.Name)
			return false
		}
		return true
	})
	if violation != nil {
		return violation
	}
	cs := db.constraints()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.checks = append(cs.checks, c)
	return nil
}

// AddNotNull marks a column NOT NULL. Existing NULLs are rejected.
//
// seclint:exempt schema administration on the trusted setup path, not a data entry point
func (db *Database) AddNotNull(table, column string) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("reldb: unknown table %s", table)
	}
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %s", table, column)
	}
	var violation error
	t.Scan(func(id int64, r Row) bool {
		if r[ci].IsNull() {
			violation = fmt.Errorf("reldb: existing row %d has NULL in %s.%s", id, table, column)
			return false
		}
		return true
	})
	if violation != nil {
		return violation
	}
	cs := db.constraints()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	m := cs.notNull[table]
	if m == nil {
		m = make(map[string]bool)
		cs.notNull[table] = m
	}
	m[column] = true
	return nil
}

// validateRow enforces the table's constraints on a prospective row.
func (db *Database) validateRow(table string, schema *Schema, r Row) error {
	db.mu.Lock()
	cs := db.cons
	db.mu.Unlock()
	if cs == nil {
		return nil
	}
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	for col := range cs.notNull[table] {
		ci := schema.ColIndex(col)
		if ci >= 0 && r[ci].IsNull() {
			return fmt.Errorf("reldb: column %s.%s is NOT NULL", table, col)
		}
	}
	for _, c := range cs.checks {
		if c.Table != table {
			continue
		}
		ok, err := c.Check.Eval(schema, r)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("reldb: constraint %s violated", c.Name)
		}
	}
	return nil
}
