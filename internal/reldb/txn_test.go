package reldb

import (
	"sync"
	"testing"
	"time"
)

func TestCommitMakesChangesVisible(t *testing.T) {
	db := empDB(t)
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO emp VALUES (6, 'Fay', 'eng', 110)"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT * FROM emp WHERE name = 'Fay'")
	if len(res.Rows) != 1 {
		t.Error("committed insert invisible")
	}
}

func TestAbortUndoesEverything(t *testing.T) {
	db := empDB(t)
	before := mustExec(t, db, "SELECT * FROM emp ORDER BY id")
	txn := db.Begin()
	for _, src := range []string{
		"INSERT INTO emp VALUES (7, 'Gil', 'eng', 60)",
		"UPDATE emp SET salary = 999 WHERE dept = 'eng'",
		"DELETE FROM emp WHERE dept = 'hr'",
	} {
		if _, err := txn.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	txn.Abort()
	after := mustExec(t, db, "SELECT * FROM emp ORDER BY id")
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("row count changed: %d -> %d", len(before.Rows), len(after.Rows))
	}
	for i := range before.Rows {
		for j := range before.Rows[i] {
			if Compare(before.Rows[i][j], after.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d changed: %v -> %v", i, j, before.Rows[i][j], after.Rows[i][j])
			}
		}
	}
}

func TestFinishedTxnRejectsWork(t *testing.T) {
	db := empDB(t)
	txn := db.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("SELECT * FROM emp"); err == nil {
		t.Error("exec after commit accepted")
	}
	if err := txn.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	txn.Abort() // no-op, must not panic
}

func TestDDLRejectedInTxn(t *testing.T) {
	db := empDB(t)
	txn := db.Begin()
	defer txn.Abort()
	if _, err := txn.Exec("CREATE TABLE x (a INT)"); err == nil {
		t.Error("DDL in transaction accepted")
	}
}

func TestWriteBlocksWrite(t *testing.T) {
	db := empDB(t)
	db.lockMgr.Timeout = 200 * time.Millisecond
	t1 := db.Begin()
	if _, err := t1.Exec("UPDATE emp SET salary = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin()
	_, err := t2.Exec("UPDATE emp SET salary = 2 WHERE id = 2")
	if err != ErrLockTimeout {
		t.Fatalf("conflicting write: err = %v, want lock timeout", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// After release the table is writable again.
	t3 := db.Begin()
	if _, err := t3.Exec("UPDATE emp SET salary = 3 WHERE id = 2"); err != nil {
		t.Fatalf("write after release: %v", err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReadersDoNotBlock(t *testing.T) {
	db := empDB(t)
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Exec("SELECT * FROM emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec("SELECT * FROM emp"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderDoesNotBlockWriter pins down the MVCC read contract that
// replaced reader/writer locking: a transactional reader takes no lock, so
// a concurrent writer proceeds immediately — and the reader keeps seeing
// its Begin-time snapshot even after the writer's delete commits.
func TestReaderDoesNotBlockWriter(t *testing.T) {
	db := empDB(t)
	db.lockMgr.Timeout = 150 * time.Millisecond
	r := db.Begin()
	res, err := r.Exec("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Rows)
	w := db.Begin()
	if _, err := w.Exec("DELETE FROM emp"); err != nil {
		t.Fatalf("writer blocked by reader: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// The reader's snapshot is unaffected by the committed delete.
	res, err = r.Exec("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != before {
		t.Fatalf("reader saw %d rows after concurrent delete, want snapshot's %d", len(res.Rows), before)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	// A fresh reader sees the delete.
	res = mustExec(t, db, "SELECT * FROM emp")
	if len(res.Rows) != 0 {
		t.Fatalf("committed delete invisible to new reader: %d rows", len(res.Rows))
	}
}

func TestReadThenWriteSameTxn(t *testing.T) {
	db := empDB(t)
	txn := db.Begin()
	if _, err := txn.Exec("SELECT * FROM emp"); err != nil {
		t.Fatal(err)
	}
	// Reading never locks; the write acquires the exclusive lock on demand.
	if _, err := txn.Exec("UPDATE emp SET salary = 50 WHERE id = 5"); err != nil {
		t.Fatalf("write after read failed: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockCycleBrokenByTimeout(t *testing.T) {
	// T1 locks a then wants b; T2 locks b then wants a. The lock timeout
	// must break the cycle: at least one transaction errors, the other can
	// finish, and afterwards both tables are writable again.
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE a (v INT)")
	mustExec(t, db, "CREATE TABLE b (v INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	db.lockMgr.Timeout = 300 * time.Millisecond

	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Exec("UPDATE a SET v = 10"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec("UPDATE b SET v = 20"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := t1.Exec("UPDATE b SET v = 11")
		if err != nil {
			t1.Abort()
		} else {
			err = t1.Commit()
		}
		errs <- err
	}()
	go func() {
		_, err := t2.Exec("UPDATE a SET v = 21")
		if err != nil {
			t2.Abort()
		} else {
			err = t2.Commit()
		}
		errs <- err
	}()
	e1, e2 := <-errs, <-errs
	if e1 == nil && e2 == nil {
		t.Fatal("both transactions succeeded through a deadlock cycle")
	}
	if e1 != nil && e2 != nil {
		t.Log("both victims (allowed, though one survivor is preferable)")
	}
	// The system is live afterwards.
	t3 := db.Begin()
	if _, err := t3.Exec("UPDATE a SET v = 99"); err != nil {
		t.Fatalf("system wedged after deadlock: %v", err)
	}
	if _, err := t3.Exec("UPDATE b SET v = 99"); err != nil {
		t.Fatalf("system wedged after deadlock: %v", err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCommittedInserts(t *testing.T) {
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE n (v INT)")
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				txn := db.Begin()
				if _, err := txn.Exec("INSERT INTO n VALUES (1)"); err != nil {
					txn.Abort()
					errs <- err
					return
				}
				if err := txn.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT * FROM n")
	if len(res.Rows) != workers*perWorker {
		t.Errorf("rows = %d, want %d", len(res.Rows), workers*perWorker)
	}
}

func TestRecoverReplaysOnlyCommitted(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE HASH INDEX ON emp (dept)")

	good := db.Begin()
	good.Exec("INSERT INTO emp VALUES (10, 'Hal', 'eng', 75)")
	if err := good.Commit(); err != nil {
		t.Fatal(err)
	}

	bad := db.Begin()
	bad.Exec("INSERT INTO emp VALUES (11, 'Ivy', 'eng', 76)")
	bad.Abort()

	// Updates and deletes that must replay.
	mustExec(t, db, "UPDATE emp SET salary = 1 WHERE name = 'Ada'")
	mustExec(t, db, "DELETE FROM emp WHERE name = 'Bob'")

	// The crashed transaction starts last: it never commits (and never
	// releases its locks — exactly what a crash looks like to the lock
	// manager).
	crashed := db.Begin()
	crashed.Exec("INSERT INTO emp VALUES (12, 'Jon', 'eng', 77)")

	rec, err := Recover(db.Log())
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, rec, "SELECT name FROM emp WHERE dept = 'eng' ORDER BY name")
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r[0].S] = true
	}
	if !names["Hal"] {
		t.Error("committed insert lost in recovery")
	}
	if names["Ivy"] {
		t.Error("aborted insert resurrected — but note abort already undid it; recovery must also skip it")
	}
	if names["Jon"] {
		t.Error("uncommitted insert survived recovery")
	}
	// Indexes were rebuilt and work.
	if got := mustExec(t, rec, "SELECT name FROM emp WHERE dept = 'hr'"); len(got.Rows) != 2 {
		t.Errorf("recovered index broken: %v", got.Rows)
	}
	// Updates and deletes replayed too.
	if got := mustExec(t, rec, "SELECT salary FROM emp WHERE name = 'Ada'"); got.Rows[0][0] != Int(1) {
		t.Error("update not replayed")
	}
	if got := mustExec(t, rec, "SELECT * FROM emp WHERE name = 'Bob'"); len(got.Rows) != 0 {
		t.Error("delete not replayed")
	}
}

func TestAuctionOpenBidModel(t *testing.T) {
	db := NewDatabase()
	a, err := NewAuctionHouse(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Open("painting", "seller1"); err != nil {
		t.Fatal(err)
	}
	// Concurrent bidders do not block each other (no item lock held).
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a.PlaceBid("painting", "bidder", int64(100+i))
		}(i)
	}
	wg.Wait()
	if n, _ := a.Bids("painting"); n != 10 {
		t.Fatalf("bids = %d", n)
	}
	winner, price, err := a.Close("painting")
	if err != nil {
		t.Fatal(err)
	}
	if winner != "bidder" || price != 109 {
		t.Errorf("winner=%s price=%d", winner, price)
	}
	// Closed auction rejects bids and re-close.
	if err := a.PlaceBid("painting", "late", 999); err == nil {
		t.Error("bid on closed auction accepted")
	}
	if _, _, err := a.Close("painting"); err == nil {
		t.Error("double close accepted")
	}
	if err := a.PlaceBid("ghost", "x", 1); err == nil {
		t.Error("bid on unknown item accepted")
	}
}

func TestAuctionNoBids(t *testing.T) {
	db := NewDatabase()
	a, _ := NewAuctionHouse(db)
	a.Open("dud", "seller")
	winner, price, err := a.Close("dud")
	if err != nil {
		t.Fatal(err)
	}
	if winner != "" || price != 0 {
		t.Errorf("winner=%q price=%d", winner, price)
	}
}

func TestLockingAuctionSerializesBidders(t *testing.T) {
	db := NewDatabase()
	a, _ := NewAuctionHouse(db)
	a.Open("vase", "seller")
	locking := NewLockingAuctionHouse(a, 30*time.Millisecond)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			locking.PlaceBid("vase", "b", int64(i))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 4 bidders × 30ms think time, fully serialized ≈ 120ms minimum.
	if elapsed < 100*time.Millisecond {
		t.Errorf("locking bids not serialized: %v", elapsed)
	}
	if n, _ := a.Bids("vase"); n != 4 {
		t.Errorf("bids = %d", n)
	}
}
