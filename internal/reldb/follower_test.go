package reldb

import (
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

// shipAll streams every durable leader record into the follower via a WAL
// cursor, appending to the follower's local WAL first — the same order the
// replication layer uses.
func shipAll(t *testing.T, leader *wal.WAL, fw *wal.WAL, f *Follower) {
	t.Helper()
	c, err := leader.OpenCursor(fw.LastLSN())
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	for {
		rec, ok, err := c.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if !ok {
			return
		}
		if lsn, err := fw.Append(rec.Payload); err != nil || lsn != rec.LSN {
			t.Fatalf("follower wal append: lsn=%d err=%v, want lsn=%d", lsn, err, rec.LSN)
		}
		if err := f.Apply(rec.LSN, rec.Payload); err != nil {
			t.Fatalf("follower apply lsn %d: %v", rec.LSN, err)
		}
	}
}

func leaderWAL(t *testing.T, fs wal.FS) *wal.WAL {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return w
}

func TestFollowerTracksLeader(t *testing.T) {
	lfs := faultinject.NewMemFS()
	db := openDurable(t, lfs)
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v INT)")
	mustExec(t, db, "CREATE HASH INDEX ON kv (k)")
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO kv VALUES ('a', 1)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	if _, err := txn.Exec("INSERT INTO kv VALUES ('b', 2)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// An aborted transaction ships too, and must leave no trace.
	txn2 := db.Begin()
	if _, err := txn2.Exec("INSERT INTO kv VALUES ('ghost', 9)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	txn2.Abort()
	mustExec(t, db, "UPDATE kv SET v = 10 WHERE k = 'a'")

	ffs := faultinject.NewMemFS()
	fw := leaderWAL(t, ffs)
	f, err := OpenFollower(fw)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	lw := db.Log()
	lw.mu.Lock()
	leaderBack := lw.w
	lw.mu.Unlock()
	shipAll(t, leaderBack, fw, f)
	if got := tableRows(t, f.DB(), "kv"); got["a"] != 10 || got["b"] != 2 || len(got) != 2 {
		t.Fatalf("follower rows = %v", got)
	}
	// The follower's materialization is exactly what crash recovery of the
	// leader's WAL would produce (uncommitted/aborted work invisible).
	if err := leaderBack.Close(); err != nil {
		t.Fatalf("Close leader wal: %v", err)
	}
	ref := openDurable(t, lfs)
	assertDBEqual(t, ref, f.DB(), "follower vs recovered leader")
}

func TestFollowerBuffersUncommitted(t *testing.T) {
	lfs := faultinject.NewMemFS()
	db := openDurable(t, lfs)
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v INT)")
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO kv VALUES ('open', 1)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}

	ffs := faultinject.NewMemFS()
	fw := leaderWAL(t, ffs)
	f, err := OpenFollower(fw)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	lw := db.Log()
	lw.mu.Lock()
	leaderBack := lw.w
	lw.mu.Unlock()
	shipAll(t, leaderBack, fw, f)
	// The transaction is still open: nothing materialized.
	if got := tableRows(t, f.DB(), "kv"); len(got) != 0 {
		t.Fatalf("uncommitted rows visible on follower: %v", got)
	}
	// Follower restarts mid-transaction: the buffer must survive via its
	// own WAL.
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fw = leaderWAL(t, ffs)
	f, err = OpenFollower(fw)
	if err != nil {
		t.Fatalf("OpenFollower after restart: %v", err)
	}
	if got := tableRows(t, f.DB(), "kv"); len(got) != 0 {
		t.Fatalf("uncommitted rows visible after restart: %v", got)
	}
	// The commit record arrives after the restart.
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	shipAll(t, leaderBack, fw, f)
	if got := tableRows(t, f.DB(), "kv"); got["open"] != 1 {
		t.Fatalf("committed row missing after late commit: %v", got)
	}
}

func TestFollowerPromote(t *testing.T) {
	lfs := faultinject.NewMemFS()
	db := openDurable(t, lfs)
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v INT)")
	mustExec(t, db, "INSERT INTO kv VALUES ('a', 1)")
	// An in-flight transaction at the moment the leader dies.
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO kv VALUES ('dangling', 7)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}

	ffs := faultinject.NewMemFS()
	fw := leaderWAL(t, ffs)
	f, err := OpenFollower(fw)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	lw := db.Log()
	lw.mu.Lock()
	leaderBack := lw.w
	lw.mu.Unlock()
	shipAll(t, leaderBack, fw, f)

	promoted, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	// The dangling transaction died with the old leader.
	if got := tableRows(t, promoted, "kv"); got["a"] != 1 || len(got) != 1 {
		t.Fatalf("promoted rows = %v", got)
	}
	// The promoted database accepts writes and they are durable in the
	// follower's own WAL.
	mustExec(t, promoted, "INSERT INTO kv VALUES ('post', 2)")
	if err := promoted.Log().Err(); err != nil {
		t.Fatalf("promoted log: %v", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := openDurable(t, ffs)
	if got := tableRows(t, re, "kv"); got["a"] != 1 || got["post"] != 2 || len(got) != 2 {
		t.Fatalf("recovered promoted rows = %v", got)
	}
	// The dead follower refuses further replication traffic.
	if err := f.Apply(f.AppliedLSN()+1, []byte("{}")); err == nil {
		t.Fatal("Apply after Promote succeeded")
	}
}
