package reldb

import (
	"fmt"
	"sync"
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

// fuzzyCheckpointWorkload is the scripted workload the fuzzy-checkpoint
// crash matrix kills at every point: three commits, then a checkpoint
// taken while one transaction is held open across it (its records pinned
// below the fence) and a committer races the snapshot stream into a
// second table, then the straddling transaction commits, more commits
// land, and a second checkpoint truncates at quiescence. It returns the
// durably acknowledged facts; under SyncAlways an acknowledgement means
// the commit record was fsynced, so every acknowledged fact must survive
// a crash anywhere in the stream — including inside the checkpoint's
// snapshot write, fsync and rename.
func fuzzyCheckpointWorkload(fs *faultinject.MemFS) map[string]bool {
	acked := make(map[string]bool)
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		return acked
	}
	db, err := OpenDatabase(w)
	if err != nil {
		return acked
	}
	db.Exec("CREATE TABLE t (k TEXT, v INT)")
	db.Exec("CREATE TABLE u (k TEXT, v INT)")
	var mu sync.Mutex
	commit := func(table, k string, v int) {
		txn := db.Begin()
		txn.Exec(fmt.Sprintf("INSERT INTO %s VALUES ('%s', %d)", table, k, v))
		if txn.Commit() == nil {
			mu.Lock()
			acked[k] = true
			mu.Unlock()
		}
	}
	for i := 0; i < 3; i++ {
		commit("t", fmt.Sprintf("k%d", i), i)
	}

	// One transaction straddles the checkpoint (it holds t's lock, so the
	// racing committer targets u) and one goroutine commits while the
	// snapshot streams out — the "commits continue during Checkpoint"
	// half of the fuzzy contract.
	inflight := db.Begin()
	inflight.Exec("INSERT INTO t VALUES ('mid', 100)")
	var race sync.WaitGroup
	race.Add(1)
	go func() {
		defer race.Done()
		for i := 0; i < 3; i++ {
			commit("u", fmt.Sprintf("c%d", i), 10+i)
		}
	}()
	db.Checkpoint() // seclint:exempt crash workload: a fault-injected checkpoint may legally fail; invariants are checked against acknowledgements
	race.Wait()
	if inflight.Commit() == nil {
		acked["mid"] = true
	}
	for i := 3; i < 5; i++ {
		commit("t", fmt.Sprintf("k%d", i), i)
	}
	db.Checkpoint() // seclint:exempt crash workload: quiescent this time (full tail truncation); may legally fail under injected faults
	commit("t", "k5", 5)
	return acked
}

// fuzzyCheckpointFacts maps every fact the workload can acknowledge to
// the table and value it must recover with.
var fuzzyCheckpointFacts = map[string]struct {
	table string
	v     int64
}{
	"k0": {"t", 0}, "k1": {"t", 1}, "k2": {"t", 2},
	"k3": {"t", 3}, "k4": {"t", 4}, "k5": {"t", 5},
	"mid": {"t", 100},
	"c0":  {"u", 10}, "c1": {"u", 11}, "c2": {"u", 12},
}

// checkFuzzyCheckpointInvariants recovers a post-crash image and asserts
// the fuzzy-checkpoint durability contract: every acknowledged fact is
// present with its exact value (a crash mid-snapshot must fall back to
// the previous snapshot plus the untruncated log — a torn snapshot is
// never accepted), nothing unacknowledged materializes corrupted, and
// recovery of the same image is deterministic.
func checkFuzzyCheckpointInvariants(t *testing.T, img *faultinject.MemFS, acked map[string]bool, desc string) {
	t.Helper()
	db := openDurable(t, img)
	rows := map[string]map[string]int64{
		"t": tableRows(t, db, "t"),
		"u": tableRows(t, db, "u"),
	}
	for fact := range acked {
		wf := fuzzyCheckpointFacts[fact]
		tr := rows[wf.table]
		if tr == nil {
			t.Fatalf("%s: table %s lost but %s was acknowledged", desc, wf.table, fact)
		}
		v, ok := tr[fact]
		if !ok {
			t.Fatalf("%s: acknowledged %s lost across checkpoint crash: rows = %v", desc, fact, tr)
		}
		if v != wf.v {
			t.Fatalf("%s: acknowledged %s recovered as %d, want %d", desc, fact, v, wf.v)
		}
	}
	// No phantom or corrupt rows: everything recovered must be a workload
	// fact in its own table with its exact value.
	for tbl, tr := range rows {
		for k, v := range tr {
			wf, ok := fuzzyCheckpointFacts[k]
			if !ok || wf.table != tbl || wf.v != v {
				t.Fatalf("%s: phantom or corrupt row %s=%d in %s", desc, k, v, tbl)
			}
		}
	}
	assertDBEqual(t, db, openDurable(t, img), desc+" (recover twice)")
}

// TestCrashMatrixFuzzyCheckpoint kills the store at sampled byte offsets
// and inside every fsync of a stream that contains two checkpoints — one
// taken with a transaction straddling it and commits racing the snapshot
// write, one at quiescence. The committer interleaving varies run to run;
// invariants are checked against the acknowledgements each run actually
// handed out. Both legal post-crash images (unsynced tail kept and
// dropped) are recovered at every point.
func TestCrashMatrixFuzzyCheckpoint(t *testing.T) {
	dry := faultinject.NewMemFS()
	acked := fuzzyCheckpointWorkload(dry)
	if len(acked) != len(fuzzyCheckpointFacts) {
		t.Fatalf("dry run acknowledged %d facts, want %d", len(acked), len(fuzzyCheckpointFacts))
	}
	total := dry.BytesWritten()
	syncs := dry.SyncCount()
	if total == 0 || syncs == 0 {
		t.Fatalf("dry run wrote %d bytes, %d fsyncs", total, syncs)
	}

	byteStride, syncStride := int64(23), int64(1)
	if testing.Short() {
		byteStride, syncStride = 197, 3
	}
	points := 0
	for b := int64(0); b < total; b += byteStride {
		fs := faultinject.NewMemFS()
		fs.LimitWriteBytes(b)
		a := fuzzyCheckpointWorkload(fs)
		for _, drop := range []bool{false, true} {
			checkFuzzyCheckpointInvariants(t, fs.AfterCrash(drop), a,
				fmt.Sprintf("checkpoint crash at byte %d dropUnsynced=%v", b, drop))
		}
		points++
	}
	for k := int64(0); k < syncs; k += syncStride {
		fs := faultinject.NewMemFS()
		fs.LimitSyncs(k)
		a := fuzzyCheckpointWorkload(fs)
		for _, drop := range []bool{false, true} {
			checkFuzzyCheckpointInvariants(t, fs.AfterCrash(drop), a,
				fmt.Sprintf("checkpoint crash inside fsync %d dropUnsynced=%v", k, drop))
		}
		points++
	}
	t.Logf("fuzzy-checkpoint crash matrix: %d points × 2 images over ~%d bytes / %d fsyncs", points, total, syncs)
}
