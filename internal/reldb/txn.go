package reldb

import (
	"fmt"
	"sync"
	"time"
)

// lockManager implements table-granularity exclusive locking for writers
// with a wait timeout as the deadlock breaker (two-phase locking:
// transactions acquire as they go and release everything at commit/abort).
//
// Only writers lock. Reads — inside or outside transactions — run against
// a pinned MVCC snapshot and never touch the lock manager, so a writer
// holding a table for the length of a group-commit fsync blocks other
// writers of that table and nobody else.
type lockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
	// Timeout bounds lock waits; a transaction that cannot acquire within
	// it aborts with ErrLockTimeout (deadlock victim).
	Timeout time.Duration
}

type lockState struct {
	writer int64 // 0 = none
}

// ErrLockTimeout is returned when a lock cannot be acquired in time —
// the engine's deadlock resolution.
var ErrLockTimeout = fmt.Errorf("reldb: lock wait timeout (possible deadlock)")

func newLockManager() *lockManager {
	lm := &lockManager{locks: make(map[string]*lockState), Timeout: 2 * time.Second}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

func (lm *lockManager) state(table string) *lockState {
	st := lm.locks[table]
	if st == nil {
		st = &lockState{}
		lm.locks[table] = st
	}
	return st
}

// acquireExclusive takes the table's write lock.
func (lm *lockManager) acquireExclusive(txn int64, table string) error {
	deadline := time.Now().Add(lm.Timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(table)
	for st.writer != 0 && st.writer != txn {
		if !lm.waitUntil(deadline) {
			return ErrLockTimeout
		}
		st = lm.state(table)
	}
	st.writer = txn
	return nil
}

// waitUntil waits on the condition with a deadline; it reports false when
// the deadline passed. The lock is held on entry and exit. Waiters are
// woken promptly by releaseAll's Broadcast; the timer here exists only to
// bound the wait at the deadline (the deadlock breaker), so its firing is
// the slow path, not the wake mechanism.
func (lm *lockManager) waitUntil(deadline time.Time) bool {
	if time.Now().After(deadline) {
		return false
	}
	t := time.AfterFunc(time.Until(deadline)+time.Millisecond, func() {
		// Take the mutex so the broadcast cannot slip into the window
		// between this waiter registering the timer and parking in Wait —
		// an unlocked Broadcast there would be lost and the waiter would
		// oversleep its deadline.
		lm.mu.Lock()
		lm.cond.Broadcast()
		lm.mu.Unlock()
	})
	lm.cond.Wait()
	t.Stop()
	return !time.Now().After(deadline)
}

// releaseAll drops every lock the transaction holds. The Broadcast is what
// makes lock handoff immediate: every waiter re-examines the lock table
// now instead of sleeping until its deadline timer fires (see
// TestLockReleaseWakesWaitersImmediately).
func (lm *lockManager) releaseAll(txn int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		if st.writer == txn {
			st.writer = 0
		}
	}
	lm.cond.Broadcast()
}

// Txn is an explicit transaction: reads run against the MVCC snapshot
// pinned at Begin (plus the transaction's own writes), writes go to
// private working copies of each touched table under strict two-phase
// exclusive locks, and Commit freezes the copies and installs them as the
// next version. Abort simply discards the copies — there is no undo,
// because nothing was ever shared.
type Txn struct {
	id   int64
	db   *Database
	snap *Snapshot
	// work holds the private, mutable copy of every table this transaction
	// has written (clone-on-first-write from the then-current version,
	// taken while holding the table's exclusive lock).
	work map[string]*Table
	done bool
}

// Begin starts a transaction. The Begin record's LSN is assigned in the
// same critical section that registers the transaction as active, so the
// checkpoint fence (durable.go) can prove every record of an in-flight
// transaction lies above its WAL truncation point.
func (db *Database) Begin() *Txn {
	db.mu.Lock()
	db.txnSeq++
	id := db.txnSeq
	beginLSN, _ := db.log.appendAsync(LogRecord{Txn: id, Op: OpBegin})
	db.activeTxns[id] = beginLSN
	db.mu.Unlock()
	return &Txn{id: id, db: db, snap: db.Snapshot(), work: make(map[string]*Table)}
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// writeTable returns the transaction's private copy of the table, taking
// the exclusive lock and cloning from the current committed version on
// first write. Cloning from current (not the Begin-time snapshot) is what
// makes this two-phase locking rather than optimistic snapshot isolation:
// the lock guarantees no other writer touched the table since the version
// was installed, so the copy extends the latest state.
func (t *Txn) writeTable(name string) (*Table, error) {
	if w, ok := t.work[name]; ok {
		return w, nil
	}
	if _, ok := t.db.current.Load().table(name); !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", name)
	}
	if err := t.db.lockMgr.acquireExclusive(t.id, name); err != nil {
		return nil, err
	}
	cur, ok := t.db.current.Load().table(name)
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", name)
	}
	w := cur.clone()
	t.work[name] = w
	return w, nil
}

// Exec parses and executes a statement inside the transaction.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes before transactional work
func (t *Txn) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return t.ExecStmt(st)
}

// ExecStmt executes a parsed statement inside the transaction. DDL is not
// transactional and is rejected here.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes before transactional work
// seclint:sink
func (t *Txn) ExecStmt(st Stmt) (*Result, error) {
	if t.done {
		return nil, fmt.Errorf("reldb: transaction %d already finished", t.id)
	}
	switch s := st.(type) {
	case *SelectStmt:
		// Read-your-writes: a table this transaction has written is read
		// from its working copy; everything else from the pinned snapshot.
		if w, ok := t.work[s.Table]; ok {
			return execSelectTable(w, s)
		}
		return t.snap.ExecSelect(s)

	case *InsertStmt:
		tbl, err := t.writeTable(s.Table)
		if err != nil {
			return nil, err
		}
		if err := t.db.validateRow(s.Table, &tbl.Schema, Row(s.Values)); err != nil {
			return nil, err
		}
		id, err := tbl.Insert(Row(s.Values))
		if err != nil {
			return nil, err
		}
		t.db.log.Append(LogRecord{Txn: t.id, Op: OpInsert, Table: s.Table, RowID: id, After: Row(s.Values).Clone()})
		return &Result{Affected: 1}, nil

	case *UpdateStmt:
		tbl, err := t.writeTable(s.Table)
		if err != nil {
			return nil, err
		}
		ids, rows, err := planScan(tbl, s.Where)
		if err != nil {
			return nil, err
		}
		// Pre-resolve SET columns.
		type setCol struct {
			idx int
			val Value
		}
		var sets []setCol
		for col, v := range s.Set {
			ci := tbl.Schema.ColIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("reldb: unknown column %s", col)
			}
			sets = append(sets, setCol{ci, v})
		}
		n := 0
		for i, id := range ids {
			newRow := rows[i].Clone()
			for _, sc := range sets {
				newRow[sc.idx] = sc.val
			}
			if err := t.db.validateRow(s.Table, &tbl.Schema, newRow); err != nil {
				return nil, err
			}
			before, err := tbl.Update(id, newRow)
			if err != nil {
				return nil, err
			}
			t.db.log.Append(LogRecord{Txn: t.id, Op: OpUpdate, Table: s.Table, RowID: id, Before: before.Clone(), After: newRow})
			n++
		}
		return &Result{Affected: n}, nil

	case *DeleteStmt:
		tbl, err := t.writeTable(s.Table)
		if err != nil {
			return nil, err
		}
		ids, _, err := planScan(tbl, s.Where)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, id := range ids {
			before, err := tbl.Delete(id)
			if err != nil {
				return nil, err
			}
			t.db.log.Append(LogRecord{Txn: t.id, Op: OpDelete, Table: s.Table, RowID: id, Before: before.Clone()})
			n++
		}
		return &Result{Affected: n}, nil
	}
	return nil, fmt.Errorf("reldb: statement not allowed in a transaction")
}

// Commit makes the transaction's changes durable and releases its locks.
// With a durable log under SyncAlways, a nil return means the commit
// record is on disk: the transaction survives any crash. If the backend
// failed to persist any record of the transaction, Commit reports it — the
// in-memory state stays applied, but a caller that needs durability must
// treat the transaction as lost.
//
// The commit record's LSN is assigned and the new version installed in one
// db.mu critical section, so version install order is WAL order: readers
// can never observe commit B without commit A when A's record precedes
// B's. The durability verdict is awaited OUTSIDE db.mu (other committers
// keep installing into the same batched fsync), but the table locks are
// held until the verdict arrives: releasing them earlier would let a
// second transaction read this one's writes and be acknowledged before
// (or without) them ever reaching disk. Concurrent committers therefore
// block inside the same batched fsync, which is exactly the window group
// commit amortizes.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("reldb: transaction %d already finished", t.id)
	}
	t.done = true
	db := t.db
	db.mu.Lock()
	lsn, ack := db.log.appendAsync(LogRecord{Txn: t.id, Op: OpCommit})
	if len(t.work) > 0 {
		frozen := make(map[string]*Table, len(t.work))
		for name, w := range t.work {
			frozen[name] = w.freeze()
		}
		db.installLocked(lsn, frozen)
	}
	delete(db.activeTxns, t.id)
	db.mu.Unlock()
	err := db.log.waitAck(ack)
	db.lockMgr.releaseAll(t.id)
	t.snap.Release()
	t.work = nil
	return err
}

// Abort discards the transaction: its working copies are dropped
// unpublished (no shared state was ever touched, so there is nothing to
// undo), an Abort record marks the log, and the locks are released.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	db := t.db
	db.mu.Lock()
	db.log.appendAsync(LogRecord{Txn: t.id, Op: OpAbort})
	delete(db.activeTxns, t.id)
	db.mu.Unlock()
	db.lockMgr.releaseAll(t.id)
	t.snap.Release()
	t.work = nil
}
