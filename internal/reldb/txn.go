package reldb

import (
	"fmt"
	"sync"
	"time"
)

// lockManager implements table-granularity shared/exclusive locking with a
// wait timeout as the deadlock breaker (two-phase locking: transactions
// acquire as they go and release everything at commit/abort).
type lockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
	// Timeout bounds lock waits; a transaction that cannot acquire within
	// it aborts with ErrLockTimeout (deadlock victim).
	Timeout time.Duration
}

type lockState struct {
	readers map[int64]bool
	writer  int64 // 0 = none
}

// ErrLockTimeout is returned when a lock cannot be acquired in time —
// the engine's deadlock resolution.
var ErrLockTimeout = fmt.Errorf("reldb: lock wait timeout (possible deadlock)")

func newLockManager() *lockManager {
	lm := &lockManager{locks: make(map[string]*lockState), Timeout: 2 * time.Second}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

func (lm *lockManager) state(table string) *lockState {
	st := lm.locks[table]
	if st == nil {
		st = &lockState{readers: make(map[int64]bool)}
		lm.locks[table] = st
	}
	return st
}

// acquireShared takes a read lock for the transaction.
func (lm *lockManager) acquireShared(txn int64, table string) error {
	deadline := time.Now().Add(lm.Timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(table)
	for st.writer != 0 && st.writer != txn {
		if !lm.waitUntil(deadline) {
			return ErrLockTimeout
		}
		st = lm.state(table)
	}
	st.readers[txn] = true
	return nil
}

// acquireExclusive takes (or upgrades to) a write lock.
func (lm *lockManager) acquireExclusive(txn int64, table string) error {
	deadline := time.Now().Add(lm.Timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.state(table)
	for {
		othersReading := false
		for r := range st.readers {
			if r != txn {
				othersReading = true
				break
			}
		}
		if (st.writer == 0 || st.writer == txn) && !othersReading {
			break
		}
		if !lm.waitUntil(deadline) {
			return ErrLockTimeout
		}
		st = lm.state(table)
	}
	st.writer = txn
	delete(st.readers, txn)
	return nil
}

// waitUntil waits on the condition with a deadline; it reports false when
// the deadline passed. The lock is held on entry and exit. Waiters are
// woken promptly by releaseAll's Broadcast; the timer here exists only to
// bound the wait at the deadline (the deadlock breaker), so its firing is
// the slow path, not the wake mechanism.
func (lm *lockManager) waitUntil(deadline time.Time) bool {
	if time.Now().After(deadline) {
		return false
	}
	t := time.AfterFunc(time.Until(deadline)+time.Millisecond, func() {
		// Take the mutex so the broadcast cannot slip into the window
		// between this waiter registering the timer and parking in Wait —
		// an unlocked Broadcast there would be lost and the waiter would
		// oversleep its deadline.
		lm.mu.Lock()
		lm.cond.Broadcast()
		lm.mu.Unlock()
	})
	lm.cond.Wait()
	t.Stop()
	return !time.Now().After(deadline)
}

// releaseAll drops every lock the transaction holds. The Broadcast is what
// makes lock handoff immediate: every waiter re-examines the lock table
// now instead of sleeping until its deadline timer fires (see
// TestLockReleaseWakesWaitersImmediately).
func (lm *lockManager) releaseAll(txn int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		delete(st.readers, txn)
		if st.writer == txn {
			st.writer = 0
		}
	}
	lm.cond.Broadcast()
}

// Txn is an explicit transaction: strict two-phase locking at table
// granularity, undo on abort, commit record in the log.
type Txn struct {
	id     int64
	db     *Database
	undo   []undoRec
	done   bool
	tables map[string]bool // tables touched (for lock release accounting)
}

type undoRec struct {
	op    LogOp
	table string
	rowID int64
	row   Row // before-image for update/delete
}

// Begin starts a transaction.
func (db *Database) Begin() *Txn {
	db.mu.Lock()
	db.txnSeq++
	id := db.txnSeq
	db.activeTxns++
	db.mu.Unlock()
	db.log.Append(LogRecord{Txn: id, Op: OpBegin})
	return &Txn{id: id, db: db, tables: make(map[string]bool)}
}

// endTxn retires a transaction from the in-flight count Checkpoint gates
// on.
func (db *Database) endTxn() {
	db.mu.Lock()
	db.activeTxns--
	db.mu.Unlock()
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// Exec parses and executes a statement inside the transaction.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes before transactional work
func (t *Txn) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return t.ExecStmt(st)
}

// ExecStmt executes a parsed statement inside the transaction. DDL is not
// transactional and is rejected here.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes before transactional work
func (t *Txn) ExecStmt(st Stmt) (*Result, error) {
	if t.done {
		return nil, fmt.Errorf("reldb: transaction %d already finished", t.id)
	}
	switch s := st.(type) {
	case *SelectStmt:
		if err := t.db.lockMgr.acquireShared(t.id, s.Table); err != nil {
			return nil, err
		}
		t.tables[s.Table] = true
		return t.db.execSelect(s)

	case *InsertStmt:
		tbl, ok := t.db.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
		}
		if err := t.db.lockMgr.acquireExclusive(t.id, s.Table); err != nil {
			return nil, err
		}
		t.tables[s.Table] = true
		if err := t.db.validateRow(s.Table, &tbl.Schema, Row(s.Values)); err != nil {
			return nil, err
		}
		id, err := tbl.Insert(Row(s.Values))
		if err != nil {
			return nil, err
		}
		t.db.log.Append(LogRecord{Txn: t.id, Op: OpInsert, Table: s.Table, RowID: id, After: Row(s.Values).Clone()})
		t.undo = append(t.undo, undoRec{op: OpInsert, table: s.Table, rowID: id})
		return &Result{Affected: 1}, nil

	case *UpdateStmt:
		tbl, ok := t.db.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
		}
		if err := t.db.lockMgr.acquireExclusive(t.id, s.Table); err != nil {
			return nil, err
		}
		t.tables[s.Table] = true
		ids, rows, err := planScan(tbl, s.Where)
		if err != nil {
			return nil, err
		}
		// Pre-resolve SET columns.
		type setCol struct {
			idx int
			val Value
		}
		var sets []setCol
		for col, v := range s.Set {
			ci := tbl.Schema.ColIndex(col)
			if ci < 0 {
				return nil, fmt.Errorf("reldb: unknown column %s", col)
			}
			sets = append(sets, setCol{ci, v})
		}
		n := 0
		for i, id := range ids {
			newRow := rows[i].Clone()
			for _, sc := range sets {
				newRow[sc.idx] = sc.val
			}
			if err := t.db.validateRow(s.Table, &tbl.Schema, newRow); err != nil {
				return nil, err
			}
			before, err := tbl.Update(id, newRow)
			if err != nil {
				return nil, err
			}
			t.db.log.Append(LogRecord{Txn: t.id, Op: OpUpdate, Table: s.Table, RowID: id, Before: before.Clone(), After: newRow})
			t.undo = append(t.undo, undoRec{op: OpUpdate, table: s.Table, rowID: id, row: before.Clone()})
			n++
		}
		return &Result{Affected: n}, nil

	case *DeleteStmt:
		tbl, ok := t.db.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
		}
		if err := t.db.lockMgr.acquireExclusive(t.id, s.Table); err != nil {
			return nil, err
		}
		t.tables[s.Table] = true
		ids, _, err := planScan(tbl, s.Where)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, id := range ids {
			before, err := tbl.Delete(id)
			if err != nil {
				return nil, err
			}
			t.db.log.Append(LogRecord{Txn: t.id, Op: OpDelete, Table: s.Table, RowID: id, Before: before.Clone()})
			t.undo = append(t.undo, undoRec{op: OpDelete, table: s.Table, rowID: id, row: before.Clone()})
			n++
		}
		return &Result{Affected: n}, nil
	}
	return nil, fmt.Errorf("reldb: statement not allowed in a transaction")
}

// Commit makes the transaction's changes durable and releases its locks.
// With a durable log under SyncAlways, a nil return means the commit
// record is on disk: the transaction survives any crash. If the backend
// failed to persist any record of the transaction, Commit reports it — the
// in-memory state stays applied, but a caller that needs durability must
// treat the transaction as lost.
//
// The locks are held until the durability verdict arrives: releasing them
// while the commit record is still in the group-commit pipeline would let
// a second transaction read this one's writes and be acknowledged before
// (or without) them ever reaching disk. Concurrent committers therefore
// block inside the same batched fsync, which is exactly the window group
// commit amortizes.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("reldb: transaction %d already finished", t.id)
	}
	t.done = true
	_, err := t.db.log.AppendWait(LogRecord{Txn: t.id, Op: OpCommit})
	t.db.endTxn()
	t.db.lockMgr.releaseAll(t.id)
	return err
}

// Abort rolls the transaction back by applying its undo records in
// reverse, then releases its locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		tbl, ok := t.db.Table(u.table)
		if !ok {
			continue
		}
		switch u.op {
		case OpInsert:
			tbl.Delete(u.rowID)
		case OpUpdate:
			tbl.Update(u.rowID, u.row)
		case OpDelete:
			tbl.insertAt(u.rowID, u.row)
		}
	}
	t.db.log.Append(LogRecord{Txn: t.id, Op: OpAbort})
	t.db.endTxn()
	t.db.lockMgr.releaseAll(t.id)
}
