package reldb

import (
	"fmt"
	"sort"
	"sync"
)

// Result is the outcome of executing a statement.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
}

// Database is the engine: tables, the metadata catalog, and the recovery
// log. Statement execution is autocommit via Exec; multi-statement
// transactions go through Begin (txn.go).
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	log    *Log

	lockMgr *lockManager
	txnSeq  int64
	// activeTxns counts in-flight transactions; Checkpoint requires
	// quiescence (see durable.go). Guarded by mu.
	activeTxns int64
	cons       *constraintSet
}

// NewDatabase returns an empty database with a fresh log.
func NewDatabase() *Database {
	return &Database{
		tables:  make(map[string]*Table),
		log:     NewLog(),
		lockMgr: newLockManager(),
	}
}

// Log returns the database's recovery log.
func (db *Database) Log() *Log { return db.log }

// Table returns a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the table names, sorted — the catalog listing.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec parses and executes one statement in autocommit mode.
//
// seclint:exempt storage engine below the access-control gate; SecureDB.Exec authorizes and rewrites first
func (db *Database) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecStmt executes a parsed statement in autocommit mode: DML runs inside
// an implicit transaction.
//
// seclint:exempt storage engine below the access-control gate; SecureDB.Exec authorizes and rewrites first
func (db *Database) ExecStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt, *CreateIndexStmt:
		return db.execDDL(st)
	case *SelectStmt:
		return db.execSelect(s)
	default:
		txn := db.Begin()
		res, err := txn.ExecStmt(st)
		if err != nil {
			txn.Abort()
			return nil, err
		}
		if err := txn.Commit(); err != nil {
			return nil, err
		}
		return res, nil
	}
}

func (db *Database) execDDL(st Stmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := st.(type) {
	case *CreateTableStmt:
		if _, exists := db.tables[s.Table]; exists {
			return nil, fmt.Errorf("reldb: table %s already exists", s.Table)
		}
		if len(s.Schema.Columns) == 0 {
			return nil, fmt.Errorf("reldb: table %s needs at least one column", s.Table)
		}
		db.tables[s.Table] = NewTable(s.Table, s.Schema)
		db.log.Append(LogRecord{Op: OpCreateTable, Table: s.Table, Schema: &s.Schema})
		return &Result{}, nil
	case *CreateIndexStmt:
		t, ok := db.tables[s.Table]
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
		}
		var err error
		if s.Ordered {
			err = t.CreateOrderedIndex(s.Column)
		} else {
			err = t.CreateHashIndex(s.Column)
		}
		if err != nil {
			return nil, err
		}
		db.log.Append(LogRecord{Op: OpCreateIndex, Table: s.Table, Column: s.Column, Ordered: s.Ordered})
		return &Result{}, nil
	}
	return nil, fmt.Errorf("reldb: not DDL")
}

// execSelect plans and runs a read-only query without transaction
// overhead (reads see committed state; Scan snapshots under the table
// lock).
func (db *Database) execSelect(s *SelectStmt) (*Result, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
	}
	ids, rows, err := planScan(t, s.Where)
	if err != nil {
		return nil, err
	}
	_ = ids
	// Order: multi-key lexicographic, per-key direction.
	if len(s.OrderBy) > 0 {
		keys := make([]int, len(s.OrderBy))
		for i, k := range s.OrderBy {
			ci := t.Schema.ColIndex(k.Col)
			if ci < 0 {
				return nil, fmt.Errorf("reldb: unknown ORDER BY column %s", k.Col)
			}
			keys[i] = ci
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for ki, ci := range keys {
				c := Compare(rows[i][ci], rows[j][ci])
				if c == 0 {
					continue
				}
				if s.OrderBy[ki].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	// Limit.
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	// Project.
	return project(&t.Schema, rows, s.Columns)
}

// project selects the named columns (nil = all) out of rows.
func project(schema *Schema, rows []Row, cols []string) (*Result, error) {
	if cols == nil {
		names := make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			names[i] = c.Name
		}
		return &Result{Columns: names, Rows: rows, Affected: len(rows)}, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := schema.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("reldb: unknown column %s", c)
		}
		idx[i] = ci
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		pr := make(Row, len(idx))
		for j, ci := range idx {
			pr[j] = r[ci]
		}
		out[i] = pr
	}
	return &Result{Columns: append([]string(nil), cols...), Rows: out, Affected: len(out)}, nil
}

// planScan chooses an access path for the predicate: an equality on a
// hash-indexed column or a comparison on an ordered-indexed column is
// served from the index; everything else is a full scan. The full
// predicate is always re-applied to the candidates.
func planScan(t *Table, where Expr) ([]int64, []Row, error) {
	var candIDs []int64
	usedIndex := false
	if cmp := indexableCmp(t, where); cmp != nil {
		switch cmp.Op {
		case "=":
			if ids, ok := t.LookupEq(cmp.Col, cmp.Val); ok {
				candIDs, usedIndex = ids, true
			}
		case "<", "<=":
			hi := cmp.Val
			if ids, ok := t.LookupRange(cmp.Col, nil, &hi); ok {
				candIDs, usedIndex = ids, true
			}
		case ">", ">=":
			lo := cmp.Val
			if ids, ok := t.LookupRange(cmp.Col, &lo, nil); ok {
				candIDs, usedIndex = ids, true
			}
		}
	}
	var ids []int64
	var rows []Row
	check := func(id int64, r Row) (bool, error) {
		if where == nil {
			return true, nil
		}
		return where.Eval(&t.Schema, r)
	}
	if usedIndex {
		for _, id := range candIDs {
			r, ok := t.Get(id)
			if !ok {
				continue
			}
			ok2, err := check(id, r)
			if err != nil {
				return nil, nil, err
			}
			if ok2 {
				ids = append(ids, id)
				rows = append(rows, r)
			}
		}
		return ids, rows, nil
	}
	var scanErr error
	t.Scan(func(id int64, r Row) bool {
		ok, err := check(id, r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			ids = append(ids, id)
			rows = append(rows, r.Clone())
		}
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return ids, rows, nil
}

// indexableCmp digs a comparison usable as an access path out of the
// predicate: the expression itself, or a conjunct of a top-level AND
// chain, whose column carries a suitable index. Strict operators <, <=,
// >, >= need an ordered index; = needs a hash index.
func indexableCmp(t *Table, where Expr) *CmpExpr {
	switch e := where.(type) {
	case *CmpExpr:
		if e.Op == "=" && t.HasHashIndex(e.Col) {
			return e
		}
		if e.Op != "=" && e.Op != "!=" && t.HasOrderedIndex(e.Col) {
			return e
		}
	case *AndExpr:
		if c := indexableCmp(t, e.L); c != nil {
			return c
		}
		return indexableCmp(t, e.R)
	}
	return nil
}
