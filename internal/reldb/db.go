package reldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Result is the outcome of executing a statement.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
}

// Database is the engine: a multi-versioned table heap, the metadata
// catalog, and the recovery log. Statement execution is autocommit via
// Exec; multi-statement transactions go through Begin (txn.go).
//
// Concurrency model (version.go has the full story): the committed state
// is an immutable dbVersion behind an atomic pointer. Readers Load it and
// never block — SELECTs, catalog lookups and snapshots take no mutex.
// db.mu is a writer-side lock only: it serializes version installs,
// transaction bookkeeping, DDL and checkpoint fencing.
type Database struct {
	// mu serializes writers (installs, txn bookkeeping, DDL, checkpoint
	// fencing). The read path never takes it.
	mu  sync.Mutex
	log *Log

	// current is the committed version; readers Load it lock-free, writers
	// Store a successor under mu.
	current atomic.Pointer[dbVersion] // seclint:atomicptr mu

	// retained holds superseded versions until no snapshot pins them.
	retained []*dbVersion // seclint:guardedby mu
	vstats   VersionStats // seclint:guardedby mu

	lockMgr *lockManager
	txnSeq  int64 // seclint:guardedby mu
	// activeTxns maps each in-flight transaction id to the LSN of its Begin
	// record. Fuzzy Checkpoint truncates the WAL at
	// min(fence, min(activeTxns)-1) so no in-flight transaction's records
	// are lost (durable.go).
	activeTxns map[int64]int64 // seclint:guardedby mu
	cons       *constraintSet  // seclint:guardedby mu
}

// NewDatabase returns an empty database with a fresh log.
//
// seclint:locked db is not yet published; no other goroutine holds a reference before NewDatabase returns
func NewDatabase() *Database {
	db := &Database{
		log:        NewLog(),
		lockMgr:    newLockManager(),
		activeTxns: make(map[int64]int64),
	}
	db.current.Store(&dbVersion{tables: make(map[string]*Table)})
	return db
}

// Log returns the database's recovery log.
func (db *Database) Log() *Log { return db.log }

// Table returns the committed version of a table by name. Lock-free; the
// returned table is frozen and safe for concurrent reads, but a caller
// making several calls sees potentially different versions — pin a
// Snapshot for a consistent multi-table view.
func (db *Database) Table(name string) (*Table, bool) {
	return db.current.Load().table(name)
}

// Tables returns the table names, sorted — the catalog listing. Lock-free.
func (db *Database) Tables() []string {
	return db.current.Load().tableNames()
}

// Exec parses and executes one statement in autocommit mode.
//
// seclint:exempt storage engine below the access-control gate; SecureDB.Exec authorizes and rewrites first
func (db *Database) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecStmt executes a parsed statement in autocommit mode: DML runs inside
// an implicit transaction.
//
// seclint:exempt storage engine below the access-control gate; SecureDB.Exec authorizes and rewrites first
// seclint:sink
func (db *Database) ExecStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt, *CreateIndexStmt:
		return db.execDDL(st)
	case *SelectStmt:
		return db.execSelect(s)
	default:
		txn := db.Begin()
		res, err := txn.ExecStmt(st)
		if err != nil {
			txn.Abort()
			return nil, err
		}
		if err := txn.Commit(); err != nil {
			return nil, err
		}
		return res, nil
	}
}

func (db *Database) execDDL(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		if len(s.Schema.Columns) == 0 {
			return nil, fmt.Errorf("reldb: table %s needs at least one column", s.Table)
		}
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.current.Load().table(s.Table); exists {
			return nil, fmt.Errorf("reldb: table %s already exists", s.Table)
		}
		lsn, _ := db.log.appendAsync(LogRecord{Op: OpCreateTable, Table: s.Table, Schema: &s.Schema})
		db.installLocked(lsn, map[string]*Table{s.Table: NewTable(s.Table, s.Schema).freeze()})
		return &Result{}, nil

	case *CreateIndexStmt:
		// Serialize against transactional writers through the lock manager:
		// a writer holding the table lock has a private working copy this
		// index build must not race (its commit would otherwise install a
		// table version without the index). The lock is taken BEFORE db.mu —
		// the writer may be blocked in Commit waiting for db.mu, and taking
		// the table lock second would stall every commit behind the wait.
		db.mu.Lock()
		db.txnSeq++
		owner := db.txnSeq
		db.mu.Unlock()
		if err := db.lockMgr.acquireExclusive(owner, s.Table); err != nil {
			return nil, err
		}
		defer db.lockMgr.releaseAll(owner)

		db.mu.Lock()
		defer db.mu.Unlock()
		cur, ok := db.current.Load().table(s.Table)
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
		}
		work := cur.clone()
		var err error
		if s.Ordered {
			err = work.CreateOrderedIndex(s.Column)
		} else {
			err = work.CreateHashIndex(s.Column)
		}
		if err != nil {
			return nil, err
		}
		lsn, _ := db.log.appendAsync(LogRecord{Op: OpCreateIndex, Table: s.Table, Column: s.Column, Ordered: s.Ordered})
		db.installLocked(lsn, map[string]*Table{s.Table: work.freeze()})
		return &Result{}, nil
	}
	return nil, fmt.Errorf("reldb: not DDL")
}

// execSelect plans and runs a read-only query against the current
// committed version. Lock-free: the version is loaded once, so the query
// sees one consistent state no matter what commits concurrently.
func (db *Database) execSelect(s *SelectStmt) (*Result, error) {
	return execSelectVersion(db.current.Load(), s)
}

// execSelectVersion runs a SELECT against one pinned version.
func execSelectVersion(v *dbVersion, s *SelectStmt) (*Result, error) {
	t, ok := v.table(s.Table)
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", s.Table)
	}
	return execSelectTable(t, s)
}

// execSelectTable runs a SELECT against one table state (a frozen version
// table, or a transaction's private working copy for read-your-writes).
func execSelectTable(t *Table, s *SelectStmt) (*Result, error) {
	_, rows, err := planScan(t, s.Where)
	if err != nil {
		return nil, err
	}
	// Order: multi-key lexicographic, per-key direction.
	if len(s.OrderBy) > 0 {
		keys := make([]int, len(s.OrderBy))
		for i, k := range s.OrderBy {
			ci := t.Schema.ColIndex(k.Col)
			if ci < 0 {
				return nil, fmt.Errorf("reldb: unknown ORDER BY column %s", k.Col)
			}
			keys[i] = ci
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for ki, ci := range keys {
				c := Compare(rows[i][ci], rows[j][ci])
				if c == 0 {
					continue
				}
				if s.OrderBy[ki].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	// Limit.
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	// Project.
	return project(&t.Schema, rows, s.Columns)
}

// project selects the named columns (nil = all) out of rows.
func project(schema *Schema, rows []Row, cols []string) (*Result, error) {
	if cols == nil {
		names := make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			names[i] = c.Name
		}
		return &Result{Columns: names, Rows: rows, Affected: len(rows)}, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := schema.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("reldb: unknown column %s", c)
		}
		idx[i] = ci
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		pr := make(Row, len(idx))
		for j, ci := range idx {
			pr[j] = r[ci]
		}
		out[i] = pr
	}
	return &Result{Columns: append([]string(nil), cols...), Rows: out, Affected: len(out)}, nil
}

// planScan chooses an access path for the predicate: an equality on a
// hash-indexed column or a comparison on an ordered-indexed column is
// served from the index; everything else is a full scan. The full
// predicate is always re-applied to the candidates.
func planScan(t *Table, where Expr) ([]int64, []Row, error) {
	var candIDs []int64
	usedIndex := false
	if cmp := indexableCmp(t, where); cmp != nil {
		switch cmp.Op {
		case "=":
			if ids, ok := t.LookupEq(cmp.Col, cmp.Val); ok {
				candIDs, usedIndex = ids, true
			}
		case "<", "<=":
			hi := cmp.Val
			if ids, ok := t.LookupRange(cmp.Col, nil, &hi); ok {
				candIDs, usedIndex = ids, true
			}
		case ">", ">=":
			lo := cmp.Val
			if ids, ok := t.LookupRange(cmp.Col, &lo, nil); ok {
				candIDs, usedIndex = ids, true
			}
		}
	}
	var ids []int64
	var rows []Row
	check := func(id int64, r Row) (bool, error) {
		if where == nil {
			return true, nil
		}
		return where.Eval(&t.Schema, r)
	}
	if usedIndex {
		for _, id := range candIDs {
			r, ok := t.Get(id)
			if !ok {
				continue
			}
			ok2, err := check(id, r)
			if err != nil {
				return nil, nil, err
			}
			if ok2 {
				ids = append(ids, id)
				rows = append(rows, r)
			}
		}
		return ids, rows, nil
	}
	var scanErr error
	t.Scan(func(id int64, r Row) bool {
		ok, err := check(id, r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			ids = append(ids, id)
			rows = append(rows, r.Clone())
		}
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return ids, rows, nil
}

// indexableCmp digs a comparison usable as an access path out of the
// predicate: the expression itself, or a conjunct of a top-level AND
// chain, whose column carries a suitable index. Strict operators <, <=,
// >, >= need an ordered index; = needs a hash index.
func indexableCmp(t *Table, where Expr) *CmpExpr {
	switch e := where.(type) {
	case *CmpExpr:
		if e.Op == "=" && t.HasHashIndex(e.Col) {
			return e
		}
		if e.Op != "=" && e.Op != "!=" && t.HasOrderedIndex(e.Col) {
			return e
		}
	case *AndExpr:
		if c := indexableCmp(t, e.L); c != nil {
			return c
		}
		return indexableCmp(t, e.R)
	}
	return nil
}
