package reldb

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openDurable(t *testing.T, fs wal.FS) *Database {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	db, err := OpenDatabase(w)
	if err != nil {
		t.Fatalf("OpenDatabase: %v", err)
	}
	return db
}

// tableRows reads table name as a map k -> v, or nil when the table does
// not exist. The test schema is always (k TEXT, v INT).
func tableRows(t *testing.T, db *Database, name string) map[string]int64 {
	t.Helper()
	if _, ok := db.Table(name); !ok {
		return nil
	}
	res, err := db.Exec(fmt.Sprintf("SELECT k, v FROM %s", name))
	if err != nil {
		t.Fatalf("SELECT: %v", err)
	}
	out := make(map[string]int64, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].S] = r[1].I
	}
	return out
}

// assertDBEqual compares two databases structurally: table set, schemas,
// rows with their stable rowIDs, rowID high-water marks, index sets and
// the transaction sequence.
func assertDBEqual(t *testing.T, a, b *Database, desc string) {
	t.Helper()
	if !reflect.DeepEqual(a.Tables(), b.Tables()) {
		t.Fatalf("%s: table sets differ: %v vs %v", desc, a.Tables(), b.Tables())
	}
	if a.txnSeq != b.txnSeq {
		t.Fatalf("%s: txnSeq %d vs %d", desc, a.txnSeq, b.txnSeq)
	}
	for _, name := range a.Tables() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		sa, sb := ta.snapshot(), tb.snapshot()
		sort.Slice(sa.Rows, func(i, j int) bool { return sa.Rows[i].ID < sa.Rows[j].ID })
		sort.Slice(sb.Rows, func(i, j int) bool { return sb.Rows[i].ID < sb.Rows[j].ID })
		sort.Strings(sa.HashIdx)
		sort.Strings(sb.HashIdx)
		sort.Strings(sa.OrdIdx)
		sort.Strings(sb.OrdIdx)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("%s: table %s differs:\n%+v\nvs\n%+v", desc, name, sa, sb)
		}
	}
}

func TestOpenCheckpointReopen(t *testing.T) {
	fs := faultinject.NewMemFS()
	db := openDurable(t, fs)
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INT)")
	mustExec(t, db, "CREATE HASH INDEX ON t (k)")
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES ('k%d', %d)", i, i))
	}
	if !db.Log().Durable() {
		t.Fatal("log not durable")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if db.Log().Len() != 0 {
		t.Fatalf("in-memory log not truncated by checkpoint: %d records", db.Log().Len())
	}
	// Post-checkpoint tail.
	mustExec(t, db, "INSERT INTO t VALUES ('k5', 5)")
	mustExec(t, db, "DELETE FROM t WHERE k = 'k0'")

	db2 := openDurable(t, fs)
	rows := tableRows(t, db2, "t")
	if len(rows) != 5 {
		t.Fatalf("recovered %d rows, want 5: %v", len(rows), rows)
	}
	if _, ok := rows["k0"]; ok {
		t.Fatal("deleted row k0 reappeared")
	}
	if rows["k5"] != 5 {
		t.Fatalf("post-checkpoint insert lost: %v", rows)
	}
	tbl, _ := db2.Table("t")
	if !tbl.HasHashIndex("k") {
		t.Fatal("index not recovered")
	}
	// A transaction started on the recovered database gets a fresh id.
	txn := db2.Begin()
	if txn.ID() <= db.txnSeq-1 && txn.ID() == 0 {
		t.Fatalf("recovered txnSeq did not advance: %d", txn.ID())
	}
	txn.Abort()
}

// TestCheckpointFuzzyWithActiveTxns asserts the fuzzy-checkpoint contract
// that replaced the old ErrActiveTxns quiescence requirement: Checkpoint
// succeeds with transactions in flight, the snapshot covers exactly the
// committed state, and the in-flight transaction — whose records the fence
// keeps below the WAL truncation point — commits afterwards and survives
// recovery.
func TestCheckpointFuzzyWithActiveTxns(t *testing.T) {
	fs := faultinject.NewMemFS()
	db := openDurable(t, fs)
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES ('before', 1)")

	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO t VALUES ('inflight', 2)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint with txn in flight: %v", err)
	}
	// The uncommitted write is invisible to the checkpointed state and to
	// concurrent readers.
	if rows := tableRows(t, db, "t"); len(rows) != 1 || rows["before"] != 1 {
		t.Fatalf("uncommitted write leaked into committed state: %v", rows)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit after fuzzy checkpoint: %v", err)
	}

	db2 := openDurable(t, fs)
	rows := tableRows(t, db2, "t")
	if rows["before"] != 1 || rows["inflight"] != 2 || len(rows) != 2 {
		t.Fatalf("recovery after fuzzy checkpoint: rows = %v, want before=1 inflight=2", rows)
	}

	// A second checkpoint at quiescence truncates the tail completely.
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint at quiescence: %v", err)
	}
	assertDBEqual(t, db2, openDurable(t, fs), "reopen after quiescent checkpoint")
}

func TestCommitReportsLostDurability(t *testing.T) {
	fs := faultinject.NewMemFS()
	db := openDurable(t, fs)
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INT)")
	fs.Crash()
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO t VALUES ('x', 1)"); err != nil {
		t.Fatalf("in-memory exec must survive backend loss: %v", err)
	}
	if err := txn.Commit(); err == nil {
		t.Fatal("Commit acknowledged a transaction the backend never saw")
	}
	if db.Log().Err() == nil {
		t.Fatal("backend failure did not stick")
	}
}

// crashWorkload is the scripted workload the crash matrix kills at every
// point: DDL, five committing insert transactions, one aborting one, and a
// final transaction updating k0 and deleting k1. It returns the set of
// durably acknowledged facts — "kN" for each insert transaction whose
// Commit returned nil, "mod" for the update/delete transaction. Under
// SyncAlways an acknowledgement means the commit record was fsynced, so
// every acknowledged fact must survive any crash.
func crashWorkload(fs *faultinject.MemFS) map[string]bool {
	acked := make(map[string]bool)
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		return acked
	}
	db, err := OpenDatabase(w)
	if err != nil {
		return acked
	}
	db.Exec("CREATE TABLE t (k TEXT, v INT)")
	db.Exec("CREATE HASH INDEX ON t (k)")
	for i := 0; i < 6; i++ {
		txn := db.Begin()
		txn.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%d', %d)", i, i))
		if i == 2 {
			txn.Abort()
			continue
		}
		if txn.Commit() == nil {
			acked[fmt.Sprintf("k%d", i)] = true
		}
	}
	txn := db.Begin()
	txn.Exec("UPDATE t SET v = 100 WHERE k = 'k0'")
	txn.Exec("DELETE FROM t WHERE k = 'k1'")
	if txn.Commit() == nil {
		acked["mod"] = true
	}
	return acked
}

// checkCrashInvariants recovers a database from a post-crash disk image
// and asserts the durability contract against the workload's
// acknowledgements:
//
//   - every acknowledged transaction's effects are present;
//   - the aborted transaction's row is absent;
//   - the update/delete transaction applied atomically (both effects or
//     neither);
//   - recovering the same image twice yields identical databases.
func checkCrashInvariants(t *testing.T, img *faultinject.MemFS, acked map[string]bool, desc string) {
	t.Helper()
	db := openDurable(t, img)
	rows := tableRows(t, db, "t")
	if rows == nil {
		if len(acked) > 0 {
			t.Fatalf("%s: table lost but %d transactions were acknowledged", desc, len(acked))
		}
		return
	}
	modApplied := rows["k0"] == 100
	for fact := range acked {
		switch fact {
		case "mod":
			if !modApplied {
				t.Fatalf("%s: acknowledged update of k0 lost: rows = %v", desc, rows)
			}
			if _, ok := rows["k1"]; ok {
				t.Fatalf("%s: acknowledged delete of k1 lost: rows = %v", desc, rows)
			}
		case "k1":
			if _, ok := rows["k1"]; !ok && !modApplied {
				t.Fatalf("%s: acknowledged insert k1 lost: rows = %v", desc, rows)
			}
		default:
			if _, ok := rows[fact]; !ok {
				t.Fatalf("%s: acknowledged insert %s lost: rows = %v", desc, fact, rows)
			}
		}
	}
	if _, ok := rows["k2"]; ok {
		t.Fatalf("%s: aborted transaction's row survived recovery: rows = %v", desc, rows)
	}
	// Atomicity of the final transaction: its two effects appear together
	// or not at all.
	if _, k1Present := rows["k1"]; modApplied && k1Present {
		t.Fatalf("%s: update applied but delete lost: rows = %v", desc, rows)
	}
	// No phantom rows.
	for k, v := range rows {
		want := map[string]int64{"k0": 0, "k1": 1, "k3": 3, "k4": 4, "k5": 5}
		if k == "k0" && modApplied {
			want["k0"] = 100
		}
		if wv, ok := want[k]; !ok || wv != v {
			t.Fatalf("%s: phantom or corrupt row %s=%d: rows = %v", desc, k, v, rows)
		}
	}
	// Determinism: recovery of the same image is idempotent.
	assertDBEqual(t, db, openDurable(t, img), desc+" (recover twice)")
}

// crashAt runs the workload against a filesystem armed to die at the given
// write-byte or fsync crash point, then checks recovery under both legal
// post-crash images (unsynced tail kept and dropped).
func crashAt(t *testing.T, writeLimit, syncLimit int64, desc string) {
	t.Helper()
	fs := faultinject.NewMemFS()
	if writeLimit >= 0 {
		fs.LimitWriteBytes(writeLimit)
	}
	if syncLimit >= 0 {
		fs.LimitSyncs(syncLimit)
	}
	acked := crashWorkload(fs)
	for _, drop := range []bool{false, true} {
		checkCrashInvariants(t, fs.AfterCrash(drop), acked,
			fmt.Sprintf("%s dropUnsynced=%v", desc, drop))
	}
}

// TestCrashMatrixRecordBoundaries kills the store exactly after each WAL
// frame lands — the "crash between any two records" axis of the matrix.
func TestCrashMatrixRecordBoundaries(t *testing.T) {
	fs0 := faultinject.NewMemFS()
	acked := crashWorkload(fs0)
	if len(acked) != 6 {
		t.Fatalf("dry run acknowledged %d facts, want 6", len(acked))
	}
	// Reconstruct the frame boundaries of the write stream from the dry
	// run's segments (appends are the only writes in this workload).
	var boundaries []int64
	var off int64
	names, _ := fs0.List()
	for _, name := range names {
		data, _ := fs0.ReadFile(name)
		rest := data
		for len(rest) > 0 {
			_, _, next, err := wal.DecodeFrame(rest)
			if err != nil {
				t.Fatalf("dry-run segment %s has bad frame: %v", name, err)
			}
			off += int64(len(rest) - len(next))
			boundaries = append(boundaries, off)
			rest = next
		}
	}
	if len(boundaries) < 20 {
		t.Fatalf("dry run produced only %d records", len(boundaries))
	}
	if boundaries[len(boundaries)-1] != fs0.BytesWritten() {
		t.Fatalf("frame boundaries (%d) disagree with write stream (%d)",
			boundaries[len(boundaries)-1], fs0.BytesWritten())
	}
	for _, b := range append([]int64{0}, boundaries...) {
		crashAt(t, b, -1, fmt.Sprintf("crash at record boundary %d", b))
	}
	t.Logf("crash matrix: %d record-boundary points × 2 images over a %d-byte stream",
		len(boundaries)+1, fs0.BytesWritten())
}

// TestCrashMatrixByteGranular kills the store inside frames — a stride
// sample over every byte offset of the write stream, so torn frames at
// arbitrary positions are exercised, not just clean record boundaries.
func TestCrashMatrixByteGranular(t *testing.T) {
	fs0 := faultinject.NewMemFS()
	crashWorkload(fs0)
	total := fs0.BytesWritten()
	// 13 is coprime to the frame sizes in play, so successive runs land at
	// different offsets within frames.
	points := 0
	for b := int64(1); b < total; b += 13 {
		crashAt(t, b, -1, fmt.Sprintf("crash at byte %d", b))
		points++
	}
	t.Logf("crash matrix: %d byte-granular points × 2 images over a %d-byte stream", points, total)
}

// TestCrashMatrixMidFsync kills the store inside every fsync of the
// workload: the barrier never completes, so the bytes it covered are
// allowed to vanish — and the acknowledgement that would have followed was
// never given.
func TestCrashMatrixMidFsync(t *testing.T) {
	fs0 := faultinject.NewMemFS()
	acked := crashWorkload(fs0)
	syncs := fs0.SyncCount()
	// Group commit coalesced the old one-fsync-per-append stream into one
	// barrier per acknowledged commit: the workload's DML and abort frames
	// ride the next commit's batch. Exactly the acknowledged commits fsync.
	if syncs < int64(len(acked)) {
		t.Fatalf("dry run performed only %d fsyncs for %d acknowledged commits", syncs, len(acked))
	}
	for k := int64(0); k < syncs; k++ {
		crashAt(t, -1, k, fmt.Sprintf("crash inside fsync %d", k))
	}
	t.Logf("crash matrix: %d mid-fsync points × 2 images", syncs)
}
