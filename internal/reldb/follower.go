package reldb

import (
	"encoding/json"
	"fmt"
	"sync"

	"webdbsec/internal/wal"
)

// Follower is the replica-side replay engine: it consumes the leader's log
// records one at a time — in LSN order, as the replication layer hands
// them over — and maintains a read-only materialization of the committed
// state through the same redo path recovery uses (applyRecords). DML for a
// transaction is buffered until its Commit record arrives, so the
// follower's database only ever shows transaction-atomic states; an Abort
// drops the buffer, exactly mirroring what crash recovery would do.
//
// The replication layer owns the follower's local WAL (it appends shipped
// frames, truncates on divergence, installs snapshots); the Follower only
// tracks the in-memory materialization. On failover, Promote turns the
// materialization into a writable Database anchored at the WAL position.
type Follower struct {
	mu sync.Mutex
	db *Database // seclint:guardedby mu
	w  *wal.WAL
	// appliedLSN is the highest LSN consumed by Apply (or restored from
	// the local WAL / an installed snapshot).
	appliedLSN uint64 // seclint:guardedby mu
	// pending buffers DML of transactions whose Commit has not arrived.
	pending map[int64][]LogRecord // seclint:guardedby mu
	// recs mirrors every consumed record, so a promoted database carries
	// the same in-memory log a crash-recovered one would.
	recs []LogRecord // seclint:guardedby mu
	// promoted poisons further Apply/Restore calls once the follower has
	// handed its database over.
	promoted bool // seclint:guardedby mu
}

// OpenFollower recovers a follower's materialization from its local WAL:
// snapshot restored, committed transactions redone, uncommitted tails
// re-buffered (their Commit may still arrive from the leader). The
// replication layer keeps owning w for appends.
//
// Unlike OpenDatabase it reads the log through a cursor, not Replay, so it
// works on a live WAL too — the demote path reopens a follower over the
// same WAL instance an ex-leader has been writing to since process start,
// and Replay only ever sees the recovery-time tail. The pipeline is
// drained first so the cursor (bounded by the durable watermark) covers
// every appended record.
//
// seclint:locked f is not yet published; no other goroutine holds a reference before OpenFollower returns
func OpenFollower(w *wal.WAL) (*Follower, error) {
	if err := w.Sync(); err != nil {
		return nil, fmt.Errorf("reldb: follower open: %w", err)
	}
	f := &Follower{w: w, pending: make(map[int64][]LogRecord)}
	db := NewDatabase()
	var snapTxnSeq int64
	payload, snapLSN, hasSnap := w.Snapshot()
	if hasSnap {
		if err := restoreSnap(db, payload, &snapTxnSeq); err != nil {
			return nil, err
		}
	}
	cur, err := w.OpenCursor(snapLSN)
	if err != nil {
		return nil, fmt.Errorf("reldb: follower open: %w", err)
	}
	var recs []LogRecord
	applied := snapLSN
	for {
		r, ok, err := cur.Next()
		if err != nil {
			return nil, fmt.Errorf("reldb: follower open: %w", err)
		}
		if !ok {
			break
		}
		rec, err := decodeLogRecord(r.Payload)
		if err != nil {
			return nil, err
		}
		rec.LSN = int64(r.LSN)
		recs = append(recs, rec)
		applied = r.LSN
	}
	committed := committedTxns(recs)
	if err := applyRecords(db, recs, committed); err != nil {
		return nil, err
	}
	// Transactions with neither Commit nor Abort stay buffered: their
	// verdict is still in flight on the leader.
	aborted := map[int64]bool{}
	for _, r := range recs {
		if r.Op == OpAbort {
			aborted[r.Txn] = true
		}
	}
	for _, r := range recs {
		switch r.Op {
		case OpInsert, OpUpdate, OpDelete:
			if !committed[r.Txn] && !aborted[r.Txn] {
				f.pending[r.Txn] = append(f.pending[r.Txn], r)
			}
		}
	}
	db.txnSeq = snapTxnSeq
	if mt := maxTxn(recs); mt > db.txnSeq {
		db.txnSeq = mt
	}
	f.db = db
	f.recs = recs
	// The position is what the cursor actually delivered — under a
	// concurrent appender (demote racing the new leader's stream) this can
	// trail LastLSN; the replication layer re-applies the gap from here.
	f.appliedLSN = applied
	return f, nil
}

// restoreSnap rebuilds db from a dbSnap payload.
func restoreSnap(db *Database, payload []byte, txnSeq *int64) error {
	var snap dbSnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("reldb: decode snapshot: %w", err)
	}
	*txnSeq = snap.TxnSeq
	for i := range snap.Tables {
		t, err := snap.Tables[i].restore()
		if err != nil {
			return err
		}
		db.tables[t.Name] = t
	}
	return nil
}

// Apply consumes one replicated log record. Records must arrive in strict
// LSN order; the replication layer guarantees it only hands over records
// at or below the cluster commit watermark, so everything Apply
// materializes is durable on a quorum.
func (f *Follower) Apply(lsn uint64, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return fmt.Errorf("reldb: follower already promoted")
	}
	if lsn != f.appliedLSN+1 {
		return fmt.Errorf("reldb: follower apply LSN %d, want %d", lsn, f.appliedLSN+1)
	}
	rec, err := decodeLogRecord(payload)
	if err != nil {
		return err
	}
	rec.LSN = int64(lsn)
	switch rec.Op {
	case OpCreateTable, OpCreateIndex:
		// DDL applies unconditionally, as in recovery.
		if err := applyRecords(f.db, []LogRecord{rec}, nil); err != nil {
			return err
		}
	case OpBegin:
		f.pending[rec.Txn] = nil
	case OpInsert, OpUpdate, OpDelete:
		f.pending[rec.Txn] = append(f.pending[rec.Txn], rec)
	case OpCommit:
		buf := f.pending[rec.Txn]
		delete(f.pending, rec.Txn)
		if err := applyRecords(f.db, buf, map[int64]bool{rec.Txn: true}); err != nil {
			return err
		}
	case OpAbort:
		delete(f.pending, rec.Txn)
	default:
		return fmt.Errorf("reldb: follower apply: unknown op %d at lsn %d", rec.Op, lsn)
	}
	f.recs = append(f.recs, rec)
	f.appliedLSN = lsn
	f.db.mu.Lock()
	if rec.Txn > f.db.txnSeq {
		f.db.txnSeq = rec.Txn
	}
	f.db.mu.Unlock()
	return nil
}

// Restore replaces the follower's materialization with a leader snapshot
// (full resync): the replication layer has already installed it into the
// local WAL at lsn.
func (f *Follower) Restore(lsn uint64, snapshot []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return fmt.Errorf("reldb: follower already promoted")
	}
	db := NewDatabase()
	var txnSeq int64
	// An empty snapshot is a reset to genesis: a leader that has never
	// checkpointed resyncs divergent followers by wiping them and
	// streaming its whole log.
	if len(snapshot) > 0 {
		if err := restoreSnap(db, snapshot, &txnSeq); err != nil {
			return err
		}
	}
	db.txnSeq = txnSeq
	f.db = db
	f.pending = make(map[int64][]LogRecord)
	f.recs = nil
	f.appliedLSN = lsn
	return nil
}

// AppliedLSN returns the highest LSN the follower has consumed.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedLSN
}

// DB returns the follower's materialized database for READ access only —
// replica reads go through the same access-control gate as leader reads,
// wrapped around this database. Writing to it would diverge the replica;
// the replication layer never exposes it for writes.
func (f *Follower) DB() *Database {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// Promote turns the follower into a writable database anchored at its WAL
// position — the failover step, after the replication layer has applied
// every locally-durable record. Transactions still pending (no Commit
// record shipped before the old leader died) are dropped, exactly as
// crash recovery drops uncommitted tails. The follower is dead
// afterwards: further Apply/Restore calls fail.
func (f *Follower) Promote() (*Database, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, fmt.Errorf("reldb: follower already promoted")
	}
	if f.w != nil && f.appliedLSN != f.w.LastLSN() {
		return nil, fmt.Errorf("reldb: promote at applied LSN %d, wal at %d", f.appliedLSN, f.w.LastLSN())
	}
	f.promoted = true
	db := f.db
	db.log.mu.Lock()
	db.log.records = f.recs
	db.log.nextLSN = int64(f.appliedLSN)
	db.log.w = f.w
	db.log.mu.Unlock()
	f.pending = nil
	return db, nil
}
