package reldb

import (
	"fmt"
	"sync"

	"webdbsec/internal/wal"
)

// Follower is the replica-side replay engine: it consumes the leader's log
// records one at a time — in LSN order, as the replication layer hands
// them over — and maintains a read-only materialization of the committed
// state through the same redo path recovery uses (applyRecords). DML for a
// transaction is buffered until its Commit record arrives, then staged and
// installed as one new version stamped with the Commit record's LSN — so
// the follower's database moves through exactly the same version sequence
// as the leader's, and replica reads are lock-free snapshot reads like
// leader reads. An Abort drops the buffer, exactly mirroring what crash
// recovery would do.
//
// The replication layer owns the follower's local WAL (it appends shipped
// frames, truncates on divergence, installs snapshots); the Follower only
// tracks the in-memory materialization. On failover, Promote turns the
// materialization into a writable Database anchored at the WAL position.
type Follower struct {
	mu sync.Mutex
	db *Database // seclint:guardedby mu
	w  *wal.WAL
	// appliedLSN is the highest LSN consumed by Apply (or restored from
	// the local WAL / an installed snapshot).
	appliedLSN uint64 // seclint:guardedby mu
	// fence is the FenceLSN of the snapshot this follower restored from: a
	// fuzzy leader snapshot already contains commits and DDL up to it, so
	// replayed records at or below the fence must not be applied twice.
	fence int64 // seclint:guardedby mu
	// pending buffers DML of transactions whose Commit has not arrived.
	pending map[int64][]LogRecord // seclint:guardedby mu
	// recs mirrors every consumed record, so a promoted database carries
	// the same in-memory log a crash-recovered one would.
	recs []LogRecord // seclint:guardedby mu
	// promoted poisons further Apply/Restore calls once the follower has
	// handed its database over.
	promoted bool // seclint:guardedby mu
}

// OpenFollower recovers a follower's materialization from its local WAL:
// snapshot restored, committed transactions redone, uncommitted tails
// re-buffered (their Commit may still arrive from the leader). The
// replication layer keeps owning w for appends.
//
// Unlike OpenDatabase it reads the log through a cursor, not Replay, so it
// works on a live WAL too — the demote path reopens a follower over the
// same WAL instance an ex-leader has been writing to since process start,
// and Replay only ever sees the recovery-time tail. The pipeline is
// drained first so the cursor (bounded by the durable watermark) covers
// every appended record.
//
// seclint:locked f is not yet published; no other goroutine holds a reference before OpenFollower returns
func OpenFollower(w *wal.WAL) (*Follower, error) {
	if err := w.Sync(); err != nil {
		return nil, fmt.Errorf("reldb: follower open: %w", err)
	}
	f := &Follower{w: w, pending: make(map[int64][]LogRecord)}
	db := NewDatabase()
	var snapTxnSeq, fence int64
	st := newTableStage(nil)
	payload, snapLSN, hasSnap := w.Snapshot()
	if hasSnap {
		tables, txnSeq, fl, err := decodeSnap(payload)
		if err != nil {
			return nil, err
		}
		st.work = tables
		snapTxnSeq, fence = txnSeq, fl
	}
	cur, err := w.OpenCursor(snapLSN)
	if err != nil {
		return nil, fmt.Errorf("reldb: follower open: %w", err)
	}
	var recs []LogRecord
	applied := snapLSN
	for {
		r, ok, err := cur.Next()
		if err != nil {
			return nil, fmt.Errorf("reldb: follower open: %w", err)
		}
		if !ok {
			break
		}
		rec, err := decodeLogRecord(r.Payload)
		if err != nil {
			return nil, err
		}
		rec.LSN = int64(r.LSN)
		recs = append(recs, rec)
		applied = r.LSN
	}
	committed := committedAfter(recs, fence)
	if err := applyRecords(st, recs, committed, fence); err != nil {
		return nil, err
	}
	// Transactions with neither Commit nor Abort stay buffered: their
	// verdict is still in flight on the leader.
	aborted := map[int64]bool{}
	preFence := committedAfter(recs, 0)
	for _, r := range recs {
		if r.Op == OpAbort {
			aborted[r.Txn] = true
		}
	}
	for _, r := range recs {
		switch r.Op {
		case OpInsert, OpUpdate, OpDelete:
			if !preFence[r.Txn] && !aborted[r.Txn] {
				f.pending[r.Txn] = append(f.pending[r.Txn], r)
			}
		}
	}
	db.txnSeq = snapTxnSeq
	if mt := maxTxn(recs); mt > db.txnSeq {
		db.txnSeq = mt
	}
	db.current.Store(&dbVersion{lsn: int64(applied), txnSeq: db.txnSeq, tables: st.frozen()})
	f.db = db
	f.recs = recs
	f.fence = fence
	// The position is what the cursor actually delivered — under a
	// concurrent appender (demote racing the new leader's stream) this can
	// trail LastLSN; the replication layer re-applies the gap from here.
	f.appliedLSN = applied
	return f, nil
}

// Apply consumes one replicated log record. Records must arrive in strict
// LSN order; the replication layer guarantees it only hands over records
// at or below the cluster commit watermark, so everything Apply
// materializes is durable on a quorum. Each applied Commit/DDL record
// installs a new version into the follower's database at the record's LSN;
// replica readers pin snapshots of it exactly as leader readers do.
func (f *Follower) Apply(lsn uint64, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return fmt.Errorf("reldb: follower already promoted")
	}
	if lsn != f.appliedLSN+1 {
		return fmt.Errorf("reldb: follower apply LSN %d, want %d", lsn, f.appliedLSN+1)
	}
	rec, err := decodeLogRecord(payload)
	if err != nil {
		return err
	}
	rec.LSN = int64(lsn)
	switch rec.Op {
	case OpCreateTable, OpCreateIndex:
		// DDL applies unconditionally, as in recovery — unless the restored
		// snapshot's fence already covers it.
		if rec.LSN > f.fence {
			if err := f.installLocked(rec.LSN, []LogRecord{rec}, nil); err != nil {
				return err
			}
		}
	case OpBegin:
		f.pending[rec.Txn] = nil
	case OpInsert, OpUpdate, OpDelete:
		f.pending[rec.Txn] = append(f.pending[rec.Txn], rec)
	case OpCommit:
		buf := f.pending[rec.Txn]
		delete(f.pending, rec.Txn)
		// A commit at or below the fence is already inside the restored
		// snapshot (the leader streams from the snapshot frame's LSN, which
		// a fuzzy checkpoint holds below the fence); drop the buffer.
		if rec.LSN > f.fence {
			if err := f.installLocked(rec.LSN, buf, map[int64]bool{rec.Txn: true}); err != nil {
				return err
			}
		}
	case OpAbort:
		delete(f.pending, rec.Txn)
	default:
		return fmt.Errorf("reldb: follower apply: unknown op %d at lsn %d", rec.Op, lsn)
	}
	f.recs = append(f.recs, rec)
	f.appliedLSN = lsn
	f.db.mu.Lock()
	if rec.Txn > f.db.txnSeq {
		f.db.txnSeq = rec.Txn
	}
	f.db.mu.Unlock()
	return nil
}

// installLocked stages recs over the follower database's current version
// and installs the result at lsn. Caller holds f.mu.
//
// seclint:locked caller holds f.mu
func (f *Follower) installLocked(lsn int64, recs []LogRecord, committed map[int64]bool) error {
	st := newTableStage(f.db.current.Load().tables)
	if err := applyRecords(st, recs, committed, f.fence); err != nil {
		return err
	}
	f.db.mu.Lock()
	f.db.installLocked(lsn, st.frozen())
	f.db.mu.Unlock()
	return nil
}

// Restore replaces the follower's materialization with a leader snapshot
// (full resync): the replication layer has already installed it into the
// local WAL at lsn.
func (f *Follower) Restore(lsn uint64, snapshot []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return fmt.Errorf("reldb: follower already promoted")
	}
	db := NewDatabase()
	var txnSeq, fence int64
	st := newTableStage(nil)
	// An empty snapshot is a reset to genesis: a leader that has never
	// checkpointed resyncs divergent followers by wiping them and
	// streaming its whole log.
	if len(snapshot) > 0 {
		tables, ts, fl, err := decodeSnap(snapshot)
		if err != nil {
			return err
		}
		st.work = tables
		txnSeq, fence = ts, fl
	}
	db.txnSeq = txnSeq                                                                 // seclint:locked db is not yet published
	db.current.Store(&dbVersion{lsn: int64(lsn), txnSeq: txnSeq, tables: st.frozen()}) // seclint:locked db is not yet published
	f.db = db
	f.fence = fence
	f.pending = make(map[int64][]LogRecord)
	f.recs = nil
	f.appliedLSN = lsn
	return nil
}

// AppliedLSN returns the highest LSN the follower has consumed.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedLSN
}

// DB returns the follower's materialized database for READ access only —
// replica reads go through the same access-control gate as leader reads,
// wrapped around this database. Writing to it would diverge the replica;
// the replication layer never exposes it for writes.
func (f *Follower) DB() *Database {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// Promote turns the follower into a writable database anchored at its WAL
// position — the failover step, after the replication layer has applied
// every locally-durable record. Transactions still pending (no Commit
// record shipped before the old leader died) are dropped, exactly as
// crash recovery drops uncommitted tails. The follower is dead
// afterwards: further Apply/Restore calls fail.
func (f *Follower) Promote() (*Database, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, fmt.Errorf("reldb: follower already promoted")
	}
	if f.w != nil && f.appliedLSN != f.w.LastLSN() {
		return nil, fmt.Errorf("reldb: promote at applied LSN %d, wal at %d", f.appliedLSN, f.w.LastLSN())
	}
	f.promoted = true
	db := f.db
	db.log.mu.Lock()
	db.log.records = f.recs
	db.log.nextLSN = int64(f.appliedLSN)
	db.log.w = f.w
	db.log.mu.Unlock()
	f.pending = nil
	return db, nil
}
