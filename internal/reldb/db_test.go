package reldb

import (
	"fmt"
	"testing"
)

func empDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT)")
	rows := []string{
		"(1, 'Ada', 'eng', 120)",
		"(2, 'Bob', 'eng', 90)",
		"(3, 'Cyd', 'hr', 80)",
		"(4, 'Dee', 'hr', 85)",
		"(5, 'Eli', 'ops', 70)",
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO emp VALUES "+r)
	}
	return db
}

func mustExec(t *testing.T, db *Database, src string) *Result {
	t.Helper()
	res, err := db.Exec(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := empDB(t)
	res := mustExec(t, db, "SELECT * FROM emp")
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
}

func TestSelectWhereProjection(t *testing.T) {
	db := empDB(t)
	res := mustExec(t, db, "SELECT name FROM emp WHERE dept = 'eng' AND salary > 100")
	if len(res.Rows) != 1 || res.Rows[0][0] != Str("Ada") {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectOrderLimit(t *testing.T) {
	db := empDB(t)
	res := mustExec(t, db, "SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != Str("Ada") || res.Rows[1][0] != Str("Bob") {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT name FROM emp ORDER BY salary LIMIT 1")
	if res.Rows[0][0] != Str("Eli") {
		t.Fatalf("asc order wrong: %v", res.Rows)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := empDB(t)
	res := mustExec(t, db, "UPDATE emp SET salary = 95 WHERE name = 'Bob'")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res = mustExec(t, db, "SELECT salary FROM emp WHERE name = 'Bob'")
	if res.Rows[0][0] != Int(95) {
		t.Errorf("salary = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "DELETE FROM emp WHERE dept = 'hr'")
	if res.Affected != 2 {
		t.Fatalf("deleted = %d", res.Affected)
	}
	res = mustExec(t, db, "SELECT * FROM emp")
	if len(res.Rows) != 3 {
		t.Errorf("remaining = %d", len(res.Rows))
	}
}

func TestIndexesGiveSameAnswers(t *testing.T) {
	plain := empDB(t)
	indexed := empDB(t)
	mustExec(t, indexed, "CREATE HASH INDEX ON emp (dept)")
	mustExec(t, indexed, "CREATE ORDERED INDEX ON emp (salary)")

	queries := []string{
		"SELECT name FROM emp WHERE dept = 'eng' ORDER BY name",
		"SELECT name FROM emp WHERE salary >= 85 ORDER BY name",
		"SELECT name FROM emp WHERE salary < 85 ORDER BY name",
		"SELECT name FROM emp WHERE dept = 'hr' AND salary > 82 ORDER BY name",
		"SELECT name FROM emp WHERE dept = 'nope'",
	}
	for _, q := range queries {
		a := mustExec(t, plain, q)
		b := mustExec(t, indexed, q)
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			t.Errorf("%s:\n plain  %v\n indexed %v", q, a.Rows, b.Rows)
		}
	}
}

func TestIndexMaintainedAcrossDML(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE HASH INDEX ON emp (dept)")
	mustExec(t, db, "UPDATE emp SET dept = 'ops' WHERE name = 'Cyd'")
	res := mustExec(t, db, "SELECT name FROM emp WHERE dept = 'ops' ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("ops rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT name FROM emp WHERE dept = 'hr'")
	if len(res.Rows) != 1 {
		t.Fatalf("hr rows = %v", res.Rows)
	}
	mustExec(t, db, "DELETE FROM emp WHERE dept = 'ops'")
	res = mustExec(t, db, "SELECT name FROM emp WHERE dept = 'ops'")
	if len(res.Rows) != 0 {
		t.Errorf("stale index rows = %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := empDB(t)
	for _, src := range []string{
		"CREATE TABLE emp (x INT)",                  // duplicate
		"SELECT * FROM ghost",                       // unknown table
		"SELECT ghostcol FROM emp",                  // unknown column
		"SELECT * FROM emp WHERE ghost = 1",         // unknown column in where
		"SELECT * FROM emp ORDER BY ghost",          // unknown order col
		"INSERT INTO emp VALUES (1, 'x')",           // arity
		"INSERT INTO emp VALUES ('x', 1, 'y', 'z')", // kinds
		"UPDATE emp SET ghost = 1",                  // unknown set col
		"CREATE HASH INDEX ON ghost (x)",            // unknown table
		"CREATE HASH INDEX ON emp (ghost)",          // unknown column
	} {
		if _, err := db.Exec(src); err == nil {
			t.Errorf("%s: want error", src)
		}
	}
}

func TestTablesListing(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE TABLE zz (a INT)")
	got := db.Tables()
	if len(got) != 2 || got[0] != "emp" || got[1] != "zz" {
		t.Errorf("Tables = %v", got)
	}
}

func TestRangeScanViaOrderedIndex(t *testing.T) {
	db := empDB(t)
	mustExec(t, db, "CREATE ORDERED INDEX ON emp (salary)")
	res := mustExec(t, db, "SELECT name FROM emp WHERE salary >= 80 AND salary <= 90 ORDER BY salary")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != Str("Cyd") || res.Rows[2][0] != Str("Bob") {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestFloatIntHashEquality(t *testing.T) {
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE m (v FLOAT)")
	mustExec(t, db, "CREATE HASH INDEX ON m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (1)") // int into float column
	res := mustExec(t, db, "SELECT * FROM m WHERE v = 1.0")
	if len(res.Rows) != 1 {
		t.Errorf("int/float hash equality broken: %v", res.Rows)
	}
}
