package reldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTable builds a table with random rows; deterministic in seed.
func randomTable(t *testing.T, seed int64, rows int) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE r (k INT, cat TEXT, v INT)")
	for i := 0; i < rows; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO r VALUES (%d, 'c%d', %d)",
			rng.Intn(100), rng.Intn(10), rng.Intn(1000)))
	}
	return db
}

func TestQuickIndexScanEquivalence(t *testing.T) {
	// For random data and random point/range predicates, the indexed
	// database and the plain one return identical result sets.
	f := func(seed int64) bool {
		plain := randomTable(t, seed, 200)
		indexed := randomTable(t, seed, 200)
		mustExec(t, indexed, "CREATE HASH INDEX ON r (cat)")
		mustExec(t, indexed, "CREATE ORDERED INDEX ON r (v)")
		rng := rand.New(rand.NewSource(seed ^ 0xabc))
		for i := 0; i < 8; i++ {
			var q string
			switch rng.Intn(3) {
			case 0:
				q = fmt.Sprintf("SELECT k, v FROM r WHERE cat = 'c%d' ORDER BY k", rng.Intn(12))
			case 1:
				q = fmt.Sprintf("SELECT k FROM r WHERE v >= %d ORDER BY k", rng.Intn(1100))
			default:
				q = fmt.Sprintf("SELECT k FROM r WHERE v <= %d AND cat = 'c%d' ORDER BY k",
					rng.Intn(1100), rng.Intn(12))
			}
			a, err := plain.Exec(q)
			if err != nil {
				return false
			}
			b, err := indexed.Exec(q)
			if err != nil {
				return false
			}
			if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
				t.Logf("divergence on %q:\n plain %v\n idx   %v", q, a.Rows, b.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickAbortIsIdentity(t *testing.T) {
	// A random batch of DML inside an aborted transaction leaves the
	// database byte-identical.
	f := func(seed int64) bool {
		db := randomTable(t, seed, 100)
		before, err := db.Exec("SELECT * FROM r ORDER BY k, cat, v")
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0xdef))
		txn := db.Begin()
		for i := 0; i < 10; i++ {
			var stmt string
			switch rng.Intn(3) {
			case 0:
				stmt = fmt.Sprintf("INSERT INTO r VALUES (%d, 'cX', %d)", rng.Intn(100), rng.Intn(1000))
			case 1:
				stmt = fmt.Sprintf("UPDATE r SET v = %d WHERE k = %d", rng.Intn(1000), rng.Intn(100))
			default:
				stmt = fmt.Sprintf("DELETE FROM r WHERE k = %d", rng.Intn(100))
			}
			if _, err := txn.Exec(stmt); err != nil {
				txn.Abort()
				return false
			}
		}
		txn.Abort()
		after, err := db.Exec("SELECT * FROM r ORDER BY k, cat, v")
		if err != nil {
			return false
		}
		return fmt.Sprint(before.Rows) == fmt.Sprint(after.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickRecoverEqualsLiveState(t *testing.T) {
	// After an arbitrary committed history, Recover(log) reproduces the
	// live table contents exactly.
	f := func(seed int64) bool {
		db := randomTable(t, seed, 50)
		rng := rand.New(rand.NewSource(seed ^ 0x123))
		for i := 0; i < 15; i++ {
			txn := db.Begin()
			stmt := fmt.Sprintf("UPDATE r SET v = %d WHERE k = %d", rng.Intn(1000), rng.Intn(100))
			if rng.Intn(2) == 0 {
				stmt = fmt.Sprintf("DELETE FROM r WHERE k = %d", rng.Intn(100))
			}
			if _, err := txn.Exec(stmt); err != nil {
				txn.Abort()
				continue
			}
			if rng.Intn(4) == 0 {
				txn.Abort()
			} else if err := txn.Commit(); err != nil {
				return false
			}
		}
		live, err := db.Exec("SELECT * FROM r ORDER BY k, cat, v")
		if err != nil {
			return false
		}
		rec, err := Recover(db.Log())
		if err != nil {
			return false
		}
		recovered, err := rec.Exec("SELECT * FROM r ORDER BY k, cat, v")
		if err != nil {
			return false
		}
		return fmt.Sprint(live.Rows) == fmt.Sprint(recovered.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	// The parser must reject or accept arbitrary byte soup without
	// panicking — it fronts a network service.
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("parser panicked on %q: %v", src, r)
				ok = false
			}
		}()
		Parse(src)
		Parse("SELECT " + src + " FROM t")
		Parse("SELECT * FROM t WHERE " + src)
		ParseAggregate("SELECT COUNT(" + src + ") FROM t")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAggregatesConsistentWithRows(t *testing.T) {
	// COUNT/SUM/MIN/MAX agree with a manual pass over SELECT *.
	f := func(seed int64) bool {
		db := randomTable(t, seed, 150)
		rows, err := db.Exec("SELECT v FROM r")
		if err != nil {
			return false
		}
		var sum, minV, maxV int64
		minV, maxV = 1<<62, -(1 << 62)
		for _, r := range rows.Rows {
			v := r[0].I
			sum += v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		st, err := ParseAggregate("SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM r")
		if err != nil {
			return false
		}
		agg, err := db.ExecAggregate(st)
		if err != nil {
			return false
		}
		got := agg.Rows[0]
		return got[0].I == int64(len(rows.Rows)) &&
			int64(got[1].F) == sum && got[2].I == minV && got[3].I == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
