package reldb

import (
	"fmt"
	"sync"
)

// LogOp is the kind of a log record.
type LogOp int

// Log operations.
const (
	OpCreateTable LogOp = iota
	OpCreateIndex
	OpBegin
	OpCommit
	OpAbort
	OpInsert
	OpUpdate
	OpDelete
)

// LogRecord is one entry of the write-ahead log. DML records carry enough
// state to redo (After) the change; Before is kept for auditing and undo
// inspection.
type LogRecord struct {
	LSN     int64
	Txn     int64
	Op      LogOp
	Table   string
	Column  string
	Ordered bool
	Schema  *Schema
	RowID   int64
	Before  Row
	After   Row
}

// Log is an in-memory write-ahead log ("the paper's recovery techniques
// have to be developed for the transaction models", §2.1). It is the
// durability stand-in for this in-memory engine: Recover rebuilds a
// database from it, redoing exactly the committed transactions.
type Log struct {
	mu      sync.Mutex
	records []LogRecord
	nextLSN int64
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds a record, assigning its LSN.
func (l *Log) Append(rec LogRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextLSN++
	rec.LSN = l.nextLSN
	l.records = append(l.records, rec)
	return rec.LSN
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a snapshot of the log.
func (l *Log) Records() []LogRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogRecord(nil), l.records...)
}

// Recover rebuilds a fresh database from the log: DDL is replayed
// unconditionally; DML is redone only for transactions with a Commit
// record (uncommitted and aborted work disappears, which is exactly the
// atomicity contract).
func Recover(l *Log) (*Database, error) {
	recs := l.Records()
	committed := map[int64]bool{}
	for _, r := range recs {
		if r.Op == OpCommit {
			committed[r.Txn] = true
		}
	}
	db := NewDatabase()
	for _, r := range recs {
		switch r.Op {
		case OpCreateTable:
			if r.Schema == nil {
				return nil, fmt.Errorf("reldb: recover: CreateTable without schema")
			}
			db.mu.Lock()
			db.tables[r.Table] = NewTable(r.Table, *r.Schema)
			db.mu.Unlock()
		case OpCreateIndex:
			t, ok := db.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("reldb: recover: index on unknown table %s", r.Table)
			}
			var err error
			if r.Ordered {
				err = t.CreateOrderedIndex(r.Column)
			} else {
				err = t.CreateHashIndex(r.Column)
			}
			if err != nil {
				return nil, err
			}
		case OpInsert:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("reldb: recover: insert into unknown table %s", r.Table)
			}
			t.insertAt(r.RowID, r.After)
		case OpUpdate:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("reldb: recover: update of unknown table %s", r.Table)
			}
			if _, err := t.Update(r.RowID, r.After); err != nil {
				return nil, fmt.Errorf("reldb: recover: %w", err)
			}
		case OpDelete:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("reldb: recover: delete from unknown table %s", r.Table)
			}
			if _, err := t.Delete(r.RowID); err != nil {
				return nil, fmt.Errorf("reldb: recover: %w", err)
			}
		}
	}
	// The recovered database continues the same history.
	db.log.mu.Lock()
	db.log.records = recs
	db.log.nextLSN = int64(len(recs))
	db.log.mu.Unlock()
	return db, nil
}
