package reldb

import (
	"fmt"
	"sync"

	"webdbsec/internal/wal"
)

// LogOp is the kind of a log record.
type LogOp int

// Log operations.
const (
	OpCreateTable LogOp = iota
	OpCreateIndex
	OpBegin
	OpCommit
	OpAbort
	OpInsert
	OpUpdate
	OpDelete
)

// LogRecord is one entry of the write-ahead log. DML records carry enough
// state to redo (After) the change; Before is kept for auditing and undo
// inspection.
type LogRecord struct {
	LSN     int64
	Txn     int64
	Op      LogOp
	Table   string
	Column  string
	Ordered bool
	Schema  *Schema
	RowID   int64
	Before  Row
	After   Row
}

// Log is the write-ahead log ("the paper's recovery techniques have to be
// developed for the transaction models", §2.1): an in-memory record list,
// optionally mirrored to a durable backend (internal/wal). Recover
// rebuilds a database from it, redoing exactly the committed transactions;
// OpenDatabase (durable.go) does the same from disk.
type Log struct {
	mu      sync.Mutex
	records []LogRecord // seclint:guardedby mu
	nextLSN int64       // seclint:guardedby mu
	// w, when set, receives every record as an encoded frame. A backend
	// failure sticks in err: the in-memory engine keeps running, but
	// Txn.Commit refuses to report durability it cannot provide.
	w   *wal.WAL // seclint:guardedby mu
	err error    // seclint:guardedby mu
}

// NewLog returns an empty in-memory log.
func NewLog() *Log { return &Log{} }

// Append adds a record, assigning its LSN, and mirrors it to the durable
// backend when one is attached. It returns as soon as the record is
// enqueued into the backend's commit pipeline — Append does NOT wait for
// the disk verdict. Callers that acknowledge durability (Txn.Commit)
// use AppendWait, whose verdict covers every earlier enqueued record of
// the transaction because the backend writes frames in LSN order.
//
// seclint:exempt log substrate below the access-control gate; SecureDB authorizes before the engine logs
func (l *Log) Append(rec LogRecord) int64 {
	lsn, _ := l.appendAsync(rec)
	return lsn
}

// AppendWait adds a record like Append, then blocks until the durable
// backend's group-commit verdict for it is known. A nil error from a log
// with a backend means the record — and, by LSN ordering, every record
// enqueued before it — is on disk per the backend's sync policy.
//
// seclint:exempt log substrate below the access-control gate; SecureDB authorizes before the engine logs
func (l *Log) AppendWait(rec LogRecord) (int64, error) {
	lsn, ack := l.appendAsync(rec)
	if ack == nil {
		return lsn, l.Err()
	}
	if err := ack.Wait(); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		err = l.err
		l.mu.Unlock()
		return lsn, err
	}
	return lsn, nil
}

// appendAsync assigns the record's LSN, mirrors it into the backend's
// commit pipeline without waiting, and returns the pending ack (nil for
// an in-memory or already-poisoned log).
func (l *Log) appendAsync(rec LogRecord) (int64, *wal.Ack) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextLSN++
	rec.LSN = l.nextLSN
	var ack *wal.Ack
	if l.w != nil && l.err == nil {
		payload, err := encodeLogRecord(&rec)
		if err != nil {
			l.err = err
		} else if lsn, a, err := l.w.AppendAsync(payload); err != nil {
			l.err = err
		} else if int64(lsn) != rec.LSN {
			l.err = fmt.Errorf("reldb: log LSN %d diverged from wal LSN %d", rec.LSN, lsn)
		} else {
			ack = a
		}
	}
	l.records = append(l.records, rec)
	return rec.LSN, ack
}

// Err returns the sticky durable-backend error, or nil for a healthy (or
// purely in-memory) log.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Durable reports whether the log has a disk backend attached.
func (l *Log) Durable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w != nil
}

// checkpoint forwards the snapshot to the backend and, on success, drops
// the in-memory record list — the growth bound the backend's segment
// truncation provides on disk.
func (l *Log) checkpoint(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return fmt.Errorf("reldb: checkpoint: no durable backend")
	}
	if l.err != nil {
		return l.err
	}
	if err := l.w.Checkpoint(snapshot); err != nil {
		l.err = err
		return err
	}
	l.records = nil
	return nil
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a snapshot of the log.
func (l *Log) Records() []LogRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogRecord(nil), l.records...)
}

// Recover rebuilds a fresh database from the log: DDL is replayed
// unconditionally; DML is redone only for transactions with a Commit
// record (uncommitted and aborted work disappears, which is exactly the
// atomicity contract).
func Recover(l *Log) (*Database, error) {
	recs := l.Records()
	db := NewDatabase()
	if err := applyRecords(db, recs, committedTxns(recs)); err != nil {
		return nil, err
	}
	// The recovered database continues the same history.
	db.log.mu.Lock()
	db.log.records = recs
	db.log.nextLSN = int64(len(recs))
	if n := len(recs); n > 0 && recs[n-1].LSN > db.log.nextLSN {
		db.log.nextLSN = recs[n-1].LSN
	}
	db.log.mu.Unlock()
	db.txnSeq = maxTxn(recs)
	return db, nil
}

// committedTxns returns the ids of transactions recs contains a Commit
// record for.
func committedTxns(recs []LogRecord) map[int64]bool {
	committed := map[int64]bool{}
	for _, r := range recs {
		if r.Op == OpCommit {
			committed[r.Txn] = true
		}
	}
	return committed
}

// maxTxn returns the highest transaction id appearing in recs.
func maxTxn(recs []LogRecord) int64 {
	var max int64
	for _, r := range recs {
		if r.Txn > max {
			max = r.Txn
		}
	}
	return max
}

// applyRecords redoes recs onto db: DDL unconditionally, DML only for the
// transactions listed in committed. It is the shared redo engine of
// Recover (full history, empty database) and OpenDatabase (post-checkpoint
// tail, snapshot-restored database).
func applyRecords(db *Database, recs []LogRecord, committed map[int64]bool) error {
	for _, r := range recs {
		switch r.Op {
		case OpCreateTable:
			if r.Schema == nil {
				return fmt.Errorf("reldb: recover: CreateTable without schema")
			}
			db.mu.Lock()
			db.tables[r.Table] = NewTable(r.Table, *r.Schema)
			db.mu.Unlock()
		case OpCreateIndex:
			t, ok := db.Table(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: index on unknown table %s", r.Table)
			}
			var err error
			if r.Ordered {
				err = t.CreateOrderedIndex(r.Column)
			} else {
				err = t.CreateHashIndex(r.Column)
			}
			if err != nil {
				return err
			}
		case OpInsert:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: insert into unknown table %s", r.Table)
			}
			t.insertAt(r.RowID, r.After)
		case OpUpdate:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: update of unknown table %s", r.Table)
			}
			if _, err := t.Update(r.RowID, r.After); err != nil {
				return fmt.Errorf("reldb: recover: %w", err)
			}
		case OpDelete:
			if !committed[r.Txn] {
				continue
			}
			t, ok := db.Table(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: delete from unknown table %s", r.Table)
			}
			if _, err := t.Delete(r.RowID); err != nil {
				return fmt.Errorf("reldb: recover: %w", err)
			}
		}
	}
	return nil
}
