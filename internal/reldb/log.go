package reldb

import (
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/wal"
)

// LogOp is the kind of a log record.
type LogOp int

// Log operations.
const (
	OpCreateTable LogOp = iota
	OpCreateIndex
	OpBegin
	OpCommit
	OpAbort
	OpInsert
	OpUpdate
	OpDelete
)

// LogRecord is one entry of the write-ahead log. DML records carry enough
// state to redo (After) the change; Before is kept for auditing and
// inspection.
type LogRecord struct {
	LSN     int64
	Txn     int64
	Op      LogOp
	Table   string
	Column  string
	Ordered bool
	Schema  *Schema
	RowID   int64
	Before  Row
	After   Row
}

// Log is the write-ahead log ("the paper's recovery techniques have to be
// developed for the transaction models", §2.1): an in-memory record list,
// optionally mirrored to a durable backend (internal/wal). Recover
// rebuilds a database from it, redoing exactly the committed transactions;
// OpenDatabase (durable.go) does the same from disk.
type Log struct {
	mu      sync.Mutex
	records []LogRecord // seclint:guardedby mu
	nextLSN int64       // seclint:guardedby mu
	// w, when set, receives every record as an encoded frame. A backend
	// failure sticks in err: the in-memory engine keeps running, but
	// Txn.Commit refuses to report durability it cannot provide.
	w   *wal.WAL // seclint:guardedby mu
	err error    // seclint:guardedby mu
	// checkpointing serializes checkpointAt calls (appends continue; only a
	// second concurrent checkpoint is refused).
	checkpointing bool // seclint:guardedby mu
}

// NewLog returns an empty in-memory log.
func NewLog() *Log { return &Log{} }

// Append adds a record, assigning its LSN, and mirrors it to the durable
// backend when one is attached. It returns as soon as the record is
// enqueued into the backend's commit pipeline — Append does NOT wait for
// the disk verdict. Callers that acknowledge durability (Txn.Commit)
// use AppendWait, whose verdict covers every earlier enqueued record of
// the transaction because the backend writes frames in LSN order.
//
// seclint:exempt log substrate below the access-control gate; SecureDB authorizes before the engine logs
func (l *Log) Append(rec LogRecord) int64 {
	lsn, _ := l.appendAsync(rec)
	return lsn
}

// AppendWait adds a record like Append, then blocks until the durable
// backend's group-commit verdict for it is known. A nil error from a log
// with a backend means the record — and, by LSN ordering, every record
// enqueued before it — is on disk per the backend's sync policy.
//
// seclint:exempt log substrate below the access-control gate; SecureDB authorizes before the engine logs
func (l *Log) AppendWait(rec LogRecord) (int64, error) {
	lsn, ack := l.appendAsync(rec)
	return lsn, l.waitAck(ack)
}

// appendAsync assigns the record's LSN, mirrors it into the backend's
// commit pipeline without waiting, and returns the pending ack (nil for
// an in-memory or already-poisoned log).
func (l *Log) appendAsync(rec LogRecord) (int64, *wal.Ack) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextLSN++
	rec.LSN = l.nextLSN
	var ack *wal.Ack
	if l.w != nil && l.err == nil {
		payload, err := encodeLogRecord(&rec)
		if err != nil {
			l.err = err
		} else if lsn, a, err := l.w.AppendAsync(payload); err != nil {
			l.err = err
		} else if int64(lsn) != rec.LSN {
			l.err = fmt.Errorf("reldb: log LSN %d diverged from wal LSN %d", rec.LSN, lsn)
		} else {
			ack = a
		}
	}
	l.records = append(l.records, rec)
	return rec.LSN, ack
}

// waitAck blocks for a pending ack's durability verdict, folding a failure
// into the sticky backend error. A nil ack (in-memory log, or a log whose
// backend already failed) reports the sticky error.
func (l *Log) waitAck(ack *wal.Ack) error {
	if ack == nil {
		return l.Err()
	}
	if err := ack.Wait(); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		err = l.err
		l.mu.Unlock()
		return err
	}
	return nil
}

// Err returns the sticky durable-backend error, or nil for a healthy (or
// purely in-memory) log.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Durable reports whether the log has a disk backend attached.
func (l *Log) Durable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w != nil
}

// checkpointAt forwards the snapshot to the backend, truncating the log at
// trunc (every record with LSN <= trunc is covered by the snapshot or
// belongs to a transaction whose records the backend keeps; durable.go
// computes the fence). Appends continue concurrently throughout — l.mu is
// NOT held across the backend I/O, only while swapping bookkeeping — which
// is what makes the database-level Checkpoint fuzzy.
func (l *Log) checkpointAt(snapshot []byte, trunc int64) error {
	w, err := l.beginCheckpoint()
	if err != nil {
		return err
	}

	err = w.CheckpointAt(snapshot, uint64(trunc))

	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkpointing = false
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return err
	}
	// Drop the in-memory mirror of everything at or below the truncation
	// point — the growth bound the backend's segment deletion provides on
	// disk.
	recs := l.records
	i := sort.Search(len(recs), func(i int) bool { return recs[i].LSN > trunc })
	l.records = append([]LogRecord(nil), recs[i:]...)
	return nil
}

// beginCheckpoint claims the single checkpoint slot and returns the
// backend to stream to. The claim is released by checkpointAt's epilogue.
func (l *Log) beginCheckpoint() (*wal.WAL, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil, fmt.Errorf("reldb: checkpoint: no durable backend")
	}
	if l.err != nil {
		return nil, l.err
	}
	if l.checkpointing {
		return nil, fmt.Errorf("reldb: checkpoint already in progress")
	}
	l.checkpointing = true
	return l.w, nil
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a snapshot of the log.
func (l *Log) Records() []LogRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogRecord(nil), l.records...)
}

// Recover rebuilds a fresh database from the log: DDL is replayed
// unconditionally; DML is redone only for transactions with a Commit
// record (uncommitted and aborted work disappears, which is exactly the
// atomicity contract).
//
// seclint:locked db is not yet published; no other goroutine holds a reference before Recover returns
func Recover(l *Log) (*Database, error) {
	recs := l.Records()
	db := NewDatabase()
	st := newTableStage(nil)
	if err := applyRecords(st, recs, committedTxns(recs), 0); err != nil {
		return nil, err
	}
	// The recovered database continues the same history.
	nextLSN := int64(len(recs))
	if n := len(recs); n > 0 && recs[n-1].LSN > nextLSN {
		nextLSN = recs[n-1].LSN
	}
	db.log.mu.Lock()
	db.log.records = recs
	db.log.nextLSN = nextLSN
	db.log.mu.Unlock()
	db.txnSeq = maxTxn(recs)
	db.current.Store(&dbVersion{lsn: nextLSN, txnSeq: db.txnSeq, tables: st.frozen()})
	return db, nil
}

// committedTxns returns the ids of transactions recs contains a Commit
// record for.
func committedTxns(recs []LogRecord) map[int64]bool {
	return committedAfter(recs, 0)
}

// committedAfter returns the ids of transactions whose Commit record in
// recs has LSN > fence — the transactions a fenced recovery must redo
// (commits at or below the fence are already inside the snapshot).
func committedAfter(recs []LogRecord, fence int64) map[int64]bool {
	committed := map[int64]bool{}
	for _, r := range recs {
		if r.Op == OpCommit && r.LSN > fence {
			committed[r.Txn] = true
		}
	}
	return committed
}

// maxTxn returns the highest transaction id appearing in recs.
func maxTxn(recs []LogRecord) int64 {
	var max int64
	for _, r := range recs {
		if r.Txn > max {
			max = r.Txn
		}
	}
	return max
}

// tableStage is a private mutable overlay over a frozen table map — the
// working state of every redo path (recovery, post-checkpoint tail replay,
// follower apply). Reads and writes go to work, cloning from base on first
// touch; frozen() seals the overlay for installation into a version.
// A stage is single-goroutine by construction.
type tableStage struct {
	base map[string]*Table // frozen source tables (nil = empty database)
	work map[string]*Table // private mutable copies
}

func newTableStage(base map[string]*Table) *tableStage {
	return &tableStage{base: base, work: make(map[string]*Table)}
}

// mutable returns the stage's private copy of the table, cloning it out of
// base on first touch.
func (st *tableStage) mutable(name string) (*Table, bool) {
	if t, ok := st.work[name]; ok {
		return t, true
	}
	if t, ok := st.base[name]; ok {
		c := t.clone()
		st.work[name] = c
		return c, true
	}
	return nil, false
}

// put installs a fresh table into the stage.
func (st *tableStage) put(t *Table) { st.work[t.Name] = t }

// has reports whether the stage (overlay or base) knows the table.
func (st *tableStage) has(name string) bool {
	if _, ok := st.work[name]; ok {
		return true
	}
	_, ok := st.base[name]
	return ok
}

// frozen freezes every staged table and returns the overlay, ready for
// Database.installLocked (or for building a fresh version).
func (st *tableStage) frozen() map[string]*Table {
	for _, t := range st.work {
		t.freeze()
	}
	return st.work
}

// applyRecords redoes recs onto the stage: DDL for records above the
// fence, DML for the transactions listed in committed (the caller computes
// committed with the same fence via committedAfter, so a transaction whose
// effects the snapshot already contains is not redone). It is the shared
// redo engine of Recover (full history, fence 0), OpenDatabase
// (post-checkpoint tail over a restored snapshot) and Follower.Apply (one
// commit's buffer over the current version).
func applyRecords(st *tableStage, recs []LogRecord, committed map[int64]bool, fence int64) error {
	for _, r := range recs {
		switch r.Op {
		case OpCreateTable:
			if r.LSN <= fence {
				continue
			}
			if r.Schema == nil {
				return fmt.Errorf("reldb: recover: CreateTable without schema")
			}
			st.put(NewTable(r.Table, *r.Schema))
		case OpCreateIndex:
			if r.LSN <= fence {
				continue
			}
			t, ok := st.mutable(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: index on unknown table %s", r.Table)
			}
			var err error
			if r.Ordered {
				err = t.CreateOrderedIndex(r.Column)
			} else {
				err = t.CreateHashIndex(r.Column)
			}
			if err != nil {
				return err
			}
		case OpInsert:
			if !committed[r.Txn] {
				continue
			}
			t, ok := st.mutable(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: insert into unknown table %s", r.Table)
			}
			t.insertAt(r.RowID, r.After)
		case OpUpdate:
			if !committed[r.Txn] {
				continue
			}
			t, ok := st.mutable(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: update of unknown table %s", r.Table)
			}
			if _, err := t.Update(r.RowID, r.After); err != nil {
				return fmt.Errorf("reldb: recover: %w", err)
			}
		case OpDelete:
			if !committed[r.Txn] {
				continue
			}
			t, ok := st.mutable(r.Table)
			if !ok {
				return fmt.Errorf("reldb: recover: delete from unknown table %s", r.Table)
			}
			if _, err := t.Delete(r.RowID); err != nil {
				return fmt.Errorf("reldb: recover: %w", err)
			}
		}
	}
	return nil
}
