package reldb

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRecoverIdempotent: recovering a recovered database's log yields an
// identical database — tables, rows (with rowIDs), indexes and the
// transaction sequence. Regression guard for the redo path: if replay ever
// mutated the log it replays from, or produced state whose re-serialized
// history diverged, chained recoveries (crash during recovery, recovery of
// a standby's copy) would drift.
func TestRecoverIdempotent(t *testing.T) {
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INT)")
	mustExec(t, db, "CREATE HASH INDEX ON t (k)")
	mustExec(t, db, "CREATE ORDERED INDEX ON t (v)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES ('k%d', %d)", i, i))
	}
	// Interleave commit, abort and mixed-DML transactions so the log has
	// records that must not be redone next to ones that must.
	txn := db.Begin()
	txn.Exec("INSERT INTO t VALUES ('doomed', 666)")
	txn.Abort()
	txn = db.Begin()
	txn.Exec("UPDATE t SET v = 50 WHERE k = 'k5'")
	txn.Exec("DELETE FROM t WHERE k = 'k6'")
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	once, err := Recover(db.Log())
	if err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	twice, err := Recover(once.Log())
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	assertDBEqual(t, once, twice, "Recover(Recover(log))")

	// And both agree with the live database's committed state. (Content
	// comparison, not structural: the aborted insert consumed a rowID on
	// the live database that recovery — which never materializes aborted
	// rows — legitimately does not reserve.)
	if live, rec := tableRows(t, db, "t"), tableRows(t, once, "t"); !reflect.DeepEqual(live, rec) {
		t.Fatalf("recovered content differs from live: %v vs %v", rec, live)
	}

	// The recovered database is usable: it accepts new transactions whose
	// ids do not collide with replayed history.
	txn = twice.Begin()
	if _, err := txn.Exec("INSERT INTO t VALUES ('post', 1)"); err != nil {
		t.Fatalf("exec on twice-recovered db: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, twice, "t")
	if rows["post"] != 1 || rows["k5"] != 50 {
		t.Fatalf("twice-recovered db state wrong: %v", rows)
	}
	if _, ok := rows["doomed"]; ok {
		t.Fatal("aborted insert resurrected by recovery")
	}
}
