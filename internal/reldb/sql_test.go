package reldb

import (
	"testing"
)

func TestParseCreateTable(t *testing.T) {
	st := MustParse("CREATE TABLE emp (id INT, name TEXT, salary FLOAT, active BOOL)")
	ct, ok := st.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Table != "emp" || len(ct.Schema.Columns) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	if ct.Schema.Columns[2].Kind != KindFloat {
		t.Error("salary kind wrong")
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := MustParse("CREATE HASH INDEX ON emp (id)")
	ci := st.(*CreateIndexStmt)
	if ci.Table != "emp" || ci.Column != "id" || ci.Ordered {
		t.Errorf("parsed %+v", ci)
	}
	st = MustParse("CREATE ORDERED INDEX ON emp (salary)")
	ci = st.(*CreateIndexStmt)
	if !ci.Ordered || ci.Column != "salary" {
		t.Errorf("parsed %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	st := MustParse("INSERT INTO emp VALUES (1, 'Ada', 95.5, TRUE)")
	ins := st.(*InsertStmt)
	if ins.Table != "emp" || len(ins.Values) != 4 {
		t.Fatalf("parsed %+v", ins)
	}
	if ins.Values[0] != Int(1) || ins.Values[1] != Str("Ada") ||
		ins.Values[2] != Float(95.5) || ins.Values[3] != Bool(true) {
		t.Errorf("values = %v", ins.Values)
	}
	st = MustParse("INSERT INTO emp VALUES (NULL, 'x', -3, FALSE)")
	ins = st.(*InsertStmt)
	if !ins.Values[0].IsNull() || ins.Values[2] != Int(-3) {
		t.Errorf("values = %v", ins.Values)
	}
}

func TestParseSelect(t *testing.T) {
	st := MustParse("SELECT name, salary FROM emp WHERE salary >= 50000 AND active = TRUE ORDER BY salary DESC LIMIT 10")
	sel := st.(*SelectStmt)
	if sel.Table != "emp" || len(sel.Columns) != 2 || sel.Limit != 10 {
		t.Fatalf("parsed %+v", sel)
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Col != "salary" || !sel.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	and, ok := sel.Where.(*AndExpr)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	cmp := and.L.(*CmpExpr)
	if cmp.Col != "salary" || cmp.Op != ">=" {
		t.Errorf("left cmp = %+v", cmp)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := MustParse("SELECT * FROM emp").(*SelectStmt)
	if sel.Columns != nil || sel.Where != nil || sel.Limit != -1 {
		t.Errorf("parsed %+v", sel)
	}
}

func TestParseWherePrecedence(t *testing.T) {
	// a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
	sel := MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or, ok := sel.Where.(*OrExpr)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	if _, ok := or.R.(*AndExpr); !ok {
		t.Errorf("right of OR = %T, want AndExpr", or.R)
	}
}

func TestParseNotAndParens(t *testing.T) {
	sel := MustParse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)").(*SelectStmt)
	not, ok := sel.Where.(*NotExpr)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	if _, ok := not.E.(*OrExpr); !ok {
		t.Errorf("inner = %T", not.E)
	}
}

func TestMultiColumnOrderBy(t *testing.T) {
	sel := MustParse("SELECT * FROM t ORDER BY a DESC, b, c ASC").(*SelectStmt)
	if len(sel.OrderBy) != 3 {
		t.Fatalf("order keys = %+v", sel.OrderBy)
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc || sel.OrderBy[2].Desc {
		t.Errorf("directions = %+v", sel.OrderBy)
	}
	db := NewDatabase()
	if _, err := db.Exec("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"(1,'z')", "(1,'a')", "(2,'m')", "(2,'b')"} {
		if _, err := db.Exec("INSERT INTO t VALUES " + r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("SELECT a, b FROM t ORDER BY a DESC, b")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"2", "b"}, {"2", "m"}, {"1", "a"}, {"1", "z"}}
	for i, w := range want {
		if res.Rows[i][0].String() != w[0] || res.Rows[i][1].String() != w[1] {
			t.Fatalf("row %d = %v, want %v (all: %v)", i, res.Rows[i], w, res.Rows)
		}
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := MustParse("UPDATE emp SET salary = 100, active = FALSE WHERE id = 3").(*UpdateStmt)
	if upd.Table != "emp" || len(upd.Set) != 2 || upd.Set["salary"] != Int(100) {
		t.Fatalf("parsed %+v", upd)
	}
	del := MustParse("DELETE FROM emp WHERE active = FALSE").(*DeleteStmt)
	if del.Table != "emp" || del.Where == nil {
		t.Fatalf("parsed %+v", del)
	}
	del = MustParse("DELETE FROM emp").(*DeleteStmt)
	if del.Where != nil {
		t.Error("where should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"DROP TABLE emp",
		"CREATE TABLE",
		"CREATE TABLE t ()",
		"CREATE TABLE t (x BLOB)",
		"CREATE INDEX ON t (x)",
		"INSERT emp VALUES (1)",
		"INSERT INTO emp VALUES 1",
		"SELECT FROM emp",
		"SELECT * FROM",
		"SELECT * FROM emp WHERE",
		"SELECT * FROM emp WHERE x",
		"SELECT * FROM emp WHERE x = ",
		"SELECT * FROM emp LIMIT x",
		"SELECT * FROM emp LIMIT -1",
		"UPDATE emp SET",
		"UPDATE emp SET x 1",
		"SELECT * FROM emp WHERE x = 'unterminated",
		"SELECT * FROM emp extra garbage",
		"SELECT * FROM emp WHERE x ! 1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestExprEval(t *testing.T) {
	schema := Schema{Columns: []Column{{"a", KindInt}, {"b", KindString}}}
	row := Row{Int(5), Str("x")}
	cases := []struct {
		where string
		want  bool
	}{
		{"a = 5", true},
		{"a != 5", false},
		{"a < 10", true},
		{"a <= 5", true},
		{"a > 5", false},
		{"a >= 6", false},
		{"b = 'x'", true},
		{"b = 'y'", false},
		{"a = 5 AND b = 'x'", true},
		{"a = 5 AND b = 'y'", false},
		{"a = 4 OR b = 'x'", true},
		{"NOT a = 4", true},
		{"a = NULL", false},
	}
	for _, c := range cases {
		sel := MustParse("SELECT * FROM t WHERE " + c.where).(*SelectStmt)
		got, err := sel.Where.Eval(&schema, row)
		if err != nil {
			t.Fatalf("%s: %v", c.where, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.where, got, c.want)
		}
	}
	// Unknown column errors.
	sel := MustParse("SELECT * FROM t WHERE zz = 1").(*SelectStmt)
	if _, err := sel.Where.Eval(&schema, row); err == nil {
		t.Error("unknown column evaluated")
	}
}

func TestNullComparisonsAlwaysFalse(t *testing.T) {
	schema := Schema{Columns: []Column{{"a", KindInt}}}
	row := Row{Null()}
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		e := &CmpExpr{Col: "a", Op: op, Val: Int(1)}
		got, err := e.Eval(&schema, row)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("NULL %s 1 = true", op)
		}
	}
}

func TestExprStrings(t *testing.T) {
	sel := MustParse("SELECT * FROM t WHERE a = 1 AND NOT (b = 'x' OR c < 2)").(*SelectStmt)
	s := sel.Where.String()
	if s == "" {
		t.Error("empty String()")
	}
	// Re-parse the printed predicate: it must round-trip.
	if _, err := Parse("SELECT * FROM t WHERE " + s); err != nil {
		t.Errorf("printed predicate does not re-parse: %q: %v", s, err)
	}
}

// TestStringLiteralEscape: ” inside a literal is an escaped quote, and
// QuoteString produces exactly that form — the pair is what keeps a value
// containing a quote from growing into syntax when statement text is
// composed.
func TestStringLiteralEscape(t *testing.T) {
	st := MustParse("INSERT INTO emp VALUES (1, 'O''Brien', 1.0, TRUE)")
	ins := st.(*InsertStmt)
	if ins.Values[1] != Str("O'Brien") {
		t.Errorf("values = %v, want O'Brien", ins.Values)
	}
	if _, err := Parse("SELECT name FROM emp WHERE name = 'O'Brien'"); err == nil {
		t.Error("unescaped interior quote parsed; it should be a syntax error")
	}
	for _, s := range []string{"plain", "O'Brien", "''", "", "a''b"} {
		src := "INSERT INTO emp VALUES (1, " + QuoteString(s) + ", 1.0, TRUE)"
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("QuoteString(%q): %v", s, err)
		}
		if got := st.(*InsertStmt).Values[1]; got != Str(s) {
			t.Errorf("QuoteString(%q) round-tripped to %v", s, got)
		}
	}
	// The adversarial shape Sprintf-composed statements used to hit: a
	// value that tries to terminate the literal and smuggle in more SQL.
	hostile := "x', 'y', 2, 'z"
	src := "INSERT INTO emp VALUES (1, " + QuoteString(hostile) + ", 1.0, TRUE)"
	ins = MustParse(src).(*InsertStmt)
	if len(ins.Values) != 4 || ins.Values[1] != Str(hostile) {
		t.Errorf("hostile value changed statement shape: %+v", ins)
	}
}
