package reldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

// groupCrashWorkload runs concurrent committers against one durable
// database under SyncAlways so commit records genuinely coalesce into
// shared batches. Each committer owns a private table (table-granularity
// 2PL would otherwise serialize them around the fsync) and runs `rounds`
// two-row transactions. It returns the set of acknowledged facts
// "g<G>r<R>": an entry means that transaction's Commit returned nil, so
// both its rows must survive any later crash.
func groupCrashWorkload(fs wal.FS, committers, rounds int) map[string]bool {
	acked := make(map[string]bool)
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		return acked
	}
	db, err := OpenDatabase(w)
	if err != nil {
		return acked
	}
	for g := 0; g < committers; g++ {
		db.Exec(fmt.Sprintf("CREATE TABLE t%d (k TEXT, v INT)", g))
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				txn := db.Begin()
				if _, err := txn.Exec(fmt.Sprintf("INSERT INTO t%d VALUES ('r%da', %d)", g, r, r)); err != nil {
					txn.Abort()
					return
				}
				if _, err := txn.Exec(fmt.Sprintf("INSERT INTO t%d VALUES ('r%db', %d)", g, r, r)); err != nil {
					txn.Abort()
					return
				}
				if txn.Commit() == nil {
					mu.Lock()
					acked[fmt.Sprintf("g%dr%d", g, r)] = true
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	return acked
}

// checkGroupCrashInvariants recovers both post-crash images and asserts
// the group-commit durability contract: every acknowledged transaction's
// two rows are present; every transaction — acknowledged or not — applied
// atomically (its two rows appear together or not at all); and recovery
// of the same image is deterministic.
func checkGroupCrashInvariants(t *testing.T, fs *faultinject.MemFS, committers, rounds int, acked map[string]bool, desc string) {
	t.Helper()
	for _, drop := range []bool{false, true} {
		img := fs.AfterCrash(drop)
		db := openDurable(t, img)
		d := fmt.Sprintf("%s dropUnsynced=%v", desc, drop)
		for g := 0; g < committers; g++ {
			rows := tableRows(t, db, fmt.Sprintf("t%d", g))
			for r := 0; r < rounds; r++ {
				_, a := rows[fmt.Sprintf("r%da", r)]
				_, b := rows[fmt.Sprintf("r%db", r)]
				if acked[fmt.Sprintf("g%dr%d", g, r)] {
					if rows == nil {
						t.Fatalf("%s: table t%d lost but its transaction %d was acknowledged", d, g, r)
					}
					if !a || !b {
						t.Fatalf("%s: acknowledged txn g%dr%d lost rows (a=%v b=%v)", d, g, r, a, b)
					}
				}
				if a != b {
					t.Fatalf("%s: txn g%dr%d applied non-atomically (a=%v b=%v)", d, g, r, a, b)
				}
			}
		}
		assertDBEqual(t, db, openDurable(t, img), d+" (recover twice)")
	}
}

// TestCrashGroupCommitConcurrentMatrix is the crash matrix over the
// concurrent workload: the filesystem dies at sampled byte offsets of
// the coalesced write stream (hitting frame boundaries and torn frames
// inside batches) and inside every shared fsync. The interleaving varies
// run to run — invariants are checked against the acknowledgements each
// run actually handed out, which is exactly the contract: what was
// acknowledged survives, everything else vanishes atomically.
func TestCrashGroupCommitConcurrentMatrix(t *testing.T) {
	const committers, rounds = 4, 3
	dry := faultinject.NewMemFS()
	groupCrashWorkload(dry, committers, rounds)
	total := dry.BytesWritten()
	syncs := dry.SyncCount()
	if total == 0 || syncs == 0 {
		t.Fatalf("dry run wrote %d bytes, %d fsyncs", total, syncs)
	}

	byteStride, syncStride := int64(31), int64(1)
	if testing.Short() {
		byteStride, syncStride = 211, 3
	}
	points := 0
	for b := int64(0); b < total; b += byteStride {
		fs := faultinject.NewMemFS()
		fs.LimitWriteBytes(b)
		acked := groupCrashWorkload(fs, committers, rounds)
		checkGroupCrashInvariants(t, fs, committers, rounds, acked,
			fmt.Sprintf("crash at byte %d", b))
		points++
	}
	for k := int64(0); k < syncs; k += syncStride {
		fs := faultinject.NewMemFS()
		fs.LimitSyncs(k)
		acked := groupCrashWorkload(fs, committers, rounds)
		checkGroupCrashInvariants(t, fs, committers, rounds, acked,
			fmt.Sprintf("crash inside shared fsync %d", k))
		points++
	}
	t.Logf("group-commit crash matrix: %d points × 2 images over ~%d bytes / %d fsyncs", points, total, syncs)
}

// TestCrashPoisonedBatchAbortsAllTxns is the no-partial-acknowledgement
// regression: when the backend dies, every transaction whose commit
// record rode the failed batch must get a non-nil Commit — none may be
// acknowledged — and the failure must stick on the log.
func TestCrashPoisonedBatchAbortsAllTxns(t *testing.T) {
	fs := faultinject.NewMemFS()
	db := openDurable(t, fs)
	const committers = 6
	for g := 0; g < committers; g++ {
		mustExec(t, db, fmt.Sprintf("CREATE TABLE t%d (k TEXT, v INT)", g))
	}
	fs.Crash()
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := db.Begin()
			if _, err := txn.Exec(fmt.Sprintf("INSERT INTO t%d VALUES ('x', 1)", g)); err != nil {
				errs[g] = err
				txn.Abort()
				return
			}
			errs[g] = txn.Commit()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("committer %d acknowledged by a crashed backend", g)
		}
	}
	if db.Log().Err() == nil {
		t.Fatal("batch failure did not stick on the log")
	}
}

// gatedFS wraps a wal.FS so file fsyncs can be held open from the test:
// arm() makes the next Sync park until release() — the window in which a
// commit's durability verdict is pending.
type gatedFS struct {
	wal.FS
	mu      sync.Mutex
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedFS) arm() (entered, gate chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gate = make(chan struct{})
	g.entered = make(chan struct{}, 8)
	return g.entered, g.gate
}

func (g *gatedFS) Create(name string) (wal.File, error) {
	f, err := g.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, fs: g}, nil
}

type gatedFile struct {
	wal.File
	fs *gatedFS
}

func (f *gatedFile) Sync() error {
	f.fs.mu.Lock()
	gate, entered := f.fs.gate, f.fs.entered
	f.fs.mu.Unlock()
	if gate != nil {
		entered <- struct{}{}
		<-gate
	}
	return f.File.Sync()
}

// TestCommitHoldsLocksUntilDurabilityVerdict pins the lock-release
// ordering: a transaction's locks must stay held while its commit record
// sits in the group-commit pipeline. Releasing earlier would let a second
// transaction read (and be acknowledged on top of) state whose durability
// is still unknown. The test parks a commit inside its fsync and checks a
// competing writer times out on the table lock until the verdict lands.
func TestCommitHoldsLocksUntilDurabilityVerdict(t *testing.T) {
	fs := &gatedFS{FS: faultinject.NewMemFS()}
	db := openDurable(t, fs)
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INT)")

	entered, gate := fs.arm()
	commitErr := make(chan error, 1)
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO t VALUES ('held', 1)"); err != nil {
		t.Fatal(err)
	}
	go func() { commitErr <- txn.Commit() }()
	<-entered // the commit's shared fsync is now in flight

	db.lockMgr.Timeout = 50 * time.Millisecond
	rival := db.Begin()
	if _, err := rival.Exec("INSERT INTO t VALUES ('rival', 2)"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("rival acquired t's lock while the commit verdict was pending (err=%v)", err)
	}
	rival.Abort()

	close(gate)
	if err := <-commitErr; err != nil {
		t.Fatalf("gated commit failed: %v", err)
	}
	db.lockMgr.Timeout = 2 * time.Second
	rival2 := db.Begin()
	if _, err := rival2.Exec("INSERT INTO t VALUES ('rival', 2)"); err != nil {
		t.Fatalf("lock not released after verdict: %v", err)
	}
	if err := rival2.Commit(); err != nil {
		t.Fatal(err)
	}
}
