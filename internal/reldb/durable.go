package reldb

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Durable backend for the relational engine. Log records and checkpoint
// snapshots travel as JSON payloads inside internal/wal frames — the frame
// layer provides integrity (CRC32C) and torn-tail truncation, this layer
// provides the schema. JSON is verbose but self-describing: every field of
// LogRecord, Schema and Value is exported, so a record round-trips with
// plain encoding/json and a decoding failure is always a corruption signal
// rather than a versioning accident.

// encodeLogRecord serializes one log record for the backend.
func encodeLogRecord(rec *LogRecord) ([]byte, error) {
	return json.Marshal(rec)
}

// decodeLogRecord is the inverse of encodeLogRecord.
func decodeLogRecord(payload []byte) (LogRecord, error) {
	var rec LogRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return LogRecord{}, fmt.Errorf("reldb: decode log record: %w", err)
	}
	return rec, nil
}

// tableSnap is one table inside a checkpoint snapshot: schema, rows with
// their stable rowIDs, the rowID high-water mark, and which indexes to
// rebuild.
type tableSnap struct {
	Name    string
	Schema  Schema
	NextID  int64
	Rows    []rowSnap
	HashIdx []string
	OrdIdx  []string
}

type rowSnap struct {
	ID  int64
	Row Row
}

// dbSnap is a whole-database checkpoint snapshot.
type dbSnap struct {
	TxnSeq int64
	Tables []tableSnap
}

// snapshot captures the table under its own read lock.
func (t *Table) snapshot() tableSnap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snap := tableSnap{Name: t.Name, Schema: t.Schema, NextID: t.nextID}
	for col := range t.hashIdx {
		snap.HashIdx = append(snap.HashIdx, col)
	}
	for col := range t.ordIdx {
		snap.OrdIdx = append(snap.OrdIdx, col)
	}
	snap.Rows = make([]rowSnap, 0, len(t.rows))
	for id, r := range t.rows {
		snap.Rows = append(snap.Rows, rowSnap{ID: id, Row: r.Clone()})
	}
	return snap
}

// restore rebuilds the table a snapshot describes.
func (s *tableSnap) restore() (*Table, error) {
	t := NewTable(s.Name, s.Schema)
	for _, r := range s.Rows {
		t.insertAt(r.ID, r.Row)
	}
	// insertAt raised nextID to the highest live rowID; the snapshot's
	// high-water mark may be higher still (deleted rows must not be
	// reincarnated under a reused id).
	t.mu.Lock()
	if s.NextID > t.nextID {
		t.nextID = s.NextID
	}
	t.mu.Unlock()
	for _, col := range s.HashIdx {
		if err := t.CreateHashIndex(col); err != nil {
			return nil, fmt.Errorf("reldb: restore %s: %w", s.Name, err)
		}
	}
	for _, col := range s.OrdIdx {
		if err := t.CreateOrderedIndex(col); err != nil {
			return nil, fmt.Errorf("reldb: restore %s: %w", s.Name, err)
		}
	}
	return t, nil
}

// ErrActiveTxns is returned by Checkpoint while transactions are in
// flight: a snapshot taken mid-transaction could capture effects whose
// commit record lands after the checkpoint, breaking the redo contract.
var ErrActiveTxns = fmt.Errorf("reldb: checkpoint refused: transactions in flight")

// OpenDatabase recovers a database from its durable log: the checkpoint
// snapshot (if any) is restored, the post-checkpoint records are redone
// for committed transactions exactly as Recover would, and the database is
// wired to keep appending to w. The caller owns w's lifecycle but must not
// use it directly afterwards.
func OpenDatabase(w *wal.WAL) (*Database, error) {
	db := NewDatabase()
	var snapTxnSeq int64
	if payload, _, ok := w.Snapshot(); ok {
		var snap dbSnap
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("reldb: decode snapshot: %w", err)
		}
		snapTxnSeq = snap.TxnSeq
		for i := range snap.Tables {
			t, err := snap.Tables[i].restore()
			if err != nil {
				return nil, err
			}
			db.tables[t.Name] = t
		}
	}
	var recs []LogRecord
	err := w.Replay(func(lsn uint64, payload []byte) error {
		rec, err := decodeLogRecord(payload)
		if err != nil {
			return err
		}
		rec.LSN = int64(lsn)
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := applyRecords(db, recs, committedTxns(recs)); err != nil {
		return nil, err
	}
	db.txnSeq = snapTxnSeq
	if mt := maxTxn(recs); mt > db.txnSeq {
		db.txnSeq = mt
	}
	db.log.mu.Lock()
	db.log.records = recs
	db.log.nextLSN = int64(w.LastLSN())
	db.log.w = w
	db.log.mu.Unlock()
	return db, nil
}

// Checkpoint writes a snapshot of the committed state and truncates the
// log, on disk (segment deletion) and in memory (record list). It refuses
// to run while transactions are in flight — callers retry at a quiescent
// moment; the HTTP servers do this during graceful shutdown.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.activeTxns > 0 {
		return ErrActiveTxns
	}
	snap := dbSnap{TxnSeq: db.txnSeq}
	for _, t := range db.tables {
		snap.Tables = append(snap.Tables, t.snapshot())
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("reldb: encode snapshot: %w", err)
	}
	return db.log.checkpoint(payload)
}
