package reldb

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Durable backend for the relational engine. Log records and checkpoint
// snapshots travel as JSON payloads inside internal/wal frames — the frame
// layer provides integrity (CRC32C) and torn-tail truncation, this layer
// provides the schema. JSON is verbose but self-describing: every field of
// LogRecord, Schema and Value is exported, so a record round-trips with
// plain encoding/json and a decoding failure is always a corruption signal
// rather than a versioning accident.

// encodeLogRecord serializes one log record for the backend.
func encodeLogRecord(rec *LogRecord) ([]byte, error) {
	return json.Marshal(rec)
}

// decodeLogRecord is the inverse of encodeLogRecord.
func decodeLogRecord(payload []byte) (LogRecord, error) {
	var rec LogRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return LogRecord{}, fmt.Errorf("reldb: decode log record: %w", err)
	}
	return rec, nil
}

// tableSnap is one table inside a checkpoint snapshot: schema, rows with
// their stable rowIDs, the rowID high-water mark, and which indexes to
// rebuild.
type tableSnap struct {
	Name    string
	Schema  Schema
	NextID  int64
	Rows    []rowSnap
	HashIdx []string
	OrdIdx  []string
}

type rowSnap struct {
	ID  int64
	Row Row
}

// dbSnap is a whole-database checkpoint snapshot.
type dbSnap struct {
	TxnSeq int64
	// FenceLSN is the LSN of the version the snapshot captured: it contains
	// the effects of exactly the commits and DDL with LSN <= FenceLSN.
	// Recovery must not redo those (committedAfter). The WAL snapshot frame
	// itself may sit at a LOWER LSN — the truncation point is held back to
	// below the oldest record of any transaction that was in flight during
	// the fuzzy checkpoint, so their records survive for redo. Zero on
	// snapshots from before fuzzy checkpoints: those were quiescent, so
	// frame LSN and fence coincide and the old semantics are preserved.
	FenceLSN int64
	Tables   []tableSnap
}

// snapshot captures the table — no lock needed: checkpoint snapshots are
// taken from frozen version tables.
func (t *Table) snapshot() tableSnap {
	snap := tableSnap{Name: t.Name, Schema: t.Schema, NextID: t.nextID}
	for col := range t.hashIdx {
		snap.HashIdx = append(snap.HashIdx, col)
	}
	for col := range t.ordIdx {
		snap.OrdIdx = append(snap.OrdIdx, col)
	}
	snap.Rows = make([]rowSnap, 0, len(t.rows))
	for id, r := range t.rows {
		snap.Rows = append(snap.Rows, rowSnap{ID: id, Row: r.Clone()})
	}
	return snap
}

// restore rebuilds the (unfrozen, private) table a snapshot describes.
func (s *tableSnap) restore() (*Table, error) {
	t := NewTable(s.Name, s.Schema)
	for _, r := range s.Rows {
		t.insertAt(r.ID, r.Row)
	}
	// insertAt raised nextID to the highest live rowID; the snapshot's
	// high-water mark may be higher still (deleted rows must not be
	// reincarnated under a reused id).
	if s.NextID > t.nextID {
		t.nextID = s.NextID
	}
	for _, col := range s.HashIdx {
		if err := t.CreateHashIndex(col); err != nil {
			return nil, fmt.Errorf("reldb: restore %s: %w", s.Name, err)
		}
	}
	for _, col := range s.OrdIdx {
		if err := t.CreateOrderedIndex(col); err != nil {
			return nil, fmt.Errorf("reldb: restore %s: %w", s.Name, err)
		}
	}
	return t, nil
}

// decodeSnap restores a dbSnap payload into a fresh table map plus its
// transaction high-water mark and fence LSN.
func decodeSnap(payload []byte) (map[string]*Table, int64, int64, error) {
	var snap dbSnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, 0, 0, fmt.Errorf("reldb: decode snapshot: %w", err)
	}
	tables := make(map[string]*Table, len(snap.Tables))
	for i := range snap.Tables {
		t, err := snap.Tables[i].restore()
		if err != nil {
			return nil, 0, 0, err
		}
		tables[t.Name] = t
	}
	return tables, snap.TxnSeq, snap.FenceLSN, nil
}

// OpenDatabase recovers a database from its durable log: the checkpoint
// snapshot (if any) is restored, the records above the snapshot's fence
// are redone for committed transactions exactly as Recover would, and the
// database is wired to keep appending to w. The caller owns w's lifecycle
// but must not use it directly afterwards.
//
// seclint:locked db is not yet published; no other goroutine holds a reference before OpenDatabase returns
func OpenDatabase(w *wal.WAL) (*Database, error) {
	db := NewDatabase()
	var snapTxnSeq, fence int64
	st := newTableStage(nil)
	if payload, _, ok := w.Snapshot(); ok {
		tables, txnSeq, f, err := decodeSnap(payload)
		if err != nil {
			return nil, err
		}
		st.work = tables
		snapTxnSeq, fence = txnSeq, f
	}
	var recs []LogRecord
	err := w.Replay(func(lsn uint64, payload []byte) error {
		rec, err := decodeLogRecord(payload)
		if err != nil {
			return err
		}
		rec.LSN = int64(lsn)
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := applyRecords(st, recs, committedAfter(recs, fence), fence); err != nil {
		return nil, err
	}
	db.txnSeq = snapTxnSeq
	if mt := maxTxn(recs); mt > db.txnSeq {
		db.txnSeq = mt
	}
	last := int64(w.LastLSN())
	if fence > last {
		// The fuzzy snapshot captured commits whose WAL frames never reached
		// disk (they were in the group-commit pipeline, unsynced, when the
		// process died — their effects are durable only through the
		// snapshot). The recovered state is still an exact prefix of the
		// commit history, but the log position must jump to the fence so no
		// LSN at or below it is ever reassigned: re-anchor the backend at
		// the fence.
		if payload, _, ok := w.Snapshot(); ok {
			if err := w.InstallSnapshot(payload, uint64(fence)); err != nil {
				return nil, fmt.Errorf("reldb: re-anchor at fence: %w", err)
			}
		}
		last = fence
	}
	db.log.mu.Lock()
	db.log.records = recs
	db.log.nextLSN = last
	db.log.w = w
	db.log.mu.Unlock()
	db.current.Store(&dbVersion{lsn: last, txnSeq: db.txnSeq, tables: st.frozen()})
	return db, nil
}

// Checkpoint writes a snapshot of a committed version and truncates the
// log, on disk (segment deletion) and in memory (record list). It is
// FUZZY: transactions keep beginning and committing while the snapshot
// streams out — nothing quiesces and nothing is refused.
//
// Two LSNs do the work. The fence F is the pinned version's LSN: the
// snapshot contains exactly the commits and DDL with LSN <= F, and
// recovery skips redo at or below it (dbSnap.FenceLSN). The truncation
// point T = min(F, min over in-flight transactions of beginLSN-1) is where
// the WAL is actually cut: an in-flight transaction's records all have
// LSN >= its Begin record's LSN > T, so a commit record that lands after
// the snapshot keeps every record it needs for redo. Both are computed in
// one db.mu critical section — commits install (and deregister from
// activeTxns) under the same mutex, so any transaction absent from
// activeTxns has either installed its version (commit LSN <= F) or
// aborted, and any transaction present has beginLSN > T by construction.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	v := db.current.Load()
	// Pin directly: db.mu excludes installs, so v cannot be swept between
	// the Load and the pin.
	v.pins.Add(1)
	fence := v.lsn
	trunc := fence
	for _, beginLSN := range db.activeTxns {
		if beginLSN-1 < trunc {
			trunc = beginLSN - 1
		}
	}
	db.mu.Unlock()
	defer v.pins.Add(-1)

	snap := dbSnap{TxnSeq: v.txnSeq, FenceLSN: fence}
	for _, name := range v.tableNames() {
		snap.Tables = append(snap.Tables, v.tables[name].snapshot())
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("reldb: encode snapshot: %w", err)
	}
	return db.log.checkpointAt(payload, trunc)
}
