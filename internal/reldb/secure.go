package reldb

import (
	"fmt"

	"webdbsec/internal/credential"
	"webdbsec/internal/decisioncache"
	"webdbsec/internal/policy"
	"webdbsec/internal/sysr"
)

// This file makes the engine security-aware, per §3.1: "we need to examine
// the security impact on all of the web data management functions ...
// query processing algorithms may need to take into consideration the
// access control policies."
//
// Three mechanisms compose:
//
//   - table privileges via the System R grant catalog (internal/sysr) —
//     the baseline discretionary layer;
//   - row-level policies: per-table predicates attached to subject specs;
//     the query processor rewrites WHERE clauses so a subject can only
//     ever see (or modify) its visible rows;
//   - column policies: per-table column masks; masked columns come back
//     NULL.

// RowPolicy grants visibility of the rows of Table matching Pred to the
// subjects matching Subject. Multiple applicable policies union (OR).
// A table with at least one row policy is closed: subjects matching none
// see nothing.
type RowPolicy struct {
	Name    string
	Table   string
	Subject policy.SubjectSpec
	Pred    Expr
}

// ColPolicy hides the listed columns of Table from the subjects matching
// Subject: their values are masked to NULL in every result.
type ColPolicy struct {
	Name    string
	Table   string
	Subject policy.SubjectSpec
	Columns []string
}

// SecureDB wraps a Database with the security layers. The grant catalog
// doubles as the security part of the metadata catalog the paper asks for
// ("Metadata includes not only information about the resources ... it also
// includes security policies", §3.1).
type SecureDB struct {
	db       *Database
	grants   *sysr.Catalog
	rowPols  []*RowPolicy
	colPols  []*ColPolicy
	verifier *credential.Verifier
	// parsed caches compiled SELECTs by source text. Only SELECTs are
	// cached: Exec copies the statement before the security rewrite, so the
	// cached form is never mutated, while INSERT/UPDATE/DELETE texts carry
	// inline values and would churn the cache without repeats.
	parsed *decisioncache.Cache[string, *SelectStmt]
}

// selectCacheCapacity bounds the SELECT parse cache of a SecureDB.
const selectCacheCapacity = 256

// NewSecureDB wraps a database. verifier may be nil.
func NewSecureDB(db *Database, verifier *credential.Verifier) *SecureDB {
	return &SecureDB{
		db:       db,
		grants:   sysr.NewCatalog(),
		verifier: verifier,
		parsed:   decisioncache.New[string, *SelectStmt](selectCacheCapacity, decisioncache.HashString),
	}
}

// ParseCacheStats snapshots the SELECT parse-cache counters.
func (s *SecureDB) ParseCacheStats() decisioncache.Stats { return s.parsed.Stats() }

// parse compiles a statement, serving repeated SELECT texts from the
// bounded parse cache.
func (s *SecureDB) parse(src string) (Stmt, error) {
	if sel, ok := s.parsed.Get(src); ok {
		return sel, nil
	}
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*SelectStmt); ok {
		s.parsed.Put(src, sel)
	}
	return st, nil
}

// DB returns the underlying database (for administration paths that are
// already authorized).
func (s *SecureDB) DB() *Database { return s.db }

// Grants returns the System R grant catalog.
func (s *SecureDB) Grants() *sysr.Catalog { return s.grants }

// AddRowPolicy installs a row-level policy.
//
// seclint:exempt policy administration on the trusted control path, not a data entry point
func (s *SecureDB) AddRowPolicy(p *RowPolicy) error {
	if p.Table == "" || p.Pred == nil {
		return fmt.Errorf("reldb: row policy %q needs a table and predicate", p.Name)
	}
	s.rowPols = append(s.rowPols, p)
	return nil
}

// AddColPolicy installs a column-masking policy.
//
// seclint:exempt policy administration on the trusted control path, not a data entry point
func (s *SecureDB) AddColPolicy(p *ColPolicy) error {
	if p.Table == "" || len(p.Columns) == 0 {
		return fmt.Errorf("reldb: column policy %q needs a table and columns", p.Name)
	}
	s.colPols = append(s.colPols, p)
	return nil
}

// CreateTable creates a table owned by the subject, registering it in the
// grant catalog.
func (s *SecureDB) CreateTable(owner *policy.Subject, src string) error {
	st, err := Parse(src)
	if err != nil {
		return err
	}
	ct, ok := st.(*CreateTableStmt)
	if !ok {
		return fmt.Errorf("reldb: CreateTable wants a CREATE TABLE statement")
	}
	if _, err := s.db.ExecStmt(ct); err != nil {
		return err
	}
	return s.grants.CreateObject(ct.Table, owner.ID)
}

// rowPredicate computes the subject's visibility predicate for a table:
// nil when the table has no row policies (open to privilege holders), a
// FALSE-equivalent when policies exist but none applies, otherwise the OR
// of the applicable predicates.
func (s *SecureDB) rowPredicate(subject *policy.Subject, table string) (Expr, bool) {
	var pred Expr
	hasAny := false
	for _, p := range s.rowPols {
		if p.Table != table {
			continue
		}
		hasAny = true
		if !p.Subject.Matches(subject, s.verifier) {
			continue
		}
		if pred == nil {
			pred = p.Pred
		} else {
			pred = &OrExpr{L: pred, R: p.Pred}
		}
	}
	if !hasAny {
		return nil, false
	}
	return pred, true
}

// maskedColumns returns the set of column names hidden from the subject.
func (s *SecureDB) maskedColumns(subject *policy.Subject, table string) map[string]bool {
	out := map[string]bool{}
	for _, p := range s.colPols {
		if p.Table != table || !p.Subject.Matches(subject, s.verifier) {
			continue
		}
		for _, c := range p.Columns {
			out[c] = true
		}
	}
	return out
}

// Exec runs a statement as the subject, enforcing privileges, row policies
// and column masks. This is the paper's "query processing [taking] into
// consideration the access control policies" — the rewrite happens before
// planning, so the engine's index selection still applies.
func (s *SecureDB) Exec(subject *policy.Subject, src string) (*Result, error) {
	st, err := s.parse(src)
	if err != nil {
		return nil, err
	}
	switch q := st.(type) {
	case *SelectStmt:
		if !s.grants.HasPrivilege(subject.ID, sysr.Select, q.Table) {
			return nil, fmt.Errorf("reldb: %s lacks SELECT on %s", subject.ID, q.Table)
		}
		rewritten, empty := s.rewriteWhere(subject, q.Table, q.Where)
		if empty {
			return &Result{Columns: q.Columns}, nil
		}
		q2 := *q
		q2.Where = rewritten
		res, err := s.db.execSelect(&q2)
		if err != nil {
			return nil, err
		}
		s.mask(subject, q.Table, res)
		return res, nil

	case *InsertStmt:
		if !s.grants.HasPrivilege(subject.ID, sysr.Insert, q.Table) {
			return nil, fmt.Errorf("reldb: %s lacks INSERT on %s", subject.ID, q.Table)
		}
		return s.db.ExecStmt(q)

	case *UpdateStmt:
		if !s.grants.HasPrivilege(subject.ID, sysr.Update, q.Table) {
			return nil, fmt.Errorf("reldb: %s lacks UPDATE on %s", subject.ID, q.Table)
		}
		rewritten, empty := s.rewriteWhere(subject, q.Table, q.Where)
		if empty {
			return &Result{}, nil
		}
		q2 := *q
		q2.Where = rewritten
		// seclint:taint-exempt the statement is structural: subject attributes land in predicate constants compared by the evaluator, never re-parsed as SQL text
		return s.db.ExecStmt(&q2)

	case *DeleteStmt:
		if !s.grants.HasPrivilege(subject.ID, sysr.Delete, q.Table) {
			return nil, fmt.Errorf("reldb: %s lacks DELETE on %s", subject.ID, q.Table)
		}
		rewritten, empty := s.rewriteWhere(subject, q.Table, q.Where)
		if empty {
			return &Result{}, nil
		}
		q2 := *q
		q2.Where = rewritten
		// seclint:taint-exempt the statement is structural: subject attributes land in predicate constants compared by the evaluator, never re-parsed as SQL text
		return s.db.ExecStmt(&q2)
	}
	return nil, fmt.Errorf("reldb: statement kind not allowed through SecureDB.Exec")
}

// rewriteWhere conjoins the subject's row-visibility predicate onto the
// query's WHERE clause. empty reports that the subject can match no rows
// at all (policies exist, none applies).
func (s *SecureDB) rewriteWhere(subject *policy.Subject, table string, where Expr) (Expr, bool) {
	pred, constrained := s.rowPredicate(subject, table)
	if !constrained {
		return where, false
	}
	if pred == nil {
		return nil, true
	}
	if where == nil {
		return pred, false
	}
	return &AndExpr{L: where, R: pred}, false
}

// mask NULLs out hidden columns in a result, in place.
func (s *SecureDB) mask(subject *policy.Subject, table string, res *Result) {
	hidden := s.maskedColumns(subject, table)
	if len(hidden) == 0 {
		return
	}
	for ci, name := range res.Columns {
		if !hidden[name] {
			continue
		}
		for _, r := range res.Rows {
			r[ci] = Null()
		}
	}
}
