// Package reldb is the relational substrate: an in-memory web database
// engine with a SQL subset, transactions, indexes, a recovery log, a
// metadata catalog, and — the reason it exists in this repository —
// security hooks in every function the paper says needs them (§2.1, §3.1):
// query processing that "take[s] into consideration the access control
// policies", transaction management that ensures "integrity as well as
// security constraints are satisfied", the auction ("open bid") transaction
// model, and metadata that "includes security policies".
package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the type of a Value.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a typed SQL value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null, Int, Float, Str and Bool construct values.
func Null() Value           { return Value{Kind: KindNull} }
func Int(i int64) Value     { return Value{Kind: KindInt, I: i} }
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }
func Str(s string) Value    { return Value{Kind: KindString, S: s} }
func Bool(b bool) Value     { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// asFloat coerces numeric values for cross-kind comparison.
func (v Value) asFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Compare orders two values: -1, 0 or +1. NULL sorts first; numeric kinds
// compare numerically across int/float; mismatched non-numeric kinds
// compare by kind. The boolean false sorts before true.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if af, ok := a.asFloat(); ok {
		if bf, ok2 := b.asFloat(); ok2 {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Equal reports value equality under Compare semantics, except that NULL
// never equals anything (SQL three-valued logic collapsed to false).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a map key string for hash indexing.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Normalize integral floats onto the int keyspace so 1 and 1.0
		// hash together, matching Compare.
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + v.S
	case KindBool:
		if v.B {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// Row is one tuple.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Column describes one attribute of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
}

// ColIndex returns the position of a column by name, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// CheckRow validates a row's arity and kinds (NULL is accepted anywhere;
// ints are accepted where floats are expected).
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("reldb: row has %d values, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		want := s.Columns[i].Kind
		if v.Kind == KindNull || v.Kind == want {
			continue
		}
		if want == KindFloat && v.Kind == KindInt {
			continue
		}
		return fmt.Errorf("reldb: column %s wants %v, got %v", s.Columns[i].Name, want, v.Kind)
	}
	return nil
}
