package reldb

import (
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.0), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL should be false")
	}
	if Equal(Null(), Int(1)) || Equal(Int(1), Null()) {
		t.Error("NULL = value should be false")
	}
	if !Equal(Int(1), Float(1.0)) {
		t.Error("1 = 1.0 should hold")
	}
}

func TestKeyConsistentWithCompare(t *testing.T) {
	// Values that Compare as equal must share a key (hash index
	// correctness); int/float integral overlap in particular.
	pairs := [][2]Value{
		{Int(1), Float(1.0)},
		{Str("x"), Str("x")},
		{Bool(true), Bool(true)},
	}
	for _, p := range pairs {
		if Compare(p[0], p[1]) == 0 && p[0].Key() != p[1].Key() {
			t.Errorf("equal values %v, %v have different keys", p[0], p[1])
		}
	}
	// And distinct values must not collide across kinds.
	distinct := []Value{Int(1), Str("1"), Bool(true), Null(), Float(1.5)}
	seen := map[string]Value{}
	for _, v := range distinct {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision: %v and %v", prev, v)
		}
		seen[v.Key()] = v
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntFloatCoherence(t *testing.T) {
	f := func(a int32) bool {
		return Compare(Int(int64(a)), Float(float64(a))) == 0 &&
			Int(int64(a)).Key() == Float(float64(a)).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaCheckRow(t *testing.T) {
	s := Schema{Columns: []Column{{"id", KindInt}, {"name", KindString}, {"score", KindFloat}}}
	if err := s.CheckRow(Row{Int(1), Str("a"), Float(2.5)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.CheckRow(Row{Int(1), Str("a"), Int(2)}); err != nil {
		t.Errorf("int into float rejected: %v", err)
	}
	if err := s.CheckRow(Row{Null(), Null(), Null()}); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
	if err := s.CheckRow(Row{Int(1), Str("a")}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.CheckRow(Row{Str("x"), Str("a"), Float(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null(), "42": Int(42), "2.5": Float(2.5),
		"hi": Str("hi"), "true": Bool(true), "false": Bool(false),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind, v.String(), want)
		}
	}
}
