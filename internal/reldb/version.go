package reldb

import (
	"sort"
	"sync/atomic"
)

// Multi-version concurrency control for the relational engine.
//
// The committed state of a Database is an immutable dbVersion: a map from
// table name to frozen *Table, stamped with the WAL LSN of the record that
// installed it (the committing transaction's Commit record, or a DDL
// record). Writers build new frozen tables privately and install a new
// version under db.mu; readers Load the current version pointer and run
// entirely lock-free — a query never takes a mutex, and a version, once
// loaded, can never change underneath the reader.
//
// Versions are stamped with the committing WAL LSN, and installs happen in
// the same db.mu critical section that assigns the LSN, so MVCC order and
// replication/log order are the same total order: version V.lsn covers
// exactly the commits and DDL with LSN <= V.lsn.
//
// Reclamation is writer-driven: superseded versions sit on db.retained
// until no Snapshot pins them, and every install sweeps the unpinned ones.
// Readers only touch atomics — a reader that loses the pin race with a
// sweep still holds a valid immutable version (the Go GC is the actual
// deallocator; the sweep is bookkeeping that bounds the retained list and
// feeds VersionStats).

// dbVersion is one immutable committed state of the database.
type dbVersion struct {
	// lsn is the WAL LSN of the record that installed this version: the
	// highest commit/DDL LSN whose effects the version contains.
	lsn int64
	// txnSeq is the transaction-id high-water mark at install time.
	txnSeq int64
	// tables maps table name to its frozen state. The map and every table
	// in it are immutable.
	tables map[string]*Table
	// pins counts Snapshots holding this version.
	pins atomic.Int64
}

func (v *dbVersion) table(name string) (*Table, bool) {
	t, ok := v.tables[name]
	return t, ok
}

func (v *dbVersion) tableNames() []string {
	out := make([]string, 0, len(v.tables))
	for n := range v.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// cloneTables shallow-copies the name → table map; the tables themselves
// are shared (they are immutable).
func (v *dbVersion) cloneTables() map[string]*Table {
	out := make(map[string]*Table, len(v.tables)+1)
	for n, t := range v.tables {
		out[n] = t
	}
	return out
}

// Snapshot is a pinned read view of the database: every read through it
// sees the single committed version that was current when the snapshot was
// taken, regardless of how many commits install afterwards. Snapshots are
// cheap (two atomic operations) and must be Released when done so the
// version can be reclaimed; a leaked snapshot delays bookkeeping but never
// blocks writers.
type Snapshot struct {
	db       *Database
	v        *dbVersion
	released atomic.Bool
}

// Snapshot pins the current committed version and returns a read view of
// it. It never blocks: pinning is lock-free even while commits, DDL and
// checkpoints run.
func (db *Database) Snapshot() *Snapshot {
	for {
		v := db.current.Load()
		v.pins.Add(1)
		// An install may have superseded v between the Load and the pin —
		// and the sweep may already have counted v reclaimable. Re-check and
		// retry on the fresh version; the stale pin is dropped.
		if db.current.Load() == v {
			return &Snapshot{db: db, v: v}
		}
		v.pins.Add(-1)
	}
}

// Release unpins the snapshot. Idempotent.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.v.pins.Add(-1)
	}
}

// LSN returns the WAL LSN the snapshot's version was installed at: the
// snapshot contains exactly the commits and DDL with LSN <= LSN().
func (s *Snapshot) LSN() int64 { return s.v.lsn }

// Table returns the snapshot's frozen state of the named table.
func (s *Snapshot) Table(name string) (*Table, bool) { return s.v.table(name) }

// Tables returns the snapshot's table names, sorted.
func (s *Snapshot) Tables() []string { return s.v.tableNames() }

// ExecSelect runs a read-only query against the pinned version.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes and rewrites before queries reach a snapshot
// seclint:sink
func (s *Snapshot) ExecSelect(stmt *SelectStmt) (*Result, error) {
	return execSelectVersion(s.v, stmt)
}

// VersionStats counts the version lifecycle for debugging and tests.
type VersionStats struct {
	// Installed counts versions installed since open (the initial empty
	// version is not counted).
	Installed uint64
	// Reclaimed counts superseded versions swept off the retained list
	// with no snapshot pinning them.
	Reclaimed uint64
	// Retained is the current length of the retained list: superseded
	// versions still pinned by some snapshot (or not yet swept).
	Retained int
	// Pinned is the pin count of the current version right now.
	Pinned int64
}

// VersionStats snapshots the MVCC bookkeeping counters.
func (db *Database) VersionStats() VersionStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.vstats
	st.Retained = len(db.retained)
	st.Pinned = db.current.Load().pins.Load()
	return st
}

// installLocked publishes a new version: the current tables overlaid with
// the (already frozen) tables in work, stamped at lsn. Caller holds db.mu;
// lsn is the WAL LSN assigned in the same critical section, so versions
// install in LSN order. The superseded version is retained until no
// snapshot pins it; each install sweeps the unpinned ones.
//
// seclint:locked caller holds db.mu
func (db *Database) installLocked(lsn int64, work map[string]*Table) {
	cur := db.current.Load()
	tables := cur.cloneTables()
	for name, t := range work {
		if !t.frozen {
			panic("reldb: installing unfrozen table " + name)
		}
		tables[name] = t
	}
	if lsn < cur.lsn {
		lsn = cur.lsn
	}
	v := &dbVersion{lsn: lsn, txnSeq: db.txnSeq, tables: tables}
	db.current.Store(v)
	db.vstats.Installed++
	db.retained = append(db.retained, cur)
	db.sweepLocked()
}

// sweepLocked drops retained versions with no pins. Caller holds db.mu.
//
// seclint:locked caller holds db.mu
func (db *Database) sweepLocked() {
	kept := db.retained[:0]
	for _, v := range db.retained {
		if v.pins.Load() > 0 {
			kept = append(kept, v)
		} else {
			db.vstats.Reclaimed++
		}
	}
	for i := len(kept); i < len(db.retained); i++ {
		db.retained[i] = nil
	}
	db.retained = kept
}
