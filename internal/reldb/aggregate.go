package reldb

import (
	"fmt"
	"sort"
	"strings"

	"webdbsec/internal/policy"
	"webdbsec/internal/sysr"
)

// Aggregate queries: SELECT COUNT(*), SUM(col), AVG(col), MIN(col),
// MAX(col) FROM t [WHERE ...] [GROUP BY col]. Statistical queries are the
// workhorse of the paper's privacy scenarios — researchers get aggregates
// while row-level access is constrained — so they are first-class here.

// AggFunc names an aggregate function.
type AggFunc string

// Aggregate functions.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// AggExpr is one aggregate in a select list.
type AggExpr struct {
	Func AggFunc
	// Col is the aggregated column; "*" only for COUNT.
	Col string
}

func (a AggExpr) String() string { return fmt.Sprintf("%s(%s)", a.Func, a.Col) }

// AggregateStmt is a parsed aggregate query.
type AggregateStmt struct {
	Table   string
	Aggs    []AggExpr
	Where   Expr
	GroupBy string
}

func (*AggregateStmt) stmt() {}

// ParseAggregate parses an aggregate SELECT. It returns an error when the
// statement is not an aggregate query (callers fall back to Parse).
// seclint:sanitizer
func ParseAggregate(src string) (*AggregateStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	if !p.atKeyword("SELECT") {
		return nil, fmt.Errorf("reldb: not a SELECT")
	}
	p.next()
	st := &AggregateStmt{}
	for {
		fn, err := p.ident()
		if err != nil {
			return nil, err
		}
		var agg AggFunc
		switch strings.ToUpper(fn) {
		case "COUNT":
			agg = AggCount
		case "SUM":
			agg = AggSum
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		default:
			return nil, fmt.Errorf("reldb: %q is not an aggregate function", fn)
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col := ""
		if p.cur().kind == "punct" && p.cur().text == "*" {
			p.next()
			col = "*"
		} else {
			col, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if col == "*" && agg != AggCount {
			return nil, fmt.Errorf("reldb: %s(*) is not valid", agg)
		}
		st.Aggs = append(st.Aggs, AggExpr{Func: agg, Col: col})
		if p.cur().kind == "punct" && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.atKeyword("WHERE") {
		p.next()
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		st.GroupBy, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("reldb: trailing input %q in %q", p.cur().text, src)
	}
	return st, nil
}

// ExecAggregate evaluates an aggregate query. Group rows are sorted by
// group key. NULLs are skipped by SUM/AVG/MIN/MAX and by COUNT(col);
// COUNT(*) counts rows.
//
// seclint:exempt storage engine below the access-control gate; SecureDB authorizes before aggregation
// seclint:sink
func (db *Database) ExecAggregate(st *AggregateStmt) (*Result, error) {
	t, ok := db.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %s", st.Table)
	}
	// Resolve columns up front.
	colIdx := make([]int, len(st.Aggs))
	for i, a := range st.Aggs {
		if a.Col == "*" {
			colIdx[i] = -1
			continue
		}
		ci := t.Schema.ColIndex(a.Col)
		if ci < 0 {
			return nil, fmt.Errorf("reldb: unknown column %s", a.Col)
		}
		colIdx[i] = ci
	}
	groupIdx := -1
	if st.GroupBy != "" {
		groupIdx = t.Schema.ColIndex(st.GroupBy)
		if groupIdx < 0 {
			return nil, fmt.Errorf("reldb: unknown GROUP BY column %s", st.GroupBy)
		}
	}
	_, rows, err := planScan(t, st.Where)
	if err != nil {
		return nil, err
	}

	type acc struct {
		groupVal Value
		count    []int64
		sum      []float64
		min      []Value
		max      []Value
		seen     []bool
	}
	newAcc := func(gv Value) *acc {
		return &acc{
			groupVal: gv,
			count:    make([]int64, len(st.Aggs)),
			sum:      make([]float64, len(st.Aggs)),
			min:      make([]Value, len(st.Aggs)),
			max:      make([]Value, len(st.Aggs)),
			seen:     make([]bool, len(st.Aggs)),
		}
	}
	groups := map[string]*acc{}
	var order []string
	for _, r := range rows {
		key := ""
		gv := Null()
		if groupIdx >= 0 {
			gv = r[groupIdx]
			key = gv.Key()
		}
		a := groups[key]
		if a == nil {
			a = newAcc(gv)
			groups[key] = a
			order = append(order, key)
		}
		for i, ag := range st.Aggs {
			if colIdx[i] < 0 { // COUNT(*)
				a.count[i]++
				continue
			}
			v := r[colIdx[i]]
			if v.IsNull() {
				continue
			}
			a.count[i]++
			if f, ok := v.asFloat(); ok {
				a.sum[i] += f
			} else if ag.Func == AggSum || ag.Func == AggAvg {
				return nil, fmt.Errorf("reldb: %s over non-numeric column %s", ag.Func, ag.Col)
			}
			if !a.seen[i] || Compare(v, a.min[i]) < 0 {
				a.min[i] = v
			}
			if !a.seen[i] || Compare(v, a.max[i]) > 0 {
				a.max[i] = v
			}
			a.seen[i] = true
		}
	}
	// Assemble result.
	res := &Result{}
	if groupIdx >= 0 {
		res.Columns = append(res.Columns, st.GroupBy)
	}
	for _, a := range st.Aggs {
		res.Columns = append(res.Columns, a.String())
	}
	sort.Strings(order)
	for _, key := range order {
		a := groups[key]
		var row Row
		if groupIdx >= 0 {
			row = append(row, a.groupVal)
		}
		for i, ag := range st.Aggs {
			switch ag.Func {
			case AggCount:
				row = append(row, Int(a.count[i]))
			case AggSum:
				if a.count[i] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(a.sum[i]))
				}
			case AggAvg:
				if a.count[i] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(a.sum[i]/float64(a.count[i])))
				}
			case AggMin:
				if !a.seen[i] {
					row = append(row, Null())
				} else {
					row = append(row, a.min[i])
				}
			case AggMax:
				if !a.seen[i] {
					row = append(row, Null())
				} else {
					row = append(row, a.max[i])
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	// An ungrouped aggregate over zero rows still yields one row.
	if groupIdx < 0 && len(res.Rows) == 0 {
		var row Row
		for _, ag := range st.Aggs {
			if ag.Func == AggCount {
				row = append(row, Int(0))
			} else {
				row = append(row, Null())
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// ExecAggregateSecure runs an aggregate query for a subject through the
// same privilege + row-policy gates as SecureDB.Exec: aggregates are
// computed over the subject's VISIBLE rows only, which is how statistical
// access composes with row-level protection.
func (s *SecureDB) ExecAggregateSecure(subject *policy.Subject, src string) (*Result, error) {
	st, err := ParseAggregate(src)
	if err != nil {
		return nil, err
	}
	if !s.grants.HasPrivilege(subject.ID, sysr.Select, st.Table) {
		return nil, fmt.Errorf("reldb: %s lacks SELECT on %s", subject.ID, st.Table)
	}
	rewritten, empty := s.rewriteWhere(subject, st.Table, st.Where)
	if empty {
		// No visible rows: COUNT 0 / NULLs, never an information leak.
		st2 := *st
		st2.Where = &falseExpr{}
		return s.db.ExecAggregate(&st2)
	}
	st2 := *st
	st2.Where = rewritten
	return s.db.ExecAggregate(&st2)
}

// falseExpr matches nothing.
type falseExpr struct{}

func (falseExpr) Eval(*Schema, Row) (bool, error) { return false, nil }
func (falseExpr) String() string                  { return "FALSE" }
