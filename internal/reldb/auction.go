package reldb

import (
	"fmt"
	"time"
)

// AuctionHouse implements the paper's open-bid transaction model (§2.1):
// "various items may be sold through the Internet. In this case, the item
// should not be locked immediately when a potential buyer makes a bid. It
// has to be left open until several bids are received and the item is
// sold. That is, special transaction models are needed."
//
// Bids are short independent transactions appending to the bids table; the
// item row stays unlocked until Close runs one atomic transaction that
// picks the winner. LockingAuctionHouse below is the conventional baseline
// that holds the item locked for the bidder's whole think time — the model
// the paper says does not fit the web.
type AuctionHouse struct {
	db *Database
}

// NewAuctionHouse creates the auction schema in the database.
func NewAuctionHouse(db *Database) (*AuctionHouse, error) {
	stmts := []string{
		"CREATE TABLE auction_items (item TEXT, seller TEXT, status TEXT, winner TEXT, price INT)",
		"CREATE HASH INDEX ON auction_items (item)",
		"CREATE TABLE auction_bids (item TEXT, bidder TEXT, amount INT)",
		"CREATE HASH INDEX ON auction_bids (item)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	return &AuctionHouse{db: db}, nil
}

// Open lists an item for sale.
func (a *AuctionHouse) Open(item, seller string) error {
	_, err := a.db.Exec(fmt.Sprintf(
		"INSERT INTO auction_items VALUES ('%s', '%s', 'open', '', 0)", item, seller))
	return err
}

// PlaceBid records a bid in its own short transaction. The item row is
// read (to check it is open) but not locked across the bidder's think
// time.
func (a *AuctionHouse) PlaceBid(item, bidder string, amount int64) error {
	txn := a.db.Begin()
	res, err := txn.Exec(fmt.Sprintf(
		"SELECT status FROM auction_items WHERE item = '%s'", item))
	if err != nil {
		txn.Abort()
		return err
	}
	if len(res.Rows) == 0 {
		txn.Abort()
		return fmt.Errorf("reldb: no such auction item %s", item)
	}
	if res.Rows[0][0].S != "open" {
		txn.Abort()
		return fmt.Errorf("reldb: auction for %s is closed", item)
	}
	if _, err := txn.Exec(fmt.Sprintf(
		"INSERT INTO auction_bids VALUES ('%s', '%s', %d)", item, bidder, amount)); err != nil {
		txn.Abort()
		return err
	}
	return txn.Commit()
}

// Close atomically selects the highest bid, marks the item sold and
// records winner and price. It returns the winner and price; an auction
// with no bids closes with an empty winner.
func (a *AuctionHouse) Close(item string) (winner string, price int64, err error) {
	txn := a.db.Begin()
	defer func() {
		if err != nil {
			txn.Abort()
		}
	}()
	res, err := txn.Exec(fmt.Sprintf(
		"SELECT bidder, amount FROM auction_bids WHERE item = '%s' ORDER BY amount DESC LIMIT 1", item))
	if err != nil {
		return "", 0, err
	}
	status := "closed"
	if len(res.Rows) > 0 {
		winner = res.Rows[0][0].S
		price = res.Rows[0][1].I
		status = "sold"
	}
	upd, err := txn.Exec(fmt.Sprintf(
		"UPDATE auction_items SET status = '%s', winner = '%s', price = %d WHERE item = '%s' AND status = 'open'",
		status, winner, price, item))
	if err != nil {
		return "", 0, err
	}
	if upd.Affected == 0 {
		err = fmt.Errorf("reldb: auction for %s is not open", item)
		return "", 0, err
	}
	if cerr := txn.Commit(); cerr != nil {
		return "", 0, cerr
	}
	return winner, price, nil
}

// Bids returns the number of bids recorded for an item.
func (a *AuctionHouse) Bids(item string) (int, error) {
	res, err := a.db.Exec(fmt.Sprintf(
		"SELECT bidder FROM auction_bids WHERE item = '%s'", item))
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// LockingAuctionHouse is the conventional baseline: each bid opens a
// transaction that takes an exclusive lock on the items table and holds it
// for the bidder's think time before writing the bid — serializing every
// concurrent bidder. Experiment E14 measures the throughput gap.
type LockingAuctionHouse struct {
	inner *AuctionHouse
	// ThinkTime is how long a bidder "inspects" the item while holding the
	// lock.
	ThinkTime time.Duration
}

// NewLockingAuctionHouse wraps an auction house with locking-bid
// semantics.
func NewLockingAuctionHouse(a *AuctionHouse, think time.Duration) *LockingAuctionHouse {
	return &LockingAuctionHouse{inner: a, ThinkTime: think}
}

// PlaceBid locks the item (table) for the whole think time.
func (l *LockingAuctionHouse) PlaceBid(item, bidder string, amount int64) error {
	txn := l.inner.db.Begin()
	// Exclusive lock on the items table for the duration of the "visit".
	if _, err := txn.Exec(fmt.Sprintf(
		"UPDATE auction_items SET status = 'open' WHERE item = '%s' AND status = 'open'", item)); err != nil {
		txn.Abort()
		return err
	}
	time.Sleep(l.ThinkTime)
	if _, err := txn.Exec(fmt.Sprintf(
		"INSERT INTO auction_bids VALUES ('%s', '%s', %d)", item, bidder, amount)); err != nil {
		txn.Abort()
		return err
	}
	return txn.Commit()
}
