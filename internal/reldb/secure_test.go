package reldb

import (
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/sysr"
)

// hrFixture: an employee table owned by dba, with row policies (managers
// see all rows, staff see only their department) and a column policy
// hiding salaries from staff.
func hrFixture(t *testing.T) (*SecureDB, *policy.Subject, *policy.Subject, *policy.Subject) {
	t.Helper()
	sdb := NewSecureDB(NewDatabase(), nil)
	dba := &policy.Subject{ID: "dba"}
	if err := sdb.CreateTable(dba, "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary INT)"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{
		"(1, 'Ada', 'eng', 120)", "(2, 'Bob', 'eng', 90)", "(3, 'Cyd', 'hr', 80)",
	} {
		if _, err := sdb.Exec(dba, "INSERT INTO emp VALUES "+r); err != nil {
			t.Fatal(err)
		}
	}
	// Grants.
	mustNoErr(t, sdb.Grants().Grant("dba", "mgr", sysr.Select, "emp", false))
	mustNoErr(t, sdb.Grants().Grant("dba", "eng-staff", sysr.Select, "emp", false))
	mustNoErr(t, sdb.Grants().Grant("dba", "mgr", sysr.Update, "emp", false))
	mustNoErr(t, sdb.Grants().Grant("dba", "eng-staff", sysr.Update, "emp", false))
	// Row policies.
	mgrPred := MustParse("SELECT * FROM emp WHERE salary >= 0").(*SelectStmt).Where
	engPred := MustParse("SELECT * FROM emp WHERE dept = 'eng'").(*SelectStmt).Where
	mustNoErr(t, sdb.AddRowPolicy(&RowPolicy{
		Name: "mgr-all", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"manager"}}, Pred: mgrPred,
	}))
	mustNoErr(t, sdb.AddRowPolicy(&RowPolicy{
		Name: "eng-own-dept", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"eng"}}, Pred: engPred,
	}))
	// Column policy: staff don't see salaries.
	mustNoErr(t, sdb.AddColPolicy(&ColPolicy{
		Name: "hide-salary", Table: "emp",
		Subject: policy.SubjectSpec{Roles: []string{"eng"}}, Columns: []string{"salary"},
	}))
	mgr := &policy.Subject{ID: "mgr", Roles: []string{"manager"}}
	eng := &policy.Subject{ID: "eng-staff", Roles: []string{"eng"}}
	return sdb, dba, mgr, eng
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrivilegeRequired(t *testing.T) {
	sdb, _, _, _ := hrFixture(t)
	stranger := &policy.Subject{ID: "nobody"}
	if _, err := sdb.Exec(stranger, "SELECT * FROM emp"); err == nil {
		t.Error("SELECT without privilege accepted")
	}
	if _, err := sdb.Exec(stranger, "INSERT INTO emp VALUES (9,'X','eng',1)"); err == nil {
		t.Error("INSERT without privilege accepted")
	}
	if _, err := sdb.Exec(stranger, "UPDATE emp SET salary = 0"); err == nil {
		t.Error("UPDATE without privilege accepted")
	}
	if _, err := sdb.Exec(stranger, "DELETE FROM emp"); err == nil {
		t.Error("DELETE without privilege accepted")
	}
}

func TestRowLevelRewrite(t *testing.T) {
	sdb, _, mgr, eng := hrFixture(t)
	res, err := sdb.Exec(mgr, "SELECT name FROM emp ORDER BY name")
	mustNoErr(t, err)
	if len(res.Rows) != 3 {
		t.Errorf("manager sees %d rows", len(res.Rows))
	}
	res, err = sdb.Exec(eng, "SELECT name FROM emp ORDER BY name")
	mustNoErr(t, err)
	if len(res.Rows) != 2 {
		t.Fatalf("eng staff sees %d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].S == "Cyd" {
			t.Error("hr row leaked to eng staff")
		}
	}
	// User's own WHERE composes with the policy predicate.
	res, err = sdb.Exec(eng, "SELECT name FROM emp WHERE salary > 100")
	mustNoErr(t, err)
	if len(res.Rows) != 1 || res.Rows[0][0] != Str("Ada") {
		t.Errorf("composed where = %v", res.Rows)
	}
}

func TestNoApplicablePolicyMeansNoRows(t *testing.T) {
	sdb, dba, _, _ := hrFixture(t)
	// dba has privileges (owner) but matches no row policy: closed.
	mustNoErr(t, sdb.Grants().Grant("dba", "outsider", sysr.Select, "emp", false))
	outsider := &policy.Subject{ID: "outsider"}
	res, err := sdb.Exec(outsider, "SELECT * FROM emp")
	mustNoErr(t, err)
	if len(res.Rows) != 0 {
		t.Errorf("outsider sees %d rows", len(res.Rows))
	}
	_ = dba
}

func TestColumnMasking(t *testing.T) {
	sdb, _, mgr, eng := hrFixture(t)
	res, err := sdb.Exec(eng, "SELECT name, salary FROM emp ORDER BY name")
	mustNoErr(t, err)
	for _, r := range res.Rows {
		if !r[1].IsNull() {
			t.Errorf("salary visible to staff: %v", r)
		}
		if r[0].IsNull() {
			t.Error("unmasked column damaged")
		}
	}
	res, err = sdb.Exec(mgr, "SELECT name, salary FROM emp ORDER BY name")
	mustNoErr(t, err)
	for _, r := range res.Rows {
		if r[1].IsNull() {
			t.Errorf("salary masked for manager: %v", r)
		}
	}
	// SELECT * masks too.
	res, err = sdb.Exec(eng, "SELECT * FROM emp")
	mustNoErr(t, err)
	si := 3 // salary column position
	for _, r := range res.Rows {
		if !r[si].IsNull() {
			t.Error("salary visible via SELECT *")
		}
	}
}

func TestUpdateDeleteScopedByRowPolicy(t *testing.T) {
	sdb, dba, _, eng := hrFixture(t)
	// eng staff tries to zero every salary; only eng rows are reachable.
	res, err := sdb.Exec(eng, "UPDATE emp SET salary = 0")
	mustNoErr(t, err)
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	check, _ := sdb.Exec(dba, "SELECT salary FROM emp WHERE dept = 'hr'")
	_ = check
	raw, err := sdb.DB().Exec("SELECT salary FROM emp WHERE dept = 'hr'")
	mustNoErr(t, err)
	if raw.Rows[0][0] != Int(80) {
		t.Error("hr row modified through eng policy")
	}
}

func TestGrantRevokeIntegration(t *testing.T) {
	sdb, _, mgr, _ := hrFixture(t)
	if _, err := sdb.Exec(mgr, "SELECT name FROM emp"); err != nil {
		t.Fatal(err)
	}
	mustNoErr(t, sdb.Grants().Revoke("dba", "mgr", sysr.Select, "emp"))
	if _, err := sdb.Exec(mgr, "SELECT name FROM emp"); err == nil {
		t.Error("SELECT after revoke accepted")
	}
}

func TestPolicyValidation(t *testing.T) {
	sdb := NewSecureDB(NewDatabase(), nil)
	if err := sdb.AddRowPolicy(&RowPolicy{Name: "x"}); err == nil {
		t.Error("row policy without table/pred accepted")
	}
	if err := sdb.AddColPolicy(&ColPolicy{Name: "x", Table: "t"}); err == nil {
		t.Error("column policy without columns accepted")
	}
	if err := sdb.CreateTable(&policy.Subject{ID: "o"}, "SELECT * FROM t"); err == nil {
		t.Error("CreateTable accepted non-DDL")
	}
}
