package reldb

import (
	"fmt"
	"sort"
)

// Table is a heap of rows with optional hash and ordered indexes. Rows are
// addressed by a stable rowID (never reused), which the transaction layer
// uses for write sets and locks.
//
// Tables are copy-on-write at table granularity (the MVCC unit): a table
// reachable from a published dbVersion is frozen — immutable forever — and
// all reads on it are lock-free. Mutation happens only on private working
// copies (a transaction's write set, recovery staging, a follower's apply
// overlay) that exactly one goroutine owns; committing freezes the copy
// and installs it into a new version. The frozen flag turns a violation of
// that ownership discipline into a panic instead of a data race.
type Table struct {
	Name   string
	Schema Schema

	// frozen marks the table immutable: it is reachable from a published
	// version and may be read by any number of goroutines, but never
	// written again.
	frozen bool

	rows   map[int64]Row
	nextID int64

	hashIdx map[string]*hashIndex
	ordIdx  map[string]*orderedIndex
}

// hashIndex maps a column value key to the rowIDs holding it.
type hashIndex struct {
	col  int
	rows map[string]map[int64]bool
}

// orderedIndex keeps (value, rowID) pairs sorted for range scans — the
// B-tree stand-in (same asymptotics for lookup via binary search; inserts
// are O(n) moves, acceptable for the in-memory scale this engine targets).
type orderedIndex struct {
	col     int
	entries []ordEntry
}

type ordEntry struct {
	v  Value
	id int64
}

// NewTable creates an empty, unfrozen table.
func NewTable(name string, schema Schema) *Table {
	return &Table{
		Name:    name,
		Schema:  schema,
		rows:    make(map[int64]Row),
		hashIdx: make(map[string]*hashIndex),
		ordIdx:  make(map[string]*orderedIndex),
	}
}

// freeze marks the table immutable and returns it.
func (t *Table) freeze() *Table {
	t.frozen = true
	return t
}

// clone returns a private, unfrozen copy the caller may mutate. Row values
// are shared with the original — safe, because rows in the map are never
// mutated in place (Insert/Update store fresh clones) — while the row map
// and both index structures are deep-copied.
func (t *Table) clone() *Table {
	c := &Table{
		Name:    t.Name,
		Schema:  t.Schema,
		rows:    make(map[int64]Row, len(t.rows)),
		nextID:  t.nextID,
		hashIdx: make(map[string]*hashIndex, len(t.hashIdx)),
		ordIdx:  make(map[string]*orderedIndex, len(t.ordIdx)),
	}
	for id, r := range t.rows {
		c.rows[id] = r
	}
	for col, idx := range t.hashIdx {
		ci := &hashIndex{col: idx.col, rows: make(map[string]map[int64]bool, len(idx.rows))}
		for k, ids := range idx.rows {
			m := make(map[int64]bool, len(ids))
			for id := range ids {
				m[id] = true
			}
			ci.rows[k] = m
		}
		c.hashIdx[col] = ci
	}
	for col, idx := range t.ordIdx {
		c.ordIdx[col] = &orderedIndex{col: idx.col, entries: append([]ordEntry(nil), idx.entries...)}
	}
	return c
}

// mutable panics when the table is frozen — the copy-on-write discipline
// guard (a frozen table may be shared by any number of readers).
func (t *Table) mutable() {
	if t.frozen {
		panic("reldb: write to frozen table " + t.Name + " (mutate a working copy instead)")
	}
}

// CreateHashIndex builds a hash index on the column, indexing existing
// rows. Only legal on a private working copy.
func (t *Table) CreateHashIndex(col string) error {
	t.mutable()
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %s", t.Name, col)
	}
	idx := &hashIndex{col: ci, rows: make(map[string]map[int64]bool)}
	for id, r := range t.rows {
		idx.add(r[ci], id)
	}
	t.hashIdx[col] = idx
	return nil
}

// CreateOrderedIndex builds an ordered index on the column. Only legal on
// a private working copy.
func (t *Table) CreateOrderedIndex(col string) error {
	t.mutable()
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %s", t.Name, col)
	}
	idx := &orderedIndex{col: ci}
	for id, r := range t.rows {
		idx.entries = append(idx.entries, ordEntry{r[ci], id})
	}
	sort.Slice(idx.entries, func(i, j int) bool { return less(idx.entries[i], idx.entries[j]) })
	t.ordIdx[col] = idx
	return nil
}

func less(a, b ordEntry) bool {
	if c := Compare(a.v, b.v); c != 0 {
		return c < 0
	}
	return a.id < b.id
}

func (h *hashIndex) add(v Value, id int64) {
	k := v.Key()
	m := h.rows[k]
	if m == nil {
		m = make(map[int64]bool)
		h.rows[k] = m
	}
	m[id] = true
}

func (h *hashIndex) remove(v Value, id int64) {
	k := v.Key()
	delete(h.rows[k], id)
	if len(h.rows[k]) == 0 {
		delete(h.rows, k)
	}
}

func (o *orderedIndex) add(v Value, id int64) {
	e := ordEntry{v, id}
	i := sort.Search(len(o.entries), func(i int) bool { return !less(o.entries[i], e) })
	o.entries = append(o.entries, ordEntry{})
	copy(o.entries[i+1:], o.entries[i:])
	o.entries[i] = e
}

func (o *orderedIndex) remove(v Value, id int64) {
	e := ordEntry{v, id}
	i := sort.Search(len(o.entries), func(i int) bool { return !less(o.entries[i], e) })
	if i < len(o.entries) && o.entries[i].id == id {
		o.entries = append(o.entries[:i], o.entries[i+1:]...)
	}
}

// Insert adds a row and returns its rowID. Only legal on a private working
// copy.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Insert(r Row) (int64, error) {
	t.mutable()
	if err := t.Schema.CheckRow(r); err != nil {
		return 0, err
	}
	t.nextID++
	id := t.nextID
	t.rows[id] = r.Clone()
	for _, idx := range t.hashIdx {
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.add(r[idx.col], id)
	}
	return id, nil
}

// insertAt restores a row under a specific id (recovery/replica path).
func (t *Table) insertAt(id int64, r Row) {
	t.mutable()
	t.rows[id] = r.Clone()
	if id > t.nextID {
		t.nextID = id
	}
	for _, idx := range t.hashIdx {
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.add(r[idx.col], id)
	}
}

// Get returns a copy of the row with the given id. Lock-free.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Get(id int64) (Row, bool) {
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Update replaces the row with the given id, returning the old row. Only
// legal on a private working copy.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Update(id int64, r Row) (Row, error) {
	t.mutable()
	if err := t.Schema.CheckRow(r); err != nil {
		return nil, err
	}
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %s has no row %d", t.Name, id)
	}
	for _, idx := range t.hashIdx {
		idx.remove(old[idx.col], id)
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.remove(old[idx.col], id)
		idx.add(r[idx.col], id)
	}
	t.rows[id] = r.Clone()
	return old, nil
}

// Delete removes the row with the given id, returning the old row. Only
// legal on a private working copy.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Delete(id int64) (Row, error) {
	t.mutable()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %s has no row %d", t.Name, id)
	}
	for _, idx := range t.hashIdx {
		idx.remove(old[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.remove(old[idx.col], id)
	}
	delete(t.rows, id)
	return old, nil
}

// Len returns the number of rows. Lock-free.
func (t *Table) Len() int {
	return len(t.rows)
}

// Scan calls fn for every (rowID, row) pair; fn must not mutate the row.
// Iteration order is by rowID for determinism. Lock-free: on a frozen
// table the iteration sees exactly the version's state no matter what
// commits concurrently.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !fn(id, t.rows[id]) {
			return
		}
	}
}

// LookupEq uses a hash index (if present) to find rowIDs whose column
// equals v; ok is false when no usable index exists. Lock-free.
func (t *Table) LookupEq(col string, v Value) (ids []int64, ok bool) {
	idx, exists := t.hashIdx[col]
	if !exists {
		return nil, false
	}
	for id := range idx.rows[v.Key()] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// LookupRange uses an ordered index to find rowIDs with lo <= col <= hi;
// nil bounds are open. ok is false when no ordered index exists. Lock-free.
func (t *Table) LookupRange(col string, lo, hi *Value) (ids []int64, ok bool) {
	idx, exists := t.ordIdx[col]
	if !exists {
		return nil, false
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(idx.entries), func(i int) bool {
			return Compare(idx.entries[i].v, *lo) >= 0
		})
	}
	for i := start; i < len(idx.entries); i++ {
		if hi != nil && Compare(idx.entries[i].v, *hi) > 0 {
			break
		}
		ids = append(ids, idx.entries[i].id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// HasHashIndex reports whether the column has a hash index. Lock-free.
func (t *Table) HasHashIndex(col string) bool {
	_, ok := t.hashIdx[col]
	return ok
}

// HasOrderedIndex reports whether the column has an ordered index.
// Lock-free.
func (t *Table) HasOrderedIndex(col string) bool {
	_, ok := t.ordIdx[col]
	return ok
}
