package reldb

import (
	"fmt"
	"sort"
	"sync"
)

// Table is a heap of rows with optional hash and ordered indexes. Rows are
// addressed by a stable rowID (never reused), which the transaction layer
// uses for undo records and locks.
type Table struct {
	Name   string
	Schema Schema

	mu     sync.RWMutex
	rows   map[int64]Row
	nextID int64

	hashIdx map[string]*hashIndex
	ordIdx  map[string]*orderedIndex
}

// hashIndex maps a column value key to the rowIDs holding it.
type hashIndex struct {
	col  int
	rows map[string]map[int64]bool
}

// orderedIndex keeps (value, rowID) pairs sorted for range scans — the
// B-tree stand-in (same asymptotics for lookup via binary search; inserts
// are O(n) moves, acceptable for the in-memory scale this engine targets).
type orderedIndex struct {
	col     int
	entries []ordEntry
}

type ordEntry struct {
	v  Value
	id int64
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{
		Name:    name,
		Schema:  schema,
		rows:    make(map[int64]Row),
		hashIdx: make(map[string]*hashIndex),
		ordIdx:  make(map[string]*orderedIndex),
	}
}

// CreateHashIndex builds a hash index on the column, indexing existing
// rows.
func (t *Table) CreateHashIndex(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %s", t.Name, col)
	}
	idx := &hashIndex{col: ci, rows: make(map[string]map[int64]bool)}
	for id, r := range t.rows {
		idx.add(r[ci], id)
	}
	t.hashIdx[col] = idx
	return nil
}

// CreateOrderedIndex builds an ordered index on the column.
func (t *Table) CreateOrderedIndex(col string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %s", t.Name, col)
	}
	idx := &orderedIndex{col: ci}
	for id, r := range t.rows {
		idx.entries = append(idx.entries, ordEntry{r[ci], id})
	}
	sort.Slice(idx.entries, func(i, j int) bool { return less(idx.entries[i], idx.entries[j]) })
	t.ordIdx[col] = idx
	return nil
}

func less(a, b ordEntry) bool {
	if c := Compare(a.v, b.v); c != 0 {
		return c < 0
	}
	return a.id < b.id
}

func (h *hashIndex) add(v Value, id int64) {
	k := v.Key()
	m := h.rows[k]
	if m == nil {
		m = make(map[int64]bool)
		h.rows[k] = m
	}
	m[id] = true
}

func (h *hashIndex) remove(v Value, id int64) {
	k := v.Key()
	delete(h.rows[k], id)
	if len(h.rows[k]) == 0 {
		delete(h.rows, k)
	}
}

func (o *orderedIndex) add(v Value, id int64) {
	e := ordEntry{v, id}
	i := sort.Search(len(o.entries), func(i int) bool { return !less(o.entries[i], e) })
	o.entries = append(o.entries, ordEntry{})
	copy(o.entries[i+1:], o.entries[i:])
	o.entries[i] = e
}

func (o *orderedIndex) remove(v Value, id int64) {
	e := ordEntry{v, id}
	i := sort.Search(len(o.entries), func(i int) bool { return !less(o.entries[i], e) })
	if i < len(o.entries) && o.entries[i].id == id {
		o.entries = append(o.entries[:i], o.entries[i+1:]...)
	}
}

// Insert adds a row and returns its rowID.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Insert(r Row) (int64, error) {
	if err := t.Schema.CheckRow(r); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.rows[id] = r.Clone()
	for _, idx := range t.hashIdx {
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.add(r[idx.col], id)
	}
	return id, nil
}

// insertAt restores a row under a specific id (recovery/undo path).
func (t *Table) insertAt(id int64, r Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[id] = r.Clone()
	if id > t.nextID {
		t.nextID = id
	}
	for _, idx := range t.hashIdx {
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.add(r[idx.col], id)
	}
}

// Get returns a copy of the row with the given id.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Update replaces the row with the given id, returning the old row.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Update(id int64, r Row) (Row, error) {
	if err := t.Schema.CheckRow(r); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %s has no row %d", t.Name, id)
	}
	for _, idx := range t.hashIdx {
		idx.remove(old[idx.col], id)
		idx.add(r[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.remove(old[idx.col], id)
		idx.add(r[idx.col], id)
	}
	t.rows[id] = r.Clone()
	return old, nil
}

// Delete removes the row with the given id, returning the old row.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Delete(id int64) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %s has no row %d", t.Name, id)
	}
	for _, idx := range t.hashIdx {
		idx.remove(old[idx.col], id)
	}
	for _, idx := range t.ordIdx {
		idx.remove(old[idx.col], id)
	}
	delete(t.rows, id)
	return old, nil
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Scan calls fn for every (rowID, row) pair; fn must not mutate the row.
// Iteration order is by rowID for determinism.
//
// seclint:exempt physical row storage; grants and row policies are enforced by SecureDB above the engine
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	t.mu.RLock()
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([]Row, len(ids))
	for i, id := range ids {
		rows[i] = t.rows[id]
	}
	t.mu.RUnlock()
	for i, id := range ids {
		if !fn(id, rows[i]) {
			return
		}
	}
}

// LookupEq uses a hash index (if present) to find rowIDs whose column
// equals v; ok is false when no usable index exists.
func (t *Table) LookupEq(col string, v Value) (ids []int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, exists := t.hashIdx[col]
	if !exists {
		return nil, false
	}
	for id := range idx.rows[v.Key()] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// LookupRange uses an ordered index to find rowIDs with lo <= col <= hi;
// nil bounds are open. ok is false when no ordered index exists.
func (t *Table) LookupRange(col string, lo, hi *Value) (ids []int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, exists := t.ordIdx[col]
	if !exists {
		return nil, false
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(idx.entries), func(i int) bool {
			return Compare(idx.entries[i].v, *lo) >= 0
		})
	}
	for i := start; i < len(idx.entries); i++ {
		if hi != nil && Compare(idx.entries[i].v, *hi) > 0 {
			break
		}
		ids = append(ids, idx.entries[i].id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// HasHashIndex reports whether the column has a hash index.
func (t *Table) HasHashIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.hashIdx[col]
	return ok
}

// HasOrderedIndex reports whether the column has an ordered index.
func (t *Table) HasOrderedIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.ordIdx[col]
	return ok
}
