package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// The SQL subset:
//
//	CREATE TABLE t (col TYPE, ...)            TYPE ∈ INT | FLOAT | TEXT | BOOL
//	CREATE HASH INDEX ON t (col)
//	CREATE ORDERED INDEX ON t (col)
//	INSERT INTO t VALUES (v, ...)
//	SELECT * | col, ... FROM t [WHERE expr] [ORDER BY col [DESC]] [LIMIT n]
//	UPDATE t SET col = value, ... [WHERE expr]
//	DELETE FROM t [WHERE expr]
//
// Expressions: column refs, literals (42, 3.5, 'text', TRUE, FALSE, NULL),
// comparisons (=, !=, <, <=, >, >=), AND, OR, NOT, parentheses.

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Table  string
	Schema Schema
}

// CreateIndexStmt creates an index.
type CreateIndexStmt struct {
	Table   string
	Column  string
	Ordered bool
}

// InsertStmt inserts one row.
type InsertStmt struct {
	Table  string
	Values []Value
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Col  string
	Desc bool
}

// SelectStmt reads rows.
type SelectStmt struct {
	Table   string
	Columns []string // nil means *
	Where   Expr
	OrderBy []OrderKey
	Limit   int // -1 means no limit
}

// UpdateStmt modifies rows.
type UpdateStmt struct {
	Table string
	Set   map[string]Value
	Where Expr
}

// DeleteStmt removes rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}

// Expr is a boolean expression over a row.
type Expr interface {
	Eval(s *Schema, r Row) (bool, error)
	String() string
}

// CmpExpr compares a column with a literal.
type CmpExpr struct {
	Col string
	Op  string
	Val Value
}

// Eval implements Expr.
//
// seclint:exempt expression node evaluating one row the engine already authorized
func (e *CmpExpr) Eval(s *Schema, r Row) (bool, error) {
	ci := s.ColIndex(e.Col)
	if ci < 0 {
		return false, fmt.Errorf("reldb: unknown column %s", e.Col)
	}
	v := r[ci]
	if v.IsNull() || e.Val.IsNull() {
		return false, nil // three-valued logic collapsed to false
	}
	c := Compare(v, e.Val)
	switch e.Op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return false, fmt.Errorf("reldb: unknown operator %s", e.Op)
}

func (e *CmpExpr) String() string {
	v := e.Val.String()
	if e.Val.Kind == KindString {
		v = QuoteString(v)
	}
	return fmt.Sprintf("%s %s %s", e.Col, e.Op, v)
}

// AndExpr is a conjunction.
type AndExpr struct{ L, R Expr }

// Eval implements Expr.
//
// seclint:exempt expression node evaluating one row the engine already authorized
func (e *AndExpr) Eval(s *Schema, r Row) (bool, error) {
	l, err := e.L.Eval(s, r)
	if err != nil || !l {
		return false, err
	}
	return e.R.Eval(s, r)
}

func (e *AndExpr) String() string { return "(" + e.L.String() + " AND " + e.R.String() + ")" }

// OrExpr is a disjunction.
type OrExpr struct{ L, R Expr }

// Eval implements Expr.
//
// seclint:exempt expression node evaluating one row the engine already authorized
func (e *OrExpr) Eval(s *Schema, r Row) (bool, error) {
	l, err := e.L.Eval(s, r)
	if err != nil {
		return false, err
	}
	if l {
		return true, nil
	}
	return e.R.Eval(s, r)
}

func (e *OrExpr) String() string { return "(" + e.L.String() + " OR " + e.R.String() + ")" }

// NotExpr is a negation.
type NotExpr struct{ E Expr }

// Eval implements Expr.
//
// seclint:exempt expression node evaluating one row the engine already authorized
func (e *NotExpr) Eval(s *Schema, r Row) (bool, error) {
	v, err := e.E.Eval(s, r)
	return !v, err
}

func (e *NotExpr) String() string { return "NOT (" + e.E.String() + ")" }

// TrueExpr always holds; used as the neutral element when composing
// security predicates.
type TrueExpr struct{}

// Eval implements Expr.
//
// seclint:exempt expression node evaluating one row the engine already authorized
func (TrueExpr) Eval(*Schema, Row) (bool, error) { return true, nil }
func (TrueExpr) String() string                  { return "TRUE" }

// --- Lexer ---

type token struct {
	kind string // "ident", "num", "str", "op", "punct", "eof"
	text string
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{"num", l.src[start:l.pos]})
		case c == '\'':
			// SQL-standard literal: '' inside the quotes is an escaped
			// single quote.
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("reldb: unterminated string literal")
				}
				ch := l.src[l.pos]
				if ch == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(ch)
				l.pos++
			}
			l.toks = append(l.toks, token{"str", b.String()})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{"ident", l.src[start:l.pos]})
		case strings.ContainsRune("=<>!", rune(c)):
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			op := l.src[start:l.pos]
			if op == "!" || op == "<>" {
				return nil, fmt.Errorf("reldb: unknown operator %q", op)
			}
			l.toks = append(l.toks, token{"op", op})
		case strings.ContainsRune("(),*", rune(c)):
			l.toks = append(l.toks, token{"punct", string(c)})
			l.pos++
		default:
			return nil, fmt.Errorf("reldb: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{"eof", ""})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// --- Parser ---

// QuoteString renders s as a SQL string literal for this dialect,
// doubling embedded single quotes. Code that composes statement text
// from values must route every string through it — "'" + s + "'" is how
// a value grows into syntax.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses one SQL statement: it is the boundary where raw text
// becomes a validated Stmt.
//
// seclint:sanitizer
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != "eof" {
		return nil, fmt.Errorf("reldb: trailing input %q in %q", p.cur().text, src)
	}
	return st, nil
}

// MustParse is Parse that panics on error.
// seclint:sanitizer
func MustParse(src string) Stmt {
	st, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return st
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == "ident" && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("reldb: expected %s near %q in %q", kw, p.cur().text, p.src)
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != "punct" || t.text != s {
		return fmt.Errorf("reldb: expected %q near %q in %q", s, t.text, p.src)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != "ident" {
		return "", fmt.Errorf("reldb: expected identifier near %q in %q", t.text, p.src)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	}
	return nil, fmt.Errorf("reldb: unknown statement %q", p.src)
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	switch {
	case p.atKeyword("TABLE"):
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var schema Schema
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			var k Kind
			switch strings.ToUpper(typ) {
			case "INT":
				k = KindInt
			case "FLOAT":
				k = KindFloat
			case "TEXT":
				k = KindString
			case "BOOL":
				k = KindBool
			default:
				return nil, fmt.Errorf("reldb: unknown type %s", typ)
			}
			schema.Columns = append(schema.Columns, Column{Name: col, Kind: k})
			if p.cur().kind == "punct" && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Table: name, Schema: schema}, nil

	case p.atKeyword("HASH"), p.atKeyword("ORDERED"):
		ordered := p.atKeyword("ORDERED")
		p.next()
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Column: col, Ordered: ordered}, nil
	}
	return nil, fmt.Errorf("reldb: CREATE must be followed by TABLE, HASH INDEX or ORDERED INDEX")
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.cur().kind == "punct" && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &InsertStmt{Table: table, Values: vals}, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	p.next() // SELECT
	st := &SelectStmt{Limit: -1}
	if p.cur().kind == "punct" && p.cur().text == "*" {
		p.next()
	} else {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.cur().kind == "punct" && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.atKeyword("WHERE") {
		p.next()
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.atKeyword("DESC") {
				p.next()
				key.Desc = true
			} else if p.atKeyword("ASC") {
				p.next()
			}
			st.OrderBy = append(st.OrderBy, key)
			if p.cur().kind == "punct" && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		t := p.next()
		if t.kind != "num" {
			return nil, fmt.Errorf("reldb: LIMIT needs a number")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("reldb: bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	set := make(map[string]Value)
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != "op" || t.text != "=" {
			return nil, fmt.Errorf("reldb: expected = in SET")
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		set[col] = v
		if p.cur().kind == "punct" && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	st := &UpdateStmt{Table: table, Set: set}
	if p.atKeyword("WHERE") {
		p.next()
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.atKeyword("WHERE") {
		p.next()
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseExpr: OR-level.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.cur().kind == "punct" && p.cur().text == "(" {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != "op" {
		return nil, fmt.Errorf("reldb: expected comparison operator near %q", t.text)
	}
	v, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Col: col, Op: t.text, Val: v}, nil
}

func (p *parser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case "num":
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Null(), fmt.Errorf("reldb: bad float %q", t.text)
			}
			return Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("reldb: bad int %q", t.text)
		}
		return Int(i), nil
	case "str":
		return Str(t.text), nil
	case "ident":
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return Bool(true), nil
		case "FALSE":
			return Bool(false), nil
		case "NULL":
			return Null(), nil
		}
	}
	return Null(), fmt.Errorf("reldb: expected literal near %q", t.text)
}
