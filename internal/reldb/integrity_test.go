package reldb

import (
	"strings"
	"testing"
)

func TestCheckConstraintEnforced(t *testing.T) {
	db := empDB(t)
	pred := MustParse("SELECT * FROM emp WHERE salary >= 0").(*SelectStmt).Where
	if err := db.AddCheck(&CheckConstraint{Name: "salary-nonneg", Table: "emp", Check: pred}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (9, 'Neg', 'eng', -5)"); err == nil {
		t.Error("violating insert accepted")
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (9, 'Pos', 'eng', 5)"); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if _, err := db.Exec("UPDATE emp SET salary = -1 WHERE name = 'Ada'"); err == nil {
		t.Error("violating update accepted")
	}
	raw := mustExec(t, db, "SELECT salary FROM emp WHERE name = 'Ada'")
	if raw.Rows[0][0] != Int(120) {
		t.Error("violating update partially applied")
	}
}

func TestCheckRejectedWhenExistingDataViolates(t *testing.T) {
	db := empDB(t)
	pred := MustParse("SELECT * FROM emp WHERE salary > 100").(*SelectStmt).Where
	if err := db.AddCheck(&CheckConstraint{Name: "too-strict", Table: "emp", Check: pred}); err == nil {
		t.Error("constraint violated by existing data accepted")
	}
	if err := db.AddCheck(&CheckConstraint{Name: "x", Table: "ghost", Check: pred}); err == nil {
		t.Error("constraint on unknown table accepted")
	}
	if err := db.AddCheck(&CheckConstraint{Name: "", Table: "emp", Check: pred}); err == nil {
		t.Error("anonymous constraint accepted")
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := empDB(t)
	if err := db.AddNotNull("emp", "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (9, NULL, 'eng', 5)"); err == nil {
		t.Error("NULL insert accepted")
	}
	if _, err := db.Exec("UPDATE emp SET name = NULL"); err == nil {
		t.Error("NULL update accepted")
	}
	if err := db.AddNotNull("emp", "ghost"); err == nil {
		t.Error("NOT NULL on unknown column accepted")
	}
	if err := db.AddNotNull("ghost", "x"); err == nil {
		t.Error("NOT NULL on unknown table accepted")
	}
	// Existing NULLs block installation.
	mustExec(t, db, "INSERT INTO emp VALUES (10, 'X', NULL, 1)")
	if err := db.AddNotNull("emp", "dept"); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Errorf("err = %v", err)
	}
}

func TestConstraintsInsideTransactions(t *testing.T) {
	db := empDB(t)
	pred := MustParse("SELECT * FROM emp WHERE salary >= 0").(*SelectStmt).Where
	if err := db.AddCheck(&CheckConstraint{Name: "nonneg", Table: "emp", Check: pred}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin()
	if _, err := txn.Exec("INSERT INTO emp VALUES (20, 'Ok', 'eng', 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO emp VALUES (21, 'Bad', 'eng', -1)"); err == nil {
		t.Fatal("violating insert inside txn accepted")
	}
	// The failed statement did not poison the valid one.
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT * FROM emp WHERE name = 'Ok'")
	if len(res.Rows) != 1 {
		t.Error("valid insert lost")
	}
	if got := mustExec(t, db, "SELECT * FROM emp WHERE name = 'Bad'"); len(got.Rows) != 0 {
		t.Error("violating insert present")
	}
}
