package xquery

import (
	"fmt"
	"testing"

	"webdbsec/internal/accessctl"
	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

const staffXML = `
<hospital>
  <patient id="p1" ward="3">
    <name>Alice</name>
    <age>34</age>
    <diagnosis severity="high">flu</diagnosis>
  </patient>
  <patient id="p2" ward="5">
    <name>Bob</name>
    <age>61</age>
    <diagnosis severity="low">cold</diagnosis>
  </patient>
  <patient id="p3" ward="3">
    <name>Cyd</name>
    <age>47</age>
    <diagnosis severity="mid">asthma</diagnosis>
  </patient>
</hospital>`

func doc(t *testing.T) *xmldoc.Document {
	t.Helper()
	d, err := xmldoc.ParseString("staff.xml", staffXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBasicFLWOR(t *testing.T) {
	q := MustCompile(`FOR $p IN //patient WHERE $p/@ward = '3' RETURN $p/name, $p/diagnosis`)
	rows := q.Eval(doc(t))
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "Alice" || rows[0][1] != "flu" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0] != "Cyd" || rows[1][1] != "asthma" {
		t.Errorf("row 1 = %v", rows[1])
	}
}

func TestNumericComparison(t *testing.T) {
	q := MustCompile(`FOR $p IN //patient WHERE $p/age >= '47' RETURN $p/name`)
	rows := q.Eval(doc(t))
	if len(rows) != 2 || rows[0][0] != "Bob" || rows[1][0] != "Cyd" {
		t.Fatalf("rows = %v", rows)
	}
	// Numeric: '61' > '100' lexically but not numerically.
	q = MustCompile(`FOR $p IN //patient WHERE $p/age > '100' RETURN $p/name`)
	if rows := q.Eval(doc(t)); len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestConjunction(t *testing.T) {
	q := MustCompile(`FOR $p IN //patient WHERE $p/@ward = '3' AND $p/age < '40' RETURN $p/name`)
	rows := q.Eval(doc(t))
	if len(rows) != 1 || rows[0][0] != "Alice" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestNestedReturnPathsAndAttrs(t *testing.T) {
	q := MustCompile(`FOR $p IN //patient RETURN $p/diagnosis/@severity, $p/@id`)
	rows := q.Eval(doc(t))
	if len(rows) != 3 || rows[0][0] != "high" || rows[0][1] != "p1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelfReturn(t *testing.T) {
	q := MustCompile(`FOR $p IN //name RETURN $p`)
	rows := q.Eval(doc(t))
	if len(rows) != 3 || rows[0][0] != "Alice" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestNoWhere(t *testing.T) {
	q := MustCompile(`FOR $x IN /hospital/patient RETURN $x/name`)
	if rows := q.Eval(doc(t)); len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEmptyMatch(t *testing.T) {
	q := MustCompile(`FOR $p IN //nurse RETURN $p/name`)
	if rows := q.Eval(doc(t)); rows != nil {
		t.Errorf("rows = %v", rows)
	}
	// Missing return path yields empty cell, row still produced.
	q = MustCompile(`FOR $p IN //patient WHERE $p/@ward = '5' RETURN $p/ghost`)
	rows := q.Eval(doc(t))
	if len(rows) != 1 || rows[0][0] != "" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELECT * FROM t",
		"FOR p IN //x RETURN $p",                 // missing $
		"FOR $p //x RETURN $p",                   // missing IN
		"FOR $p IN //x",                          // missing RETURN
		"FOR $p IN //x RETURN name",              // return path without $var
		"FOR $p IN //x RETURN $q/name",           // wrong variable
		"FOR $p IN //x WHERE $p/a RETURN $p",     // condition without operator
		"FOR $p IN //x WHERE $p/a = 3 RETURN $p", // unquoted value
		"FOR $p IN relative RETURN $p",           // FOR path must be absolute
		"FOR $p IN //x RETURN $p//",              // bad relative path
		"FOR $p IN //x RETURN $p//hospital",      // absolute-in-relative
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): want error", src)
		}
	}
}

func TestSecureEvalRespectsViews(t *testing.T) {
	store := xmldoc.NewStore()
	store.Put(doc(t))
	base := policy.NewBase(nil)
	base.MustAdd(&policy.Policy{
		Name:    "ward3-only",
		Subject: policy.SubjectSpec{Roles: []string{"ward3"}},
		Object:  policy.ObjectSpec{Doc: "staff.xml", Path: "/hospital/patient[@ward='3']"},
		Priv:    policy.Read, Sign: policy.Permit, Prop: policy.Cascade,
	})
	eng := accessctl.NewEngine(store, base)
	q := MustCompile(`FOR $p IN //patient RETURN $p/name`)

	nurse := &policy.Subject{ID: "n", Roles: []string{"ward3"}}
	rows := q.SecureEval(eng, "staff.xml", nurse)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[0] == "Bob" {
			t.Error("ward-5 patient leaked through the query")
		}
	}
	stranger := &policy.Subject{ID: "x"}
	if rows := q.SecureEval(eng, "staff.xml", stranger); rows != nil {
		t.Errorf("stranger rows = %v", rows)
	}
}

func TestQueriesOverGeneratedDocs(t *testing.T) {
	// Smoke over a larger synthetic doc: counts line up with path counts.
	b := xmldoc.NewBuilder("big.xml", "r")
	for i := 0; i < 50; i++ {
		b.Begin("item").Attrib("n", fmt.Sprint(i)).Element("v", fmt.Sprint(i%7)).End()
	}
	d := b.Freeze()
	q := MustCompile(`FOR $i IN /r/item WHERE $i/v = '3' RETURN $i/@n`)
	rows := q.Eval(d)
	want := 0
	for i := 0; i < 50; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("rows = %d, want %d", len(rows), want)
	}
}
