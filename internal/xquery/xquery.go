// Package xquery implements a FLWOR-subset query language over the XML
// substrate — the paper's §2.1: "an appropriate query language is needed.
// Since SQL is a popular language, appropriate extensions to SQL may be
// desired. XML-QL and XQuery are moving in this direction."
//
// Grammar:
//
//	FOR $var IN <absolute-path>
//	[WHERE <rel-path> <op> '<literal>' [AND ...]]
//	RETURN <rel-path> [, <rel-path> ...]
//
// where <rel-path> is evaluated relative to the bound node ("." is the
// node itself, "@attr" its attribute, "name" a child). Comparison
// operators: = != < <= > >=; values compare numerically when both sides
// parse as numbers.
//
// SecureEval runs the same query against a subject's authorized VIEW, so
// queries compose with access control instead of bypassing it.
package xquery

import (
	"fmt"
	"strconv"
	"strings"

	"webdbsec/internal/policy"
	"webdbsec/internal/xmldoc"
)

// Viewer is the slice of the access-control engine SecureEval needs: the
// authorized-view computation. Both *accessctl.Engine and the caching
// *decisioncache.Engine satisfy it; with the latter, repeated queries by
// the same role class reuse one cached view.
//
// seclint:gate calling View IS the access-control check for XML query paths
type Viewer interface {
	View(docName string, s *policy.Subject, priv policy.Privilege) *xmldoc.Document
}

// Query is a compiled FLWOR query.
type Query struct {
	raw     string
	varName string
	forPath *xmldoc.PathExpr
	where   []condition
	returns []*relPath
}

type condition struct {
	path *relPath
	op   string
	val  string
}

// relPath wraps a path evaluated relative to the bound node. "." selects
// the node; "@x" its attribute; other forms compile through xmldoc by
// prefixing "/".
type relPath struct {
	raw  string
	self bool
	expr *xmldoc.PathExpr
}

func compileRel(s string) (*relPath, error) {
	s = strings.TrimSpace(s)
	if s == "." {
		return &relPath{raw: s, self: true}, nil
	}
	prefix := "/"
	if strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("xquery: path %q must be relative to the variable", s)
	}
	pe, err := xmldoc.CompilePath(prefix + s)
	if err != nil {
		return nil, err
	}
	return &relPath{raw: s, expr: pe}, nil
}

func (r *relPath) selectFrom(n *xmldoc.Node) []*xmldoc.Node {
	if r.self {
		return []*xmldoc.Node{n}
	}
	return r.expr.SelectFrom(n)
}

// value extracts the comparable string of a matched node.
func value(n *xmldoc.Node) string {
	switch n.Kind {
	case xmldoc.KindAttr:
		return n.Value
	default:
		return n.Text()
	}
}

// Compile parses a FLWOR query.
// seclint:sanitizer
func Compile(src string) (*Query, error) {
	q := &Query{raw: src}
	rest := strings.TrimSpace(src)
	kw := func(name string) bool {
		if len(rest) >= len(name) && strings.EqualFold(rest[:len(name)], name) {
			rest = strings.TrimSpace(rest[len(name):])
			return true
		}
		return false
	}
	if !kw("FOR") {
		return nil, fmt.Errorf("xquery: query must start with FOR")
	}
	if !strings.HasPrefix(rest, "$") {
		return nil, fmt.Errorf("xquery: FOR needs a $variable")
	}
	sp := strings.IndexAny(rest, " \t\n")
	if sp < 0 {
		return nil, fmt.Errorf("xquery: incomplete FOR clause")
	}
	q.varName = rest[1:sp]
	rest = strings.TrimSpace(rest[sp:])
	if !kw("IN") {
		return nil, fmt.Errorf("xquery: expected IN after the variable")
	}
	// The FOR path runs to WHERE or RETURN.
	upper := strings.ToUpper(rest)
	end := len(rest)
	if i := strings.Index(upper, " WHERE "); i >= 0 {
		end = i
	} else if i := strings.Index(upper, " RETURN "); i >= 0 {
		end = i
	}
	forPath := strings.TrimSpace(rest[:end])
	pe, err := xmldoc.CompilePath(forPath)
	if err != nil {
		return nil, fmt.Errorf("xquery: FOR path: %w", err)
	}
	q.forPath = pe
	rest = strings.TrimSpace(rest[end:])

	if kw("WHERE") {
		upper = strings.ToUpper(rest)
		end = len(rest)
		if i := strings.Index(upper, " RETURN "); i >= 0 {
			end = i
		}
		whereSrc := rest[:end]
		rest = strings.TrimSpace(rest[end:])
		for _, part := range splitTopAnd(whereSrc) {
			c, err := parseCondition(part, q.varName)
			if err != nil {
				return nil, err
			}
			q.where = append(q.where, c)
		}
	}
	if !kw("RETURN") {
		return nil, fmt.Errorf("xquery: missing RETURN clause")
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		rel, err := stripVar(part, q.varName)
		if err != nil {
			return nil, err
		}
		rp, err := compileRel(rel)
		if err != nil {
			return nil, err
		}
		q.returns = append(q.returns, rp)
	}
	if len(q.returns) == 0 {
		return nil, fmt.Errorf("xquery: RETURN needs at least one path")
	}
	return q, nil
}

// MustCompile is Compile that panics on error.
// seclint:sanitizer
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// splitTopAnd splits a WHERE body on ANDs outside quotes.
func splitTopAnd(s string) []string {
	var parts []string
	depth := false // inside quotes
	last := 0
	upper := strings.ToUpper(s)
	for i := 0; i+5 <= len(s); i++ {
		if s[i] == '\'' {
			depth = !depth
		}
		if !depth && upper[i:i+5] == " AND " {
			parts = append(parts, s[last:i])
			last = i + 5
		}
	}
	parts = append(parts, s[last:])
	return parts
}

func parseCondition(src, varName string) (condition, error) {
	src = strings.TrimSpace(src)
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		i := strings.Index(src, op)
		if i < 0 {
			continue
		}
		lhs := strings.TrimSpace(src[:i])
		rhs := strings.TrimSpace(src[i+len(op):])
		rel, err := stripVar(lhs, varName)
		if err != nil {
			return condition{}, err
		}
		rp, err := compileRel(rel)
		if err != nil {
			return condition{}, err
		}
		if len(rhs) < 2 || rhs[0] != '\'' || rhs[len(rhs)-1] != '\'' {
			return condition{}, fmt.Errorf("xquery: comparison value %q must be quoted", rhs)
		}
		return condition{path: rp, op: op, val: rhs[1 : len(rhs)-1]}, nil
	}
	return condition{}, fmt.Errorf("xquery: condition %q has no comparison operator", src)
}

// stripVar removes the leading "$var/" (or bare "$var") from a path.
func stripVar(s, varName string) (string, error) {
	s = strings.TrimSpace(s)
	full := "$" + varName
	switch {
	case s == full:
		return ".", nil
	case strings.HasPrefix(s, full+"/"):
		return s[len(full)+1:], nil
	default:
		return "", fmt.Errorf("xquery: path %q must start with $%s", s, varName)
	}
}

func (c condition) holds(n *xmldoc.Node) bool {
	for _, m := range c.path.selectFrom(n) {
		if compareVals(value(m), c.op, c.val) {
			return true
		}
	}
	return false
}

func compareVals(a, op, b string) bool {
	if fa, errA := strconv.ParseFloat(a, 64); errA == nil {
		if fb, errB := strconv.ParseFloat(b, 64); errB == nil {
			switch op {
			case "=":
				return fa == fb
			case "!=":
				return fa != fb
			case "<":
				return fa < fb
			case "<=":
				return fa <= fb
			case ">":
				return fa > fb
			case ">=":
				return fa >= fb
			}
			return false
		}
	}
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// Row is one result tuple: the string values of the RETURN paths (joined
// with "," when a path matches several nodes; "" when none).
type Row []string

// Eval runs the query over a document.
//
// seclint:exempt evaluates a caller-supplied document; SecureEval is the gated entry that resolves the authorized view first
// seclint:sink
func (q *Query) Eval(d *xmldoc.Document) []Row {
	var out []Row
	for _, n := range q.forPath.Select(d) {
		if n.Kind != xmldoc.KindElement {
			continue
		}
		ok := true
		for _, c := range q.where {
			if !c.holds(n) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make(Row, len(q.returns))
		for i, rp := range q.returns {
			var vals []string
			for _, m := range rp.selectFrom(n) {
				vals = append(vals, value(m))
			}
			row[i] = strings.Join(vals, ",")
		}
		out = append(out, row)
	}
	return out
}

// SecureEval runs the query over the subject's authorized read view of the
// named document — queries can never see more than the view. It returns
// nil when the subject may not read any portion.
// seclint:sink
func (q *Query) SecureEval(e Viewer, docName string, s *policy.Subject) []Row {
	v := e.View(docName, s, policy.Read)
	if v == nil {
		return nil
	}
	return q.Eval(v)
}
