package inference

import (
	"fmt"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
)

// fixture: name ∧ zip → identity; identity ∧ disease → condition;
// {condition} is private, {identity} is semi-private for auditors.
func fixture(t *testing.T) *Controller {
	t.Helper()
	pc := privacy.NewController()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(pc.Add(&privacy.Constraint{
		Name: "condition-private", Attrs: []string{"condition"}, Class: privacy.Private,
	}))
	must(pc.Add(&privacy.Constraint{
		Name: "identity-semiprivate", Attrs: []string{"identity"},
		Class: privacy.SemiPrivate, NeedToKnow: []string{"auditor"},
	}))
	ic := NewController(pc)
	must(ic.AddRule(&Rule{Name: "reid", Body: []string{"name", "zip"}, Head: "identity"}))
	must(ic.AddRule(&Rule{Name: "diag", Body: []string{"identity", "disease"}, Head: "condition"}))
	return ic
}

func TestRuleValidation(t *testing.T) {
	ic := NewController(privacy.NewController())
	if err := ic.AddRule(&Rule{Name: "bad", Head: "x"}); err == nil {
		t.Error("rule without body accepted")
	}
	if err := ic.AddRule(&Rule{Name: "bad", Body: []string{"a"}}); err == nil {
		t.Error("rule without head accepted")
	}
}

func TestSingleQueryInferenceBlocked(t *testing.T) {
	ic := fixture(t)
	s := &policy.Subject{ID: "snoop"}
	// name+zip alone derives identity (semi-private, snoop lacks need to
	// know) — blocked.
	d := ic.Check(s, []string{"name", "zip"})
	if d.Allowed {
		t.Fatal("re-identification query allowed")
	}
	if len(d.Derived) != 1 || d.Derived[0] != "identity" {
		t.Errorf("derived = %v", d.Derived)
	}
	if d.Violation != "identity-semiprivate" {
		t.Errorf("violation = %q", d.Violation)
	}
	// A refused query leaves no trace in the history.
	if len(ic.History("snoop")) != 0 {
		t.Errorf("history after refusal = %v", ic.History("snoop"))
	}
}

func TestMultiQueryChannelBlocked(t *testing.T) {
	ic := fixture(t)
	auditor := &policy.Subject{ID: "aud", Roles: []string{"auditor"}}
	// Auditor may learn identity (need to know).
	if d := ic.Check(auditor, []string{"name", "zip"}); !d.Allowed {
		t.Fatalf("auditor blocked on identity derivation: %+v", d)
	}
	// But combining the remembered identity with disease now derives the
	// private condition — the second query must be refused.
	d := ic.Check(auditor, []string{"disease"})
	if d.Allowed {
		t.Fatal("multi-query inference channel not caught")
	}
	if d.Violation != "condition-private" {
		t.Errorf("violation = %q", d.Violation)
	}
}

func TestIndependentSubjectsIndependentHistories(t *testing.T) {
	ic := fixture(t)
	a := &policy.Subject{ID: "a", Roles: []string{"auditor"}}
	b := &policy.Subject{ID: "b", Roles: []string{"auditor"}}
	if d := ic.Check(a, []string{"name", "zip"}); !d.Allowed {
		t.Fatal("a blocked")
	}
	// b has no history: disease alone is harmless for b.
	if d := ic.Check(b, []string{"disease"}); !d.Allowed {
		t.Fatalf("b blocked without history: %+v", d)
	}
	// a is blocked on the same query.
	if d := ic.Check(a, []string{"disease"}); d.Allowed {
		t.Fatal("a allowed despite history")
	}
}

func TestForgetResetsChannel(t *testing.T) {
	ic := fixture(t)
	aud := &policy.Subject{ID: "aud", Roles: []string{"auditor"}}
	ic.Check(aud, []string{"name", "zip"})
	ic.Forget("aud")
	if d := ic.Check(aud, []string{"disease"}); !d.Allowed {
		t.Fatalf("blocked after Forget: %+v", d)
	}
}

func TestHarmlessQueriesFlow(t *testing.T) {
	ic := fixture(t)
	s := &policy.Subject{ID: "user"}
	for _, attrs := range [][]string{
		{"age"}, {"zip"}, {"disease"}, {"age", "zip"},
	} {
		if d := ic.Check(s, attrs); !d.Allowed {
			t.Errorf("harmless query %v blocked: %+v", attrs, d)
		}
	}
	// name now completes {name, zip} → identity: blocked.
	if d := ic.Check(s, []string{"name"}); d.Allowed {
		t.Error("completion of inference channel allowed")
	}
}

func TestChainedRulesClose(t *testing.T) {
	pc := privacy.NewController()
	pc.Add(&privacy.Constraint{Name: "deep-private", Attrs: []string{"d"}, Class: privacy.Private})
	ic := NewController(pc)
	ic.AddRule(&Rule{Name: "r1", Body: []string{"a"}, Head: "b"})
	ic.AddRule(&Rule{Name: "r2", Body: []string{"b"}, Head: "c"})
	ic.AddRule(&Rule{Name: "r3", Body: []string{"c"}, Head: "d"})
	s := &policy.Subject{ID: "x"}
	d := ic.Check(s, []string{"a"})
	if d.Allowed {
		t.Fatal("transitive chain not closed")
	}
	if len(d.Derived) != 3 {
		t.Errorf("derived = %v", d.Derived)
	}
}

func TestHistoryAccumulatesClosure(t *testing.T) {
	ic := fixture(t)
	aud := &policy.Subject{ID: "aud", Roles: []string{"auditor"}}
	ic.Check(aud, []string{"name", "zip"})
	h := ic.History("aud")
	want := []string{"identity", "name", "zip"}
	if fmt.Sprint(h) != fmt.Sprint(want) {
		t.Errorf("history = %v, want %v", h, want)
	}
}

func TestRulesListing(t *testing.T) {
	ic := fixture(t)
	rs := ic.Rules()
	if len(rs) != 2 || rs[0] != "diag" {
		t.Errorf("rules = %v", rs)
	}
}

func TestCaseInsensitiveAttributes(t *testing.T) {
	ic := fixture(t)
	s := &policy.Subject{ID: "s"}
	if d := ic.Check(s, []string{"Name", "ZIP"}); d.Allowed {
		t.Error("case variation bypassed the controller")
	}
}
