// Package inference implements the inference controller of Thuraisingham
// and Ford [14], which the paper proposes as "one solution to achieve some
// level of privacy" (§3.3) and revisits for the semantic web in §5:
// "Inference is the process of posing queries and deducing new
// information. It becomes a problem when the deduced information is
// something the user is unauthorized to know."
//
// The controller holds Horn-style deduction rules over attribute names
// ("name ∧ zip → identity", "identity ∧ diagnosis → medical-condition")
// and a per-subject release history. Before answering a query it computes
// the deductive closure of everything the subject will have seen — the
// history plus the new attributes — and refuses the query if the closure
// contains a combination the privacy controller classifies above the
// subject's entitlement. Allowed releases are appended to the history, so
// multi-query inference channels are caught, not just single-query ones.
package inference

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"webdbsec/internal/policy"
	"webdbsec/internal/privacy"
)

// Rule is a Horn clause over attribute names: knowing all of Body lets a
// requestor derive Head.
type Rule struct {
	Name string
	Body []string
	Head string
}

// Validate checks well-formedness.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 || r.Head == "" {
		return fmt.Errorf("inference: rule %q needs a body and a head", r.Name)
	}
	return nil
}

// Decision records the outcome of a query check.
type Decision struct {
	Allowed bool
	// Derived lists the attributes the closure added beyond the directly
	// requested ones.
	Derived []string
	// Violation names the privacy constraint that would be violated (empty
	// when allowed).
	Violation string
}

// Controller is the inference controller. Methods are safe for concurrent
// use.
type Controller struct {
	mu      sync.Mutex
	rules   []*Rule
	priv    *privacy.Controller
	history map[string]map[string]bool // subject id -> released attrs
}

// NewController builds a controller over a privacy-constraint base.
func NewController(priv *privacy.Controller) *Controller {
	return &Controller{priv: priv, history: make(map[string]map[string]bool)}
}

// AddRule installs a deduction rule.
func (c *Controller) AddRule(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, r)
	return nil
}

// closure computes the deductive closure of attrs under the rules.
// Caller must hold the lock.
func (c *Controller) closureLocked(attrs map[string]bool) map[string]bool {
	out := make(map[string]bool, len(attrs))
	for a := range attrs {
		out[a] = true
	}
	for {
		grew := false
		for _, r := range c.rules {
			if out[norm(r.Head)] {
				continue
			}
			all := true
			for _, b := range r.Body {
				if !out[norm(b)] {
					all = false
					break
				}
			}
			if all {
				out[norm(r.Head)] = true
				grew = true
			}
		}
		if !grew {
			return out
		}
	}
}

func norm(a string) string { return strings.ToLower(a) }

// Check decides whether releasing attrs to the subject is safe given
// everything it has already received. On approval the attributes are
// recorded in the history; on refusal nothing is recorded.
func (c *Controller) Check(s *policy.Subject, attrs []string) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	hist := c.history[s.ID]
	known := make(map[string]bool, len(hist)+len(attrs))
	for a := range hist {
		known[a] = true
	}
	direct := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		known[norm(a)] = true
		direct[norm(a)] = true
	}
	closed := c.closureLocked(known)

	// Collect what the closure adds beyond the directly requested attrs
	// and the history.
	var derived []string
	for a := range closed {
		if !known[a] {
			derived = append(derived, a)
		}
	}
	sort.Strings(derived)

	// The subject must be entitled to the WHOLE closure: any protected
	// combination inside it is a leak, whether direct or derived.
	var closure []string
	for a := range closed {
		closure = append(closure, a)
	}
	if !c.priv.MayRelease(s, closure) {
		_, con := c.priv.Classify(closure)
		name := ""
		if con != nil {
			name = con.Name
		}
		return Decision{Allowed: false, Derived: derived, Violation: name}
	}
	// Record the release (direct attrs and what they let the subject
	// derive).
	if hist == nil {
		hist = make(map[string]bool)
		c.history[s.ID] = hist
	}
	for a := range closed {
		hist[a] = true
	}
	return Decision{Allowed: true, Derived: derived}
}

// History returns the attributes recorded for a subject, sorted.
func (c *Controller) History(subjectID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for a := range c.history[subjectID] {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Forget clears a subject's history (e.g. after re-consent or at a privacy
// boundary).
func (c *Controller) Forget(subjectID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.history, subjectID)
}

// Rules returns the installed rule names, sorted.
func (c *Controller) Rules() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.rules))
	for _, r := range c.rules {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}
