package synth

import (
	"testing"

	"webdbsec/internal/uddi"
	"webdbsec/internal/xmldoc"
)

func TestBasketsDeterministic(t *testing.T) {
	a := NewBaskets(42, 100, 50, 5)
	b := NewBaskets(42, 100, 50, 5)
	if len(a.Data) != 100 || len(b.Data) != 100 {
		t.Fatalf("sizes: %d, %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		if len(a.Data[i]) != len(b.Data[i]) {
			t.Fatal("same seed, different data")
		}
	}
	c := NewBaskets(43, 100, 50, 5)
	same := true
	for i := range a.Data {
		if len(a.Data[i]) != len(c.Data[i]) {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced same shape (possible but unlikely)")
	}
}

func TestBasketsItemsInRange(t *testing.T) {
	b := NewBaskets(7, 200, 30, 6)
	for _, row := range b.Data {
		if len(row) == 0 {
			t.Fatal("empty basket")
		}
		for _, it := range row {
			if it < 0 || it >= 30 {
				t.Fatalf("item %d out of range", it)
			}
		}
	}
	if len(b.Planted) == 0 {
		t.Error("no planted itemsets")
	}
}

func TestPeople(t *testing.T) {
	ps := People(1, 500)
	if len(ps) != 500 {
		t.Fatalf("people = %d", len(ps))
	}
	diseases := map[string]bool{}
	for _, p := range ps {
		if p.Age < 18 || p.Age >= 88 {
			t.Fatalf("age out of range: %d", p.Age)
		}
		if len(p.Zip) != 5 {
			t.Fatalf("zip = %q", p.Zip)
		}
		diseases[p.Disease] = true
	}
	if len(diseases) < 3 {
		t.Errorf("disease variety too low: %v", diseases)
	}
}

func TestHospitalSizes(t *testing.T) {
	small := Hospital(1, 10)
	big := Hospital(1, 100)
	if small.NumNodes() >= big.NumNodes() {
		t.Error("document size not controlled by patient count")
	}
	if got := len(xmldoc.MustCompilePath("//patient").Select(big)); got != 100 {
		t.Errorf("patients = %d", got)
	}
	if got := len(xmldoc.MustCompilePath("//ssn").Select(big)); got != 100 {
		t.Errorf("ssns = %d", got)
	}
}

func TestRegistryPopulation(t *testing.T) {
	r := uddi.NewRegistry(nil)
	keys := Registry(3, r, 50)
	if len(keys) != 50 || r.Len() != 50 {
		t.Fatalf("keys=%d len=%d", len(keys), r.Len())
	}
	got, err := r.GetBusinessDetail(nil, keys[0])
	if err != nil || len(got) != 1 {
		t.Fatalf("detail: %v %v", got, err)
	}
	if len(got[0].Services) != 2 {
		t.Errorf("services = %d", len(got[0].Services))
	}
	if infos := r.FindBusiness(nil, "", nil); len(infos) != 50 {
		t.Errorf("browse = %d", len(infos))
	}
}

func TestEntityValid(t *testing.T) {
	e := Entity("be-x", "retail", 3)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(e.Services) != 3 {
		t.Errorf("services = %d", len(e.Services))
	}
}
