// Package synth generates the synthetic workloads the experiment suite
// runs on. The paper's privacy mechanisms were motivated by production
// data about individuals (medical records, web clickstreams) that this
// reproduction cannot ship; these generators produce data with the same
// statistical structure the mechanisms act on — skewed categorical
// microdata for inference and privacy control, market baskets with planted
// frequent itemsets for association mining, and sized XML documents and
// UDDI registries for the access control and authentication benches. All
// generators are deterministic in their seed.
package synth

import (
	"fmt"
	"math/rand"

	"webdbsec/internal/uddi"
	"webdbsec/internal/xmldoc"
)

// Baskets generates market-basket data over items 0..numItems-1. A set of
// planted frequent itemsets appears with the given frequency; remaining
// items fill baskets with Zipf-like skew.
type Baskets struct {
	NumItems int
	Data     [][]int
	// Planted lists the itemsets embedded with high frequency.
	Planted [][]int
}

// NewBaskets generates n baskets.
func NewBaskets(seed int64, n, numItems, avgSize int) *Baskets {
	rng := rand.New(rand.NewSource(seed))
	b := &Baskets{NumItems: numItems}
	// Plant a handful of frequent itemsets among the low item ids.
	b.Planted = [][]int{
		{0, 1},
		{2, 3, 4},
		{5},
	}
	for i := 0; i < n; i++ {
		basket := map[int]bool{}
		// Each planted set appears in ~30%/20%/40% of baskets.
		if rng.Float64() < 0.30 {
			for _, it := range b.Planted[0] {
				basket[it] = true
			}
		}
		if rng.Float64() < 0.20 {
			for _, it := range b.Planted[1] {
				basket[it] = true
			}
		}
		if rng.Float64() < 0.40 {
			for _, it := range b.Planted[2] {
				basket[it] = true
			}
		}
		// Fill up with skewed singletons.
		for len(basket) < avgSize {
			// Zipf-ish: quadratic skew toward low ids.
			f := rng.Float64()
			item := int(f * f * float64(numItems))
			if item >= numItems {
				item = numItems - 1
			}
			basket[item] = true
		}
		row := make([]int, 0, len(basket))
		for it := range basket {
			row = append(row, it)
		}
		b.Data = append(b.Data, row)
	}
	return b
}

// Person is one census-like microdata record.
type Person struct {
	ID      int
	Name    string
	Age     int
	Zip     string
	Disease string
	Income  int
}

// Diseases used by the microdata generator, skewed toward the front.
var Diseases = []string{"healthy", "flu", "cold", "diabetes", "asthma", "cancer", "hiv"}

// People generates n microdata records.
func People(seed int64, n int) []Person {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Person, n)
	for i := range out {
		d := rng.Float64()
		out[i] = Person{
			ID:      i + 1,
			Name:    fmt.Sprintf("person-%04d", i+1),
			Age:     18 + rng.Intn(70),
			Zip:     fmt.Sprintf("%05d", 10000+rng.Intn(90)*100+rng.Intn(10)),
			Disease: Diseases[int(d*d*float64(len(Diseases)))],
			Income:  20000 + rng.Intn(180000),
		}
	}
	return out
}

// Hospital generates a hospital-records document with the given number of
// patients; each patient contributes ~8 nodes, giving controllable
// document sizes for the view-computation experiments.
func Hospital(seed int64, patients int) *xmldoc.Document {
	rng := rand.New(rand.NewSource(seed))
	b := xmldoc.NewBuilder(fmt.Sprintf("hospital-%d.xml", patients), "hospital")
	b.Attrib("name", "Synthetic General")
	for i := 0; i < patients; i++ {
		b.Begin("patient").
			Attrib("id", fmt.Sprintf("p%d", i)).
			Attrib("ward", fmt.Sprintf("%d", rng.Intn(8)))
		b.Element("name", fmt.Sprintf("person-%04d", i))
		b.Element("ssn", fmt.Sprintf("%03d-%02d-%04d", rng.Intn(1000), rng.Intn(100), rng.Intn(10000)))
		b.Begin("diagnosis").
			Attrib("severity", []string{"low", "mid", "high"}[rng.Intn(3)]).
			Text(Diseases[rng.Intn(len(Diseases))]).
			End()
		b.End()
	}
	return b.Freeze()
}

// Registry populates a UDDI registry with n business entities, each with
// a couple of services and bindings. Returns the entity keys.
func Registry(seed int64, r *uddi.Registry, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 0, n)
	sectors := []string{"logistics", "finance", "retail", "media", "health"}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("be-%05d", i)
		e := Entity(key, sectors[rng.Intn(len(sectors))], 2)
		if err := r.SaveBusiness(fmt.Sprintf("pub-%d", i%17), e); err != nil {
			panic(err) // generator bug, not runtime input
		}
		keys = append(keys, key)
	}
	return keys
}

// Entity builds one business entity with the given number of services.
func Entity(key, sector string, services int) *uddi.BusinessEntity {
	e := &uddi.BusinessEntity{
		BusinessKey: key,
		Name:        fmt.Sprintf("%s %s Corp", sector, key),
		Description: "synthetic registry entry",
		Contacts:    []uddi.Contact{{Name: "ops", Email: "ops@" + key + ".example"}},
		CategoryBag: []uddi.KeyedReference{{TModelKey: "tm-sector", KeyName: "sector", KeyValue: sector}},
	}
	for s := 0; s < services; s++ {
		e.Services = append(e.Services, uddi.BusinessService{
			ServiceKey: fmt.Sprintf("%s-svc%d", key, s),
			Name:       fmt.Sprintf("%s-service-%d", sector, s),
			Bindings: []uddi.BindingTemplate{{
				BindingKey:  fmt.Sprintf("%s-bind%d", key, s),
				AccessPoint: fmt.Sprintf("https://%s.example/s%d", key, s),
				TModelKeys:  []string{"tm-soap"},
			}},
		})
	}
	return e
}
