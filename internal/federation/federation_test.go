package federation

import (
	"context"
	"strings"
	"testing"

	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
)

// twoHospitals builds a federation of two sources with heterogeneous local
// names: city hospital exports all its cases; military hospital is Secret
// and exports only non-officer cases.
func twoHospitals(t *testing.T) *Federation {
	t.Helper()
	mk := func(table string, rows []string) *reldb.Database {
		db := reldb.NewDatabase()
		if _, err := db.Exec("CREATE TABLE " + table + " (patient TEXT, disease TEXT, rank TEXT)"); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if _, err := db.Exec("INSERT INTO " + table + " VALUES " + r); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	city := NewSource("city", mk("cases", []string{
		"('c1', 'flu', 'civilian')",
		"('c2', 'cold', 'civilian')",
	}), rdf.Unclassified)
	if err := city.ExportTable(&Export{
		Virtual: "cases", Local: "cases", Columns: []string{"patient", "disease"},
	}); err != nil {
		t.Fatal(err)
	}
	milPred := reldb.MustParse("SELECT * FROM mil_cases WHERE rank = 'enlisted'").(*reldb.SelectStmt).Where
	mil := NewSource("military", mk("mil_cases", []string{
		"('m1', 'flu', 'enlisted')",
		"('m2', 'burn', 'officer')",
	}), rdf.Secret)
	if err := mil.ExportTable(&Export{
		Virtual: "cases", Local: "mil_cases", Columns: []string{"patient", "disease"}, Pred: milPred,
	}); err != nil {
		t.Fatal(err)
	}
	f := New()
	if err := f.AddSource(city); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSource(mil); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFederatedUnionWithProvenance(t *testing.T) {
	f := twoHospitals(t)
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	res, err := f.Query(context.Background(), req, "SELECT patient, disease FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "_source" {
		t.Errorf("columns = %v", res.Columns)
	}
	// city c1, c2 + military m1 (officer row filtered by export pred).
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].S == "m2" {
			t.Error("export predicate bypassed: officer row leaked")
		}
	}
	// Sources ordered by name: city, city, military.
	if res.Rows[0][0].S != "city" || res.Rows[2][0].S != "military" {
		t.Errorf("provenance order = %v", res.Rows)
	}
}

func TestClearanceExcludesSources(t *testing.T) {
	f := twoHospitals(t)
	low := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Unclassified}
	res, err := f.Query(context.Background(), low, "SELECT patient FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].S == "military" {
			t.Error("secret source reached at unclassified clearance")
		}
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestUnexportedColumnRefused(t *testing.T) {
	f := twoHospitals(t)
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	if _, err := f.Query(context.Background(), req, "SELECT rank FROM cases"); err == nil {
		t.Error("unexported column served")
	}
	// SELECT * projects to the EXPORTED columns only.
	res, err := f.Query(context.Background(), req, "SELECT * FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Columns {
		if c == "rank" {
			t.Error("SELECT * leaked unexported column")
		}
	}
}

func TestFederatedWhereComposesWithExportPred(t *testing.T) {
	f := twoHospitals(t)
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	res, err := f.Query(context.Background(), req, "SELECT patient FROM cases WHERE disease = 'flu'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // c1 and m1
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	f := twoHospitals(t)
	db := reldb.NewDatabase()
	db.Exec("CREATE TABLE cases (patient TEXT, disease TEXT, rank TEXT)")
	odd := NewSource("odd", db, rdf.Unclassified)
	if err := odd.ExportTable(&Export{
		Virtual: "cases", Local: "cases", Columns: []string{"patient"}, // mismatched list
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSource(odd); err == nil || !strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("schema mismatch accepted: %v", err)
	}
}

func TestExportValidation(t *testing.T) {
	db := reldb.NewDatabase()
	db.Exec("CREATE TABLE t (a INT)")
	s := NewSource("s", db, rdf.Unclassified)
	if err := s.ExportTable(&Export{Virtual: "v", Local: "ghost", Columns: []string{"a"}}); err == nil {
		t.Error("unknown local table accepted")
	}
	if err := s.ExportTable(&Export{Virtual: "v", Local: "t", Columns: []string{"ghost"}}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := s.ExportTable(&Export{Virtual: "v", Local: "t"}); err == nil {
		t.Error("empty column list accepted")
	}
	if err := s.ExportTable(&Export{Local: "t", Columns: []string{"a"}}); err == nil {
		t.Error("missing virtual name accepted")
	}
}

func TestFederationErrors(t *testing.T) {
	f := twoHospitals(t)
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	if _, err := f.Query(context.Background(), req, "SELECT x FROM ghost_table"); err == nil {
		t.Error("unknown virtual table accepted")
	}
	if _, err := f.Query(context.Background(), req, "DELETE FROM cases"); err == nil {
		t.Error("federated DML accepted")
	}
	// Duplicate source names rejected.
	dup := NewSource("city", reldb.NewDatabase(), rdf.Unclassified)
	if err := f.AddSource(dup); err == nil {
		t.Error("duplicate source accepted")
	}
	if got := f.VirtualTables(); len(got) != 1 || got[0] != "cases" {
		t.Errorf("virtual tables = %v", got)
	}
}
