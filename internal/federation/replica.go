package federation

import (
	"context"
	"errors"
	"fmt"

	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
)

// ErrStaleReplica is the refusal a replica source answers with when its
// replayed state lags the cluster commit watermark by more than the
// configured bound. The scatter-gather records it in Result.Failed and
// the query degrades to the fresh members instead of silently serving
// old data.
var ErrStaleReplica = errors.New("federation: replica too far behind")

// ReplicaBinding connects a federation source to a replication follower.
// All three funcs are called per query so the binding survives failover:
// the follower's materialized database is rebuilt when leadership moves,
// and pinning one instance at construction time would serve a dead copy.
type ReplicaBinding struct {
	// DB returns the replica's current read-only materialization (e.g.
	// reldb.Follower.DB), or nil while the replica has no state open.
	DB func() *reldb.Database
	// AppliedLSN is the highest log record the replica has replayed.
	AppliedLSN func() uint64
	// CommitLSN is the cluster commit watermark as the replica knows it
	// (e.g. replication.Node.CommitLSN).
	CommitLSN func() uint64
	// MaxLag bounds how many committed-but-unapplied records a replica
	// may serve through. 0 demands an exactly-caught-up replica.
	MaxLag uint64
}

// NewReplicaSource wraps a replication follower's replayed database as an
// exec-only federation member: reads route to the replica's materialized
// state through the same statement path a local source uses, but gated on
// freshness — a replica behind the commit watermark by more than MaxLag
// refuses with ErrStaleReplica rather than answer from history. Because
// the refusal surfaces through the ordinary fan-out degradation path, a
// stale or crashed replica turns the federated result partial (with
// provenance) while the remaining members still answer.
//
// The caller applies the same access-control wrapping to the returned
// source's reads as it would on the leader; the binding only supplies the
// raw replayed database.
func NewReplicaSource(name string, level rdf.Level, b ReplicaBinding) (*Source, error) {
	if b.DB == nil || b.AppliedLSN == nil || b.CommitLSN == nil {
		return nil, fmt.Errorf("federation: replica source %s needs DB, AppliedLSN and CommitLSN bindings", name)
	}
	s := NewSource(name, nil, level)
	s.SetExec(func(ctx context.Context, sel *reldb.SelectStmt) (*reldb.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		applied, commit := b.AppliedLSN(), b.CommitLSN()
		if commit > applied && commit-applied > b.MaxLag {
			return nil, fmt.Errorf("%w: %s applied %d of %d committed records (max lag %d)",
				ErrStaleReplica, name, applied, commit, b.MaxLag)
		}
		db := b.DB()
		if db == nil {
			return nil, fmt.Errorf("%w: %s has no replica state open", ErrStaleReplica, name)
		}
		return db.ExecStmt(sel)
	})
	return s, nil
}
