// Package federation implements secure interoperation of autonomous
// databases — §5's "researchers have done some work on the secure
// interoperability of databases. We need to revisit this research and then
// determine what else needs to be done so that the information on the web
// can be managed, integrated and exchanged securely."
//
// Each member source keeps full autonomy: it decides which local tables it
// exports into the federation (possibly under a different virtual name —
// the heterogeneity case), which columns, under which row predicate, and
// at which security level. A federated query fans out to the eligible
// sources, applies each source's export policy INSIDE the source, and
// unions the results with a provenance column, so the federation layer
// never sees rows a source did not explicitly export and a requestor never
// sees sources above its clearance.
package federation

import (
	"fmt"
	"sort"
	"sync"

	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
)

// Export declares one table a source contributes to the federation.
type Export struct {
	// Virtual is the federation-wide table name.
	Virtual string
	// Local is the source's own table name (heterogeneous naming).
	Local string
	// Columns are the exported columns in virtual order; they must exist
	// locally. Every source exporting the same Virtual must export the
	// same column list (the federated schema).
	Columns []string
	// Pred optionally restricts the exported rows.
	Pred reldb.Expr
}

// Source is one autonomous member.
type Source struct {
	Name string
	// Level classifies the source; requestors below it cannot reach it.
	Level rdf.Level
	db    *reldb.Database
	// exports: virtual name -> export declaration.
	exports map[string]*Export
}

// NewSource wraps a member database.
func NewSource(name string, db *reldb.Database, level rdf.Level) *Source {
	return &Source{Name: name, Level: level, db: db, exports: make(map[string]*Export)}
}

// ExportTable declares an export. The local table and every exported
// column must exist.
func (s *Source) ExportTable(e *Export) error {
	if e.Virtual == "" || e.Local == "" {
		return fmt.Errorf("federation: export needs virtual and local names")
	}
	t, ok := s.db.Table(e.Local)
	if !ok {
		return fmt.Errorf("federation: source %s has no table %s", s.Name, e.Local)
	}
	if len(e.Columns) == 0 {
		return fmt.Errorf("federation: export of %s needs an explicit column list", e.Virtual)
	}
	for _, c := range e.Columns {
		if t.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("federation: source %s table %s has no column %s", s.Name, e.Local, c)
		}
	}
	s.exports[e.Virtual] = e
	return nil
}

// Federation unions exported tables across sources.
type Federation struct {
	mu      sync.RWMutex
	sources []*Source
}

// New returns an empty federation.
func New() *Federation { return &Federation{} }

// AddSource registers a member.
func (f *Federation) AddSource(s *Source) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, existing := range f.sources {
		if existing.Name == s.Name {
			return fmt.Errorf("federation: duplicate source %s", s.Name)
		}
	}
	// Schema compatibility: same virtual table ⇒ same column list.
	for v, e := range s.exports {
		for _, other := range f.sources {
			oe, ok := other.exports[v]
			if !ok {
				continue
			}
			if !sameColumns(e.Columns, oe.Columns) {
				return fmt.Errorf("federation: schema mismatch on %s between %s (%v) and %s (%v)",
					v, s.Name, e.Columns, other.Name, oe.Columns)
			}
		}
	}
	f.sources = append(f.sources, s)
	return nil
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VirtualTables returns the federation's virtual table names, sorted.
func (f *Federation) VirtualTables() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	set := map[string]bool{}
	for _, s := range f.sources {
		for v := range s.exports {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Requestor carries the federated caller's identity and clearance.
type Requestor struct {
	Subject   *policy.Subject
	Clearance rdf.Level
}

// Query runs a federated SELECT over a virtual table: the statement is
// parsed once, then per eligible source rewritten onto the local table
// with the export predicate conjoined, executed locally, projected to the
// exported columns, and unioned with a leading "_source" provenance
// column. ORDER BY/LIMIT apply per source (the union is ordered by source
// name, then source order).
func (f *Federation) Query(req *Requestor, src string) (*reldb.Result, error) {
	st, err := reldb.Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*reldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("federation: only SELECT is federated")
	}
	f.mu.RLock()
	defer f.mu.RUnlock()

	var contributing []*Source
	var export *Export
	for _, s := range f.sources {
		e, ok := s.exports[sel.Table]
		if !ok {
			continue
		}
		export = e
		if req.Clearance < s.Level {
			continue // source above the requestor's clearance
		}
		contributing = append(contributing, s)
	}
	if export == nil {
		return nil, fmt.Errorf("federation: unknown virtual table %s", sel.Table)
	}
	// Requested columns must be exported (closed: the federation cannot
	// leak a column a source never exported).
	want := sel.Columns
	if want == nil {
		want = export.Columns
	}
	for _, c := range want {
		if !contains(export.Columns, c) {
			return nil, fmt.Errorf("federation: column %s is not exported by %s", c, sel.Table)
		}
	}
	out := &reldb.Result{Columns: append([]string{"_source"}, want...)}
	sort.Slice(contributing, func(i, j int) bool { return contributing[i].Name < contributing[j].Name })
	for _, s := range contributing {
		e := s.exports[sel.Table]
		local := *sel
		local.Table = e.Local
		local.Columns = want
		if e.Pred != nil {
			if local.Where == nil {
				local.Where = e.Pred
			} else {
				local.Where = &reldb.AndExpr{L: local.Where, R: e.Pred}
			}
		}
		res, err := s.db.ExecStmt(&local)
		if err != nil {
			return nil, fmt.Errorf("federation: source %s: %w", s.Name, err)
		}
		for _, r := range res.Rows {
			row := make(reldb.Row, 0, len(r)+1)
			row = append(row, reldb.Str(s.Name))
			row = append(row, r...)
			out.Rows = append(out.Rows, row)
		}
	}
	out.Affected = len(out.Rows)
	return out, nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
