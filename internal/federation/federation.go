// Package federation implements secure interoperation of autonomous
// databases — §5's "researchers have done some work on the secure
// interoperability of databases. We need to revisit this research and then
// determine what else needs to be done so that the information on the web
// can be managed, integrated and exchanged securely."
//
// Each member source keeps full autonomy: it decides which local tables it
// exports into the federation (possibly under a different virtual name —
// the heterogeneity case), which columns, under which row predicate, and
// at which security level. A federated query fans out to the eligible
// sources, applies each source's export policy INSIDE the source, and
// unions the results with a provenance column, so the federation layer
// never sees rows a source did not explicitly export and a requestor never
// sees sources above its clearance.
//
// Sources are autonomous and may be slow, partitioned, or down. The
// fan-out therefore runs concurrently under the caller's context with an
// optional per-source deadline, and a failing source degrades the query to
// a *partial* result carrying per-source error provenance instead of
// sinking it: availability failures must not become denial of service for
// the healthy members (§5's unreliable-communication-layers concern).
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"webdbsec/internal/decisioncache"
	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
)

// Export declares one table a source contributes to the federation.
type Export struct {
	// Virtual is the federation-wide table name.
	Virtual string
	// Local is the source's own table name (heterogeneous naming).
	Local string
	// Columns are the exported columns in virtual order; they must exist
	// locally. Every source exporting the same Virtual must export the
	// same column list (the federated schema).
	Columns []string
	// Pred optionally restricts the exported rows.
	Pred reldb.Expr
}

// Source is one autonomous member.
type Source struct {
	Name string
	// Level classifies the source; requestors below it cannot reach it.
	Level rdf.Level
	db    *reldb.Database
	// exports: virtual name -> export declaration.
	exports map[string]*Export
	// exec overrides statement execution when non-nil (remote sources,
	// fault injection).
	exec ExecFunc
}

// ExecFunc executes one rewritten SELECT against a source. It must honour
// ctx: a slow source that ignores its deadline is abandoned by the
// fan-out, not waited for.
type ExecFunc func(ctx context.Context, sel *reldb.SelectStmt) (*reldb.Result, error)

// NewSource wraps a member database.
func NewSource(name string, db *reldb.Database, level rdf.Level) *Source {
	return &Source{Name: name, Level: level, db: db, exports: make(map[string]*Export)}
}

// SetExec overrides how the source executes statements — the hook for
// remote members and the fault-injection harness. nil restores the local
// database path. Set before the source serves queries; it is not
// synchronized against in-flight fan-outs.
func (s *Source) SetExec(fn ExecFunc) { s.exec = fn }

// Exec runs one statement through the source's execution path (hook or
// local database), honouring ctx.
func (s *Source) Exec(ctx context.Context, sel *reldb.SelectStmt) (*reldb.Result, error) {
	if s.exec != nil {
		return s.exec(ctx, sel)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.db == nil {
		return nil, fmt.Errorf("federation: source %s has no local database or exec hook", s.Name)
	}
	return s.db.ExecStmt(sel)
}

// ExportTable declares an export. For a source with a pinned local
// database, the local table and every exported column must exist;
// exec-only sources (remote members, replica bindings whose state is
// rebuilt across failovers) cannot be validated up front — a missing
// table there surfaces at execution time through the fan-out's
// degradation path instead.
func (s *Source) ExportTable(e *Export) error {
	if e.Virtual == "" || e.Local == "" {
		return fmt.Errorf("federation: export needs virtual and local names")
	}
	if len(e.Columns) == 0 {
		return fmt.Errorf("federation: export of %s needs an explicit column list", e.Virtual)
	}
	if s.db != nil {
		t, ok := s.db.Table(e.Local)
		if !ok {
			return fmt.Errorf("federation: source %s has no table %s", s.Name, e.Local)
		}
		for _, c := range e.Columns {
			if t.Schema.ColIndex(c) < 0 {
				return fmt.Errorf("federation: source %s table %s has no column %s", s.Name, e.Local, c)
			}
		}
	}
	s.exports[e.Virtual] = e
	return nil
}

// parseCacheCapacity bounds the federated-query parse cache. Federated
// workloads repeat a small set of query shapes across many requestors, so
// a modest bound captures nearly all repeats.
const parseCacheCapacity = 256

// Federation unions exported tables across sources.
type Federation struct {
	mu      sync.RWMutex
	sources []*Source
	timeout time.Duration
	// parsed caches compiled SELECTs by source text. Parsed statements are
	// never mutated by the fan-out (each source gets its own copy), so one
	// compilation serves every repeat of the query.
	parsed *decisioncache.Cache[string, *reldb.SelectStmt]
}

// New returns an empty federation.
func New() *Federation {
	return &Federation{
		parsed: decisioncache.New[string, *reldb.SelectStmt](parseCacheCapacity, decisioncache.HashString),
	}
}

// ParseCacheStats snapshots the federated-query parse-cache counters.
func (f *Federation) ParseCacheStats() decisioncache.Stats { return f.parsed.Stats() }

// SetPerSourceTimeout bounds each source's share of a federated query; a
// source that exceeds it is reported in the result's Failed provenance
// while the others still contribute. Zero (the default) imposes no
// per-source bound beyond the caller's context.
func (f *Federation) SetPerSourceTimeout(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timeout = d
}

// AddSource registers a member.
func (f *Federation) AddSource(s *Source) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, existing := range f.sources {
		if existing.Name == s.Name {
			return fmt.Errorf("federation: duplicate source %s", s.Name)
		}
	}
	// Schema compatibility: same virtual table ⇒ same column list.
	for v, e := range s.exports {
		for _, other := range f.sources {
			oe, ok := other.exports[v]
			if !ok {
				continue
			}
			if !sameColumns(e.Columns, oe.Columns) {
				return fmt.Errorf("federation: schema mismatch on %s between %s (%v) and %s (%v)",
					v, s.Name, e.Columns, other.Name, oe.Columns)
			}
		}
	}
	f.sources = append(f.sources, s)
	return nil
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VirtualTables returns the federation's virtual table names, sorted.
func (f *Federation) VirtualTables() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	set := map[string]bool{}
	for _, s := range f.sources {
		for v := range s.exports {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Requestor carries the federated caller's identity and clearance.
type Requestor struct {
	Subject   *policy.Subject
	Clearance rdf.Level
}

// SourceError records one eligible source's failure in a partial result.
type SourceError struct {
	// Source is the failing member's name.
	Source string
	// Err is the cause (deadline, injected fault, local error).
	Err error
	// Timeout flags deadline-style failures for quick triage.
	Timeout bool
}

func (e SourceError) Error() string {
	return fmt.Sprintf("federation: source %s: %v", e.Source, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e SourceError) Unwrap() error { return e.Err }

// Result is a federated query result: the unioned rows plus per-source
// failure provenance. Failed is non-empty when the result is partial.
type Result struct {
	*reldb.Result
	// Failed lists eligible sources that did not contribute, in source
	// name order.
	Failed []SourceError
}

// Partial reports whether any eligible source failed to contribute.
func (r *Result) Partial() bool { return len(r.Failed) > 0 }

// Query runs a federated SELECT over a virtual table: the statement is
// parsed once, then per eligible source rewritten onto the local table
// with the export predicate conjoined, executed concurrently under ctx
// (plus the federation's per-source timeout), projected to the exported
// columns, and unioned with a leading "_source" provenance column. ORDER
// BY/LIMIT apply per source (the union is ordered by source name, then
// source order).
//
// Degradation contract: a failing or slow source is dropped from the
// union and reported in Result.Failed — the query still answers from the
// healthy members, in bounded time. Query returns an error only for
// request-level problems (parse error, unknown virtual table, unexported
// column) or when EVERY eligible source failed.
func (f *Federation) Query(ctx context.Context, req *Requestor, src string) (*Result, error) {
	sel, err := f.parsed.Do(src, func() (*reldb.SelectStmt, error) {
		st, err := reldb.Parse(src)
		if err != nil {
			return nil, err
		}
		sel, ok := st.(*reldb.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("federation: only SELECT is federated")
		}
		return sel, nil
	})
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	timeout := f.timeout
	var contributing []*Source
	var export *Export
	for _, s := range f.sources {
		e, ok := s.exports[sel.Table]
		if !ok {
			continue
		}
		export = e
		if req.Clearance < s.Level {
			continue // source above the requestor's clearance
		}
		contributing = append(contributing, s)
	}
	f.mu.RUnlock()
	if export == nil {
		return nil, fmt.Errorf("federation: unknown virtual table %s", sel.Table)
	}
	// Requested columns must be exported (closed: the federation cannot
	// leak a column a source never exported).
	want := sel.Columns
	if want == nil {
		want = export.Columns
	}
	for _, c := range want {
		if !contains(export.Columns, c) {
			return nil, fmt.Errorf("federation: column %s is not exported by %s", c, sel.Table)
		}
	}
	sort.Slice(contributing, func(i, j int) bool { return contributing[i].Name < contributing[j].Name })

	// Concurrent fan-out: one goroutine per eligible source, each bounded
	// by the per-source deadline. A source that ignores its context is
	// abandoned at the deadline (its goroutine finishes into a buffered
	// channel and is collected by the GC), so the query stays bounded even
	// against misbehaving members.
	type outcome struct {
		res *reldb.Result
		err error
	}
	outcomes := make([]outcome, len(contributing))
	var wg sync.WaitGroup
	for i, s := range contributing {
		e := s.exports[sel.Table]
		local := *sel
		local.Table = e.Local
		local.Columns = want
		if e.Pred != nil {
			if local.Where == nil {
				local.Where = e.Pred
			} else {
				local.Where = &reldb.AndExpr{L: local.Where, R: e.Pred}
			}
		}
		wg.Add(1)
		go func(i int, s *Source, local reldb.SelectStmt) {
			defer wg.Done()
			sctx := ctx
			cancel := context.CancelFunc(func() {})
			if timeout > 0 {
				sctx, cancel = context.WithTimeout(ctx, timeout)
			}
			defer cancel()
			done := make(chan outcome, 1)
			go func() {
				res, err := s.Exec(sctx, &local)
				done <- outcome{res, err}
			}()
			select {
			case o := <-done:
				outcomes[i] = o
			case <-sctx.Done():
				outcomes[i] = outcome{nil, sctx.Err()}
			}
		}(i, s, local)
	}
	wg.Wait()

	out := &Result{Result: &reldb.Result{Columns: append([]string{"_source"}, want...)}}
	for i, s := range contributing {
		o := outcomes[i]
		if o.err != nil {
			out.Failed = append(out.Failed, SourceError{
				Source:  s.Name,
				Err:     o.err,
				Timeout: isDeadline(o.err),
			})
			continue
		}
		for _, r := range o.res.Rows {
			row := make(reldb.Row, 0, len(r)+1)
			row = append(row, reldb.Str(s.Name))
			row = append(row, r...)
			out.Rows = append(out.Rows, row)
		}
	}
	out.Affected = len(out.Rows)
	if len(contributing) > 0 && len(out.Failed) == len(contributing) {
		return nil, fmt.Errorf("federation: all %d eligible source(s) failed, first: %w",
			len(contributing), out.Failed[0])
	}
	return out, nil
}

// isDeadline reports whether err stems from a spent context deadline or
// cancellation.
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
