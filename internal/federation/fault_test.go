package federation

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"webdbsec/internal/policy"
	"webdbsec/internal/rdf"
	"webdbsec/internal/reldb"
	"webdbsec/internal/resilience/faultinject"
)

// threeSources builds a federation of three equal sources exporting the
// same virtual table, each with one distinguishing row.
func threeSources(t *testing.T) (*Federation, map[string]*Source) {
	t.Helper()
	f := New()
	srcs := map[string]*Source{}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		db := reldb.NewDatabase()
		if _, err := db.Exec("CREATE TABLE local_cases (patient TEXT, disease TEXT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO local_cases VALUES ('" + name + "-p1', 'flu')"); err != nil {
			t.Fatal(err)
		}
		s := NewSource(name, db, rdf.Unclassified)
		if err := s.ExportTable(&Export{
			Virtual: "cases", Local: "local_cases", Columns: []string{"patient", "disease"},
		}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddSource(s); err != nil {
			t.Fatal(err)
		}
		srcs[name] = s
	}
	return f, srcs
}

// faultExec wraps a source's default execution path with an injector
// gate, the way the fault harness plugs into federation members.
func faultExec(s *Source, inj *faultinject.Injector) ExecFunc {
	return func(ctx context.Context, sel *reldb.SelectStmt) (*reldb.Result, error) {
		if err := inj.Gate(ctx); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.db.ExecStmt(sel)
	}
}

// TestPartialResultWithProvenance is the acceptance scenario: one dead
// source, one delayed beyond its deadline, one healthy. The query answers
// from the healthy source in bounded time, with both failures recorded in
// the provenance.
func TestPartialResultWithProvenance(t *testing.T) {
	f, srcs := threeSources(t)
	f.SetPerSourceTimeout(40 * time.Millisecond)

	// alpha: dead — every operation errors immediately.
	srcs["alpha"].SetExec(faultExec(srcs["alpha"], faultinject.New(faultinject.Always(faultinject.Error))))
	// beta: slow — delayed far beyond the per-source deadline; the
	// context-aware delay trips the deadline instead of sleeping it out.
	slow := faultinject.New(faultinject.Always(faultinject.Delay))
	slow.Delay = 10 * time.Second
	srcs["beta"].SetExec(faultExec(srcs["beta"], slow))

	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	start := time.Now()
	res, err := f.Query(context.Background(), req, "SELECT patient FROM cases")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("degraded query took %v, want bounded by the per-source deadline", elapsed)
	}
	if !res.Partial() {
		t.Fatal("two failed sources did not mark the result partial")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "gamma" {
		t.Fatalf("rows = %v, want exactly gamma's row", res.Rows)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("Failed = %v, want alpha and beta", res.Failed)
	}
	byName := map[string]SourceError{}
	for _, fe := range res.Failed {
		byName[fe.Source] = fe
	}
	if fe, ok := byName["alpha"]; !ok || !errors.Is(fe.Err, faultinject.ErrInjected) {
		t.Errorf("alpha provenance = %+v, want injected error", fe)
	}
	if fe, ok := byName["beta"]; !ok || !fe.Timeout {
		t.Errorf("beta provenance = %+v, want timeout", fe)
	}
	// Failed provenance is ordered by source name like the union.
	if res.Failed[0].Source != "alpha" || res.Failed[1].Source != "beta" {
		t.Errorf("provenance order = %v", res.Failed)
	}
}

// TestAllSourcesFailed: when no eligible source contributes, the query is
// an error naming the failure, not a silently empty result.
func TestAllSourcesFailed(t *testing.T) {
	f, srcs := threeSources(t)
	for _, s := range srcs {
		s.SetExec(faultExec(s, faultinject.New(faultinject.Always(faultinject.Error))))
	}
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	_, err := f.Query(context.Background(), req, "SELECT patient FROM cases")
	if err == nil || !strings.Contains(err.Error(), "eligible source(s) failed") {
		t.Fatalf("all-failed query returned %v, want aggregate error", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("aggregate error does not expose the cause: %v", err)
	}
}

// TestCancelledContextFailsFast: a caller whose context is already done
// gets an error immediately; no source work is awaited.
func TestCancelledContextFailsFast(t *testing.T) {
	f, _ := threeSources(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Secret}
	start := time.Now()
	_, err := f.Query(ctx, req, "SELECT patient FROM cases")
	if err == nil {
		t.Fatal("cancelled context produced a result")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled query did not fail fast")
	}
}

// TestClearanceStillEnforcedUnderFaults: degraded operation must not
// weaken the security contract — a source above the requestor's clearance
// stays invisible even while other sources are failing.
func TestClearanceStillEnforcedUnderFaults(t *testing.T) {
	f, srcs := threeSources(t)
	srcs["gamma"].Level = rdf.Secret
	srcs["alpha"].SetExec(faultExec(srcs["alpha"], faultinject.New(faultinject.Always(faultinject.Error))))
	low := &Requestor{Subject: &policy.Subject{ID: "r"}, Clearance: rdf.Unclassified}
	res, err := f.Query(context.Background(), low, "SELECT patient FROM cases")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].S == "gamma" {
			t.Error("secret source leaked into degraded result")
		}
	}
	for _, fe := range res.Failed {
		if fe.Source == "gamma" {
			t.Error("secret source visible in failure provenance")
		}
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "beta" {
		t.Errorf("rows = %v, want beta only", res.Rows)
	}
}

// TestSeededPlanDeterminism: the same seed yields the same fault
// sequence, so seeded chaos runs replay exactly.
func TestSeededPlanDeterminism(t *testing.T) {
	w := faultinject.Weights{Drop: 0.1, Delay: 0.2, Error: 0.3, Corrupt: 0.1}
	a, b := faultinject.Seeded(42, w), faultinject.Seeded(42, w)
	for i := 0; i < 200; i++ {
		ka, kb := a.Next(), b.Next()
		if ka != kb {
			t.Fatalf("step %d: %v != %v", i, ka, kb)
		}
	}
}
