package audit

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Durable backend for the audit chain. Each record travels as one JSON
// frame; the chain itself is the integrity mechanism, so OpenLog re-walks
// it on every start and refuses to serve from a log whose surviving
// records do not verify — a broken chain means the trail was tampered with
// (or rotted) at rest, and an accountability log that silently accepts
// that is worse than none. A torn final record, by contrast, is a clean
// crash artifact: the wal layer truncates it before this package ever
// sees it, and the chain prefix that remains verifies.

func encodeRecord(r *Record) ([]byte, error) { return json.Marshal(r) }

// ErrChainBroken is wrapped by OpenLog when the persisted chain fails
// verification.
var ErrChainBroken = fmt.Errorf("audit: persisted hash chain broken")

// OpenLog recovers the audit log from w, verifying the hash chain, and
// wires the log to keep appending to it. The caller owns w's lifecycle but
// must not use it directly afterwards. The audit log never checkpoints:
// truncating history is exactly what a tamper-evident log must not do, so
// growth is bounded only by segment rotation on disk.
//
// seclint:locked l is not yet published; no other goroutine can hold a reference during recovery
func OpenLog(w *wal.WAL) (*Log, error) {
	l := NewLog()
	err := w.Replay(func(lsn uint64, payload []byte) error {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("audit: decode record at lsn %d: %w", lsn, err)
		}
		l.records = append(l.records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if bad := l.Verify(); bad >= 0 {
		return nil, fmt.Errorf("%w: first bad record at seq %d", ErrChainBroken, bad)
	}
	l.w = w
	return l, nil
}
