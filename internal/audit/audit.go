// Package audit provides the tamper-evident audit log the security layers
// write to. Every record is chained to its predecessor by a SHA-256 hash,
// so after-the-fact modification or deletion of any entry is detectable —
// the accountability counterpart of the paper's access control mechanisms
// ("data and information have to be protected from unauthorized access as
// well as from malicious corruption", §1).
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"webdbsec/internal/wal"
)

// Record is one audit entry.
type Record struct {
	Seq     int
	Actor   string
	Action  string
	Object  string
	Outcome string
	// PrevHash chains the record to its predecessor; Hash covers this
	// record including PrevHash.
	PrevHash string
	Hash     string
}

// Log is a hash-chained append-only audit log, optionally mirrored to a
// durable backend (internal/wal) so the accountability trail survives a
// crash. Safe for concurrent use.
type Log struct {
	mu sync.RWMutex
	// records is the hash chain. seclint:guardedby mu
	records []Record
	// w is the durable backend, nil for in-memory logs. seclint:guardedby mu
	w *wal.WAL
	// err is the sticky backend error. seclint:guardedby mu
	err error
}

// NewLog returns an empty in-memory log.
func NewLog() *Log { return &Log{} }

// Append adds a record and returns it with chain fields filled. Backend
// failures stick in Err; use AppendChecked when the caller needs the
// durability verdict.
func (l *Log) Append(actor, action, object, outcome string) Record {
	r, _ := l.AppendChecked(actor, action, object, outcome) // seclint:exempt fire-and-forget by contract; the verdict sticks in Err for callers that care
	return r
}

// AppendChecked is Append that also reports whether the record reached the
// durable backend (always nil for an in-memory log). A non-nil error means
// the record is in memory but its persistence is unknown; the error sticks
// and poisons all later appends.
//
// The chain extension (hash over the predecessor, in-memory append, WAL
// enqueue) happens under l.mu, but the wait for the disk verdict happens
// outside it: concurrent auditors enqueue into the backend's group-commit
// pipeline and share one batched fsync instead of serializing on the
// chain mutex for a private fsync each. Frames are enqueued in chain
// order under the mutex, so the on-disk log is always a prefix of the
// chain and OpenLog's verification is unaffected.
func (l *Log) AppendChecked(actor, action, object, outcome string) (Record, error) {
	l.mu.Lock()
	prev := ""
	if n := len(l.records); n > 0 {
		prev = l.records[n-1].Hash
	}
	r := Record{
		Seq:      len(l.records),
		Actor:    actor,
		Action:   action,
		Object:   object,
		Outcome:  outcome,
		PrevHash: prev,
	}
	r.Hash = hash(r)
	l.records = append(l.records, r)
	var ack *wal.Ack
	if l.w != nil && l.err == nil {
		if payload, err := encodeRecord(&r); err != nil {
			l.err = err
			// seclint:taint-exempt audit records preserve the submitted text verbatim by design; the WAL frame is length-prefixed binary and never re-parsed as input
		} else if _, a, err := l.w.AppendAsync(payload); err != nil {
			l.err = err
		} else {
			ack = a
		}
	}
	err := l.err
	l.mu.Unlock()
	if ack != nil {
		if werr := ack.Wait(); werr != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = werr
			}
			err = l.err
			l.mu.Unlock()
		}
	}
	return r, err
}

// Err returns the sticky durable-backend error, if any.
func (l *Log) Err() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.err
}

func hash(r Record) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%s|%s|%s|%s|%s", r.Seq, r.Actor, r.Action, r.Object, r.Outcome, r.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}

// Records returns a snapshot.
func (l *Log) Records() []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Record(nil), l.records...)
}

// Verify walks the chain and returns the sequence number of the first
// corrupted record, or -1 when the log is intact.
func (l *Log) Verify() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := ""
	for i, r := range l.records {
		if r.Seq != i || r.PrevHash != prev || r.Hash != hash(r) {
			return i
		}
		prev = r.Hash
	}
	return -1
}

// Tamper overwrites a record in place — test hook simulating an attacker
// with storage access. It deliberately does not re-chain successors.
func (l *Log) Tamper(seq int, outcome string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 || seq >= len(l.records) {
		return false
	}
	l.records[seq].Outcome = outcome
	return true
}
