package audit

import (
	"sync"
	"testing"
)

func TestChainIntact(t *testing.T) {
	l := NewLog()
	l.Append("alice", "read", "/doc1", "permit")
	l.Append("bob", "write", "/doc1", "deny")
	l.Append("alice", "read", "/doc2", "permit")
	if got := l.Verify(); got != -1 {
		t.Fatalf("fresh log corrupt at %d", got)
	}
	if l.Len() != 3 {
		t.Errorf("len = %d", l.Len())
	}
	recs := l.Records()
	if recs[1].PrevHash != recs[0].Hash {
		t.Error("chain not linked")
	}
}

func TestTamperDetected(t *testing.T) {
	l := NewLog()
	l.Append("alice", "read", "/doc1", "deny")
	l.Append("alice", "read", "/doc1", "deny")
	l.Append("alice", "read", "/doc1", "deny")
	// The attacker flips a denial into a permit.
	if !l.Tamper(1, "permit") {
		t.Fatal("tamper hook failed")
	}
	if got := l.Verify(); got != 1 {
		t.Errorf("Verify = %d, want 1", got)
	}
	if l.Tamper(99, "x") {
		t.Error("tamper out of range succeeded")
	}
}

func TestEmptyLogVerifies(t *testing.T) {
	if got := NewLog().Verify(); got != -1 {
		t.Errorf("empty log corrupt at %d", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Append("w", "op", "obj", "ok")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("len = %d", l.Len())
	}
	if got := l.Verify(); got != -1 {
		t.Errorf("concurrent log corrupt at %d", got)
	}
}
