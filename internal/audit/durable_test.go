package audit

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openAudit(t *testing.T, fs wal.FS) *Log {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	l, err := OpenLog(w)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return l
}

func TestReopenPreservesChain(t *testing.T) {
	fs := faultinject.NewMemFS()
	l := openAudit(t, fs)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendChecked("ana", "query", fmt.Sprintf("obj-%d", i), "permit"); err != nil {
			t.Fatalf("AppendChecked %d: %v", i, err)
		}
	}
	l2 := openAudit(t, fs)
	if l2.Len() != 20 {
		t.Fatalf("recovered %d records, want 20", l2.Len())
	}
	if bad := l2.Verify(); bad != -1 {
		t.Fatalf("Verify after reopen = %d, want -1", bad)
	}
	// The chain continues where it left off.
	r, err := l2.AppendChecked("res", "query", "obj-20", "deny")
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 20 || r.PrevHash != l2.Records()[19].Hash {
		t.Fatalf("continuation record not chained: %+v", r)
	}
	l3 := openAudit(t, fs)
	if l3.Len() != 21 || l3.Verify() != -1 {
		t.Fatalf("second reopen: len=%d verify=%d", l3.Len(), l3.Verify())
	}
}

// TestBrokenChainRefusesToOpen tampers with the on-disk bytes of a middle
// record — the frame CRC is recomputed so the wal layer accepts it, leaving
// detection entirely to the hash chain — and asserts OpenLog refuses.
func TestBrokenChainRefusesToOpen(t *testing.T) {
	fs := faultinject.NewMemFS()
	l := openAudit(t, fs)
	for i := 0; i < 5; i++ {
		l.Append("ana", "exec", fmt.Sprintf("obj-%d", i), "permit")
	}
	names, err := fs.List()
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	data, err := fs.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Re-frame the segment, rewriting record 2's payload with valid CRC.
	var reframed []byte
	rest := data
	for len(rest) > 0 {
		lsn, payload, next, err := wal.DecodeFrame(rest)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if lsn == 3 { // third frame = record seq 2
			payload = bytes.Replace(payload, []byte(`"permit"`), []byte(`"deny"`), 1)
		}
		reframed = wal.EncodeFrame(reframed, lsn, payload)
		rest = next
	}
	if bytes.Equal(reframed, data) {
		t.Fatal("tamper was a no-op")
	}
	if err := fs.WriteTrunc(names[0], reframed); err != nil {
		t.Fatal(err)
	}
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open must accept CRC-valid frames: %v", err)
	}
	if _, err := OpenLog(w); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("OpenLog on tampered chain: err = %v, want ErrChainBroken", err)
	}
}

// TestAuditCrashRecovery is the audit leg of the crash matrix: killed at
// every record boundary and a byte-granular sample, the surviving prefix
// must always verify — a torn tail is truncated by the wal layer, never
// surfaced as a broken chain — and every acknowledged append survives.
func TestAuditCrashRecovery(t *testing.T) {
	const appends = 10
	workload := func(fs *faultinject.MemFS) int {
		w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
		if err != nil {
			return 0
		}
		l, err := OpenLog(w)
		if err != nil {
			return 0
		}
		acked := 0
		for i := 0; i < appends; i++ {
			if _, err := l.AppendChecked("ana", "query", fmt.Sprintf("obj-%d", i), "permit"); err == nil {
				acked++
			}
		}
		return acked
	}
	dry := faultinject.NewMemFS()
	if got := workload(dry); got != appends {
		t.Fatalf("dry run acked %d, want %d", got, appends)
	}
	total := dry.BytesWritten()
	t.Logf("audit crash matrix: %d points × 2 images over a %d-byte stream", total/7+1, total)
	for b := int64(0); b <= total; b += 7 {
		fs := faultinject.NewMemFS()
		fs.LimitWriteBytes(b)
		acked := workload(fs)
		for _, drop := range []bool{false, true} {
			img := fs.AfterCrash(drop)
			w, err := wal.Open(wal.Options{FS: img, Policy: wal.SyncAlways})
			if err != nil {
				t.Fatalf("crash at %d drop=%v: wal.Open: %v", b, drop, err)
			}
			l, err := OpenLog(w)
			if err != nil {
				t.Fatalf("crash at %d drop=%v: OpenLog: %v", b, drop, err)
			}
			if bad := l.Verify(); bad != -1 {
				t.Fatalf("crash at %d drop=%v: chain broken at %d", b, drop, bad)
			}
			if l.Len() < acked {
				t.Fatalf("crash at %d drop=%v: %d acked but only %d recovered", b, drop, acked, l.Len())
			}
		}
	}
}
