// Package keymgmt is an XKMS-style XML key management service — the third
// leg of the W3C XML security work the paper lists in §3.2 ("XML-Signature
// Syntax and Processing, XML-Encryption Syntax and Processing, and XML Key
// Management"). It is also the operational answer to a gap the third-party
// experiments expose: requestors must obtain provider verification keys
// "out of band". Here, the band is a service: providers register keys,
// requestors locate and validate them, owners revoke them.
//
// Registration is first-come-first-served per name and subsequently
// owner-locked; revocation is permanent for a (name, key) pair so a stolen
// name cannot be silently re-bound by its thief.
package keymgmt

import (
	"crypto/ed25519"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"webdbsec/internal/wsa"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

// Status classifies a validation answer.
type Status string

// Validation statuses.
const (
	StatusValid   Status = "valid"
	StatusRevoked Status = "revoked"
	StatusUnknown Status = "unknown"
)

// Service is the key registry. Safe for concurrent use.
type Service struct {
	mu sync.RWMutex
	// keys: name -> active public key.
	keys map[string]ed25519.PublicKey
	// owners: name -> registering principal.
	owners map[string]string
	// revoked: name|hex(key) pairs that must never validate again.
	revoked map[string]bool
}

// NewService returns an empty key service.
func NewService() *Service {
	return &Service{
		keys:    make(map[string]ed25519.PublicKey),
		owners:  make(map[string]string),
		revoked: make(map[string]bool),
	}
}

func revKey(name string, pub ed25519.PublicKey) string {
	return name + "|" + hex.EncodeToString(pub)
}

// Register binds a key to a name. The first registrant owns the name;
// later re-registrations (key rotation) require the same owner. A revoked
// key can never be re-registered for the name.
func (s *Service) Register(owner, name string, pub ed25519.PublicKey) error {
	if owner == "" || name == "" || len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("keymgmt: register needs owner, name and a valid key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.owners[name]; ok && cur != owner {
		return fmt.Errorf("keymgmt: name %q is owned by %s", name, cur)
	}
	if s.revoked[revKey(name, pub)] {
		return fmt.Errorf("keymgmt: key was revoked for %q and cannot be re-registered", name)
	}
	s.keys[name] = append(ed25519.PublicKey(nil), pub...)
	s.owners[name] = owner
	return nil
}

// Locate returns the active key bound to the name.
func (s *Service) Locate(name string) (ed25519.PublicKey, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.keys[name]
	return k, ok
}

// Revoke withdraws the active key of a name. Only the owner may revoke.
// The name stays owned (rotation: Register a fresh key afterwards).
func (s *Service) Revoke(owner, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.owners[name]; !ok || cur != owner {
		return fmt.Errorf("keymgmt: %s does not own %q", owner, name)
	}
	k, ok := s.keys[name]
	if !ok {
		return fmt.Errorf("keymgmt: no active key for %q", name)
	}
	s.revoked[revKey(name, k)] = true
	delete(s.keys, name)
	return nil
}

// Validate checks a signature attributed to name over data: StatusValid
// when the active key verifies it; StatusRevoked when a revoked key of the
// name verifies it (the signature may predate revocation, but the service
// reports the key's standing); StatusUnknown otherwise.
func (s *Service) Validate(name string, data []byte, sig []byte) Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if k, ok := s.keys[name]; ok {
		if wsig.VerifyBytes(data, wsig.Signature{Signer: name, Value: sig}, k) {
			return StatusValid
		}
	}
	// Check revoked keys of this name.
	prefix := name + "|"
	for rk := range s.revoked {
		if len(rk) <= len(prefix) || rk[:len(prefix)] != prefix {
			continue
		}
		raw, err := hex.DecodeString(rk[len(prefix):])
		if err != nil {
			continue
		}
		if wsig.VerifyBytes(data, wsig.Signature{Signer: name, Value: sig}, ed25519.PublicKey(raw)) {
			return StatusRevoked
		}
	}
	return StatusUnknown
}

// Names returns the registered names, sorted.
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.keys))
	for n := range s.keys {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Directory materializes a wsig.KeyDirectory from the service's current
// bindings — the hand-off point to the Merkle verification machinery.
func (s *Service) Directory(names ...string) *wsig.KeyDirectory {
	dir := wsig.NewKeyDirectory()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(names) == 0 {
		for n, k := range s.keys {
			dir.Register(n, k)
		}
		return dir
	}
	for _, n := range names {
		if k, ok := s.keys[n]; ok {
			dir.Register(n, k)
		}
	}
	return dir
}

// Handler is the HTTP binding: one POST endpoint accepting wsa envelopes
// with operations register_key, locate_key, revoke_key and validate_key.
type Handler struct {
	Service *Service
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	env, err := wsa.DecodeEnvelope(r.Body)
	if err != nil {
		h.fault(w, err.Error())
		return
	}
	resp, err := h.dispatch(env)
	if err != nil {
		h.fault(w, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, resp.Encode())
}

func (h *Handler) fault(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	io.WriteString(w, (&wsa.Envelope{Fault: msg}).Encode())
}

func (h *Handler) dispatch(env *wsa.Envelope) (*wsa.Envelope, error) {
	attr := func(name string) string {
		if env.Body == nil {
			return ""
		}
		v, _ := env.Body.Root.Attr(name)
		return v
	}
	switch env.Operation {
	case "register_key":
		raw, err := hex.DecodeString(attr("key"))
		if err != nil {
			return nil, fmt.Errorf("keymgmt: bad key encoding")
		}
		if err := h.Service.Register(env.Sender, attr("name"), ed25519.PublicKey(raw)); err != nil {
			return nil, err
		}
		return ok(env.Operation, "registered"), nil
	case "locate_key":
		k, found := h.Service.Locate(attr("name"))
		if !found {
			return nil, fmt.Errorf("keymgmt: unknown name %q", attr("name"))
		}
		b := xmldoc.NewBuilder("resp", "keyBinding")
		b.Attrib("name", attr("name"))
		b.Attrib("key", hex.EncodeToString(k))
		return &wsa.Envelope{Operation: env.Operation, Body: b.Freeze()}, nil
	case "revoke_key":
		if err := h.Service.Revoke(env.Sender, attr("name")); err != nil {
			return nil, err
		}
		return ok(env.Operation, "revoked"), nil
	case "validate_key":
		data, err1 := hex.DecodeString(attr("data"))
		sig, err2 := hex.DecodeString(attr("sig"))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("keymgmt: bad hex encoding")
		}
		status := h.Service.Validate(attr("name"), data, sig)
		return ok(env.Operation, string(status)), nil
	}
	return nil, fmt.Errorf("keymgmt: unknown operation %q", env.Operation)
}

func ok(op, status string) *wsa.Envelope {
	b := xmldoc.NewBuilder("resp", "result")
	b.Attrib("status", status)
	return &wsa.Envelope{Operation: op, Body: b.Freeze()}
}
