package keymgmt

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Mint-key management for the stateless auth-token fast path
// (internal/authtoken). The keyring lives here, next to the XKMS-style
// key service, because it is the same concern the paper assigns to key
// management as a web service: keys have a lifecycle (issue, locate,
// revoke) that is policy, not cryptography.
//
// A MintKeyring holds the epoch-stamped Ed25519 mint keys of one node.
// Exactly one epoch is current and signs; a bounded window of past
// epochs stays verifiable so rotation does not instantly strand every
// outstanding token, and anything older is gone — rotation past the
// window is the revocation story for leaked mint keys. The verify half
// (epoch → public key) exports as a compact JSON set that replication
// ships to followers, where a PublicKeySet installs it; generations
// order exports so a stale set never overwrites a newer one.

// MintKeyring is one node's epoch-stamped mint keys. It implements both
// authtoken interfaces: SigningKeys (the current epoch signs new tokens)
// and VerifyKeys (the retained epochs verify outstanding ones).
type MintKeyring struct {
	mu    sync.Mutex
	epoch uint32                       // seclint:guardedby mu
	priv  ed25519.PrivateKey           // seclint:guardedby mu
	pubs  map[uint32]ed25519.PublicKey // seclint:guardedby mu
	keep  int                          // seclint:guardedby mu
	gen   uint64                       // seclint:guardedby mu
}

// NewMintKeyring generates epoch 1 and retains keep epochs of verify
// keys (minimum 1 — the current epoch is always verifiable).
func NewMintKeyring(keep int) (*MintKeyring, error) {
	if keep < 1 {
		keep = 1
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("keymgmt: generate mint key: %w", err)
	}
	k := &MintKeyring{keep: keep}
	k.mu.Lock()
	k.epoch, k.priv, k.gen = 1, priv, 1
	k.pubs = map[uint32]ed25519.PublicKey{1: pub}
	k.mu.Unlock()
	return k, nil
}

// SigningKey returns the current epoch and its private key
// (authtoken.SigningKeys).
func (k *MintKeyring) SigningKey() (uint32, ed25519.PrivateKey) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.epoch, k.priv
}

// VerifyKey resolves an epoch to its public key if it is still within
// the retention window (authtoken.VerifyKeys).
func (k *MintKeyring) VerifyKey(epoch uint32) (ed25519.PublicKey, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	pub, ok := k.pubs[epoch]
	return pub, ok
}

// Rotate generates the next epoch, makes it current, and drops verify
// keys older than the retention window. Tokens minted under a dropped
// epoch fail verification everywhere the new set ships — that is the
// point.
func (k *MintKeyring) Rotate() (uint32, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return 0, fmt.Errorf("keymgmt: rotate mint key: %w", err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.epoch++
	k.priv = priv
	k.pubs[k.epoch] = pub
	for e := range k.pubs {
		if e+uint32(k.keep) <= k.epoch {
			delete(k.pubs, e)
		}
	}
	k.gen++
	return k.epoch, nil
}

// Generation counts rotations; replication ships a fresh export whenever
// it observes the generation moved.
func (k *MintKeyring) Generation() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.gen
}

// mintKeyExport is the wire form of the verify-key set.
type mintKeyExport struct {
	Gen    uint64            `json:"gen"`
	Epoch  uint32            `json:"epoch"`
	Epochs map[string]string `json:"epochs"` // epoch (decimal) → public key (hex)
}

// ExportPublic renders the retained verify keys plus the generation that
// produced them, for shipping to replicas.
// seclint:sanitizer
func (k *MintKeyring) ExportPublic() ([]byte, uint64) {
	k.mu.Lock()
	exp := mintKeyExport{Gen: k.gen, Epoch: k.epoch, Epochs: make(map[string]string, len(k.pubs))}
	for e, pub := range k.pubs {
		exp.Epochs[strconv.FormatUint(uint64(e), 10)] = hex.EncodeToString(pub)
	}
	k.mu.Unlock()
	raw, err := json.Marshal(exp)
	if err != nil {
		// Marshalling a map of strings cannot fail; keep the signature
		// clean for the replication hook.
		return nil, 0
	}
	return raw, exp.Gen
}

// PublicKeySet is the follower-side verify-key set: installed from a
// leader's export, swapped atomically, consulted lock-cheap on every
// token verification (authtoken.VerifyKeys).
type PublicKeySet struct {
	mu    sync.Mutex
	epoch uint32                       // seclint:guardedby mu
	gen   uint64                       // seclint:guardedby mu
	pubs  map[uint32]ed25519.PublicKey // seclint:guardedby mu
}

// NewPublicKeySet returns an empty set; every verification fails
// ErrUnknownEpoch until the first Install.
func NewPublicKeySet() *PublicKeySet { return &PublicKeySet{} }

// Install replaces the set with a decoded export. The caller sequences
// installs (replication delivers them in stream order from the current
// leader); Install itself only refuses data it cannot parse.
func (p *PublicKeySet) Install(data []byte) error {
	var exp mintKeyExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return fmt.Errorf("keymgmt: decode mint key set: %w", err)
	}
	pubs := make(map[uint32]ed25519.PublicKey, len(exp.Epochs))
	for es, ks := range exp.Epochs {
		e, err := strconv.ParseUint(es, 10, 32)
		if err != nil {
			return fmt.Errorf("keymgmt: mint key set epoch %q: %w", es, err)
		}
		raw, err := hex.DecodeString(ks)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			return fmt.Errorf("keymgmt: mint key set epoch %s: bad public key", es)
		}
		pubs[uint32(e)] = ed25519.PublicKey(raw)
	}
	p.mu.Lock()
	p.epoch, p.gen, p.pubs = exp.Epoch, exp.Gen, pubs
	p.mu.Unlock()
	return nil
}

// VerifyKey resolves an epoch to its public key (authtoken.VerifyKeys).
func (p *PublicKeySet) VerifyKey(epoch uint32) (ed25519.PublicKey, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pub, ok := p.pubs[epoch]
	return pub, ok
}

// Snapshot reports the installed generation, current epoch and the
// retained epochs in ascending order (for /cluster style introspection).
func (p *PublicKeySet) Snapshot() (gen uint64, epoch uint32, epochs []uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := range p.pubs {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return p.gen, p.epoch, epochs
}
