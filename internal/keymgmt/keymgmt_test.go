package keymgmt

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webdbsec/internal/wsa"
	"webdbsec/internal/wsig"
	"webdbsec/internal/xmldoc"
)

func keyPair(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// signFor produces a signature in the wsig scheme (over sha256 of data).
func signFor(priv ed25519.PrivateKey, data []byte) []byte {
	d := sha256.Sum256(data)
	return ed25519.Sign(priv, d[:])
}

func TestRegisterLocateValidate(t *testing.T) {
	s := NewService()
	pub, priv := keyPair(t)
	if err := s.Register("acme", "acme-provider", pub); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Locate("acme-provider")
	if !ok || !bytes.Equal(got, pub) {
		t.Fatal("locate mismatch")
	}
	data := []byte("signed payload")
	sig := signFor(priv, data)
	if st := s.Validate("acme-provider", data, sig); st != StatusValid {
		t.Errorf("status = %v", st)
	}
	if st := s.Validate("acme-provider", []byte("other"), sig); st != StatusUnknown {
		t.Errorf("forged status = %v", st)
	}
	if st := s.Validate("ghost", data, sig); st != StatusUnknown {
		t.Errorf("unknown name status = %v", st)
	}
}

func TestOwnershipAndRotation(t *testing.T) {
	s := NewService()
	pub1, _ := keyPair(t)
	pub2, _ := keyPair(t)
	if err := s.Register("acme", "prov", pub1); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("mallory", "prov", pub2); err == nil {
		t.Error("name takeover accepted")
	}
	// Rotation by owner is fine.
	if err := s.Register("acme", "prov", pub2); err != nil {
		t.Errorf("owner rotation rejected: %v", err)
	}
	got, _ := s.Locate("prov")
	if !bytes.Equal(got, pub2) {
		t.Error("rotation did not take effect")
	}
}

func TestRevocation(t *testing.T) {
	s := NewService()
	pub, priv := keyPair(t)
	s.Register("acme", "prov", pub)
	if err := s.Revoke("mallory", "prov"); err == nil {
		t.Error("non-owner revoke accepted")
	}
	if err := s.Revoke("acme", "prov"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Locate("prov"); ok {
		t.Error("revoked key still located")
	}
	// Signatures under the revoked key validate as REVOKED, not valid and
	// not unknown.
	data := []byte("old message")
	if st := s.Validate("prov", data, signFor(priv, data)); st != StatusRevoked {
		t.Errorf("status = %v, want revoked", st)
	}
	// The same key cannot be re-registered for the name.
	if err := s.Register("acme", "prov", pub); err == nil {
		t.Error("revoked key re-registered")
	}
	// A fresh key can.
	pub2, _ := keyPair(t)
	if err := s.Register("acme", "prov", pub2); err != nil {
		t.Errorf("fresh key after revocation rejected: %v", err)
	}
	if err := s.Revoke("acme", "ghost"); err == nil {
		t.Error("revoking unowned name accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewService()
	pub, _ := keyPair(t)
	if err := s.Register("", "n", pub); err == nil {
		t.Error("empty owner accepted")
	}
	if err := s.Register("o", "", pub); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Register("o", "n", []byte{1, 2}); err == nil {
		t.Error("short key accepted")
	}
}

func TestDirectoryHandoff(t *testing.T) {
	s := NewService()
	signer, err := wsig.NewSigner("prov")
	if err != nil {
		t.Fatal(err)
	}
	s.Register("acme", "prov", signer.PublicKey())
	dir := s.Directory("prov")
	sig := signer.SignBytes([]byte("x"))
	if !dir.Verify([]byte("x"), sig) {
		t.Error("directory handoff broken")
	}
	all := s.Directory()
	if !all.Verify([]byte("x"), sig) {
		t.Error("full directory handoff broken")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "prov" {
		t.Errorf("names = %v", got)
	}
}

func TestHTTPBinding(t *testing.T) {
	svc := NewService()
	ts := httptest.NewServer(&Handler{Service: svc})
	defer ts.Close()

	pub, priv := keyPair(t)
	call := func(sender, op string, attrs map[string]string) (*wsa.Envelope, error) {
		b := xmldoc.NewBuilder("req", "request")
		for k, v := range attrs {
			b.Attrib(k, v)
		}
		c := &wsa.Client{Endpoint: ts.URL, Sender: sender}
		return c.Call(context.Background(), op, b.Freeze())
	}
	// Register over HTTP.
	if _, err := call("acme", "register_key", map[string]string{
		"name": "prov", "key": hex.EncodeToString(pub),
	}); err != nil {
		t.Fatal(err)
	}
	// Locate.
	env, err := call("anyone", "locate_key", map[string]string{"name": "prov"})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := env.Body.Root.Attr("key")
	if k != hex.EncodeToString(pub) {
		t.Error("located key mismatch")
	}
	// Validate.
	data := []byte("payload")
	env, err = call("anyone", "validate_key", map[string]string{
		"name": "prov",
		"data": hex.EncodeToString(data),
		"sig":  hex.EncodeToString(signFor(priv, data)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := env.Body.Root.Attr("status"); st != "valid" {
		t.Errorf("status = %q", st)
	}
	// Revoke by non-owner faults.
	if _, err := call("mallory", "revoke_key", map[string]string{"name": "prov"}); err == nil {
		t.Error("non-owner revoke over HTTP accepted")
	}
	// Owner revoke works; locate then faults.
	if _, err := call("acme", "revoke_key", map[string]string{"name": "prov"}); err != nil {
		t.Fatal(err)
	}
	if _, err := call("anyone", "locate_key", map[string]string{"name": "prov"}); err == nil {
		t.Error("revoked key located over HTTP")
	}
	// Unknown operation faults.
	if _, err := call("x", "bogus", nil); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("err = %v", err)
	}
	// GET rejected.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}
