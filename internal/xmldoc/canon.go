package xmldoc

import (
	"strings"
)

// Canonical serialization. Signing and Merkle hashing (internal/wsig,
// internal/merkle) need a byte representation that is identical for
// structurally identical documents, regardless of how they were built or
// which attribute order the producer used. Freeze already sorts attributes;
// Canonical additionally escapes consistently and emits no insignificant
// whitespace, in the spirit of W3C Canonical XML (the paper points at the
// W3C XML-Signature work for exactly this purpose).

// Canonical returns the canonical serialization of the document.
func (d *Document) Canonical() string {
	var b strings.Builder
	if d.Root != nil {
		canonNode(&b, d.Root)
	}
	return b.String()
}

// CanonicalSubtree returns the canonical serialization of the subtree rooted
// at n. For attribute nodes it serializes name="value"; for text nodes the
// escaped text.
func CanonicalSubtree(n *Node) string {
	var b strings.Builder
	canonNode(&b, n)
	return b.String()
}

func canonNode(b *strings.Builder, n *Node) {
	switch n.Kind {
	case KindText:
		b.WriteString(escapeText(n.Value))
	case KindAttr:
		b.WriteString(n.Name)
		b.WriteString(`="`)
		b.WriteString(escapeAttr(n.Value))
		b.WriteString(`"`)
	case KindElement:
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Value))
			b.WriteString(`"`)
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			canonNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
