package xmldoc

import (
	"reflect"
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openStore(t *testing.T, fs wal.FS) *Store {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := OpenStore(w)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func persistTestDoc(name string, seed int) *Document {
	b := NewBuilder(name, "ward")
	for i := 0; i < 3; i++ {
		b.Begin("patient")
		b.Attrib("bed", string(rune('a'+i+seed)))
		b.Element("name", name)
		b.End()
	}
	return b.Freeze()
}

// assertStoreEqual compares stores by canonical document content, set
// membership and both generation counters.
func assertStoreEqual(t *testing.T, a, b *Store, desc string) {
	t.Helper()
	if a.Generation() != b.Generation() {
		t.Fatalf("%s: generation %d vs %d", desc, a.Generation(), b.Generation())
	}
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("%s: names %v vs %v", desc, a.Names(), b.Names())
	}
	for _, name := range a.Names() {
		da, _ := a.Get(name)
		db, _ := b.Get(name)
		if da.Canonical() != db.Canonical() {
			t.Fatalf("%s: document %s differs", desc, name)
		}
		if a.DocGeneration(name) != b.DocGeneration(name) {
			t.Fatalf("%s: doc generation of %s: %d vs %d", desc, name,
				a.DocGeneration(name), b.DocGeneration(name))
		}
		if !reflect.DeepEqual(a.SetsOf(name), b.SetsOf(name)) {
			t.Fatalf("%s: sets of %s: %v vs %v", desc, name, a.SetsOf(name), b.SetsOf(name))
		}
	}
}

func TestStoreJournalRoundTrip(t *testing.T) {
	fs := faultinject.NewMemFS()
	s := openStore(t, fs)
	s.Put(persistTestDoc("a.xml", 0))
	s.Put(persistTestDoc("b.xml", 1))
	s.AddToSet("wards", "a.xml")
	s.AddToSet("wards", "b.xml")
	s.Put(persistTestDoc("a.xml", 5)) // overwrite: bumps a.xml's generation
	s.Put(persistTestDoc("doomed.xml", 2))
	s.Remove("doomed.xml")
	if err := s.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	s2 := openStore(t, fs)
	assertStoreEqual(t, s, s2, "journal replay")
	if !s2.SetContains("wards", "a.xml") || !s2.SetContains("wards", "b.xml") {
		t.Fatal("set membership lost")
	}
	if _, ok := s2.Get("doomed.xml"); ok {
		t.Fatal("removed document resurrected")
	}
}

func TestStoreCheckpointAndTail(t *testing.T) {
	fs := faultinject.NewMemFS()
	s := openStore(t, fs)
	s.Put(persistTestDoc("a.xml", 0))
	s.AddToSet("wards", "a.xml")
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.Put(persistTestDoc("b.xml", 1))
	s.Remove("a.xml")

	s2 := openStore(t, fs)
	assertStoreEqual(t, s, s2, "snapshot+tail")
	if _, ok := s2.Get("a.xml"); ok {
		t.Fatal("post-checkpoint remove lost")
	}
	// A second checkpoint from the recovered store also round-trips.
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after recovery: %v", err)
	}
	s3 := openStore(t, fs)
	assertStoreEqual(t, s2, s3, "checkpoint after recovery")
}
