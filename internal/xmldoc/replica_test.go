package xmldoc

import (
	"testing"

	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openStoreWAL(t *testing.T, fs wal.FS) (*Store, *wal.WAL) {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := OpenStore(w)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s, w
}

func mustParse(t *testing.T, name, xml string) *Document {
	t.Helper()
	d, err := ParseString(name, xml)
	if err != nil {
		t.Fatalf("ParseString(%s): %v", name, err)
	}
	return d
}

// TestApplyReplicated streams a leader store's journal into a replica and
// checks the replica materializes the same documents, sets and — crucially
// for the decision cache — the same generation counters.
func TestApplyReplicated(t *testing.T) {
	lfs := faultinject.NewMemFS()
	leader, lw := openStoreWAL(t, lfs)
	leader.Put(mustParse(t, "a.xml", "<patient><name>Ann</name></patient>"))
	leader.Put(mustParse(t, "b.xml", "<patient><name>Bob</name></patient>"))
	leader.AddToSet("ward", "a.xml")
	leader.AddToSet("ward", "b.xml")
	leader.Remove("b.xml")
	leader.Put(mustParse(t, "a.xml", "<patient><name>Anna</name></patient>"))
	if err := leader.Err(); err != nil {
		t.Fatalf("leader journal: %v", err)
	}

	replica := NewStore()
	c, err := lw.OpenCursor(0)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	for {
		rec, ok, err := c.Next()
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		if !ok {
			break
		}
		if err := replica.ApplyReplicated(rec.LSN, rec.Payload); err != nil {
			t.Fatalf("ApplyReplicated lsn %d: %v", rec.LSN, err)
		}
	}

	if replica.Generation() != leader.Generation() {
		t.Fatalf("store generation %d, leader %d", replica.Generation(), leader.Generation())
	}
	if replica.DocGeneration("a.xml") != leader.DocGeneration("a.xml") {
		t.Fatalf("doc generation mismatch for a.xml")
	}
	d, ok := replica.Get("a.xml")
	if !ok {
		t.Fatal("a.xml missing on replica")
	}
	ld, _ := leader.Get("a.xml")
	if d.Canonical() != ld.Canonical() {
		t.Fatalf("replica content %q, leader %q", d.Canonical(), ld.Canonical())
	}
	if _, ok := replica.Get("b.xml"); ok {
		t.Fatal("removed document still on replica")
	}
	if !replica.SetContains("ward", "a.xml") || replica.SetContains("ward", "b.xml") {
		t.Fatalf("replica set membership wrong: ward=%v", replica.SetMembers("ward"))
	}
}

func TestRestoreReplicated(t *testing.T) {
	lfs := faultinject.NewMemFS()
	leader, lw := openStoreWAL(t, lfs)
	leader.Put(mustParse(t, "a.xml", "<r><v>1</v></r>"))
	leader.AddToSet("s", "a.xml")
	if err := leader.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap, lsn, ok := lw.Snapshot()
	if !ok {
		t.Fatal("no snapshot after checkpoint")
	}

	replica := NewStore()
	replica.Put(mustParse(t, "stale.xml", "<x/>"))
	if err := replica.RestoreReplicated(lsn, snap); err != nil {
		t.Fatalf("RestoreReplicated: %v", err)
	}
	if _, ok := replica.Get("stale.xml"); ok {
		t.Fatal("stale document survived resync")
	}
	if _, ok := replica.Get("a.xml"); !ok {
		t.Fatal("snapshot document missing after resync")
	}
	if !replica.SetContains("s", "a.xml") {
		t.Fatal("set membership missing after resync")
	}
	if replica.Generation() != leader.Generation() {
		t.Fatalf("generation %d, leader %d", replica.Generation(), leader.Generation())
	}
}
