package xmldoc

import (
	"encoding/json"
	"fmt"
)

// Replica-side replay for the document store: the replication layer ships
// the leader's journal entries (the same storeJournal frames persist.go
// writes) and a follower applies them here, one at a time, without
// journaling again — the replication layer owns the follower's local WAL.
// Generation counters travel inside every entry, so a generation-keyed
// decision cache on the replica observes the same (name, generation) →
// state mapping as on the leader.

// ApplyReplicated applies one shipped journal entry. Entries must arrive
// in the order the leader journaled them.
func (s *Store) ApplyReplicated(lsn uint64, payload []byte) error {
	var rec storeJournal
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("xmldoc: decode replicated entry at lsn %d: %w", lsn, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch rec.Op {
	case "put":
		d, err := ParseString(rec.Doc, rec.XML)
		if err != nil {
			return fmt.Errorf("xmldoc: replicate put %s: %w", rec.Doc, err)
		}
		s.docs[rec.Doc] = d
	case "remove":
		delete(s.docs, rec.Doc)
		for _, set := range s.sets {
			delete(set, rec.Doc)
		}
		delete(s.memberOf, rec.Doc)
	case "addset":
		s.linkSetLocked(rec.Set, rec.Doc)
	default:
		return fmt.Errorf("xmldoc: unknown replicated op %q at lsn %d", rec.Op, lsn)
	}
	s.docGens[rec.Doc] = rec.DocGen
	s.gen = rec.Gen
	return nil
}

// RestoreReplicated replaces the store's contents from a leader checkpoint
// snapshot (full resync).
func (s *Store) RestoreReplicated(lsn uint64, snapshot []byte) error {
	var snap storeSnap
	// An empty snapshot resets to genesis (a never-checkpointed leader
	// resyncs divergent replicas by wiping and re-streaming its log).
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &snap); err != nil {
			return fmt.Errorf("xmldoc: decode replicated snapshot: %w", err)
		}
	}
	docs := make(map[string]*Document, len(snap.Docs))
	for name, xml := range snap.Docs {
		d, err := ParseString(name, xml)
		if err != nil {
			return fmt.Errorf("xmldoc: restore %s: %w", name, err)
		}
		docs[name] = d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs = docs
	s.sets = make(map[string]map[string]bool)
	s.memberOf = make(map[string]map[string]bool)
	s.docGens = make(map[string]uint64, len(snap.DocGens))
	for set, names := range snap.Sets {
		for _, doc := range names {
			s.linkSetLocked(set, doc)
		}
	}
	for name, g := range snap.DocGens {
		s.docGens[name] = g
	}
	s.gen = snap.Gen
	return nil
}
