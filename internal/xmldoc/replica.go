package xmldoc

import (
	"encoding/json"
	"fmt"
)

// Replica-side replay for the document store: the replication layer ships
// the leader's journal entries (the same storeJournal frames persist.go
// writes) and a follower applies them here, one at a time, without
// journaling again — the replication layer owns the follower's local WAL.
// Generation counters travel inside every entry, so a generation-keyed
// decision cache on the replica observes the same (name, generation) →
// state mapping as on the leader.

// ApplyReplicated applies one shipped journal entry. Entries must arrive
// in the order the leader journaled them. Each entry installs a new store
// version stamped with the shipped LSN, so the replica's version sequence
// mirrors the leader's and replica readers pin snapshots exactly as
// leader readers do.
func (s *Store) ApplyReplicated(lsn uint64, payload []byte) error {
	var rec storeJournal
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("xmldoc: decode replicated entry at lsn %d: %w", lsn, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current.Load().clone()
	switch rec.Op {
	case "put":
		d, err := ParseString(rec.Doc, rec.XML)
		if err != nil {
			return fmt.Errorf("xmldoc: replicate put %s: %w", rec.Doc, err)
		}
		v.docs[rec.Doc] = d
	case "remove":
		delete(v.docs, rec.Doc)
		v.unlinkDoc(rec.Doc)
	case "addset":
		v.link(rec.Set, rec.Doc)
	default:
		return fmt.Errorf("xmldoc: unknown replicated op %q at lsn %d", rec.Op, lsn)
	}
	v.docGens[rec.Doc] = rec.DocGen
	v.gen = rec.Gen
	s.installLocked(int64(lsn), v)
	return nil
}

// RestoreReplicated replaces the store's contents from a leader checkpoint
// snapshot (full resync). The replacement is one version install: readers
// holding pinned snapshots keep their pre-resync view until they release.
func (s *Store) RestoreReplicated(lsn uint64, snapshot []byte) error {
	var snap storeSnap
	// An empty snapshot resets to genesis (a never-checkpointed leader
	// resyncs divergent replicas by wiping and re-streaming its log).
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &snap); err != nil {
			return fmt.Errorf("xmldoc: decode replicated snapshot: %w", err)
		}
	}
	v := newStoreVersion()
	if err := stageSnap(v, &snap); err != nil {
		return err
	}
	v.lsn = int64(lsn)
	s.mu.Lock()
	defer s.mu.Unlock()
	// A resync may rewind the LSN (divergence repair), so bypass
	// installLocked's monotone stamp and publish v as-is.
	cur := s.current.Load()
	s.current.Store(v)
	s.retained = append(s.retained, cur)
	s.vstats.Installed++
	s.sweepLocked()
	return nil
}
