package xmldoc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const hospitalXML = `
<hospital name="St. Mary">
  <patient id="p1" ward="3">
    <name>Alice</name>
    <ssn>111-22-3333</ssn>
    <diagnosis severity="high">flu</diagnosis>
  </patient>
  <patient id="p2" ward="5">
    <name>Bob</name>
    <ssn>444-55-6666</ssn>
    <diagnosis severity="low">cold</diagnosis>
    <referral idref="p1"/>
  </patient>
  <policy>public</policy>
</hospital>`

func mustDoc(t testing.TB) *Document {
	t.Helper()
	d, err := ParseString("hospital.xml", hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestParseBasicStructure(t *testing.T) {
	d := mustDoc(t)
	if d.Root.Name != "hospital" {
		t.Fatalf("root = %q, want hospital", d.Root.Name)
	}
	if got := len(d.Root.ElementChildren()); got != 3 {
		t.Fatalf("root element children = %d, want 3", got)
	}
	name, ok := d.Root.Attr("name")
	if !ok || name != "St. Mary" {
		t.Fatalf("root name attr = %q, %v", name, ok)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("x", ""); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ParseString("x", "<a><b></a>"); err == nil {
		t.Error("mismatched tags: want error")
	}
	if _, err := ParseString("x", "just text"); err == nil {
		t.Error("no root element: want error")
	}
}

func TestDenseIDsAreDocumentOrder(t *testing.T) {
	d := mustDoc(t)
	prev := -1
	d.Walk(func(n *Node) bool {
		if n.ID() <= prev {
			t.Fatalf("node ids not strictly increasing: %d after %d", n.ID(), prev)
		}
		prev = n.ID()
		return true
	})
	if d.Root.ID() != 0 {
		t.Errorf("root id = %d, want 0", d.Root.ID())
	}
	if d.NumNodes() != prev+1 {
		t.Errorf("NumNodes = %d, want %d", d.NumNodes(), prev+1)
	}
}

func TestIDREFLinks(t *testing.T) {
	d := mustDoc(t)
	if len(d.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(d.Links))
	}
	l := d.Links[0]
	if l.From.Name != "referral" {
		t.Errorf("link from %q, want referral", l.From.Name)
	}
	if v, _ := l.To.Attr("id"); v != "p1" {
		t.Errorf("link to id=%q, want p1", v)
	}
}

func TestElementByXMLID(t *testing.T) {
	d := mustDoc(t)
	n, ok := d.ElementByXMLID("p2")
	if !ok {
		t.Fatal("p2 not indexed")
	}
	if n.Child("name").Text() != "Bob" {
		t.Errorf("p2 name = %q, want Bob", n.Child("name").Text())
	}
	if _, ok := d.ElementByXMLID("nope"); ok {
		t.Error("nonexistent id found")
	}
}

func TestTextAndPath(t *testing.T) {
	d := mustDoc(t)
	p := MustCompilePath("/hospital/patient[@ward='3']/name")
	ns := p.Select(d)
	if len(ns) != 1 {
		t.Fatalf("matches = %d, want 1", len(ns))
	}
	if ns[0].Text() != "Alice" {
		t.Errorf("text = %q, want Alice", ns[0].Text())
	}
	if ns[0].Path() != "/hospital/patient/name" {
		t.Errorf("path = %q", ns[0].Path())
	}
}

func TestPathSelection(t *testing.T) {
	d := mustDoc(t)
	cases := []struct {
		expr string
		want int
	}{
		{"/", 1},
		{"/hospital", 1},
		{"/hospital/patient", 2},
		{"/hospital/*", 3},
		{"//diagnosis", 2},
		{"//@severity", 2},
		{"/hospital/patient/@ssn", 0}, // ssn is an element, not attribute
		{"/hospital/patient/ssn", 2},
		{"/hospital/patient[@ward='5']", 1},
		{"/hospital/patient[name='Alice']", 1},
		{"/hospital/patient[name='Carol']", 0},
		{"//patient/@id", 2},
		{"/hospital/policy/text()", 1},
		{"//nope", 0},
		{"/nope", 0},
	}
	for _, c := range cases {
		p, err := CompilePath(c.expr)
		if err != nil {
			t.Fatalf("compile %q: %v", c.expr, err)
		}
		if got := len(p.Select(d)); got != c.want {
			t.Errorf("%q: matches = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestPathCompileErrors(t *testing.T) {
	for _, expr := range []string{
		"relative/path",
		"/a/",
		"/a[b]",
		"/a[@x=unquoted]",
		"/a[@x='open]",
		"/a[=''] ",
		"//",
	} {
		if _, err := CompilePath(expr); err == nil {
			t.Errorf("compile %q: want error", expr)
		}
	}
}

func TestDescendantAxisMidPath(t *testing.T) {
	d := MustParseString("x", `<a><b><c><d v="1"/></c></b><d v="2"/></a>`)
	p := MustCompilePath("/a/b//d")
	ns := p.Select(d)
	if len(ns) != 1 {
		t.Fatalf("matches = %d, want 1", len(ns))
	}
	if v, _ := ns[0].Attr("v"); v != "1" {
		t.Errorf("matched d v=%q, want 1", v)
	}
}

func TestPrune(t *testing.T) {
	d := mustDoc(t)
	// Keep only names: ancestors come along, siblings don't.
	keepNames := map[int]bool{}
	for _, n := range MustCompilePath("//name").Select(d) {
		keepNames[n.ID()] = true
		for _, c := range n.Children {
			keepNames[c.ID()] = true
		}
	}
	v := d.Prune(func(n *Node) bool { return keepNames[n.ID()] })
	if v == nil {
		t.Fatal("pruned view is nil")
	}
	if got := len(MustCompilePath("//name").Select(v)); got != 2 {
		t.Errorf("names in view = %d, want 2", got)
	}
	if got := len(MustCompilePath("//ssn").Select(v)); got != 0 {
		t.Errorf("ssn leaked into view: %d", got)
	}
	if got := len(MustCompilePath("//@ward").Select(v)); got != 0 {
		t.Errorf("ward attr leaked into view: %d", got)
	}
	// Original untouched.
	if got := len(MustCompilePath("//ssn").Select(d)); got != 2 {
		t.Errorf("original mutated: ssn = %d", got)
	}
}

func TestPruneNothingKept(t *testing.T) {
	d := mustDoc(t)
	if v := d.Prune(func(*Node) bool { return false }); v != nil {
		t.Error("prune(false) should be nil")
	}
}

func TestPruneEverythingKept(t *testing.T) {
	d := mustDoc(t)
	v := d.Prune(func(*Node) bool { return true })
	if v.Canonical() != d.Canonical() {
		t.Error("prune(true) differs from original")
	}
	if v.NumNodes() != d.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", v.NumNodes(), d.NumNodes())
	}
}

func TestClonePreservesStructure(t *testing.T) {
	d := mustDoc(t)
	c := d.Clone()
	if c.Canonical() != d.Canonical() {
		t.Error("clone canonical form differs")
	}
	if c.NumNodes() != d.NumNodes() {
		t.Error("clone node count differs")
	}
	if len(c.Links) != len(d.Links) {
		t.Error("clone link count differs")
	}
	// Mutating the clone must not touch the original.
	c.Root.Attrs[0].Value = "changed"
	if d.Root.Attrs[0].Value == "changed" {
		t.Error("clone shares nodes with original")
	}
}

func TestCanonicalEscaping(t *testing.T) {
	b := NewBuilder("t", "r")
	b.Attrib("a", `x<&"y`)
	b.Text("1 < 2 & 3 > 2")
	d := b.Freeze()
	want := `<r a="x&lt;&amp;&quot;y">1 &lt; 2 &amp; 3 &gt; 2</r>`
	if got := d.Canonical(); got != want {
		t.Errorf("canonical = %q, want %q", got, want)
	}
}

func TestCanonicalAttributeOrderIndependence(t *testing.T) {
	d1 := MustParseString("a", `<r b="2" a="1"/>`)
	d2 := MustParseString("a", `<r a="1" b="2"/>`)
	if d1.Canonical() != d2.Canonical() {
		t.Error("canonical form depends on attribute order")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	d := mustDoc(t)
	d2, err := ParseString(d.Name, d.Canonical())
	if err != nil {
		t.Fatalf("reparse canonical: %v", err)
	}
	if d2.Canonical() != d.Canonical() {
		t.Error("canonical form not a fixed point of parse")
	}
}

func TestBuilderShape(t *testing.T) {
	b := NewBuilder("built", "library")
	b.Begin("book").Attrib("isbn", "1").Element("title", "Go").End()
	b.Begin("book").Attrib("isbn", "2").Element("title", "Databases").End()
	d := b.Freeze()
	if got := len(MustCompilePath("/library/book").Select(d)); got != 2 {
		t.Fatalf("books = %d, want 2", got)
	}
	if got := MustCompilePath("/library/book[@isbn='2']/title").Select(d)[0].Text(); got != "Databases" {
		t.Errorf("title = %q", got)
	}
}

func TestAncestorDepth(t *testing.T) {
	d := mustDoc(t)
	name := MustCompilePath("//name").Select(d)[0]
	if name.Depth() != 2 {
		t.Errorf("depth = %d, want 2", name.Depth())
	}
	if !d.Root.IsAncestorOf(name) {
		t.Error("root should be ancestor of name")
	}
	if name.IsAncestorOf(d.Root) {
		t.Error("name should not be ancestor of root")
	}
	if name.IsAncestorOf(name) {
		t.Error("node should not be its own ancestor")
	}
}

func TestStoreSets(t *testing.T) {
	s := NewStore()
	d := mustDoc(t)
	s.Put(d)
	s.AddToSet("medical", d.Name)
	s.AddToSet("medical", "other.xml")
	if !s.SetContains("medical", d.Name) {
		t.Error("set membership lost")
	}
	if got := s.SetMembers("medical"); len(got) != 2 || got[0] != "hospital.xml" {
		t.Errorf("members = %v", got)
	}
	if _, ok := s.Get("hospital.xml"); !ok {
		t.Error("document not retrievable")
	}
	s.Remove(d.Name)
	if s.SetContains("medical", d.Name) {
		t.Error("removed doc still in set")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d, want 0", s.Len())
	}
}

// randomDoc builds a pseudo-random document from a seed; used by the
// property tests below.
func randomDoc(seed int64, maxNodes int) *Document {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand", "root")
	names := []string{"a", "b", "c", "d", "e"}
	depth := 0
	n := 1 + rng.Intn(maxNodes)
	for i := 0; i < n; i++ {
		switch op := rng.Intn(5); {
		case op == 0 && depth > 0:
			b.End()
			depth--
		case op <= 2:
			b.Begin(names[rng.Intn(len(names))])
			depth++
			if rng.Intn(2) == 0 {
				b.Attrib(names[rng.Intn(len(names))], fmt.Sprintf("v%d", rng.Intn(10)))
			}
		case op == 3:
			b.Text(fmt.Sprintf("t%d", rng.Intn(100)))
		default:
			b.Attrib("k"+names[rng.Intn(len(names))], fmt.Sprintf("v%d", rng.Intn(10)))
		}
	}
	return b.Freeze()
}

func TestQuickCanonicalReparseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 60)
		d2, err := ParseString("rand", d.Canonical())
		if err != nil {
			return false
		}
		return d2.Canonical() == d.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPruneSubsetInvariant(t *testing.T) {
	// Any pruned view contains only nodes whose paths exist in the source,
	// and prune(true) is the identity.
	f := func(seed int64) bool {
		d := randomDoc(seed, 80)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		v := d.Prune(func(n *Node) bool { return rng.Intn(3) == 0 })
		if v == nil {
			return true
		}
		if v.NumNodes() > d.NumNodes() {
			return false
		}
		srcPaths := map[string]int{}
		d.Walk(func(n *Node) bool { srcPaths[pathKey(n)]++; return true })
		ok := true
		v.Walk(func(n *Node) bool {
			if srcPaths[pathKey(n)] == 0 {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func pathKey(n *Node) string {
	switch n.Kind {
	case KindAttr:
		return n.Path()
	case KindText:
		return n.Path() + "#text:" + n.Value
	default:
		return n.Path()
	}
}

func TestQuickCloneEqualsOriginal(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 50)
		c := d.Clone()
		return c.Canonical() == d.Canonical() && c.NumNodes() == d.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPathCompilerNeverPanics(t *testing.T) {
	// The path compiler fronts policy administration and query APIs; it
	// must reject arbitrary byte soup without panicking.
	d := MustParseString("x", `<a><b c="1">t</b></a>`)
	f := func(expr string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("compiler panicked on %q: %v", expr, r)
				ok = false
			}
		}()
		for _, e := range []string{expr, "/" + expr, "//" + expr, "/a/" + expr + "/b"} {
			if p, err := CompilePath(e); err == nil {
				p.Select(d) // selecting must not panic either
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("XML parser panicked: %v", r)
				ok = false
			}
		}()
		ParseString("fuzz", src)
		ParseString("fuzz", "<r>"+src+"</r>")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	d := mustDoc(t)
	var visited []string
	d.Walk(func(n *Node) bool {
		if n.Kind == KindElement {
			visited = append(visited, n.Name)
		}
		return n.Name != "patient" // don't descend into patients
	})
	joined := strings.Join(visited, ",")
	if strings.Contains(joined, "name") || strings.Contains(joined, "ssn") {
		t.Errorf("walk descended into skipped subtree: %s", joined)
	}
	if !strings.Contains(joined, "policy") {
		t.Errorf("walk missed sibling after skip: %s", joined)
	}
}
