package xmldoc

import "testing"

func genDoc(name string) *Document {
	return NewBuilder(name, "root").Element("leaf", "x").Freeze()
}

func TestStoreGenerations(t *testing.T) {
	s := NewStore()
	if s.Generation() != 0 {
		t.Fatalf("fresh store generation = %d", s.Generation())
	}
	s.Put(genDoc("a.xml"))
	g1 := s.Generation()
	if g1 == 0 {
		t.Fatal("Put did not advance the store generation")
	}
	da1 := s.DocGeneration("a.xml")

	s.Put(genDoc("b.xml"))
	if s.DocGeneration("a.xml") != da1 {
		t.Error("putting b.xml changed a.xml's generation")
	}
	s.Put(genDoc("a.xml"))
	if s.DocGeneration("a.xml") <= da1 {
		t.Error("re-Put did not advance the document generation")
	}
	if s.Generation() <= g1 {
		t.Error("re-Put did not advance the store generation")
	}

	g2 := s.Generation()
	da2 := s.DocGeneration("a.xml")
	s.Remove("a.xml")
	if s.Generation() <= g2 {
		t.Error("Remove did not advance the store generation")
	}
	if s.DocGeneration("a.xml") <= da2 {
		t.Error("Remove did not advance the document generation")
	}
}

func TestStoreSetsOf(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	s.Put(genDoc("b.xml"))
	if got := s.SetsOf("a.xml"); got != nil {
		t.Fatalf("SetsOf before membership = %v, want nil", got)
	}
	s.AddToSet("s2", "a.xml")
	s.AddToSet("s1", "a.xml")
	s.AddToSet("s1", "b.xml")
	got := s.SetsOf("a.xml")
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("SetsOf(a.xml) = %v, want [s1 s2] sorted", got)
	}
	if got := s.SetsOf("b.xml"); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("SetsOf(b.xml) = %v, want [s1]", got)
	}
	// The reverse index must agree with the forward one.
	for _, set := range s.SetsOf("a.xml") {
		if !s.SetContains(set, "a.xml") {
			t.Errorf("SetsOf lists %s but SetContains disagrees", set)
		}
	}
}

func TestAddToSetAdvancesGeneration(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	g := s.Generation()
	s.AddToSet("s1", "a.xml")
	if s.Generation() <= g {
		t.Error("AddToSet did not advance the store generation")
	}
}
