package xmldoc

import "testing"

func genDoc(name string) *Document {
	return NewBuilder(name, "root").Element("leaf", "x").Freeze()
}

func TestStoreGenerations(t *testing.T) {
	s := NewStore()
	if s.Generation() != 0 {
		t.Fatalf("fresh store generation = %d", s.Generation())
	}
	s.Put(genDoc("a.xml"))
	g1 := s.Generation()
	if g1 == 0 {
		t.Fatal("Put did not advance the store generation")
	}
	da1 := s.DocGeneration("a.xml")

	s.Put(genDoc("b.xml"))
	if s.DocGeneration("a.xml") != da1 {
		t.Error("putting b.xml changed a.xml's generation")
	}
	s.Put(genDoc("a.xml"))
	if s.DocGeneration("a.xml") <= da1 {
		t.Error("re-Put did not advance the document generation")
	}
	if s.Generation() <= g1 {
		t.Error("re-Put did not advance the store generation")
	}

	g2 := s.Generation()
	da2 := s.DocGeneration("a.xml")
	s.Remove("a.xml")
	if s.Generation() <= g2 {
		t.Error("Remove did not advance the store generation")
	}
	if s.DocGeneration("a.xml") <= da2 {
		t.Error("Remove did not advance the document generation")
	}
}

func TestStoreSetsOf(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	s.Put(genDoc("b.xml"))
	if got := s.SetsOf("a.xml"); got != nil {
		t.Fatalf("SetsOf before membership = %v, want nil", got)
	}
	s.AddToSet("s2", "a.xml")
	s.AddToSet("s1", "a.xml")
	s.AddToSet("s1", "b.xml")
	got := s.SetsOf("a.xml")
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("SetsOf(a.xml) = %v, want [s1 s2] sorted", got)
	}
	if got := s.SetsOf("b.xml"); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("SetsOf(b.xml) = %v, want [s1]", got)
	}
	// The reverse index must agree with the forward one.
	for _, set := range s.SetsOf("a.xml") {
		if !s.SetContains(set, "a.xml") {
			t.Errorf("SetsOf lists %s but SetContains disagrees", set)
		}
	}
}

func TestAddToSetAdvancesGeneration(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	g := s.Generation()
	s.AddToSet("s1", "a.xml")
	if s.Generation() <= g {
		t.Error("AddToSet did not advance the store generation")
	}
}

// TestSnapshotUnaffectedByLaterMutations: the MVCC contract — a pinned
// snapshot keeps reporting the (generation, document, membership) state
// it was taken at, no matter what the store does afterwards. This is
// what makes generation-keyed decision caching sound: the generation a
// reader observes and the content it reads come from the same immutable
// version.
func TestSnapshotUnaffectedByLaterMutations(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	s.AddToSet("s1", "a.xml")
	sn := s.Snapshot()
	defer sn.Release()
	gen, docGen := sn.Generation(), sn.DocGeneration("a.xml")
	doc, ok := sn.Get("a.xml")
	if !ok {
		t.Fatal("snapshot missing a.xml")
	}

	// Every kind of mutation the store supports.
	s.Put(genDoc("a.xml"))
	s.Put(genDoc("b.xml"))
	s.AddToSet("s2", "a.xml")
	s.Remove("a.xml")

	if s.Generation() <= gen {
		t.Fatal("live store generation did not advance past the snapshot")
	}
	if sn.Generation() != gen {
		t.Errorf("snapshot generation moved: %d -> %d", gen, sn.Generation())
	}
	if sn.DocGeneration("a.xml") != docGen {
		t.Errorf("snapshot doc generation moved: %d -> %d", docGen, sn.DocGeneration("a.xml"))
	}
	if got, ok := sn.Get("a.xml"); !ok || got != doc {
		t.Error("snapshot no longer returns the pinned document object")
	}
	if got := sn.SetsOf("a.xml"); len(got) != 1 || got[0] != "s1" {
		t.Errorf("snapshot SetsOf(a.xml) = %v, want the pinned [s1]", got)
	}
	if sn.Len() != 1 {
		t.Errorf("snapshot Len = %d, want the pinned 1", sn.Len())
	}
	// The live store, meanwhile, reflects all of it.
	if _, ok := s.Get("a.xml"); ok {
		t.Error("live store still has the removed a.xml")
	}
	if _, ok := s.Get("b.xml"); !ok {
		t.Error("live store missing b.xml")
	}
}

// TestSnapshotRetentionAndReclaim: a pinned snapshot keeps exactly its
// version alive; unpinned superseded versions are swept at the next
// install, and releasing the snapshot lets its version go too. Readers
// never block writers — the store keeps installing while the pin is
// held — and retention is bounded by the pins actually outstanding.
func TestSnapshotRetentionAndReclaim(t *testing.T) {
	s := NewStore()
	s.Put(genDoc("a.xml"))
	sn := s.Snapshot()

	// Two installs while pinned: the pinned version is retained, the
	// intermediate (unpinned) one is reclaimed by the writer-driven sweep.
	s.Put(genDoc("b.xml"))
	s.Put(genDoc("c.xml"))
	st := s.VersionStats()
	if st.Retained != 1 {
		t.Fatalf("Retained = %d while one snapshot pinned, want 1", st.Retained)
	}
	if st.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", st.Pinned)
	}
	if st.Reclaimed == 0 {
		t.Fatal("intermediate unpinned version was never reclaimed")
	}

	sn.Release()
	s.Put(genDoc("d.xml"))
	st = s.VersionStats()
	if st.Retained != 0 {
		t.Fatalf("Retained = %d after release and install, want 0", st.Retained)
	}
	if st.Pinned != 0 {
		t.Fatalf("Pinned = %d after release, want 0", st.Pinned)
	}
	if st.Installed != st.Reclaimed {
		t.Fatalf("Installed = %d, Reclaimed = %d; all superseded versions should be reclaimed", st.Installed, st.Reclaimed)
	}
}
