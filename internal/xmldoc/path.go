package xmldoc

import (
	"fmt"
	"strings"
)

// This file implements the path language used by policies and queries to
// address portions of documents. It is a deliberately small XPath subset —
// enough to express every granularity the Author-X model needs:
//
//	/hospital/patient            absolute child steps
//	//diagnosis                  descendant-or-self anywhere
//	/hospital/*/name             element wildcard
//	/hospital/patient/@ssn       attribute selection
//	/hospital/patient[@ward='3'] attribute-equality predicate
//	/hospital/patient[name='Bob'] child-text predicate
//	/a/b/text()                  text children
//
// Steps compose left to right; a predicate applies to the step it follows.

// PathExpr is a compiled path expression.
type PathExpr struct {
	raw   string
	steps []pathStep
}

type pathStep struct {
	// axis is "child" or "descendant".
	axis string
	// name is the element name, "*" for any element, "@x" for attribute x,
	// "@*" for any attribute, or "text()" for text children.
	name string
	// predicate, if non-nil, filters matched elements.
	pred *pathPred
}

type pathPred struct {
	// attr, if set, tests an attribute value; otherwise child tests the
	// text of a named child element.
	attr  string
	child string
	value string
}

// CompilePath parses a path expression. The empty path and "/" select the
// document root.
// seclint:sanitizer
func CompilePath(expr string) (*PathExpr, error) {
	p := &PathExpr{raw: expr}
	s := strings.TrimSpace(expr)
	if s == "" || s == "/" {
		return p, nil
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("xmldoc: path %q: must be absolute", expr)
	}
	for len(s) > 0 {
		axis := "child"
		if strings.HasPrefix(s, "//") {
			axis = "descendant"
			s = s[2:]
		} else if strings.HasPrefix(s, "/") {
			s = s[1:]
		} else {
			return nil, fmt.Errorf("xmldoc: path %q: expected '/' near %q", expr, s)
		}
		if s == "" {
			return nil, fmt.Errorf("xmldoc: path %q: trailing slash", expr)
		}
		// Take the step token up to the next '/' that is outside brackets.
		end := len(s)
		depth := 0
		for i, r := range s {
			switch r {
			case '[':
				depth++
			case ']':
				depth--
			case '/':
				if depth == 0 {
					end = i
				}
			}
			if end == i {
				break
			}
		}
		tok := s[:end]
		s = s[end:]
		step, err := parseStep(axis, tok, expr)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, step)
	}
	return p, nil
}

// MustCompilePath is CompilePath that panics on error.
// seclint:sanitizer
func MustCompilePath(expr string) *PathExpr {
	p, err := CompilePath(expr)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStep(axis, tok, whole string) (pathStep, error) {
	st := pathStep{axis: axis}
	name := tok
	if i := strings.IndexByte(tok, '['); i >= 0 {
		if !strings.HasSuffix(tok, "]") {
			return st, fmt.Errorf("xmldoc: path %q: unterminated predicate in %q", whole, tok)
		}
		name = tok[:i]
		pred, err := parsePred(tok[i+1:len(tok)-1], whole)
		if err != nil {
			return st, err
		}
		st.pred = pred
	}
	if name == "" {
		return st, fmt.Errorf("xmldoc: path %q: empty step", whole)
	}
	st.name = name
	return st, nil
}

func parsePred(body, whole string) (*pathPred, error) {
	body = strings.TrimSpace(body)
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		return nil, fmt.Errorf("xmldoc: path %q: predicate %q must be an equality", whole, body)
	}
	lhs := strings.TrimSpace(body[:eq])
	rhs := strings.TrimSpace(body[eq+1:])
	if len(rhs) < 2 || (rhs[0] != '\'' && rhs[0] != '"') || rhs[len(rhs)-1] != rhs[0] {
		return nil, fmt.Errorf("xmldoc: path %q: predicate value %q must be quoted", whole, rhs)
	}
	val := rhs[1 : len(rhs)-1]
	p := &pathPred{value: val}
	if strings.HasPrefix(lhs, "@") {
		p.attr = lhs[1:]
	} else {
		p.child = lhs
	}
	if p.attr == "" && p.child == "" {
		return nil, fmt.Errorf("xmldoc: path %q: empty predicate lhs", whole)
	}
	return p, nil
}

func (p *pathPred) match(n *Node) bool {
	if n.Kind != KindElement {
		return false
	}
	if p.attr != "" {
		v, ok := n.Attr(p.attr)
		return ok && v == p.value
	}
	for _, c := range n.Children {
		if c.Kind == KindElement && c.Name == p.child && c.Text() == p.value {
			return true
		}
	}
	return false
}

// String returns the original expression.
func (p *PathExpr) String() string { return p.raw }

// Specificity scores how precisely the path pins down its targets; policy
// conflict resolution prefers higher scores. Child steps count 2 (they fix
// one level), descendant steps 1 (they match anywhere below), and each
// predicate adds 1.
func (p *PathExpr) Specificity() int {
	s := 0
	for _, st := range p.steps {
		if st.axis == "child" {
			s += 2
		} else {
			s++
		}
		if st.pred != nil {
			s++
		}
	}
	return s
}

// SelectFrom evaluates the path RELATIVE to a context node: the first
// child-axis step matches the context's children ($x/name semantics), a
// leading descendant step matches anywhere below the context. The empty
// path selects the context itself.
//
// seclint:exempt path evaluator over a node the caller already holds; accessctl gates which views callers get
func (p *PathExpr) SelectFrom(ctx *Node) []*Node {
	if ctx == nil {
		return nil
	}
	if len(p.steps) == 0 {
		return []*Node{ctx}
	}
	cur := map[*Node]bool{ctx: true}
	for _, step := range p.steps {
		cur = advance(cur, step)
	}
	var out []*Node
	for n := range cur {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// advance applies one step to a node set.
func advance(cur map[*Node]bool, step pathStep) map[*Node]bool {
	next := map[*Node]bool{}
	for n := range cur {
		if n.Kind != KindElement {
			continue
		}
		switch step.axis {
		case "child":
			for _, m := range matchStepOn(n, step, false) {
				next[m] = true
			}
		case "descendant":
			var walk func(*Node)
			walk = func(e *Node) {
				if stepMatchesNode(step, e) {
					next[e] = true
				}
				if e.Kind != KindElement {
					return
				}
				for _, a := range e.Attrs {
					if stepMatchesNode(step, a) {
						next[a] = true
					}
				}
				for _, c := range e.Children {
					walk(c)
				}
			}
			for _, a := range n.Attrs {
				if stepMatchesNode(step, a) {
					next[a] = true
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	return next
}

// Select evaluates the path against the document and returns the matched
// nodes in document order.
//
// seclint:exempt path evaluator over a document the caller already holds; accessctl gates which views callers get
func (p *PathExpr) Select(d *Document) []*Node {
	if d == nil || d.Root == nil {
		return nil
	}
	if len(p.steps) == 0 {
		return []*Node{d.Root}
	}
	// The first step matches against the root element itself (for child
	// axis) or any node (for descendant axis), mirroring how absolute
	// XPaths are anchored.
	cur := map[*Node]bool{}
	first := p.steps[0]
	switch first.axis {
	case "child":
		for _, n := range matchStepOn(d.Root, first, true) {
			cur[n] = true
		}
	case "descendant":
		d.Walk(func(n *Node) bool {
			if stepMatchesNode(first, n) {
				cur[n] = true
			}
			return true
		})
	}
	for _, step := range p.steps[1:] {
		cur = advance(cur, step)
	}
	var out []*Node
	for n := range cur {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// matchStepOn returns the nodes reachable from e by one child-axis step.
// When self is true the step is matched against e itself (used to anchor
// the first step of an absolute path at the root element).
func matchStepOn(e *Node, step pathStep, self bool) []*Node {
	var out []*Node
	if self {
		if stepMatchesNode(step, e) {
			out = append(out, e)
		}
		return out
	}
	if strings.HasPrefix(step.name, "@") {
		want := step.name[1:]
		for _, a := range e.Attrs {
			if want == "*" || a.Name == want {
				out = append(out, a)
			}
		}
		return out
	}
	if step.name == "text()" {
		for _, c := range e.Children {
			if c.Kind == KindText {
				out = append(out, c)
			}
		}
		return out
	}
	for _, c := range e.Children {
		if c.Kind != KindElement {
			continue
		}
		if (step.name == "*" || c.Name == step.name) && (step.pred == nil || step.pred.match(c)) {
			out = append(out, c)
		}
	}
	return out
}

func stepMatchesNode(step pathStep, n *Node) bool {
	if strings.HasPrefix(step.name, "@") {
		want := step.name[1:]
		return n.Kind == KindAttr && (want == "*" || n.Name == want)
	}
	if step.name == "text()" {
		return n.Kind == KindText
	}
	if n.Kind != KindElement {
		return false
	}
	if step.name != "*" && n.Name != step.name {
		return false
	}
	return step.pred == nil || step.pred.match(n)
}

func sortNodes(ns []*Node) {
	// Document order equals dense id order.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j-1].id > ns[j].id; j-- {
			ns[j-1], ns[j] = ns[j], ns[j-1]
		}
	}
}
