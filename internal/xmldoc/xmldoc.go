// Package xmldoc implements the graph-structured XML document model that
// underlies the access control and secure dissemination machinery in this
// repository.
//
// The paper (§3.2) observes that "XML documents have graph structures" and
// that an access control model must "support a wide spectrum of access
// granularity levels, ranging from sets of documents, to single documents,
// to specific portions within a document". This package provides exactly
// that substrate: a DOM-like tree of elements, attributes and text, plus
// the intra-document graph edges induced by ID/IDREF attributes, a small
// path language for addressing portions of documents (see path.go), and a
// canonical serialization used for hashing and signing (see canon.go).
package xmldoc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"webdbsec/internal/wal"
)

// NodeKind discriminates the node variants of a document.
type NodeKind int

// Node kinds.
const (
	KindElement NodeKind = iota
	KindAttr
	KindText
)

func (k NodeKind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttr:
		return "attribute"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a single node of a document: an element, an attribute, or a text
// segment. Nodes form a tree through Parent/Children and, additionally, a
// graph through IDREF links (see Document.Links).
type Node struct {
	Kind NodeKind

	// Name is the element or attribute name. Empty for text nodes.
	Name string

	// Value is the attribute value or the text content. Empty for elements.
	Value string

	// Parent is nil for the document root.
	Parent *Node

	// Children holds the element and text children of an element, in
	// document order. Attributes are kept separately in Attrs.
	Children []*Node

	// Attrs holds the attribute nodes of an element, sorted by name.
	Attrs []*Node

	// id is the per-document node identifier assigned at build time. It is
	// stable under canonicalization and is what policies and Merkle proofs
	// refer to.
	id int

	doc *Document
}

// ID returns the per-document node identifier. Identifiers are assigned in
// document order, are dense, and start at 0 for the root.
func (n *Node) ID() int { return n.id }

// Document returns the document the node belongs to.
func (n *Node) Document() *Document { return n.doc }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenation of all text descendants of n in document
// order. For a text node it returns the node's value.
func (n *Node) Text() string {
	if n.Kind == KindText {
		return n.Value
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == KindText {
			b.WriteString(m.Value)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Path returns the absolute element path of n, e.g. "/hospital/patient/name".
// Attribute nodes append "/@name"; text nodes use the parent element's path.
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case KindAttr:
		return n.Parent.Path() + "/@" + n.Name
	case KindText:
		return n.Parent.Path()
	}
	if n.Parent == nil {
		return "/" + n.Name
	}
	return n.Parent.Path() + "/" + n.Name
}

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// ElementChildren returns only the element children of n.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindElement {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first element child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && c.Name == name {
			return c
		}
	}
	return nil
}

// Link is a graph edge induced by an IDREF(S) attribute: the element holding
// the referring attribute points at the element whose ID attribute matches.
type Link struct {
	From *Node // referring element
	Attr string
	To   *Node // referred element
}

// Document is a parsed XML document: a node tree plus the ID index and the
// IDREF link set that give it the graph structure the paper refers to.
type Document struct {
	// Name identifies the document inside a Store (e.g. a file name or URI).
	Name string

	Root *Node

	// nodes indexes nodes by their dense identifier.
	nodes []*Node

	// byXMLID maps the value of "id" attributes to the owning element.
	byXMLID map[string]*Node

	// Links are the IDREF edges, discovered by Freeze.
	Links []Link
}

// NumNodes returns the number of nodes in the document (elements,
// attributes and text segments).
func (d *Document) NumNodes() int { return len(d.nodes) }

// NodeByID returns the node with the given dense identifier, or nil.
func (d *Document) NodeByID(id int) *Node {
	if id < 0 || id >= len(d.nodes) {
		return nil
	}
	return d.nodes[id]
}

// ElementByXMLID returns the element whose id="..." attribute equals v.
func (d *Document) ElementByXMLID(v string) (*Node, bool) {
	n, ok := d.byXMLID[v]
	return n, ok
}

// Nodes returns all nodes in document order. The returned slice must not be
// modified.
func (d *Document) Nodes() []*Node { return d.nodes }

// Walk calls fn for every node in document order, root first. If fn returns
// false for an element, its subtree (including attributes) is skipped.
func (d *Document) Walk(fn func(*Node) bool) {
	var walk func(*Node)
	walk = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, a := range n.Attrs {
			fn(a)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
}

// Builder incrementally constructs a Document. It is the only way to create
// documents programmatically; Parse uses it internally.
type Builder struct {
	doc  *Document
	cur  *Node
	done bool
}

// NewBuilder returns a Builder for a document with the given name and root
// element name.
func NewBuilder(docName, rootName string) *Builder {
	d := &Document{Name: docName, byXMLID: make(map[string]*Node)}
	root := &Node{Kind: KindElement, Name: rootName, doc: d}
	d.Root = root
	return &Builder{doc: d, cur: root}
}

// Begin opens a child element of the current element and descends into it.
func (b *Builder) Begin(name string) *Builder {
	b.mustOpen()
	n := &Node{Kind: KindElement, Name: name, Parent: b.cur, doc: b.doc}
	b.cur.Children = append(b.cur.Children, n)
	b.cur = n
	return b
}

// End closes the current element, ascending to its parent. Ending the root
// is an error caught by Freeze.
func (b *Builder) End() *Builder {
	b.mustOpen()
	if b.cur.Parent != nil {
		b.cur = b.cur.Parent
	}
	return b
}

// Attrib adds an attribute to the current element.
func (b *Builder) Attrib(name, value string) *Builder {
	b.mustOpen()
	a := &Node{Kind: KindAttr, Name: name, Value: value, Parent: b.cur, doc: b.doc}
	b.cur.Attrs = append(b.cur.Attrs, a)
	return b
}

// Text adds a text child to the current element.
func (b *Builder) Text(s string) *Builder {
	b.mustOpen()
	t := &Node{Kind: KindText, Value: s, Parent: b.cur, doc: b.doc}
	b.cur.Children = append(b.cur.Children, t)
	return b
}

// Element is shorthand for Begin(name).Text(text).End().
func (b *Builder) Element(name, text string) *Builder {
	return b.Begin(name).Text(text).End()
}

func (b *Builder) mustOpen() {
	if b.done {
		panic("xmldoc: Builder used after Freeze")
	}
}

// Freeze finalizes the document: it sorts attributes, assigns dense node
// identifiers in document order, indexes id attributes and resolves IDREF
// links. The Builder must not be used afterwards.
func (b *Builder) Freeze() *Document {
	if b.done {
		panic("xmldoc: Freeze called twice")
	}
	b.done = true
	d := b.doc
	d.index()
	return d
}

// index (re)computes dense ids, the XML-ID index and the IDREF link set.
func (d *Document) index() {
	d.nodes = d.nodes[:0]
	d.byXMLID = make(map[string]*Node)
	var walk func(*Node)
	walk = func(n *Node) {
		n.id = len(d.nodes)
		n.doc = d
		d.nodes = append(d.nodes, n)
		sort.SliceStable(n.Attrs, func(i, j int) bool { return n.Attrs[i].Name < n.Attrs[j].Name })
		for _, a := range n.Attrs {
			a.id = len(d.nodes)
			a.doc = d
			d.nodes = append(d.nodes, a)
			if a.Name == "id" {
				d.byXMLID[a.Value] = n
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
	// Resolve IDREF links in a second pass, now that byXMLID is complete.
	d.Links = d.Links[:0]
	for _, n := range d.nodes {
		if n.Kind != KindElement {
			continue
		}
		for _, a := range n.Attrs {
			if a.Name != "idref" && a.Name != "idrefs" {
				continue
			}
			for _, ref := range strings.Fields(a.Value) {
				if to, ok := d.byXMLID[ref]; ok {
					d.Links = append(d.Links, Link{From: n, Attr: a.Name, To: to})
				}
			}
		}
	}
}

// Clone returns a deep copy of the document. Node identifiers are preserved.
func (d *Document) Clone() *Document {
	b := &Builder{doc: &Document{Name: d.Name, byXMLID: make(map[string]*Node)}}
	var copyNode func(src *Node, parent *Node) *Node
	copyNode = func(src *Node, parent *Node) *Node {
		n := &Node{Kind: src.Kind, Name: src.Name, Value: src.Value, Parent: parent, doc: b.doc}
		for _, a := range src.Attrs {
			n.Attrs = append(n.Attrs, &Node{Kind: KindAttr, Name: a.Name, Value: a.Value, Parent: n, doc: b.doc})
		}
		for _, c := range src.Children {
			n.Children = append(n.Children, copyNode(c, n))
		}
		return n
	}
	if d.Root != nil {
		b.doc.Root = copyNode(d.Root, nil)
	}
	b.doc.index()
	return b.doc
}

// Prune returns a deep copy of the document retaining only the nodes for
// which keep returns true, together with all their ancestors (so the result
// is a well-formed document). Attributes and text of retained elements are
// kept only if keep accepts them. If the root itself is not retained and no
// descendant is, Prune returns nil.
//
// Prune is the core of Author-X view computation: the access control engine
// marks the authorized nodes and Prune materializes the subject's view.
func (d *Document) Prune(keep func(*Node) bool) *Document {
	retain := make([]bool, len(d.nodes))
	for _, n := range d.nodes {
		if keep(n) {
			// Keep the node and all its ancestors.
			retain[n.id] = true
			for p := n.Parent; p != nil; p = p.Parent {
				retain[p.id] = true
			}
		}
	}
	if d.Root == nil || !retain[d.Root.id] {
		return nil
	}
	out := &Document{Name: d.Name, byXMLID: make(map[string]*Node)}
	var copyNode func(src *Node, parent *Node) *Node
	copyNode = func(src *Node, parent *Node) *Node {
		n := &Node{Kind: src.Kind, Name: src.Name, Value: src.Value, Parent: parent, doc: out}
		for _, a := range src.Attrs {
			if retain[a.id] {
				n.Attrs = append(n.Attrs, &Node{Kind: KindAttr, Name: a.Name, Value: a.Value, Parent: n, doc: out})
			}
		}
		for _, c := range src.Children {
			if retain[c.id] {
				n.Children = append(n.Children, copyNode(c, n))
			}
		}
		return n
	}
	out.Root = copyNode(d.Root, nil)
	out.index()
	return out
}

// Store is a named collection of documents — the "document set" granularity
// of the Author-X policy model. All methods are safe for concurrent use.
//
// Documents themselves are immutable once frozen; "mutating" a document
// means Put-ting a replacement under the same name. The store therefore
// tracks a generation per document name, advanced whenever the name's
// binding changes (Put, Remove) or its set membership changes (AddToSet) —
// exactly the events that can alter an access decision about the document.
// Decision caches (internal/decisioncache) key cached artifacts on it.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*Document
	// Sets maps a set name to the document names it contains.
	sets map[string]map[string]bool
	// memberOf is the reverse index: document name -> set names. It lets
	// the policy index find set-level policies without scanning all sets.
	memberOf map[string]map[string]bool
	// gen advances on every mutation; docGens per document name.
	gen     uint64
	docGens map[string]uint64
	// w, when set, receives a journal entry for every mutation (see
	// persist.go); err is the sticky journal failure.
	w   *wal.WAL
	err error
}

// NewStore returns an empty document store.
func NewStore() *Store {
	return &Store{
		docs:     make(map[string]*Document),
		sets:     make(map[string]map[string]bool),
		memberOf: make(map[string]map[string]bool),
		docGens:  make(map[string]uint64),
	}
}

// Put adds or replaces a document, advancing its generation.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine authorizes before the store mutates
func (s *Store) Put(d *Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[d.Name] = d
	s.docGens[d.Name]++
	s.gen++
	if s.w != nil {
		s.journalLocked(&storeJournal{
			Op: "put", Doc: d.Name, XML: d.Canonical(),
			Gen: s.gen, DocGen: s.docGens[d.Name],
		})
	}
}

// Get returns the named document.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine computes authorized views above it
func (s *Store) Get(name string) (*Document, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[name]
	return d, ok
}

// Remove deletes the named document and drops it from every set, advancing
// the document's generation.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine authorizes before the store mutates
func (s *Store) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.docs, name)
	for _, set := range s.sets {
		delete(set, name)
	}
	delete(s.memberOf, name)
	s.docGens[name]++
	s.gen++
	if s.w != nil {
		s.journalLocked(&storeJournal{
			Op: "remove", Doc: name, Gen: s.gen, DocGen: s.docGens[name],
		})
	}
}

// Len returns the number of documents in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Generation returns the store-wide mutation counter: it advances on every
// Put, Remove and AddToSet and never repeats.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// DocGeneration returns the named document's generation: it advances
// whenever the name's binding or set membership changes, and is 0 for
// names the store has never seen. Together with the name it identifies an
// exact decision-relevant state of the document, so caches keyed on
// (name, generation) are invalidated precisely — mutating one document
// does not disturb cached artifacts of any other.
func (s *Store) DocGeneration(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docGens[name]
}

// Names returns the document names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for name := range s.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddToSet places a document into a named document set, creating the set if
// needed. The document need not exist yet. Membership changes advance the
// document's generation (set-level policies may now cover it).
//
// seclint:exempt set administration on the trusted setup path, not a data entry point
func (s *Store) AddToSet(set, doc string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.linkSetLocked(set, doc)
	s.docGens[doc]++
	s.gen++
	if s.w != nil {
		s.journalLocked(&storeJournal{
			Op: "addset", Doc: doc, Set: set, Gen: s.gen, DocGen: s.docGens[doc],
		})
	}
}

// SetContains reports whether the named set contains the document.
func (s *Store) SetContains(set, doc string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sets[set][doc]
}

// SetsOf returns the names of the sets containing the document, sorted.
// It returns nil for documents in no set.
func (s *Store) SetsOf(doc string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.memberOf[doc]
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for set := range m {
		out = append(out, set)
	}
	sort.Strings(out)
	return out
}

// SetMembers returns the sorted document names of a set.
func (s *Store) SetMembers(set string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for name := range s.sets[set] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
