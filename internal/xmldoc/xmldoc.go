// Package xmldoc implements the graph-structured XML document model that
// underlies the access control and secure dissemination machinery in this
// repository.
//
// The paper (§3.2) observes that "XML documents have graph structures" and
// that an access control model must "support a wide spectrum of access
// granularity levels, ranging from sets of documents, to single documents,
// to specific portions within a document". This package provides exactly
// that substrate: a DOM-like tree of elements, attributes and text, plus
// the intra-document graph edges induced by ID/IDREF attributes, a small
// path language for addressing portions of documents (see path.go), and a
// canonical serialization used for hashing and signing (see canon.go).
package xmldoc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"webdbsec/internal/wal"
)

// NodeKind discriminates the node variants of a document.
type NodeKind int

// Node kinds.
const (
	KindElement NodeKind = iota
	KindAttr
	KindText
)

func (k NodeKind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttr:
		return "attribute"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a single node of a document: an element, an attribute, or a text
// segment. Nodes form a tree through Parent/Children and, additionally, a
// graph through IDREF links (see Document.Links).
type Node struct {
	Kind NodeKind

	// Name is the element or attribute name. Empty for text nodes.
	Name string

	// Value is the attribute value or the text content. Empty for elements.
	Value string

	// Parent is nil for the document root.
	Parent *Node

	// Children holds the element and text children of an element, in
	// document order. Attributes are kept separately in Attrs.
	Children []*Node

	// Attrs holds the attribute nodes of an element, sorted by name.
	Attrs []*Node

	// id is the per-document node identifier assigned at build time. It is
	// stable under canonicalization and is what policies and Merkle proofs
	// refer to.
	id int

	doc *Document
}

// ID returns the per-document node identifier. Identifiers are assigned in
// document order, are dense, and start at 0 for the root.
func (n *Node) ID() int { return n.id }

// Document returns the document the node belongs to.
func (n *Node) Document() *Document { return n.doc }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenation of all text descendants of n in document
// order. For a text node it returns the node's value.
func (n *Node) Text() string {
	if n.Kind == KindText {
		return n.Value
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == KindText {
			b.WriteString(m.Value)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Path returns the absolute element path of n, e.g. "/hospital/patient/name".
// Attribute nodes append "/@name"; text nodes use the parent element's path.
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case KindAttr:
		return n.Parent.Path() + "/@" + n.Name
	case KindText:
		return n.Parent.Path()
	}
	if n.Parent == nil {
		return "/" + n.Name
	}
	return n.Parent.Path() + "/" + n.Name
}

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// ElementChildren returns only the element children of n.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindElement {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first element child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && c.Name == name {
			return c
		}
	}
	return nil
}

// Link is a graph edge induced by an IDREF(S) attribute: the element holding
// the referring attribute points at the element whose ID attribute matches.
type Link struct {
	From *Node // referring element
	Attr string
	To   *Node // referred element
}

// Document is a parsed XML document: a node tree plus the ID index and the
// IDREF link set that give it the graph structure the paper refers to.
type Document struct {
	// Name identifies the document inside a Store (e.g. a file name or URI).
	Name string

	Root *Node

	// nodes indexes nodes by their dense identifier.
	nodes []*Node

	// byXMLID maps the value of "id" attributes to the owning element.
	byXMLID map[string]*Node

	// Links are the IDREF edges, discovered by Freeze.
	Links []Link
}

// NumNodes returns the number of nodes in the document (elements,
// attributes and text segments).
func (d *Document) NumNodes() int { return len(d.nodes) }

// NodeByID returns the node with the given dense identifier, or nil.
func (d *Document) NodeByID(id int) *Node {
	if id < 0 || id >= len(d.nodes) {
		return nil
	}
	return d.nodes[id]
}

// ElementByXMLID returns the element whose id="..." attribute equals v.
func (d *Document) ElementByXMLID(v string) (*Node, bool) {
	n, ok := d.byXMLID[v]
	return n, ok
}

// Nodes returns all nodes in document order. The returned slice must not be
// modified.
func (d *Document) Nodes() []*Node { return d.nodes }

// Walk calls fn for every node in document order, root first. If fn returns
// false for an element, its subtree (including attributes) is skipped.
func (d *Document) Walk(fn func(*Node) bool) {
	var walk func(*Node)
	walk = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, a := range n.Attrs {
			fn(a)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
}

// Builder incrementally constructs a Document. It is the only way to create
// documents programmatically; Parse uses it internally.
type Builder struct {
	doc  *Document
	cur  *Node
	done bool
}

// NewBuilder returns a Builder for a document with the given name and root
// element name.
func NewBuilder(docName, rootName string) *Builder {
	d := &Document{Name: docName, byXMLID: make(map[string]*Node)}
	root := &Node{Kind: KindElement, Name: rootName, doc: d}
	d.Root = root
	return &Builder{doc: d, cur: root}
}

// Begin opens a child element of the current element and descends into it.
func (b *Builder) Begin(name string) *Builder {
	b.mustOpen()
	n := &Node{Kind: KindElement, Name: name, Parent: b.cur, doc: b.doc}
	b.cur.Children = append(b.cur.Children, n)
	b.cur = n
	return b
}

// End closes the current element, ascending to its parent. Ending the root
// is an error caught by Freeze.
func (b *Builder) End() *Builder {
	b.mustOpen()
	if b.cur.Parent != nil {
		b.cur = b.cur.Parent
	}
	return b
}

// Attrib adds an attribute to the current element.
func (b *Builder) Attrib(name, value string) *Builder {
	b.mustOpen()
	a := &Node{Kind: KindAttr, Name: name, Value: value, Parent: b.cur, doc: b.doc}
	b.cur.Attrs = append(b.cur.Attrs, a)
	return b
}

// Text adds a text child to the current element.
func (b *Builder) Text(s string) *Builder {
	b.mustOpen()
	t := &Node{Kind: KindText, Value: s, Parent: b.cur, doc: b.doc}
	b.cur.Children = append(b.cur.Children, t)
	return b
}

// Element is shorthand for Begin(name).Text(text).End().
func (b *Builder) Element(name, text string) *Builder {
	return b.Begin(name).Text(text).End()
}

func (b *Builder) mustOpen() {
	if b.done {
		panic("xmldoc: Builder used after Freeze")
	}
}

// Freeze finalizes the document: it sorts attributes, assigns dense node
// identifiers in document order, indexes id attributes and resolves IDREF
// links. The Builder must not be used afterwards.
func (b *Builder) Freeze() *Document {
	if b.done {
		panic("xmldoc: Freeze called twice")
	}
	b.done = true
	d := b.doc
	d.index()
	return d
}

// index (re)computes dense ids, the XML-ID index and the IDREF link set.
func (d *Document) index() {
	d.nodes = d.nodes[:0]
	d.byXMLID = make(map[string]*Node)
	var walk func(*Node)
	walk = func(n *Node) {
		n.id = len(d.nodes)
		n.doc = d
		d.nodes = append(d.nodes, n)
		sort.SliceStable(n.Attrs, func(i, j int) bool { return n.Attrs[i].Name < n.Attrs[j].Name })
		for _, a := range n.Attrs {
			a.id = len(d.nodes)
			a.doc = d
			d.nodes = append(d.nodes, a)
			if a.Name == "id" {
				d.byXMLID[a.Value] = n
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
	// Resolve IDREF links in a second pass, now that byXMLID is complete.
	d.Links = d.Links[:0]
	for _, n := range d.nodes {
		if n.Kind != KindElement {
			continue
		}
		for _, a := range n.Attrs {
			if a.Name != "idref" && a.Name != "idrefs" {
				continue
			}
			for _, ref := range strings.Fields(a.Value) {
				if to, ok := d.byXMLID[ref]; ok {
					d.Links = append(d.Links, Link{From: n, Attr: a.Name, To: to})
				}
			}
		}
	}
}

// Clone returns a deep copy of the document. Node identifiers are preserved.
func (d *Document) Clone() *Document {
	b := &Builder{doc: &Document{Name: d.Name, byXMLID: make(map[string]*Node)}}
	var copyNode func(src *Node, parent *Node) *Node
	copyNode = func(src *Node, parent *Node) *Node {
		n := &Node{Kind: src.Kind, Name: src.Name, Value: src.Value, Parent: parent, doc: b.doc}
		for _, a := range src.Attrs {
			n.Attrs = append(n.Attrs, &Node{Kind: KindAttr, Name: a.Name, Value: a.Value, Parent: n, doc: b.doc})
		}
		for _, c := range src.Children {
			n.Children = append(n.Children, copyNode(c, n))
		}
		return n
	}
	if d.Root != nil {
		b.doc.Root = copyNode(d.Root, nil)
	}
	b.doc.index()
	return b.doc
}

// Prune returns a deep copy of the document retaining only the nodes for
// which keep returns true, together with all their ancestors (so the result
// is a well-formed document). Attributes and text of retained elements are
// kept only if keep accepts them. If the root itself is not retained and no
// descendant is, Prune returns nil.
//
// Prune is the core of Author-X view computation: the access control engine
// marks the authorized nodes and Prune materializes the subject's view.
func (d *Document) Prune(keep func(*Node) bool) *Document {
	retain := make([]bool, len(d.nodes))
	for _, n := range d.nodes {
		if keep(n) {
			// Keep the node and all its ancestors.
			retain[n.id] = true
			for p := n.Parent; p != nil; p = p.Parent {
				retain[p.id] = true
			}
		}
	}
	if d.Root == nil || !retain[d.Root.id] {
		return nil
	}
	out := &Document{Name: d.Name, byXMLID: make(map[string]*Node)}
	var copyNode func(src *Node, parent *Node) *Node
	copyNode = func(src *Node, parent *Node) *Node {
		n := &Node{Kind: src.Kind, Name: src.Name, Value: src.Value, Parent: parent, doc: out}
		for _, a := range src.Attrs {
			if retain[a.id] {
				n.Attrs = append(n.Attrs, &Node{Kind: KindAttr, Name: a.Name, Value: a.Value, Parent: n, doc: out})
			}
		}
		for _, c := range src.Children {
			if retain[c.id] {
				n.Children = append(n.Children, copyNode(c, n))
			}
		}
		return n
	}
	out.Root = copyNode(d.Root, nil)
	out.index()
	return out
}

// Store is a named collection of documents — the "document set" granularity
// of the Author-X policy model. All methods are safe for concurrent use.
//
// Documents themselves are immutable once frozen; "mutating" a document
// means Put-ting a replacement under the same name. The store therefore
// tracks a generation per document name, advanced whenever the name's
// binding changes (Put, Remove) or its set membership changes (AddToSet) —
// exactly the events that can alter an access decision about the document.
// Decision caches (internal/decisioncache) key cached artifacts on it.
//
// Internally the store is multi-versioned: the whole decision-relevant
// state (documents, set membership, generations) lives in an immutable
// storeVersion behind an atomic pointer. Readers load the pointer and
// never take a lock; writers build a copy-on-write successor under mu and
// publish it stamped with the WAL LSN of its journal entry, so version
// order and replication order coincide. Snapshot pins a version when a
// caller needs several reads to observe one consistent state.
type Store struct {
	// mu serializes writers (Put, Remove, AddToSet, the replication apply
	// path) and version installation; readers never take it.
	mu sync.Mutex
	// current is the latest published version. Stored under mu; loaded
	// anywhere.
	current atomic.Pointer[storeVersion] // seclint:atomicptr mu
	// retained holds superseded versions until no snapshot pins them.
	retained []*storeVersion // seclint:guardedby mu
	// vstats counts version lifecycle events.
	vstats StoreVersionStats // seclint:guardedby mu
	// w, when set, receives a journal entry for every mutation (see
	// persist.go); err is the sticky journal failure.
	w   *wal.WAL // seclint:guardedby mu
	err error    // seclint:guardedby mu
}

// storeVersion is one immutable state of the store. A writer builds it
// privately — cloning the outer maps and any inner set map it touches —
// and nothing mutates it after publication.
type storeVersion struct {
	// lsn is the WAL LSN of the journal entry that produced this version
	// (0 for genesis and for stores without a durable backend). Every
	// journal entry describes one complete mutation, so a snapshot of the
	// version at LSN n holds exactly the mutations journaled at or below n
	// — the fence and the truncation point of a fuzzy checkpoint coincide.
	lsn  int64
	gen  uint64
	docs map[string]*Document
	// sets maps a set name to the document names it contains.
	sets map[string]map[string]bool
	// memberOf is the reverse index: document name -> set names. It lets
	// the policy index find set-level policies without scanning all sets.
	memberOf map[string]map[string]bool
	docGens  map[string]uint64
	// pins counts snapshots holding this version live.
	pins atomic.Int64
}

func newStoreVersion() *storeVersion {
	return &storeVersion{
		docs:     make(map[string]*Document),
		sets:     make(map[string]map[string]bool),
		memberOf: make(map[string]map[string]bool),
		docGens:  make(map[string]uint64),
	}
}

// clone returns a private successor sharing the inner set maps with v; the
// writer must replace (not mutate) any inner map it changes — link and
// unlinkDoc do.
func (v *storeVersion) clone() *storeVersion {
	nv := &storeVersion{
		lsn:      v.lsn,
		gen:      v.gen,
		docs:     make(map[string]*Document, len(v.docs)+1),
		sets:     make(map[string]map[string]bool, len(v.sets)+1),
		memberOf: make(map[string]map[string]bool, len(v.memberOf)+1),
		docGens:  make(map[string]uint64, len(v.docGens)+1),
	}
	for k, d := range v.docs {
		nv.docs[k] = d
	}
	for k, m := range v.sets {
		nv.sets[k] = m
	}
	for k, m := range v.memberOf {
		nv.memberOf[k] = m
	}
	for k, g := range v.docGens {
		nv.docGens[k] = g
	}
	return nv
}

// link wires doc into set in both directions, copying the touched inner
// maps so versions sharing them are undisturbed. Private versions only.
func (v *storeVersion) link(set, doc string) {
	m := copySet(v.sets[set])
	m[doc] = true
	v.sets[set] = m
	r := copySet(v.memberOf[doc])
	r[set] = true
	v.memberOf[doc] = r
}

// linkOwned wires doc into set in place. Only for versions whose inner
// maps are all private (staging during recovery or restore), never for
// clones of a published version.
func (v *storeVersion) linkOwned(set, doc string) {
	m := v.sets[set]
	if m == nil {
		m = make(map[string]bool)
		v.sets[set] = m
	}
	m[doc] = true
	r := v.memberOf[doc]
	if r == nil {
		r = make(map[string]bool)
		v.memberOf[doc] = r
	}
	r[set] = true
}

// unlinkDoc drops doc from every set, copying the touched inner maps.
func (v *storeVersion) unlinkDoc(doc string) {
	for set, m := range v.sets {
		if m[doc] {
			nm := copySet(m)
			delete(nm, doc)
			v.sets[set] = nm
		}
	}
	delete(v.memberOf, doc)
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}

func (v *storeVersion) names() []string {
	out := make([]string, 0, len(v.docs))
	for name := range v.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (v *storeVersion) setsOf(doc string) []string {
	m := v.memberOf[doc]
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for set := range m {
		out = append(out, set)
	}
	sort.Strings(out)
	return out
}

func (v *storeVersion) setMembers(set string) []string {
	var out []string
	for name := range v.sets[set] {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewStore returns an empty document store.
//
// seclint:locked s is not yet published; no other goroutine holds a reference before NewStore returns
func NewStore() *Store {
	s := &Store{}
	s.current.Store(newStoreVersion())
	return s
}

// installLocked publishes v as the current version, stamped with the WAL
// LSN of the journal entry that produced it. A zero lsn (no durable
// backend, or a journal failure already recorded in s.err) keeps the
// predecessor's stamp so version LSNs stay monotone. The superseded
// version is retained until no snapshot pins it. Caller holds s.mu.
//
// seclint:locked caller holds s.mu
func (s *Store) installLocked(lsn int64, v *storeVersion) {
	cur := s.current.Load()
	if lsn < cur.lsn {
		lsn = cur.lsn
	}
	v.lsn = lsn
	s.current.Store(v)
	s.retained = append(s.retained, cur)
	s.vstats.Installed++
	s.sweepLocked()
}

// sweepLocked drops retained versions no snapshot pins. Writer-driven:
// it runs at every install, so retention is bounded by the lifetime of
// the snapshots actually held. Caller holds s.mu.
//
// seclint:locked caller holds s.mu
func (s *Store) sweepLocked() {
	kept := s.retained[:0]
	for _, v := range s.retained {
		if v.pins.Load() > 0 {
			kept = append(kept, v)
		} else {
			s.vstats.Reclaimed++
		}
	}
	for i := len(kept); i < len(s.retained); i++ {
		s.retained[i] = nil
	}
	s.retained = kept
}

// StoreVersionStats counts version lifecycle events; see
// (*Store).VersionStats.
type StoreVersionStats struct {
	// Installed and Reclaimed count versions published and swept.
	Installed int64
	Reclaimed int64
	// Retained is the number of superseded versions still held for
	// snapshots; Pinned is the total pin count across all live versions.
	Retained int
	Pinned   int64
}

// VersionStats reports version lifecycle counters — test and operational
// visibility into snapshot retention.
func (s *Store) VersionStats() StoreVersionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.vstats
	st.Retained = len(s.retained)
	for _, v := range s.retained {
		st.Pinned += v.pins.Load()
	}
	st.Pinned += s.current.Load().pins.Load()
	return st
}

// Put adds or replaces a document, advancing its generation.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine authorizes before the store mutates
func (s *Store) Put(d *Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current.Load().clone()
	v.docs[d.Name] = d
	v.docGens[d.Name]++
	v.gen++
	lsn := s.journalLocked(&storeJournal{
		Op: "put", Doc: d.Name, XML: d.Canonical(),
		Gen: v.gen, DocGen: v.docGens[d.Name],
	})
	s.installLocked(lsn, v)
}

// Get returns the named document.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine computes authorized views above it
func (s *Store) Get(name string) (*Document, bool) {
	v := s.current.Load()
	d, ok := v.docs[name]
	return d, ok
}

// Remove deletes the named document and drops it from every set, advancing
// the document's generation.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine authorizes before the store mutates
func (s *Store) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current.Load().clone()
	delete(v.docs, name)
	v.unlinkDoc(name)
	v.docGens[name]++
	v.gen++
	lsn := s.journalLocked(&storeJournal{
		Op: "remove", Doc: name, Gen: v.gen, DocGen: v.docGens[name],
	})
	s.installLocked(lsn, v)
}

// Len returns the number of documents in the store.
func (s *Store) Len() int {
	return len(s.current.Load().docs)
}

// Generation returns the store-wide mutation counter: it advances on every
// Put, Remove and AddToSet and never repeats.
func (s *Store) Generation() uint64 {
	return s.current.Load().gen
}

// DocGeneration returns the named document's generation: it advances
// whenever the name's binding or set membership changes, and is 0 for
// names the store has never seen. Together with the name it identifies an
// exact decision-relevant state of the document, so caches keyed on
// (name, generation) are invalidated precisely — mutating one document
// does not disturb cached artifacts of any other.
func (s *Store) DocGeneration(name string) uint64 {
	return s.current.Load().docGens[name]
}

// Names returns the document names in sorted order.
func (s *Store) Names() []string {
	return s.current.Load().names()
}

// AddToSet places a document into a named document set, creating the set if
// needed. The document need not exist yet. Membership changes advance the
// document's generation (set-level policies may now cover it).
//
// seclint:exempt set administration on the trusted setup path, not a data entry point
func (s *Store) AddToSet(set, doc string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current.Load().clone()
	v.link(set, doc)
	v.docGens[doc]++
	v.gen++
	lsn := s.journalLocked(&storeJournal{
		Op: "addset", Doc: doc, Set: set, Gen: v.gen, DocGen: v.docGens[doc],
	})
	s.installLocked(lsn, v)
}

// SetContains reports whether the named set contains the document.
func (s *Store) SetContains(set, doc string) bool {
	return s.current.Load().sets[set][doc]
}

// SetsOf returns the names of the sets containing the document, sorted.
// It returns nil for documents in no set.
func (s *Store) SetsOf(doc string) []string {
	return s.current.Load().setsOf(doc)
}

// SetMembers returns the sorted document names of a set.
func (s *Store) SetMembers(set string) []string {
	return s.current.Load().setMembers(set)
}

// StoreSnapshot is a pinned, immutable view of the store at one version.
// Every method observes the same state: a decision evaluated against a
// snapshot sees documents, set membership and generations that all belong
// to one point in the mutation order, no matter how many writers commit
// meanwhile. Release it when done so the version can be reclaimed;
// reads are lock-free throughout.
type StoreSnapshot struct {
	v        *storeVersion
	released atomic.Bool
}

// Snapshot pins the current version and returns a consistent read view.
func (s *Store) Snapshot() *StoreSnapshot {
	for {
		v := s.current.Load()
		v.pins.Add(1)
		// A writer may have published a successor between the load and the
		// pin; re-check so the pin provably lands on a version that was
		// current while pinned.
		if s.current.Load() == v {
			return &StoreSnapshot{v: v}
		}
		v.pins.Add(-1)
	}
}

// Release unpins the snapshot. Safe to call more than once.
func (sn *StoreSnapshot) Release() {
	if sn.released.CompareAndSwap(false, true) {
		sn.v.pins.Add(-1)
	}
}

// LSN returns the WAL LSN of the journal entry that produced the pinned
// version (0 for genesis or an in-memory store).
func (sn *StoreSnapshot) LSN() int64 { return sn.v.lsn }

// Get returns the named document as of the snapshot.
//
// seclint:exempt document storage below the access-control gate; accessctl.Engine computes authorized views above it
func (sn *StoreSnapshot) Get(name string) (*Document, bool) {
	d, ok := sn.v.docs[name]
	return d, ok
}

// Len returns the number of documents as of the snapshot.
func (sn *StoreSnapshot) Len() int { return len(sn.v.docs) }

// Generation returns the store-wide mutation counter as of the snapshot.
func (sn *StoreSnapshot) Generation() uint64 { return sn.v.gen }

// DocGeneration returns the named document's generation as of the
// snapshot.
func (sn *StoreSnapshot) DocGeneration(name string) uint64 {
	return sn.v.docGens[name]
}

// Names returns the document names in sorted order as of the snapshot.
func (sn *StoreSnapshot) Names() []string { return sn.v.names() }

// SetContains reports whether the named set contains the document as of
// the snapshot.
func (sn *StoreSnapshot) SetContains(set, doc string) bool {
	return sn.v.sets[set][doc]
}

// SetsOf returns the names of the sets containing the document as of the
// snapshot, sorted; nil for documents in no set.
func (sn *StoreSnapshot) SetsOf(doc string) []string {
	return sn.v.setsOf(doc)
}

// SetMembers returns the sorted document names of a set as of the
// snapshot.
func (sn *StoreSnapshot) SetMembers(set string) []string {
	return sn.v.setMembers(set)
}
