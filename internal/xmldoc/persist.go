package xmldoc

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Snapshot+journal persistence for the document store. Documents travel as
// their canonical serialization (canon.go) and are re-parsed on load;
// since Canonical is also the representation that is hashed and signed,
// what is persisted is exactly what the integrity machinery vouches for.
// (Whitespace-only text nodes are not representable in canonical form and
// do not survive a reload — they carry no policy-relevant content.)
//
// Every journal entry records the store generation and the touched
// document's generation after the mutation, and OpenStore restores both
// counters, so generation-keyed decision caches built over a reopened
// store observe the same (name, generation) → state mapping as before the
// restart.

// storeJournal is one journal entry.
type storeJournal struct {
	Op     string // "put" | "remove" | "addset"
	Doc    string
	Set    string `json:",omitempty"`
	XML    string `json:",omitempty"`
	Gen    uint64
	DocGen uint64
}

// storeSnap is a checkpoint snapshot of the whole store.
type storeSnap struct {
	Gen     uint64
	DocGens map[string]uint64
	Docs    map[string]string
	Sets    map[string][]string
}

// OpenStore recovers a document store from w and wires it to keep
// journaling there. The caller owns w's lifecycle but must not use it
// directly afterwards. Recovery stages into one private version published
// at the end, stamped with the last replayed LSN, so post-recovery
// mutations continue the version sequence exactly where the journal ends.
//
// seclint:locked s is not yet published; no other goroutine holds a reference before OpenStore returns
func OpenStore(w *wal.WAL) (*Store, error) {
	s := NewStore()
	v := newStoreVersion()
	if payload, snapLSN, ok := w.Snapshot(); ok {
		var snap storeSnap
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("xmldoc: decode snapshot: %w", err)
		}
		if err := stageSnap(v, &snap); err != nil {
			return nil, err
		}
		v.lsn = int64(snapLSN)
	}
	err := w.Replay(func(lsn uint64, payload []byte) error {
		var rec storeJournal
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("xmldoc: decode journal at lsn %d: %w", lsn, err)
		}
		switch rec.Op {
		case "put":
			d, err := ParseString(rec.Doc, rec.XML)
			if err != nil {
				return fmt.Errorf("xmldoc: replay put %s: %w", rec.Doc, err)
			}
			v.docs[rec.Doc] = d
		case "remove":
			delete(v.docs, rec.Doc)
			v.unlinkDoc(rec.Doc)
		case "addset":
			v.linkOwned(rec.Set, rec.Doc)
		default:
			return fmt.Errorf("xmldoc: unknown journal op %q at lsn %d", rec.Op, lsn)
		}
		v.docGens[rec.Doc] = rec.DocGen
		v.gen = rec.Gen
		v.lsn = int64(lsn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.w = w
	s.current.Store(v)
	return s, nil
}

// stageSnap decodes a checkpoint snapshot into the private staging
// version v.
func stageSnap(v *storeVersion, snap *storeSnap) error {
	for name, xml := range snap.Docs {
		d, err := ParseString(name, xml)
		if err != nil {
			return fmt.Errorf("xmldoc: restore %s: %w", name, err)
		}
		v.docs[name] = d
	}
	for set, docs := range snap.Sets {
		for _, doc := range docs {
			v.linkOwned(set, doc)
		}
	}
	for name, g := range snap.DocGens {
		v.docGens[name] = g
	}
	v.gen = snap.Gen
	return nil
}

// Checkpoint writes a snapshot of the store and truncates the journal at
// the snapshotted version's LSN. The checkpoint is fuzzy: it pins the
// current version and releases mu before encoding, so mutations keep
// committing while the snapshot streams out. Because every journal entry
// is one complete mutation, the snapshot at LSN n plus the journal tail
// above n reconstructs every later state — nothing blocks, nothing tears.
func (s *Store) Checkpoint() error {
	w, v, err := s.pinForCheckpoint()
	if err != nil {
		return err
	}
	defer v.pins.Add(-1)
	snap := storeSnap{
		Gen:     v.gen,
		DocGens: make(map[string]uint64, len(v.docGens)),
		Docs:    make(map[string]string, len(v.docs)),
		Sets:    make(map[string][]string, len(v.sets)),
	}
	for name, g := range v.docGens {
		snap.DocGens[name] = g
	}
	for name, d := range v.docs {
		snap.Docs[name] = d.Canonical()
	}
	for set, docs := range v.sets {
		for doc := range docs {
			snap.Sets[set] = append(snap.Sets[set], doc)
		}
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("xmldoc: encode snapshot: %w", err)
	}
	if err := w.CheckpointAt(payload, uint64(v.lsn)); err != nil {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
		return err
	}
	return nil
}

// pinForCheckpoint pins the current version under the writer mutex and
// returns it with the journal backend. The caller unpins.
func (s *Store) pinForCheckpoint() (*wal.WAL, *storeVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil, nil, fmt.Errorf("xmldoc: checkpoint: no durable backend")
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	v := s.current.Load()
	v.pins.Add(1)
	return s.w, v, nil
}

// Err returns the sticky journal error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// journalLocked appends a journal entry for a mutation that already
// happened and returns its LSN — the stamp for the version the mutation
// installs. It returns 0 (keep the predecessor's stamp) for in-memory
// stores and on failure; failures stick.
//
// seclint:locked caller holds s.mu
func (s *Store) journalLocked(rec *storeJournal) int64 {
	if s.w == nil || s.err != nil {
		return 0
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return 0
	}
	lsn, err := s.w.Append(payload)
	if err != nil {
		s.err = err
		return 0
	}
	return int64(lsn)
}
