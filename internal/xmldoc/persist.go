package xmldoc

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/wal"
)

// Snapshot+journal persistence for the document store. Documents travel as
// their canonical serialization (canon.go) and are re-parsed on load;
// since Canonical is also the representation that is hashed and signed,
// what is persisted is exactly what the integrity machinery vouches for.
// (Whitespace-only text nodes are not representable in canonical form and
// do not survive a reload — they carry no policy-relevant content.)
//
// Every journal entry records the store generation and the touched
// document's generation after the mutation, and OpenStore restores both
// counters, so generation-keyed decision caches built over a reopened
// store observe the same (name, generation) → state mapping as before the
// restart.

// storeJournal is one journal entry.
type storeJournal struct {
	Op     string // "put" | "remove" | "addset"
	Doc    string
	Set    string `json:",omitempty"`
	XML    string `json:",omitempty"`
	Gen    uint64
	DocGen uint64
}

// storeSnap is a checkpoint snapshot of the whole store.
type storeSnap struct {
	Gen     uint64
	DocGens map[string]uint64
	Docs    map[string]string
	Sets    map[string][]string
}

// OpenStore recovers a document store from w and wires it to keep
// journaling there. The caller owns w's lifecycle but must not use it
// directly afterwards.
func OpenStore(w *wal.WAL) (*Store, error) {
	s := NewStore()
	if payload, _, ok := w.Snapshot(); ok {
		var snap storeSnap
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("xmldoc: decode snapshot: %w", err)
		}
		for name, xml := range snap.Docs {
			d, err := ParseString(name, xml)
			if err != nil {
				return nil, fmt.Errorf("xmldoc: restore %s: %w", name, err)
			}
			s.docs[name] = d
		}
		for set, docs := range snap.Sets {
			for _, doc := range docs {
				s.linkSetLocked(set, doc)
			}
		}
		for name, g := range snap.DocGens {
			s.docGens[name] = g
		}
		s.gen = snap.Gen
	}
	err := w.Replay(func(lsn uint64, payload []byte) error {
		var rec storeJournal
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("xmldoc: decode journal at lsn %d: %w", lsn, err)
		}
		switch rec.Op {
		case "put":
			d, err := ParseString(rec.Doc, rec.XML)
			if err != nil {
				return fmt.Errorf("xmldoc: replay put %s: %w", rec.Doc, err)
			}
			s.docs[rec.Doc] = d
		case "remove":
			delete(s.docs, rec.Doc)
			for _, set := range s.sets {
				delete(set, rec.Doc)
			}
			delete(s.memberOf, rec.Doc)
		case "addset":
			s.linkSetLocked(rec.Set, rec.Doc)
		default:
			return fmt.Errorf("xmldoc: unknown journal op %q at lsn %d", rec.Op, lsn)
		}
		s.docGens[rec.Doc] = rec.DocGen
		s.gen = rec.Gen
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.w = w
	return s, nil
}

// linkSetLocked wires doc into set in both directions without touching
// generations. Write lock held (or exclusive ownership during recovery).
func (s *Store) linkSetLocked(set, doc string) {
	m := s.sets[set]
	if m == nil {
		m = make(map[string]bool)
		s.sets[set] = m
	}
	m[doc] = true
	r := s.memberOf[doc]
	if r == nil {
		r = make(map[string]bool)
		s.memberOf[doc] = r
	}
	r[set] = true
}

// Checkpoint writes a snapshot of the store and truncates the journal.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("xmldoc: checkpoint: no durable backend")
	}
	if s.err != nil {
		return s.err
	}
	snap := storeSnap{
		Gen:     s.gen,
		DocGens: make(map[string]uint64, len(s.docGens)),
		Docs:    make(map[string]string, len(s.docs)),
		Sets:    make(map[string][]string, len(s.sets)),
	}
	for name, g := range s.docGens {
		snap.DocGens[name] = g
	}
	for name, d := range s.docs {
		snap.Docs[name] = d.Canonical()
	}
	for set, docs := range s.sets {
		for doc := range docs {
			snap.Sets[set] = append(snap.Sets[set], doc)
		}
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("xmldoc: encode snapshot: %w", err)
	}
	if err := s.w.Checkpoint(payload); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Err returns the sticky journal error, if any.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.err
}

// journalLocked appends a journal entry for a mutation that already
// happened. Write lock held; failures stick.
func (s *Store) journalLocked(rec *storeJournal) {
	if s.w == nil || s.err != nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Append(payload); err != nil {
		s.err = err
	}
}
