package xmldoc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns its graph-structured form.
// Namespaces are flattened into plain local names (the policy and Merkle
// machinery operate on local structure). Whitespace-only text between
// elements is dropped; other text is preserved verbatim.
// seclint:sanitizer
func Parse(docName string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var b *Builder
	depth := 0
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse %s: %w", docName, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if b == nil {
				b = NewBuilder(docName, t.Name.Local)
			} else {
				b.Begin(t.Name.Local)
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attrib(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			depth--
			if depth > 0 {
				b.End()
			}
		case xml.CharData:
			if b == nil || depth == 0 {
				continue
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		}
	}
	if b == nil {
		return nil, fmt.Errorf("xmldoc: parse %s: no root element", docName)
	}
	return b.Freeze(), nil
}

// ParseString is Parse over a string.
// seclint:sanitizer
func ParseString(docName, s string) (*Document, error) {
	return Parse(docName, strings.NewReader(s))
}

// MustParseString is ParseString that panics on error; for tests and
// examples with literal documents.
// seclint:sanitizer
func MustParseString(docName, s string) *Document {
	d, err := ParseString(docName, s)
	if err != nil {
		panic(err)
	}
	return d
}
