package policy

import (
	"encoding/json"
	"fmt"

	"webdbsec/internal/credential"
	"webdbsec/internal/wal"
)

// Snapshot+journal persistence for the policy base. Every Add/Remove
// appends a journal entry carrying the generation the mutation produced;
// Checkpoint collapses the journal into a snapshot. On open the snapshot
// is restored and the journal replayed, ending at exactly the generation
// the last persisted mutation reached — so generation-keyed decision
// caches (internal/decisioncache) built over a reopened base see the same
// (generation → policy state) mapping a never-restarted process would
// have, and the cached ≡ uncached property holds across restarts.
//
// Policies are stored in a plain-data form: the credential expression as
// its source text (recompiled on load), the object path re-validated on
// load, everything else verbatim.

// persistedSubject is SubjectSpec with the credential expression flattened
// to source text.
type persistedSubject struct {
	IDs      []string `json:",omitempty"`
	Roles    []string `json:",omitempty"`
	NotRoles []string `json:",omitempty"`
	CredExpr string   `json:",omitempty"`
}

// persistedPolicy is the on-disk form of a Policy.
type persistedPolicy struct {
	Name    string
	Subject persistedSubject
	Set     string `json:",omitempty"`
	Doc     string `json:",omitempty"`
	Path    string `json:",omitempty"`
	Priv    Privilege
	Sign    Sign
	Prop    Propagation
}

func persistPolicy(p *Policy) *persistedPolicy {
	out := &persistedPolicy{
		Name: p.Name,
		Subject: persistedSubject{
			IDs:      p.Subject.IDs,
			Roles:    p.Subject.Roles,
			NotRoles: p.Subject.NotRoles,
		},
		Set:  p.Object.Set,
		Doc:  p.Object.Doc,
		Path: p.Object.Path,
		Priv: p.Priv,
		Sign: p.Sign,
		Prop: p.Prop,
	}
	if p.Subject.CredExpr != nil {
		out.Subject.CredExpr = p.Subject.CredExpr.String()
	}
	return out
}

func restorePolicy(pp *persistedPolicy) (*Policy, error) {
	p := &Policy{
		Name: pp.Name,
		Subject: SubjectSpec{
			IDs:      pp.Subject.IDs,
			Roles:    pp.Subject.Roles,
			NotRoles: pp.Subject.NotRoles,
		},
		Object: ObjectSpec{Set: pp.Set, Doc: pp.Doc, Path: pp.Path},
		Priv:   pp.Priv,
		Sign:   pp.Sign,
		Prop:   pp.Prop,
	}
	if pp.Subject.CredExpr != "" {
		expr, err := credential.Compile(pp.Subject.CredExpr)
		if err != nil {
			return nil, fmt.Errorf("policy: restore %q: %w", pp.Name, err)
		}
		p.Subject.CredExpr = expr
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("policy: restore: %w", err)
	}
	return p, nil
}

// baseJournal is one journal entry; Gen is the generation after the
// mutation.
type baseJournal struct {
	Op     string // "add" | "remove"
	Gen    uint64
	Name   string           `json:",omitempty"`
	Policy *persistedPolicy `json:",omitempty"`
}

// baseSnap is a checkpoint snapshot of the whole base.
type baseSnap struct {
	Gen      uint64
	Policies []*persistedPolicy
}

// OpenBase recovers a policy base from w and wires it to keep journaling
// there. verifier may be nil, as in NewBase. The caller owns w's lifecycle
// but must not use it directly afterwards.
func OpenBase(verifier *credential.Verifier, w *wal.WAL) (*Base, error) {
	b := NewBase(verifier)
	if payload, _, ok := w.Snapshot(); ok {
		var snap baseSnap
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("policy: decode snapshot: %w", err)
		}
		for _, pp := range snap.Policies {
			p, err := restorePolicy(pp)
			if err != nil {
				return nil, err
			}
			b.installLocked(p)
		}
		b.gen = snap.Gen
	}
	err := w.Replay(func(lsn uint64, payload []byte) error {
		var rec baseJournal
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("policy: decode journal at lsn %d: %w", lsn, err)
		}
		switch rec.Op {
		case "add":
			p, err := restorePolicy(rec.Policy)
			if err != nil {
				return err
			}
			b.installLocked(p)
		case "remove":
			b.uninstallLocked(rec.Name)
		default:
			return fmt.Errorf("policy: unknown journal op %q at lsn %d", rec.Op, lsn)
		}
		b.gen = rec.Gen
		return nil
	})
	if err != nil {
		return nil, err
	}
	b.w = w
	return b, nil
}

// Checkpoint writes a snapshot of the base and truncates the journal.
func (b *Base) Checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.w == nil {
		return fmt.Errorf("policy: checkpoint: no durable backend")
	}
	if b.err != nil {
		return b.err
	}
	snap := baseSnap{Gen: b.gen}
	for _, p := range b.policies {
		snap.Policies = append(snap.Policies, persistPolicy(p))
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("policy: encode snapshot: %w", err)
	}
	if err := b.w.Checkpoint(payload); err != nil {
		b.err = err
		return err
	}
	return nil
}

// Err returns the sticky journal error, if any.
func (b *Base) Err() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.err
}

// journalLocked appends a journal entry for a mutation that already
// happened. Write lock held; failures stick.
func (b *Base) journalLocked(rec *baseJournal) {
	if b.w == nil || b.err != nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		b.err = err
		return
	}
	if _, err := b.w.Append(payload); err != nil {
		b.err = err
	}
}
