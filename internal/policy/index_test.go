package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"webdbsec/internal/xmldoc"
)

// linearApplicable is the pre-index reference implementation: a full scan
// of the base in installation order. The indexed Applicable must return
// exactly this.
func linearApplicable(b *Base, store *xmldoc.Store, doc string, s *Subject, priv Privilege) []*Policy {
	var out []*Policy
	for _, p := range b.All() {
		if p.Priv != priv {
			continue
		}
		if !p.Object.AppliesToDoc(store, doc) {
			continue
		}
		if !p.Subject.Matches(s, b.Verifier()) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func TestApplicableEquivalentToLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := xmldoc.NewStore()
	docs := []string{"a.xml", "b.xml", "c.xml"}
	for _, d := range docs {
		store.Put(xmldoc.NewBuilder(d, "root").Freeze())
	}
	store.AddToSet("s1", "a.xml")
	store.AddToSet("s1", "b.xml")
	store.AddToSet("s2", "b.xml")

	b := NewBase(nil)
	privs := []Privilege{Read, Write}
	var names []string
	for i := 0; i < 120; i++ {
		p := &Policy{
			Name:    fmt.Sprintf("p%d", i),
			Subject: SubjectSpec{Roles: []string{fmt.Sprintf("role%d", rng.Intn(4))}},
			Priv:    privs[rng.Intn(2)],
			Sign:    Permit,
		}
		switch rng.Intn(4) {
		case 0:
			p.Object = ObjectSpec{Doc: "*"}
		case 1:
			p.Object = ObjectSpec{Set: []string{"s1", "s2"}[rng.Intn(2)]}
		default:
			p.Object = ObjectSpec{Doc: docs[rng.Intn(len(docs))]}
		}
		b.MustAdd(p)
		names = append(names, p.Name)
	}
	// Interleave removals so the index sees churn, not just growth.
	for i := 0; i < 30; i++ {
		j := rng.Intn(len(names))
		b.Remove(names[j])
		names = append(names[:j], names[j+1:]...)
	}

	for _, docName := range append(docs, "unknown.xml") {
		for _, priv := range privs {
			for r := 0; r < 4; r++ {
				s := &Subject{ID: "u", Roles: []string{fmt.Sprintf("role%d", r)}}
				got := b.Applicable(store, docName, s, priv)
				want := linearApplicable(b, store, docName, s, priv)
				if len(got) != len(want) {
					t.Fatalf("%s/%s/role%d: indexed %d policies, linear scan %d",
						docName, priv, r, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/%s/role%d: order diverges at %d: %s vs %s",
							docName, priv, r, i, got[i].Name, want[i].Name)
					}
				}
			}
		}
	}
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	b := NewBase(nil)
	g0 := b.Generation()
	p := &Policy{Name: "p", Subject: SubjectSpec{IDs: []string{"*"}}, Object: ObjectSpec{Doc: "d"}, Priv: Read, Sign: Permit}
	b.MustAdd(p)
	g1 := b.Generation()
	if g1 <= g0 {
		t.Fatalf("Add did not advance generation: %d -> %d", g0, g1)
	}
	if err := b.Add(&Policy{Name: "bad"}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if b.Generation() != g1 {
		t.Error("failed Add advanced the generation")
	}
	if b.Remove("missing") {
		t.Fatal("removed a policy that does not exist")
	}
	if b.Generation() != g1 {
		t.Error("failed Remove advanced the generation")
	}
	b.Remove("p")
	if b.Generation() <= g1 {
		t.Error("Remove did not advance the generation")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	b := NewBase(nil)
	mk := func(name string) *Policy {
		return &Policy{Name: name, Subject: SubjectSpec{IDs: []string{"*"}}, Object: ObjectSpec{Doc: "d"}, Priv: Read, Sign: Permit}
	}
	b.MustAdd(mk("p1"))
	b.MustAdd(mk("p2"))
	all := b.All()
	all[0], all[1] = all[1], all[0] // scribble on the returned slice
	all = append(all[:1], all[2:]...)
	fresh := b.All()
	if len(fresh) != 2 || fresh[0].Name != "p1" || fresh[1].Name != "p2" {
		t.Fatalf("mutating All()'s result corrupted the base: %v", fresh)
	}
}

func TestSubjectFingerprint(t *testing.T) {
	a := &Subject{ID: "alice", Roles: []string{"staff", "admin"}}
	b := &Subject{ID: "alice", Roles: []string{"admin", "staff"}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on role order")
	}
	c := &Subject{ID: "alice", Roles: []string{"staff"}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different role sets share a fingerprint")
	}
	d := &Subject{ID: "bob", Roles: []string{"staff", "admin"}}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("different identities share a fingerprint")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
}
