package policy

import (
	"testing"

	"webdbsec/internal/credential"
	"webdbsec/internal/xmldoc"
)

func TestValidate(t *testing.T) {
	ok := &Policy{
		Name:    "p1",
		Subject: SubjectSpec{IDs: []string{"alice"}},
		Object:  ObjectSpec{Doc: "d.xml", Path: "/a/b"},
		Priv:    Read,
		Sign:    Permit,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	if ok.PathExpr() == nil {
		t.Error("path not compiled")
	}

	bad := []*Policy{
		{Name: "no-priv", Subject: SubjectSpec{IDs: []string{"a"}}, Object: ObjectSpec{Doc: "d"}},
		{Name: "no-obj", Subject: SubjectSpec{IDs: []string{"a"}}, Priv: Read},
		{Name: "both-obj", Subject: SubjectSpec{IDs: []string{"a"}}, Object: ObjectSpec{Doc: "d", Set: "s"}, Priv: Read},
		{Name: "no-subj", Object: ObjectSpec{Doc: "d"}, Priv: Read},
		{Name: "bad-path", Subject: SubjectSpec{IDs: []string{"a"}}, Object: ObjectSpec{Doc: "d", Path: "rel"}, Priv: Read},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %q: want validation error", p.Name)
		}
	}
}

func TestSubjectSpecMatching(t *testing.T) {
	ca, err := credential.NewAuthority("ca")
	if err != nil {
		t.Fatal(err)
	}
	v := credential.NewVerifier()
	v.TrustAuthority(ca)
	w := credential.NewWallet("alice")
	w.Add(ca.Issue("physician", "alice", map[string]string{"ward": "3"}))

	alice := &Subject{ID: "alice", Roles: []string{"staff"}, Wallet: w}
	bob := &Subject{ID: "bob"}

	cases := []struct {
		name string
		spec SubjectSpec
		subj *Subject
		want bool
	}{
		{"id match", SubjectSpec{IDs: []string{"alice"}}, alice, true},
		{"id mismatch", SubjectSpec{IDs: []string{"alice"}}, bob, false},
		{"wildcard", SubjectSpec{IDs: []string{"*"}}, bob, true},
		{"role match", SubjectSpec{Roles: []string{"staff"}}, alice, true},
		{"role mismatch", SubjectSpec{Roles: []string{"admin"}}, alice, false},
		{"cred match", SubjectSpec{CredExpr: credential.MustCompile("physician.ward = '3'")}, alice, true},
		{"cred mismatch", SubjectSpec{CredExpr: credential.MustCompile("physician.ward = '5'")}, alice, false},
		{"cred no wallet", SubjectSpec{CredExpr: credential.MustCompile("physician")}, bob, false},
		{"any-of qualifiers", SubjectSpec{IDs: []string{"zz"}, Roles: []string{"staff"}}, alice, true},
		{"not-role excludes", SubjectSpec{IDs: []string{"*"}, NotRoles: []string{"staff"}}, alice, false},
		{"not-role passes", SubjectSpec{IDs: []string{"*"}, NotRoles: []string{"admin"}}, alice, true},
		{"exception-only spec matches others", SubjectSpec{NotRoles: []string{"staff"}}, bob, true},
		{"exception-only spec excludes holders", SubjectSpec{NotRoles: []string{"staff"}}, alice, false},
	}
	for _, c := range cases {
		if got := c.spec.Matches(c.subj, v); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestObjectSpecAppliesToDoc(t *testing.T) {
	store := xmldoc.NewStore()
	store.AddToSet("medical", "h1.xml")
	store.AddToSet("medical", "h2.xml")

	cases := []struct {
		spec ObjectSpec
		doc  string
		want bool
	}{
		{ObjectSpec{Doc: "h1.xml"}, "h1.xml", true},
		{ObjectSpec{Doc: "h1.xml"}, "h2.xml", false},
		{ObjectSpec{Doc: "*"}, "anything.xml", true},
		{ObjectSpec{Set: "medical"}, "h2.xml", true},
		{ObjectSpec{Set: "medical"}, "other.xml", false},
		{ObjectSpec{}, "h1.xml", false},
	}
	for _, c := range cases {
		if got := c.spec.AppliesToDoc(store, c.doc); got != c.want {
			t.Errorf("spec %+v doc %s: %v, want %v", c.spec, c.doc, got, c.want)
		}
	}
}

func TestBaseAddRemoveApplicable(t *testing.T) {
	store := xmldoc.NewStore()
	b := NewBase(nil)
	b.MustAdd(&Policy{
		Name:    "read-all",
		Subject: SubjectSpec{IDs: []string{"*"}},
		Object:  ObjectSpec{Doc: "d.xml"},
		Priv:    Read,
		Sign:    Permit,
	})
	b.MustAdd(&Policy{
		Name:    "write-alice",
		Subject: SubjectSpec{IDs: []string{"alice"}},
		Object:  ObjectSpec{Doc: "d.xml"},
		Priv:    Write,
		Sign:    Permit,
	})
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	alice := &Subject{ID: "alice"}
	bob := &Subject{ID: "bob"}
	if got := len(b.Applicable(store, "d.xml", alice, Write)); got != 1 {
		t.Errorf("alice write applicable = %d, want 1", got)
	}
	if got := len(b.Applicable(store, "d.xml", bob, Write)); got != 0 {
		t.Errorf("bob write applicable = %d, want 0", got)
	}
	if got := len(b.Applicable(store, "other.xml", alice, Read)); got != 0 {
		t.Errorf("other doc applicable = %d, want 0", got)
	}
	if !b.Remove("read-all") {
		t.Error("remove failed")
	}
	if b.Remove("read-all") {
		t.Error("double remove succeeded")
	}
	if b.Len() != 1 {
		t.Errorf("len after remove = %d", b.Len())
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	b := NewBase(nil)
	if err := b.Add(&Policy{Name: "bad"}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestMustAddPanicsOnInvalid(t *testing.T) {
	b := NewBase(nil)
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on invalid policy")
		}
	}()
	b.MustAdd(&Policy{Name: "bad"})
}

func TestBaseVerifierAccessor(t *testing.T) {
	v := credential.NewVerifier()
	b := NewBase(v)
	if b.Verifier() != v {
		t.Error("Verifier accessor wrong")
	}
	if NewBase(nil).Verifier() != nil {
		t.Error("nil verifier not preserved")
	}
}

func TestPathExprNilForWholeDocPolicies(t *testing.T) {
	p := &Policy{
		Name:    "whole",
		Subject: SubjectSpec{IDs: []string{"*"}},
		Object:  ObjectSpec{Doc: "d.xml"},
		Priv:    Read,
		Sign:    Permit,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PathExpr() != nil {
		t.Error("whole-document policy has a compiled path")
	}
}

func TestHasRole(t *testing.T) {
	s := &Subject{ID: "x", Roles: []string{"a", "b"}}
	if !s.HasRole("a") || s.HasRole("c") {
		t.Error("HasRole wrong")
	}
}

func TestSignAndPropStrings(t *testing.T) {
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Error("Sign strings wrong")
	}
	if NoProp.String() != "no-prop" || FirstLevel.String() != "first-level" || Cascade.String() != "cascade" {
		t.Error("Propagation strings wrong")
	}
}
