package policy

import (
	"reflect"
	"testing"

	"webdbsec/internal/credential"
	"webdbsec/internal/resilience/faultinject"
	"webdbsec/internal/wal"
)

func openBase(t *testing.T, fs wal.FS) *Base {
	t.Helper()
	w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	b, err := OpenBase(nil, w)
	if err != nil {
		t.Fatalf("OpenBase: %v", err)
	}
	return b
}

func persistTestPolicy(name, role, path string) *Policy {
	return &Policy{
		Name:    name,
		Subject: SubjectSpec{Roles: []string{role}},
		Object:  ObjectSpec{Doc: "ward.xml", Path: path},
		Priv:    Read,
		Sign:    Permit,
		Prop:    Cascade,
	}
}

// assertBaseEqual compares two bases by generation and by the persisted
// form of every policy (compiled fields excluded by construction).
func assertBaseEqual(t *testing.T, a, b *Base, desc string) {
	t.Helper()
	if a.Generation() != b.Generation() {
		t.Fatalf("%s: generation %d vs %d", desc, a.Generation(), b.Generation())
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d policies vs %d", desc, a.Len(), b.Len())
	}
	pa, pb := a.All(), b.All()
	for i := range pa {
		if !reflect.DeepEqual(persistPolicy(pa[i]), persistPolicy(pb[i])) {
			t.Fatalf("%s: policy %d differs:\n%+v\nvs\n%+v", desc, i, persistPolicy(pa[i]), persistPolicy(pb[i]))
		}
	}
}

func TestBaseJournalRoundTrip(t *testing.T) {
	fs := faultinject.NewMemFS()
	b := openBase(t, fs)
	cred, err := credential.Compile("employee.years >= '3'")
	if err != nil {
		t.Fatal(err)
	}
	p := persistTestPolicy("senior-read", "staff", "//patient")
	p.Subject.CredExpr = cred
	if err := b.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(persistTestPolicy("deny-disease", "staff", "//disease")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(persistTestPolicy("doomed", "temp", "//name")); err != nil {
		t.Fatal(err)
	}
	if !b.Remove("doomed") {
		t.Fatal("Remove failed")
	}
	if err := b.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	b2 := openBase(t, fs)
	assertBaseEqual(t, b, b2, "journal replay")
	// The restored credential expression still evaluates: it was persisted
	// as source and recompiled.
	restored := b2.All()
	found := false
	for _, p := range restored {
		if p.Name == "senior-read" {
			found = true
			if p.Subject.CredExpr == nil {
				t.Fatal("credential expression lost")
			}
		}
	}
	if !found {
		t.Fatal("senior-read not restored")
	}
}

func TestBaseCheckpointAndTail(t *testing.T) {
	fs := faultinject.NewMemFS()
	b := openBase(t, fs)
	b.MustAdd(persistTestPolicy("p1", "staff", "//patient"))
	b.MustAdd(persistTestPolicy("p2", "staff", "//name"))
	if err := b.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint journal tail.
	b.MustAdd(persistTestPolicy("p3", "nurse", "//disease"))
	b.Remove("p1")

	b2 := openBase(t, fs)
	assertBaseEqual(t, b, b2, "snapshot+tail")
	// Generations restored exactly: a generation-keyed cache entry from
	// before the restart keys the same state after it.
	if b2.Generation() != 4 {
		t.Fatalf("Generation = %d, want 4 (2 adds + checkpoint-surviving adds/removes)", b2.Generation())
	}
}

// TestBaseCrashRecovery: killed at any byte of the journal stream, the
// base recovers to a prefix of its mutation history with the matching
// generation — never a torn policy, never a generation ahead of the state.
func TestBaseCrashRecovery(t *testing.T) {
	script := func(fs *faultinject.MemFS) *Base {
		w, err := wal.Open(wal.Options{FS: fs, Policy: wal.SyncAlways})
		if err != nil {
			return nil
		}
		b, err := OpenBase(nil, w)
		if err != nil {
			return nil
		}
		b.Add(persistTestPolicy("p1", "staff", "//patient"))
		b.Add(persistTestPolicy("p2", "staff", "//name"))
		b.Remove("p1")
		b.Add(persistTestPolicy("p3", "nurse", "//disease"))
		return b
	}
	dry := faultinject.NewMemFS()
	script(dry)
	total := dry.BytesWritten()
	for b := int64(0); b <= total; b += 11 {
		fs := faultinject.NewMemFS()
		fs.LimitWriteBytes(b)
		script(fs)
		for _, drop := range []bool{false, true} {
			img := fs.AfterCrash(drop)
			rb := openBase(t, img)
			// The generation equals the number of surviving mutations: each
			// journal entry carries its post-mutation generation and they
			// are replayed in order.
			gen := rb.Generation()
			if gen > 4 {
				t.Fatalf("crash at %d: generation %d beyond history", b, gen)
			}
			// State must equal the prefix of the script at that generation.
			wantLen := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 1, 4: 2}[gen]
			if rb.Len() != wantLen {
				t.Fatalf("crash at %d: gen %d with %d policies, want %d", b, gen, rb.Len(), wantLen)
			}
		}
	}
}
