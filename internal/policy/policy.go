// Package policy defines the access control policy model used throughout
// the repository, following the Author-X design [5] the paper describes in
// §3.2: policies are specified over graph-structured XML at "a wide
// spectrum of access granularity levels, ranging from sets of documents, to
// single documents, to specific portions within a document", support "both
// content-dependent and content-independent" protection, and qualify
// subjects "by means of credentials" as well as identities and roles.
//
// A policy is (subject spec, object spec, privilege, sign, propagation).
// Conflicts are resolved by the standard Author-X rules: the policy with
// the more specific object wins; at equal specificity denials take
// precedence; in the absence of any applicable policy the system is closed
// (deny).
package policy

import (
	"fmt"

	"webdbsec/internal/credential"
	"webdbsec/internal/xmldoc"
)

// Privilege is the kind of access a policy grants or denies.
type Privilege string

// Privileges. Browse reveals document structure only (element names);
// Read additionally reveals content; Write permits modification and
// subsumes nothing (writing does not imply reading).
const (
	Browse Privilege = "browse"
	Read   Privilege = "read"
	Write  Privilege = "write"
)

// Sign marks a policy as a permission or a prohibition.
type Sign int

// Signs.
const (
	Deny Sign = iota
	Permit
)

func (s Sign) String() string {
	if s == Permit {
		return "permit"
	}
	return "deny"
}

// Propagation controls how far down the document tree an authorization on
// an element extends.
type Propagation int

// Propagation options (Author-X: NO_PROP, FIRST_LEVEL, CASCADE).
const (
	// NoProp applies to the matched node only (plus its attributes and
	// text, which have no independent protection granularity below their
	// element for browse, but are matched individually for read).
	NoProp Propagation = iota
	// FirstLevel extends to the matched element's direct children.
	FirstLevel
	// Cascade extends to the whole subtree.
	Cascade
)

func (p Propagation) String() string {
	switch p {
	case NoProp:
		return "no-prop"
	case FirstLevel:
		return "first-level"
	case Cascade:
		return "cascade"
	}
	return fmt.Sprintf("Propagation(%d)", int(p))
}

// Subject is the access-requesting context a policy's subject spec is
// matched against: an identity, the subject's active roles, and a wallet
// of credentials.
type Subject struct {
	ID     string
	Roles  []string
	Wallet *credential.Wallet
}

// HasRole reports whether the subject has the role active.
func (s *Subject) HasRole(role string) bool {
	for _, r := range s.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// SubjectSpec qualifies the subjects a policy applies to. A spec matches if
// ANY of its non-empty positive qualifiers matches — the subject's identity
// is listed in IDs, one of the subject's roles is listed in Roles, or the
// credential expression evaluates to true over the subject's wallet — AND
// none of the exceptions applies (the subject holds no role in NotRoles).
// The special ID "*" matches every subject (public policies). A spec with
// only exceptions matches every subject the exceptions do not exclude,
// which is how "deny X to everyone but partners" is written.
type SubjectSpec struct {
	IDs      []string
	Roles    []string
	CredExpr *credential.Expr
	// NotRoles excludes subjects holding any of the listed roles.
	NotRoles []string
}

// Matches evaluates the spec. verifier may be nil to skip credential
// signature verification.
func (ss *SubjectSpec) Matches(s *Subject, verifier *credential.Verifier) bool {
	for _, r := range ss.NotRoles {
		if s.HasRole(r) {
			return false
		}
	}
	if len(ss.IDs) == 0 && len(ss.Roles) == 0 && ss.CredExpr == nil {
		// Exception-only spec: matches everyone not excluded above.
		return len(ss.NotRoles) > 0
	}
	for _, id := range ss.IDs {
		if id == "*" || id == s.ID {
			return true
		}
	}
	for _, r := range ss.Roles {
		if s.HasRole(r) {
			return true
		}
	}
	if ss.CredExpr != nil && ss.CredExpr.EvalWallet(s.Wallet, verifier) {
		return true
	}
	return false
}

// ObjectSpec designates the protected objects at one of three granularity
// levels. Exactly one of Set or Doc should be non-empty; Path further
// narrows a Doc (or every doc of a Set) to the matched portions. Doc "*"
// matches every document in the store.
type ObjectSpec struct {
	// Set names a document set registered in the store.
	Set string
	// Doc names a single document, or "*" for all.
	Doc string
	// Path, when non-empty, selects portions within the matched documents.
	Path string

	compiled *xmldoc.PathExpr
}

// specificity ranks object specs for conflict resolution: a path-level spec
// beats a document-level spec beats a set-level spec beats a wildcard;
// among path-level specs, longer (deeper) node matches are resolved by the
// engine using node depth, not here.
func (os *ObjectSpec) specificity() int {
	s := 0
	switch {
	case os.Doc != "" && os.Doc != "*":
		s = 2
	case os.Set != "":
		s = 1
	}
	if os.Path != "" && os.Path != "/" {
		s += 2
	}
	return s
}

// AppliesToDoc reports whether the spec covers the named document of the
// store (ignoring Path).
func (os *ObjectSpec) AppliesToDoc(store *xmldoc.Store, doc string) bool {
	if os.Doc == "*" {
		return true
	}
	if os.Doc != "" {
		return os.Doc == doc
	}
	if os.Set != "" {
		return store.SetContains(os.Set, doc)
	}
	return false
}

// Policy is one access control rule.
type Policy struct {
	// Name identifies the policy in audit records and error messages.
	Name    string
	Subject SubjectSpec
	Object  ObjectSpec
	Priv    Privilege
	Sign    Sign
	Prop    Propagation
}

// Validate compiles the object path and checks well-formedness.
func (p *Policy) Validate() error {
	if p.Priv == "" {
		return fmt.Errorf("policy %q: missing privilege", p.Name)
	}
	if p.Object.Doc == "" && p.Object.Set == "" {
		return fmt.Errorf("policy %q: object spec needs Doc or Set", p.Name)
	}
	if p.Object.Doc != "" && p.Object.Set != "" {
		return fmt.Errorf("policy %q: object spec cannot have both Doc and Set", p.Name)
	}
	if len(p.Subject.IDs) == 0 && len(p.Subject.Roles) == 0 &&
		p.Subject.CredExpr == nil && len(p.Subject.NotRoles) == 0 {
		return fmt.Errorf("policy %q: empty subject spec", p.Name)
	}
	if p.Object.Path != "" {
		pe, err := xmldoc.CompilePath(p.Object.Path)
		if err != nil {
			return fmt.Errorf("policy %q: %w", p.Name, err)
		}
		p.Object.compiled = pe
	}
	return nil
}

// PathExpr returns the compiled object path, or nil when the policy covers
// whole documents.
func (p *Policy) PathExpr() *xmldoc.PathExpr { return p.Object.compiled }

// Base is a policy base: the set of policies governing a document store.
// Concurrent READS (Applicable, All) are safe; installing or removing
// policies is not synchronized — configure the base before serving
// traffic, or serialize administration externally. The servers in cmd/
// follow this rule.
type Base struct {
	policies []*Policy
	verifier *credential.Verifier
}

// NewBase returns an empty policy base. verifier may be nil to skip
// credential signature verification (policies then trust presented
// credentials, which is only appropriate in tests).
func NewBase(verifier *credential.Verifier) *Base {
	return &Base{verifier: verifier}
}

// Add validates and installs a policy.
func (b *Base) Add(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	b.policies = append(b.policies, p)
	return nil
}

// MustAdd is Add that panics on error; for tests and examples.
func (b *Base) MustAdd(p *Policy) {
	if err := b.Add(p); err != nil {
		panic(err)
	}
}

// Remove deletes the named policy and reports whether it existed.
func (b *Base) Remove(name string) bool {
	for i, p := range b.policies {
		if p.Name == name {
			b.policies = append(b.policies[:i], b.policies[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of installed policies.
func (b *Base) Len() int { return len(b.policies) }

// Verifier returns the credential verifier used for subject matching.
func (b *Base) Verifier() *credential.Verifier { return b.verifier }

// Applicable returns the policies whose subject spec matches s, whose
// privilege equals priv, and whose object spec covers the named document.
func (b *Base) Applicable(store *xmldoc.Store, doc string, s *Subject, priv Privilege) []*Policy {
	var out []*Policy
	for _, p := range b.policies {
		if p.Priv != priv {
			continue
		}
		if !p.Object.AppliesToDoc(store, doc) {
			continue
		}
		if !p.Subject.Matches(s, b.verifier) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// All returns the installed policies. The slice must not be modified.
func (b *Base) All() []*Policy { return b.policies }
